//! Offline stand-in for the `rand` crate.
//!
//! The sandbox has no network access, so the real crates-io `rand`
//! cannot be fetched. This shim provides the (tiny) subset the
//! workspace actually uses — `StdRng::seed_from_u64` + `gen_range` —
//! with a deterministic splitmix64 generator. It is **not** a general
//! purpose RNG and must never be used for anything security-adjacent.

pub mod rngs {
    /// Deterministic 64-bit generator (splitmix64 core).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        pub(crate) state: u64,
    }
}

use rngs::StdRng;

/// Seedable construction (the only constructor the workspace uses).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        StdRng { state }
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value, given a source of raw 64-bit words.
    fn sample_from(self, next: &mut dyn FnMut() -> u64) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from(self, next: &mut dyn FnMut() -> u64) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (next() % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from(self, next: &mut dyn FnMut() -> u64) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi as i128 - lo as i128) as u64;
                match span.checked_add(1) {
                    Some(n) => (lo as i128 + (next() % n) as i128) as $t,
                    None => next() as $t,
                }
            }
        }
    )*};
}

impl_sample_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

/// The user-facing sampling interface.
pub trait Rng {
    /// One raw 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Uniform draw from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        let mut next = || self.next_u64();
        range.sample_from(&mut next)
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            let x: usize = a.gen_range(1..=7);
            let y: usize = b.gen_range(1..=7);
            assert_eq!(x, y);
            assert!((1..=7).contains(&x));
        }
        let mut c = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let v: i32 = c.gen_range(-5..5);
            assert!((-5..5).contains(&v));
        }
    }
}
