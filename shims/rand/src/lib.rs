//! Offline stand-in for the `rand` crate.
//!
//! The sandbox has no network access, so the real crates-io `rand`
//! cannot be fetched. This shim provides the (tiny) subset the
//! workspace actually uses — `StdRng::seed_from_u64` + `gen_range` —
//! with a deterministic splitmix64 generator. It is **not** a general
//! purpose RNG and must never be used for anything security-adjacent.

pub mod rngs {
    /// Deterministic 64-bit generator (splitmix64 core).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        pub(crate) state: u64,
    }
}

use rngs::StdRng;

/// Seedable construction (the only constructor the workspace uses).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        StdRng { state }
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value, given a source of raw 64-bit words.
    fn sample_from(self, next: &mut dyn FnMut() -> u64) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from(self, next: &mut dyn FnMut() -> u64) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (next() % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from(self, next: &mut dyn FnMut() -> u64) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi as i128 - lo as i128) as u64;
                match span.checked_add(1) {
                    Some(n) => (lo as i128 + (next() % n) as i128) as $t,
                    None => next() as $t,
                }
            }
        }
    )*};
}

impl_sample_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

/// The user-facing sampling interface.
pub trait Rng {
    /// One raw 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Uniform draw from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        let mut next = || self.next_u64();
        range.sample_from(&mut next)
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

pub mod distributions {
    //! Seeded non-uniform samplers (the subset of `rand_distr` the
    //! workspace uses). Deterministic per seed: the same `StdRng` seed
    //! yields the same sample stream on every platform.

    use super::Rng;

    /// A distribution that can be sampled with any [`Rng`].
    pub trait Distribution<T> {
        /// Draws one value.
        fn sample<R: Rng>(&self, rng: &mut R) -> T;
    }

    /// Uniform f64 in `[0, 1)` from one raw word (53 mantissa bits).
    fn unit<R: Rng>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Discrete distribution over indices `0..weights.len()`, each
    /// drawn with probability proportional to its (non-negative)
    /// weight. Sampling is a binary search over the cumulative table.
    #[derive(Clone, Debug)]
    pub struct WeightedIndex {
        cum: Vec<f64>,
    }

    impl WeightedIndex {
        /// Builds from weights. Fails on an empty list, a negative or
        /// non-finite weight, or an all-zero total.
        pub fn new(weights: &[f64]) -> Result<WeightedIndex, &'static str> {
            if weights.is_empty() {
                return Err("WeightedIndex: empty weights");
            }
            let mut cum = Vec::with_capacity(weights.len());
            let mut total = 0.0;
            for &w in weights {
                if !w.is_finite() || w < 0.0 {
                    return Err("WeightedIndex: weight must be finite and >= 0");
                }
                total += w;
                cum.push(total);
            }
            if total <= 0.0 {
                return Err("WeightedIndex: total weight is zero");
            }
            for c in &mut cum {
                *c /= total;
            }
            // Guard against rounding: the last bucket must cover 1.0.
            *cum.last_mut().expect("non-empty") = 1.0;
            Ok(WeightedIndex { cum })
        }
    }

    impl Distribution<usize> for WeightedIndex {
        fn sample<R: Rng>(&self, rng: &mut R) -> usize {
            let u = unit(rng);
            // First index whose cumulative probability exceeds u.
            self.cum
                .partition_point(|&c| c <= u)
                .min(self.cum.len() - 1)
        }
    }

    /// Zipfian distribution over ranks `1..=n`: rank `k` is drawn with
    /// probability proportional to `1 / k^s`. `s = 0` degenerates to
    /// uniform; larger `s` concentrates mass on the low ranks (the
    /// classic hot-working-set shape).
    #[derive(Clone, Debug)]
    pub struct Zipf {
        inner: WeightedIndex,
    }

    impl Zipf {
        /// Builds the distribution for `n` ranks with exponent `s`.
        pub fn new(n: u64, s: f64) -> Result<Zipf, &'static str> {
            if n == 0 {
                return Err("Zipf: n must be >= 1");
            }
            if !s.is_finite() || s < 0.0 {
                return Err("Zipf: exponent must be finite and >= 0");
            }
            let weights: Vec<f64> = (1..=n).map(|k| (k as f64).powf(-s)).collect();
            Ok(Zipf {
                inner: WeightedIndex::new(&weights)?,
            })
        }
    }

    impl Distribution<u64> for Zipf {
        fn sample<R: Rng>(&self, rng: &mut R) -> u64 {
            self.inner.sample(rng) as u64 + 1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            let x: usize = a.gen_range(1..=7);
            let y: usize = b.gen_range(1..=7);
            assert_eq!(x, y);
            assert!((1..=7).contains(&x));
        }
        let mut c = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let v: i32 = c.gen_range(-5..5);
            assert!((-5..5).contains(&v));
        }
    }

    #[test]
    fn zipf_is_deterministic_per_seed() {
        use distributions::{Distribution, Zipf};
        let z = Zipf::new(40, 1.1).unwrap();
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let xs: Vec<u64> = (0..200).map(|_| z.sample(&mut a)).collect();
        let ys: Vec<u64> = (0..200).map(|_| z.sample(&mut b)).collect();
        assert_eq!(xs, ys);
        assert!(xs.iter().all(|&r| (1..=40).contains(&r)));
        // A different seed produces a different stream.
        let mut c = StdRng::seed_from_u64(8);
        let zs: Vec<u64> = (0..200).map(|_| z.sample(&mut c)).collect();
        assert_ne!(xs, zs);
    }

    #[test]
    fn zipf_skews_toward_low_ranks() {
        use distributions::{Distribution, Zipf};
        let z = Zipf::new(10, 1.2).unwrap();
        let mut rng = StdRng::seed_from_u64(99);
        let mut counts = [0u32; 11];
        for _ in 0..5000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        assert!(counts[1] > counts[5], "rank 1 should dominate rank 5");
        assert!(counts[1] > counts[10], "rank 1 should dominate rank 10");
        // Every rank is reachable at this size.
        assert!(counts[1..].iter().all(|&c| c > 0));
    }

    #[test]
    fn weighted_index_respects_weights_and_rejects_bad_input() {
        use distributions::{Distribution, WeightedIndex};
        let w = WeightedIndex::new(&[0.0, 3.0, 1.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts = [0u32; 3];
        for _ in 0..4000 {
            counts[w.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[0], 0, "zero-weight bucket must never be drawn");
        assert!(counts[1] > counts[2] * 2, "3:1 weights, got {counts:?}");
        assert!(WeightedIndex::new(&[]).is_err());
        assert!(WeightedIndex::new(&[-1.0]).is_err());
        assert!(WeightedIndex::new(&[0.0, 0.0]).is_err());
        assert!(WeightedIndex::new(&[f64::NAN]).is_err());
        assert!(distributions::Zipf::new(0, 1.0).is_err());
    }
}
