//! The deterministic RNG, case-error type, and per-test configuration.

use std::fmt;

/// Deterministic splitmix64 generator, seeded from the test name so
/// every run draws the same case sequence.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from an arbitrary string (FNV-1a).
    pub fn from_name(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Seeds directly.
    pub fn from_seed(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// The next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `0..n` (`0` when `n == 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }
}

/// Why a single drawn case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case did not satisfy a `prop_assume!`; it is re-drawn.
    Reject(String),
    /// An assertion failed; the test fails.
    Fail(String),
}

impl TestCaseError {
    /// A failure with a message.
    pub fn fail<S: Into<String>>(msg: S) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }

    /// A rejection with a message.
    pub fn reject<S: Into<String>>(msg: S) -> TestCaseError {
        TestCaseError::Reject(msg.into())
    }

    /// `true` for [`TestCaseError::Reject`].
    pub fn is_reject(&self) -> bool {
        matches!(self, TestCaseError::Reject(_))
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            TestCaseError::Fail(m) => write!(f, "{m}"),
        }
    }
}

/// Per-`proptest!` block configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of accepted cases required to pass.
    pub cases: u32,
    /// Cap on rejected cases before the run aborts.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// Default configuration with an explicit case count.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}
