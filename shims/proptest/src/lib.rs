//! Offline stand-in for the `proptest` crate.
//!
//! The sandbox has no crates-io access, so this shim reimplements the
//! slice of the proptest API that the workspace's tests use:
//!
//! * the [`Strategy`](strategy::Strategy) trait with `prop_map`, `prop_recursive`, `boxed`;
//! * range / tuple / `Just` / string-pattern strategies and `any::<T>()`;
//! * `prop::collection::vec`, `prop::sample::select`;
//! * the `proptest!`, `prop_oneof!`, `prop_assert*!`, `prop_assume!`
//!   macros, and `ProptestConfig::with_cases`.
//!
//! Semantics deliberately differ from real proptest in two ways: the
//! RNG is **deterministic** (seeded from the test name, so failures
//! reproduce across runs without a persisted regression file), and
//! there is **no shrinking** — a failing case reports its assertion
//! message as-is. Neither difference weakens what the tests assert.

pub mod test_runner;

pub mod strategy;

pub mod arbitrary;

pub mod collection;

pub mod sample;

pub mod string;

/// The `prop::` namespace re-exported by the prelude.
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
    pub use crate::strategy;
}

/// Everything a test file needs.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// The core test-loop macro: runs each `fn name(arg in strategy, ...)`
/// body against `ProptestConfig::cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ config = ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (config = ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
            let mut accepted: u32 = 0;
            let mut rejected: u32 = 0;
            while accepted < config.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        let _: () = $body;
                        ::std::result::Result::Ok(())
                    })();
                match outcome {
                    ::std::result::Result::Ok(()) => accepted += 1,
                    ::std::result::Result::Err(e) if e.is_reject() => {
                        rejected += 1;
                        if rejected > config.max_global_rejects {
                            panic!(
                                "proptest: too many rejected cases ({} accepted, {} rejected): {}",
                                accepted, rejected, e
                            );
                        }
                    }
                    ::std::result::Result::Err(e) => {
                        panic!("proptest case {} failed: {}", accepted + 1, e);
                    }
                }
            }
        }
    )*};
}

/// Weighted or unweighted union of same-valued strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Fails the current case (returns `Err(TestCaseError::Fail)`).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Equality assertion with value diagnostics.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` != `{:?}`",
            l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` != `{:?}`: {}",
            l, r, format!($($fmt)+)
        );
    }};
}

/// Inequality assertion with value diagnostics.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{:?}` == `{:?}`",
            l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{:?}` == `{:?}`: {}",
            l, r, format!($($fmt)+)
        );
    }};
}

/// Rejects the current case (it is re-drawn, not counted as a pass).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}
