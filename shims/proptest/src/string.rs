//! String generation from a small regex subset.
//!
//! Supports exactly what the workspace's tests use, plus a little
//! headroom: literal characters, `\n`/`\t`/`\r`/`\\` escapes, character
//! classes with ranges (`[ -~\n\t]`), and the repetition operators
//! `{m}`, `{m,n}`, `*`, `+`, `?` (starred forms cap at 8 repeats).

use crate::test_runner::TestRng;

#[derive(Clone, Debug)]
enum Atom {
    Lit(char),
    /// Inclusive character ranges; single chars are `(c, c)`.
    Class(Vec<(char, char)>),
}

#[derive(Clone, Copy, Debug)]
struct Rep {
    min: u32,
    max: u32,
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        '0' => '\0',
        other => other,
    }
}

fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Vec<(char, char)> {
    let mut ranges = Vec::new();
    let mut pending: Option<char> = None;
    while let Some(c) = chars.next() {
        let lit = match c {
            ']' => {
                if let Some(p) = pending {
                    ranges.push((p, p));
                }
                return ranges;
            }
            '\\' => unescape(chars.next().unwrap_or('\\')),
            other => other,
        };
        if lit == '-' && pending.is_some() && chars.peek().is_some_and(|&n| n != ']') {
            let lo = pending.take().expect("checked above");
            let hi = match chars.next() {
                Some('\\') => unescape(chars.next().unwrap_or('\\')),
                Some(other) => other,
                None => break,
            };
            ranges.push((lo.min(hi), lo.max(hi)));
        } else {
            if let Some(p) = pending.replace(lit) {
                ranges.push((p, p));
            }
        }
    }
    if let Some(p) = pending {
        ranges.push((p, p));
    }
    ranges
}

fn parse_rep(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Rep {
    match chars.peek() {
        Some('*') => {
            chars.next();
            Rep { min: 0, max: 8 }
        }
        Some('+') => {
            chars.next();
            Rep { min: 1, max: 8 }
        }
        Some('?') => {
            chars.next();
            Rep { min: 0, max: 1 }
        }
        Some('{') => {
            chars.next();
            let mut digits = String::new();
            let mut min = 0u32;
            let mut saw_comma = false;
            let mut max = None;
            for c in chars.by_ref() {
                match c {
                    '}' => {
                        if saw_comma {
                            max = digits.parse().ok();
                        } else {
                            min = digits.parse().unwrap_or(0);
                            max = Some(min);
                        }
                        break;
                    }
                    ',' => {
                        min = digits.parse().unwrap_or(0);
                        digits.clear();
                        saw_comma = true;
                    }
                    d => digits.push(d),
                }
            }
            let max = max.unwrap_or(min.saturating_add(8));
            Rep {
                min,
                max: max.max(min),
            }
        }
        _ => Rep { min: 1, max: 1 },
    }
}

fn parse(pattern: &str) -> Vec<(Atom, Rep)> {
    let mut chars = pattern.chars().peekable();
    let mut atoms = Vec::new();
    while let Some(c) = chars.next() {
        let atom = match c {
            '[' => Atom::Class(parse_class(&mut chars)),
            '\\' => Atom::Lit(unescape(chars.next().unwrap_or('\\'))),
            '.' => Atom::Class(vec![(' ', '~')]),
            other => Atom::Lit(other),
        };
        let rep = parse_rep(&mut chars);
        atoms.push((atom, rep));
    }
    atoms
}

fn sample_class(ranges: &[(char, char)], rng: &mut TestRng) -> char {
    let total: u64 = ranges
        .iter()
        .map(|&(lo, hi)| (hi as u64 - lo as u64) + 1)
        .sum();
    let mut pick = rng.below(total.max(1));
    for &(lo, hi) in ranges {
        let size = (hi as u64 - lo as u64) + 1;
        if pick < size {
            return char::from_u32(lo as u32 + pick as u32).unwrap_or(lo);
        }
        pick -= size;
    }
    ' '
}

/// Generates one string matching `pattern`.
pub fn sample_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    for (atom, rep) in parse(pattern) {
        let n = rep.min + rng.below((rep.max - rep.min + 1) as u64) as u32;
        for _ in 0..n {
            match &atom {
                Atom::Lit(c) => out.push(*c),
                Atom::Class(ranges) if ranges.is_empty() => {}
                Atom::Class(ranges) => out.push(sample_class(ranges, rng)),
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascii_class_with_escapes() {
        let mut rng = TestRng::from_seed(7);
        for _ in 0..200 {
            let s = sample_pattern("[ -~\n\t]{0,200}", &mut rng);
            assert!(s.len() <= 200);
            assert!(s
                .chars()
                .all(|c| (' '..='~').contains(&c) || c == '\n' || c == '\t'));
        }
    }

    #[test]
    fn literals_and_repeats() {
        let mut rng = TestRng::from_seed(7);
        assert_eq!(sample_pattern("abc", &mut rng), "abc");
        let s = sample_pattern("a{3}b", &mut rng);
        assert_eq!(s, "aaab");
        for _ in 0..50 {
            let s = sample_pattern("x{2,4}", &mut rng);
            assert!((2..=4).contains(&s.len()));
        }
    }
}
