//! `any::<T>()` — full-domain strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> i128 {
        u128::arbitrary(rng) as i128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
pub struct Any<A>(PhantomData<A>);

impl<A> Clone for Any<A> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;

    fn sample(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

/// Full-domain strategy for `A`.
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(PhantomData)
}
