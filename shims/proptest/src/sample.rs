//! Sampling from explicit value lists (`prop::sample::select`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// The strategy returned by [`select`].
#[derive(Clone, Debug)]
pub struct Select<T: Clone> {
    items: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        self.items[rng.below(self.items.len() as u64) as usize].clone()
    }
}

/// Uniform choice from `items`.
///
/// # Panics
///
/// Panics if `items` is empty.
pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
    assert!(!items.is_empty(), "select() needs at least one item");
    Select { items }
}
