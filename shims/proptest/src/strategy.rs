//! The [`Strategy`] trait and its combinators.
//!
//! A strategy here is just a deterministic sampler: `sample(&self, rng)`
//! draws one value. There is no value tree and no shrinking.

use crate::test_runner::TestRng;
use std::rc::Rc;

/// Something that can generate values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Builds recursive structures: `recurse` receives a strategy for
    /// "smaller" values (a mix of leaves and shallower recursion) and
    /// returns the strategy for one more level. `depth` bounds nesting;
    /// the size/branch hints are accepted for API compatibility.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let base = self.boxed();
        let mut cur = base.clone();
        for _ in 0..depth {
            // Hand the next level a 50/50 mix of leaves and the current
            // (strictly shallower) strategy, so generated trees taper.
            let inner = Union::new(vec![(1, base.clone()), (1, cur)]);
            cur = recurse(inner.boxed()).boxed();
        }
        Union::new(vec![(1, base), (2, cur)]).boxed()
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.sample(rng)))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Weighted choice between boxed strategies (built by `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// Builds from `(weight, strategy)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty or all weights are zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(
            total > 0,
            "prop_oneof! needs at least one positively-weighted arm"
        );
        Union { arms, total }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
            total: self.total,
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.sample(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weights sum to total")
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "sampling an empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "sampling an empty range");
                let span = (hi as i128 - lo as i128) as u64;
                match span.checked_add(1) {
                    Some(n) => (lo as i128 + rng.below(n) as i128) as $t,
                    None => rng.next_u64() as $t,
                }
            }
        }
    )*};
}

int_range_strategies!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! tuple_strategies {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// String literals act as (a small subset of) regex generators.
impl Strategy for &'static str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        crate::string::sample_pattern(self, rng)
    }
}
