//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// Inclusive length bounds for generated collections.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n }
    }
}

/// The strategy returned by [`vec()`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo) as u64;
        let len = self.size.lo + rng.below(span + 1) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// Vectors of `element` values with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
