//! Offline stand-in for the `criterion` crate.
//!
//! The sandbox cannot fetch crates-io, so this shim reimplements the
//! subset of the criterion API the workspace's benches use: groups,
//! `bench_function` / `bench_with_input`, and the `iter*` family on
//! [`Bencher`]. Measurement is deliberately simple — warm up, then run
//! a time-budgeted batch and report the mean — which is plenty for the
//! relative comparisons the bench suite prints. No plots, no state
//! directory, no statistics beyond the mean.

use std::time::{Duration, Instant};

/// Target wall-clock spent measuring one benchmark.
const MEASURE_BUDGET: Duration = Duration::from_millis(200);
/// Iteration cap, so instant routines don't spin forever.
const MAX_ITERS: u64 = 1_000_000;

/// Prevents the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Batch sizing hints (accepted, ignored — setup always runs untimed).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Fresh setup for every routine call.
    PerIteration,
    /// Criterion's small-input heuristic.
    SmallInput,
    /// Criterion's large-input heuristic.
    LargeInput,
}

/// A `group/function/parameter` label.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Joins a function name and a parameter display.
    pub fn new<S: std::fmt::Display, P: std::fmt::Display>(function: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// A parameter-only id.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Times one routine; constructed by the group methods.
pub struct Bencher<'a> {
    iters: u64,
    elapsed: Duration,
    _marker: std::marker::PhantomData<&'a ()>,
}

impl Bencher<'_> {
    fn new() -> Self {
        Bencher {
            iters: 0,
            elapsed: Duration::ZERO,
            _marker: std::marker::PhantomData,
        }
    }

    fn record(&mut self, iters: u64, elapsed: Duration) {
        self.iters += iters;
        self.elapsed += elapsed;
    }

    /// Picks an iteration count that fills the measurement budget based
    /// on a one-shot probe of `probe_ns` nanoseconds per iteration.
    fn budget_iters(probe_ns: u128) -> u64 {
        let per = probe_ns.max(1);
        ((MEASURE_BUDGET.as_nanos() / per) as u64).clamp(1, MAX_ITERS)
    }

    /// Times `routine` in a loop.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let t = Instant::now();
        black_box(routine());
        let n = Self::budget_iters(t.elapsed().as_nanos());
        let t = Instant::now();
        for _ in 0..n {
            black_box(routine());
        }
        self.record(n, t.elapsed());
    }

    /// Times `routine`, dropping its (possibly expensive) output outside
    /// the measurement.
    pub fn iter_with_large_drop<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let t = Instant::now();
        let first = routine();
        let probe = t.elapsed();
        drop(first);
        let n = Self::budget_iters(probe.as_nanos());
        let mut keep = Vec::with_capacity(n.min(4096) as usize);
        let t = Instant::now();
        for _ in 0..n {
            keep.push(routine());
            if keep.len() == keep.capacity() {
                // pause the clock conceptually: dropping is unavoidable,
                // but bounded batches keep memory flat
                keep.clear();
            }
        }
        self.record(n, t.elapsed());
        drop(keep);
    }

    /// Runs `setup` untimed before each timed `routine` call.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let t = Instant::now();
        black_box(routine(input));
        let n = Self::budget_iters(t.elapsed().as_nanos()).min(10_000);
        let mut total = Duration::ZERO;
        for _ in 0..n {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            total += t.elapsed();
        }
        self.record(n, total);
    }

    /// Full control: the closure receives an iteration count and returns
    /// the time those iterations took.
    pub fn iter_custom<R: FnMut(u64) -> Duration>(&mut self, mut routine: R) {
        let probe = routine(1);
        let n = Self::budget_iters(probe.as_nanos());
        let elapsed = routine(n);
        self.record(n, elapsed);
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    fn run<F: FnOnce(&mut Bencher<'_>)>(&mut self, label: String, f: F) {
        let mut b = Bencher::new();
        f(&mut b);
        let mean = b.elapsed.as_nanos() as f64 / b.iters.max(1) as f64;
        println!(
            "{}/{label}: {mean:.1} ns/iter ({} iters)",
            self.name, b.iters
        );
    }

    /// Benchmarks a routine under `id`.
    pub fn bench_function<I: std::fmt::Display, F: FnMut(&mut Bencher<'_>)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        self.run(id.to_string(), &mut f);
        self
    }

    /// Benchmarks a routine that borrows an input value.
    pub fn bench_with_input<I, D, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        D: Sized,
        F: FnMut(&mut Bencher<'_>, &I) -> D,
    {
        self.run(id.to_string(), |b| {
            f(b, input);
        });
        self
    }

    /// Accepted for API compatibility; the shim has no sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the budget is fixed.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Ends the group (no-op beyond the name scope).
    pub fn finish(self) {}
}

/// The top-level driver handed to each bench target function.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Benchmarks a routine outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(&mut self, id: &str, f: F) -> &mut Self {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }

    /// Accepted for API compatibility.
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// Declares a group function that runs each target.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
