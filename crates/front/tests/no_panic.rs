//! The front end must never panic: any byte soup yields `Ok` or a typed
//! [`tcc_front::FrontError`].

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn random_ascii_never_panics(src in "[ -~\\n\\t]{0,200}") {
        let _ = tcc_front::compile_unit(&src);
    }

    #[test]
    fn random_token_soup_never_panics(
        toks in prop::collection::vec(
            prop::sample::select(vec![
                "int", "void", "cspec", "vspec", "`", "$", "compile", "local",
                "param", "label", "jump", "push", "apply", "push_init",
                "(", ")", "{", "}", "[", "]", ";", ",", "=", "+", "*", "x",
                "f", "1", "42", "\"s\"", "for", "if", "return", "struct",
            ]),
            0..60,
        )
    ) {
        let src = toks.join(" ");
        let _ = tcc_front::compile_unit(&src);
    }

    #[test]
    fn truncations_of_valid_programs_never_panic(cut in 0usize..400) {
        let src = r#"
            struct s { int a; int b; };
            int g(int x) { return x * 2; }
            int f(int n) {
                int cspec c = `($n + g(n));
                int (*fp)(void) = compile(c, int);
                return (*fp)();
            }
        "#;
        let cut = cut.min(src.len());
        // only cut at char boundaries (ASCII source, always true)
        let _ = tcc_front::compile_unit(&src[..cut]);
    }
}
