//! Tokens of the `C language (ANSI C subset + the tick extensions).

use std::fmt;

/// A lexical token.
#[derive(Clone, Debug, PartialEq)]
pub enum Tok {
    /// Identifier.
    Ident(String),
    /// Integer literal (value, and whether it was suffixed `L`).
    Int(i64, bool),
    /// Floating literal.
    Float(f64),
    /// String literal (unescaped bytes).
    Str(Vec<u8>),
    /// Character literal.
    Char(u8),
    /// Keyword.
    Kw(Kw),
    /// Punctuation / operator.
    P(P),
    /// End of input.
    Eof,
}

/// Keywords, including the `C extensions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Kw {
    Void,
    Char,
    Short,
    Int,
    Long,
    Unsigned,
    Signed,
    Float,
    Double,
    Struct,
    Return,
    If,
    Else,
    While,
    Do,
    For,
    Break,
    Continue,
    Switch,
    Case,
    Default,
    Goto,
    Sizeof,
    // `C extensions
    Cspec,
    Vspec,
    Compile,
    Local,
    Param,
}

/// Punctuation and operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum P {
    LBrace,
    RBrace,
    LParen,
    RParen,
    LBracket,
    RBracket,
    Semi,
    Comma,
    Dot,
    Arrow,
    Question,
    Colon,
    Inc,
    Dec,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Amp,
    Pipe,
    Caret,
    Tilde,
    Bang,
    Shl,
    Shr,
    Lt,
    Gt,
    Le,
    Ge,
    EqEq,
    Ne,
    AmpAmp,
    PipePipe,
    Assign,
    PlusEq,
    MinusEq,
    StarEq,
    SlashEq,
    PercentEq,
    ShlEq,
    ShrEq,
    AmpEq,
    PipeEq,
    CaretEq,
    Backquote,
    Dollar,
    At,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::Int(v, _) => write!(f, "{v}"),
            Tok::Float(v) => write!(f, "{v}"),
            Tok::Str(_) => write!(f, "string literal"),
            Tok::Char(c) => write!(f, "'{}'", *c as char),
            Tok::Kw(k) => write!(f, "{k:?}"),
            Tok::P(p) => write!(f, "{p:?}"),
            Tok::Eof => write!(f, "end of input"),
        }
    }
}

/// A token plus its source line (for diagnostics).
#[derive(Clone, Debug, PartialEq)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// 1-based source line.
    pub line: u32,
}

/// Looks up a keyword by spelling.
pub fn keyword(s: &str) -> Option<Kw> {
    Some(match s {
        "void" => Kw::Void,
        "char" => Kw::Char,
        "short" => Kw::Short,
        "int" => Kw::Int,
        "long" => Kw::Long,
        "unsigned" => Kw::Unsigned,
        "signed" => Kw::Signed,
        "float" => Kw::Float,
        "double" => Kw::Double,
        "struct" => Kw::Struct,
        "return" => Kw::Return,
        "if" => Kw::If,
        "else" => Kw::Else,
        "while" => Kw::While,
        "do" => Kw::Do,
        "for" => Kw::For,
        "break" => Kw::Break,
        "continue" => Kw::Continue,
        "switch" => Kw::Switch,
        "case" => Kw::Case,
        "default" => Kw::Default,
        "goto" => Kw::Goto,
        "sizeof" => Kw::Sizeof,
        "cspec" => Kw::Cspec,
        "vspec" => Kw::Vspec,
        "compile" => Kw::Compile,
        "local" => Kw::Local,
        "param" => Kw::Param,
        _ => return None,
    })
}
