//! Front-end diagnostics.

use std::fmt;

/// A lexing, parsing, or semantic error with its source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrontError {
    /// Lexical error.
    Lex {
        /// 1-based source line.
        line: u32,
        /// Diagnostic.
        msg: String,
    },
    /// Syntax error.
    Parse {
        /// 1-based source line.
        line: u32,
        /// Diagnostic.
        msg: String,
    },
    /// Type or scope error.
    Sema {
        /// 1-based source line.
        line: u32,
        /// Diagnostic.
        msg: String,
    },
}

impl fmt::Display for FrontError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrontError::Lex { line, msg } => write!(f, "lex error at line {line}: {msg}"),
            FrontError::Parse { line, msg } => write!(f, "parse error at line {line}: {msg}"),
            FrontError::Sema { line, msg } => write!(f, "semantic error at line {line}: {msg}"),
        }
    }
}

impl std::error::Error for FrontError {}
