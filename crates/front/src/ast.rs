//! Abstract syntax, shared between the parser (which produces unresolved
//! names) and the semantic analyzer (which resolves them in place and
//! annotates types).

use crate::types::{FuncSig, StructDef, Type};

/// Built-in functions provided by the `C run-time system.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Builtin {
    /// `void puts(char *)`.
    Puts,
    /// `void puti(int)`.
    Puti,
    /// `void putd(double)`.
    Putd,
    /// `void putchar(int)`.
    Putchar,
    /// `void printf(char *fmt, ...)` — up to five scalar arguments,
    /// `%d`/`%ld`/`%u`/`%x`/`%c`/`%s` conversions.
    Printf,
    /// `void *malloc(long)`.
    Malloc,
    /// `void abort(void)`.
    Abort,
}

impl Builtin {
    /// Looks up a builtin by source name.
    pub fn by_name(name: &str) -> Option<Builtin> {
        Some(match name {
            "puts" => Builtin::Puts,
            "puti" => Builtin::Puti,
            "putd" => Builtin::Putd,
            "putchar" => Builtin::Putchar,
            "printf" => Builtin::Printf,
            "malloc" => Builtin::Malloc,
            "abort" => Builtin::Abort,
            _ => return None,
        })
    }
}

/// A resolved variable reference.
#[derive(Clone, Debug, PartialEq)]
pub enum VarRef {
    /// Global by index.
    Global(usize),
    /// Function local (parameters come first) by index.
    Local(usize),
    /// Defined function by index.
    Func(usize),
    /// Run-time library builtin.
    Builtin(Builtin),
    /// Inside a tick body: free variable capture `i` (address in the
    /// closure).
    TickFv(usize),
    /// Inside a tick body: `$`-bound run-time constant capture `i`.
    TickRtc(usize),
    /// Inside a tick body: composed cspec capture `i`.
    TickCspec(usize),
    /// Inside a tick body: composed vspec capture `i`.
    TickVspec(usize),
    /// Inside a tick body: dynamic local `i` of the tick.
    TickLocal(usize),
}

/// Unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnaryOp {
    /// `-`.
    Neg,
    /// `~`.
    BitNot,
    /// `!`.
    LogNot,
    /// `*`.
    Deref,
    /// `&`.
    Addr,
}

/// Binary operators (logical `&&`/`||` included; they short-circuit).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum BinaryOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Shl,
    Shr,
    BitAnd,
    BitOr,
    BitXor,
    Lt,
    Gt,
    Le,
    Ge,
    Eq,
    Ne,
    LogAnd,
    LogOr,
}

/// An expression: kind, type annotation (filled by sema), source line.
#[derive(Clone, Debug, PartialEq)]
pub struct Expr {
    /// What the expression is.
    pub kind: ExprKind,
    /// Its type (meaningless before sema).
    pub ty: Type,
    /// Source line.
    pub line: u32,
}

impl Expr {
    /// A fresh expression with placeholder type.
    pub fn new(kind: ExprKind, line: u32) -> Expr {
        Expr {
            kind,
            ty: Type::Void,
            line,
        }
    }
}

/// Expression kinds.
#[derive(Clone, Debug, PartialEq)]
pub enum ExprKind {
    /// Integer literal.
    IntLit(i64),
    /// Floating literal.
    FloatLit(f64),
    /// String literal (sema interns it as an anonymous global).
    StrLit(Vec<u8>),
    /// Unresolved name (parser output only).
    Ident(String),
    /// Resolved variable (sema output).
    Var(VarRef),
    /// Unary operation.
    Un(UnaryOp, Box<Expr>),
    /// Pre-increment/decrement (`true` = increment).
    PreIncDec(Box<Expr>, bool),
    /// Post-increment/decrement (`true` = increment).
    PostIncDec(Box<Expr>, bool),
    /// Binary operation.
    Bin(BinaryOp, Box<Expr>, Box<Expr>),
    /// Assignment, possibly compound (`a op= b`).
    Assign(Option<BinaryOp>, Box<Expr>, Box<Expr>),
    /// Function call.
    Call(Box<Expr>, Vec<Expr>),
    /// Array indexing.
    Index(Box<Expr>, Box<Expr>),
    /// Member access; the `u64` is the byte offset (filled by sema),
    /// the `bool` is `->`.
    Member(Box<Expr>, String, bool, u64),
    /// Cast.
    Cast(Type, Box<Expr>),
    /// Conditional `?:`.
    Cond(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Comma operator.
    Comma(Box<Expr>, Box<Expr>),
    /// `sizeof(type)` (sema folds to a literal).
    SizeofT(Type),
    /// `sizeof expr`.
    SizeofE(Box<Expr>),
    /// A tick expression before sema: the raw body.
    TickRaw(Box<TickBody>),
    /// A tick expression after sema: index into [`Program::ticks`].
    Tick(usize),
    /// `$expr` (only valid inside a tick body; sema rewrites to
    /// [`VarRef::TickRtc`]).
    Dollar(Box<Expr>),
    /// `compile(cspec, type)`.
    CompileExpr(Box<Expr>, Type),
    /// `local(type)` — create a dynamic local vspec.
    LocalForm(Type),
    /// `param(type, index)` — create a dynamic parameter vspec.
    ParamForm(Type, Box<Expr>),
    /// `label()` — create a dynamic label object (a `void cspec` that,
    /// when spliced into a tick body, marks a position).
    LabelForm,
    /// `jump(l)` — emit a jump to the dynamic label `l` (tick bodies
    /// only).
    JumpForm(Box<Expr>),
    /// `push_init()` — create a dynamic argument list (specification
    /// time).
    ArglistNew,
    /// `push(list, cspec)` — append an argument to a dynamic call
    /// (specification time).
    ArglistPush(Box<Expr>, Box<Expr>),
    /// `apply(f, list)` — emit a call to `f` with the list's composed
    /// arguments (tick bodies only; result type `int`).
    Apply(Box<Expr>, Box<Expr>),
}

/// The body of a tick expression.
#[derive(Clone, Debug, PartialEq)]
pub enum TickBody {
    /// `` `expr `` — evaluation type is the expression's type.
    Expr(Expr),
    /// `` `{ ... } `` — evaluation type `void`.
    Block(Vec<Stmt>),
}

/// A variable declared in a declaration statement.
#[derive(Clone, Debug, PartialEq)]
pub struct DeclItem {
    /// Name.
    pub name: String,
    /// Declared type.
    pub ty: Type,
    /// Initializer.
    pub init: Option<Init>,
    /// Resolved local index (sema).
    pub local_id: usize,
}

/// An initializer.
#[derive(Clone, Debug, PartialEq)]
pub enum Init {
    /// Scalar initializer.
    Expr(Expr),
    /// Brace-enclosed list (arrays).
    List(Vec<Init>),
}

/// An item inside a `switch` body.
#[derive(Clone, Debug, PartialEq)]
pub enum SwitchItem {
    /// `case N:`.
    Case(i64),
    /// `default:`.
    Default,
    /// An ordinary statement (fallthrough preserved).
    Stmt(Stmt),
}

/// Statements.
#[derive(Clone, Debug, PartialEq)]
pub enum Stmt {
    /// Expression statement.
    Expr(Expr),
    /// Declaration.
    Decl(Vec<DeclItem>),
    /// `if`.
    If(Expr, Box<Stmt>, Option<Box<Stmt>>),
    /// `while`.
    While(Expr, Box<Stmt>),
    /// `do … while`.
    DoWhile(Box<Stmt>, Expr),
    /// `for(init; cond; step) body` — `init` may be an expression or a
    /// declaration.
    For(Option<Box<Stmt>>, Option<Expr>, Option<Expr>, Box<Stmt>),
    /// `return`.
    Return(Option<Expr>),
    /// `break`.
    Break,
    /// `continue`.
    Continue,
    /// Compound statement.
    Block(Vec<Stmt>),
    /// `switch` with a flat body (fallthrough works).
    Switch(Expr, Vec<SwitchItem>),
    /// `goto label`.
    Goto(String),
    /// `label: stmt`.
    Labeled(String, Box<Stmt>),
    /// `;`.
    Empty,
}

/// A local variable (parameters first).
#[derive(Clone, Debug, PartialEq)]
pub struct LocalDef {
    /// Name (for diagnostics).
    pub name: String,
    /// Type.
    pub ty: Type,
    /// True if the variable's address is taken — by `&`, by array/struct
    /// use, or by being captured as a tick free variable; such locals
    /// must live in memory.
    pub addr_taken: bool,
}

/// A capture in a tick expression's closure (paper §4.3: run-time
/// constants, free variable addresses, nested cspec/vspec pointers).
#[derive(Clone, Debug, PartialEq)]
pub struct Capture {
    /// What is captured.
    pub kind: CaptureKind,
    /// The captured value's type (the evaluation type for splices).
    pub ty: Type,
}

/// The kinds of closure captures.
#[derive(Clone, Debug, PartialEq)]
pub enum CaptureKind {
    /// A `$`-bound run-time constant: the expression is evaluated in the
    /// enclosing scope at specification time.
    Dollar(Expr),
    /// A free variable of the enclosing function: its *address* is
    /// captured.
    FreeVar(usize),
    /// A composed cspec: the enclosing-scope expression yields a closure
    /// pointer.
    Cspec(Expr),
    /// A composed vspec: the enclosing-scope expression yields a vspec
    /// object pointer.
    Vspec(Expr),
}

/// A tick expression hoisted out of its function by sema.
#[derive(Clone, Debug, PartialEq)]
pub struct TickDef {
    /// Evaluation type (`void` for statement ticks).
    pub eval_ty: Type,
    /// The body, with inner references rewritten to tick-relative
    /// [`VarRef`]s.
    pub body: TickBody,
    /// Closure captures in field order.
    pub captures: Vec<Capture>,
    /// Locals declared inside the tick body (dynamic locals).
    pub dyn_locals: Vec<LocalDef>,
    /// The function the tick appears in.
    pub owner: usize,
}

/// A global variable.
#[derive(Clone, Debug, PartialEq)]
pub struct GlobalDef {
    /// Name.
    pub name: String,
    /// Type.
    pub ty: Type,
    /// Initializer (must be constant; checked by sema).
    pub init: Option<Init>,
}

/// A function definition.
#[derive(Clone, Debug, PartialEq)]
pub struct FuncDef {
    /// Name.
    pub name: String,
    /// Signature.
    pub sig: FuncSig,
    /// Number of parameters (the first `nparams` locals).
    pub nparams: usize,
    /// All locals, parameters first.
    pub locals: Vec<LocalDef>,
    /// Body.
    pub body: Vec<Stmt>,
}

/// A fully analyzed program.
#[derive(Clone, Debug, Default)]
pub struct Program {
    /// Struct table.
    pub structs: Vec<StructDef>,
    /// Globals.
    pub globals: Vec<GlobalDef>,
    /// Functions.
    pub funcs: Vec<FuncDef>,
    /// Tick expressions (dynamic code sites).
    pub ticks: Vec<TickDef>,
}

impl Program {
    /// Finds a function index by name.
    pub fn func(&self, name: &str) -> Option<usize> {
        self.funcs.iter().position(|f| f.name == name)
    }
}
