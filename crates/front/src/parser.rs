//! Recursive-descent parser for the `C language.
//!
//! Produces an unresolved AST (names as [`ExprKind::Ident`], tick bodies
//! as [`ExprKind::TickRaw`]) plus the struct table; the semantic analyzer
//! finishes the job. Structs must be defined before use (self-referential
//! pointer fields are fine).

use crate::ast::*;
use crate::error::FrontError;
use crate::lexer::lex;
use crate::token::{Kw, Spanned, Tok, P};
use crate::types::{FuncSig, StructDef, Type};

/// A parsed translation unit (pre-sema).
#[derive(Clone, Debug, Default)]
pub struct ParsedUnit {
    /// Struct definitions with computed layout.
    pub structs: Vec<StructDef>,
    /// Global declarations in order.
    pub globals: Vec<DeclItem>,
    /// Function definitions.
    pub funcs: Vec<RawFunc>,
}

/// A function definition before semantic analysis.
#[derive(Clone, Debug, PartialEq)]
pub struct RawFunc {
    /// Name.
    pub name: String,
    /// Return type.
    pub ret: Type,
    /// Parameters.
    pub params: Vec<(String, Type)>,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// Source line of the definition.
    pub line: u32,
}

/// Parses a translation unit.
///
/// # Errors
///
/// Returns the first lexical or syntax error.
pub fn parse(src: &str) -> Result<ParsedUnit, FrontError> {
    let toks = lex(src)?;
    let mut p = Parser {
        toks,
        pos: 0,
        unit: ParsedUnit::default(),
    };
    p.unit()?;
    Ok(p.unit)
}

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
    unit: ParsedUnit,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn peek2(&self) -> &Tok {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)].tok
    }

    fn line(&self) -> u32 {
        self.toks[self.pos].line
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, msg: impl Into<String>) -> FrontError {
        FrontError::Parse {
            line: self.line(),
            msg: msg.into(),
        }
    }

    fn expect_p(&mut self, p: P) -> Result<(), FrontError> {
        if self.peek() == &Tok::P(p) {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected {p:?}, found {}", self.peek())))
        }
    }

    fn eat_p(&mut self, p: P) -> bool {
        if self.peek() == &Tok::P(p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, k: Kw) -> bool {
        if self.peek() == &Tok::Kw(k) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self) -> Result<String, FrontError> {
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            t => Err(self.err(format!("expected identifier, found {t}"))),
        }
    }

    // ---- types -----------------------------------------------------------

    fn starts_type(&self) -> bool {
        matches!(
            self.peek(),
            Tok::Kw(
                Kw::Void
                    | Kw::Char
                    | Kw::Short
                    | Kw::Int
                    | Kw::Long
                    | Kw::Unsigned
                    | Kw::Signed
                    | Kw::Float
                    | Kw::Double
                    | Kw::Struct
            )
        )
    }

    fn base_type(&mut self) -> Result<Type, FrontError> {
        if self.eat_kw(Kw::Struct) {
            let name = self.expect_ident()?;
            if self.peek() == &Tok::P(P::LBrace) {
                return self.struct_def(name);
            }
            let idx = self
                .unit
                .structs
                .iter()
                .position(|s| s.name == name)
                .ok_or_else(|| self.err(format!("unknown struct {name}")))?;
            return Ok(Type::Struct(idx));
        }
        if self.eat_kw(Kw::Unsigned) {
            if self.eat_kw(Kw::Char) {
                return Ok(Type::UChar);
            }
            if self.eat_kw(Kw::Short) {
                return Ok(Type::UShort);
            }
            if self.eat_kw(Kw::Long) {
                return Ok(Type::ULong);
            }
            self.eat_kw(Kw::Int);
            return Ok(Type::UInt);
        }
        if self.eat_kw(Kw::Signed) {
            if self.eat_kw(Kw::Char) {
                return Ok(Type::Char);
            }
            if self.eat_kw(Kw::Short) {
                return Ok(Type::Short);
            }
            if self.eat_kw(Kw::Long) {
                return Ok(Type::Long);
            }
            self.eat_kw(Kw::Int);
            return Ok(Type::Int);
        }
        if self.eat_kw(Kw::Void) {
            return Ok(Type::Void);
        }
        if self.eat_kw(Kw::Char) {
            return Ok(Type::Char);
        }
        if self.eat_kw(Kw::Short) {
            return Ok(Type::Short);
        }
        if self.eat_kw(Kw::Int) {
            return Ok(Type::Int);
        }
        if self.eat_kw(Kw::Long) {
            return Ok(Type::Long);
        }
        if self.eat_kw(Kw::Float) || self.eat_kw(Kw::Double) {
            return Ok(Type::Double);
        }
        Err(self.err(format!("expected a type, found {}", self.peek())))
    }

    fn struct_def(&mut self, name: String) -> Result<Type, FrontError> {
        self.expect_p(P::LBrace)?;
        // Register the name first so self-referential pointers resolve.
        let idx = self.unit.structs.len();
        self.unit.structs.push(StructDef {
            name: name.clone(),
            fields: Vec::new(),
            size: 0,
            align: 1,
        });
        let mut fields = Vec::new();
        while !self.eat_p(P::RBrace) {
            let base = self.base_type()?;
            loop {
                let (fname, fty) = self.declarator(base.clone())?;
                fields.push((fname, fty));
                if !self.eat_p(P::Comma) {
                    break;
                }
            }
            self.expect_p(P::Semi)?;
        }
        let laid = StructDef::layout(name, fields, &self.unit.structs);
        self.unit.structs[idx] = laid;
        Ok(Type::Struct(idx))
    }

    /// Parses a declarator against `base`: pointer stars, optional
    /// `cspec`/`vspec`, then a name with array suffixes, or the function
    /// pointer form `(*name)(params)`.
    fn declarator(&mut self, base: Type) -> Result<(String, Type), FrontError> {
        let mut ty = base;
        while self.eat_p(P::Star) {
            ty = Type::Ptr(Box::new(ty));
        }
        if self.eat_kw(Kw::Cspec) {
            ty = Type::Cspec(Box::new(ty));
        } else if self.eat_kw(Kw::Vspec) {
            ty = Type::Vspec(Box::new(ty));
        }
        // Function pointer: (*name)(params)
        if self.peek() == &Tok::P(P::LParen) && self.peek2() == &Tok::P(P::Star) {
            self.bump(); // (
            self.bump(); // *
            let name = self.expect_ident()?;
            self.expect_p(P::RParen)?;
            let params = self.param_types()?;
            let sig = FuncSig { ret: ty, params };
            return Ok((name, Type::Ptr(Box::new(Type::Func(Box::new(sig))))));
        }
        let name = self.expect_ident()?;
        let mut dims = Vec::new();
        while self.eat_p(P::LBracket) {
            let n = match self.bump() {
                Tok::Int(v, _) if v >= 0 => v as u64,
                t => return Err(self.err(format!("expected array size, found {t}"))),
            };
            self.expect_p(P::RBracket)?;
            dims.push(n);
        }
        for &n in dims.iter().rev() {
            ty = Type::Array(Box::new(ty), n);
        }
        Ok((name, ty))
    }

    /// Parses a parenthesized parameter type list (types only).
    fn param_types(&mut self) -> Result<Vec<Type>, FrontError> {
        Ok(self.params()?.into_iter().map(|(_, t)| t).collect())
    }

    /// Parses `(T name, …)`, allowing `(void)` and abstract names.
    fn params(&mut self) -> Result<Vec<(String, Type)>, FrontError> {
        self.expect_p(P::LParen)?;
        let mut out = Vec::new();
        if self.eat_p(P::RParen) {
            return Ok(out);
        }
        if self.peek() == &Tok::Kw(Kw::Void) && self.peek2() == &Tok::P(P::RParen) {
            self.bump();
            self.bump();
            return Ok(out);
        }
        loop {
            let base = self.base_type()?;
            let (name, ty) = self.param_declarator(base)?;
            out.push((name, ty.decay()));
            if !self.eat_p(P::Comma) {
                break;
            }
        }
        self.expect_p(P::RParen)?;
        Ok(out)
    }

    /// Parameter declarator: like [`Parser::declarator`] but the name is
    /// optional (abstract declarators in prototypes).
    fn param_declarator(&mut self, base: Type) -> Result<(String, Type), FrontError> {
        let mut ty = base;
        while self.eat_p(P::Star) {
            ty = Type::Ptr(Box::new(ty));
        }
        if self.eat_kw(Kw::Cspec) {
            ty = Type::Cspec(Box::new(ty));
        } else if self.eat_kw(Kw::Vspec) {
            ty = Type::Vspec(Box::new(ty));
        }
        if self.peek() == &Tok::P(P::LParen) {
            // (*name)(params) or (*)(params)
            self.bump();
            self.expect_p(P::Star)?;
            let name = match self.peek() {
                Tok::Ident(_) => self.expect_ident()?,
                _ => String::new(),
            };
            self.expect_p(P::RParen)?;
            let params = self.param_types()?;
            let sig = FuncSig { ret: ty, params };
            return Ok((name, Type::Ptr(Box::new(Type::Func(Box::new(sig))))));
        }
        let name = match self.peek() {
            Tok::Ident(_) => self.expect_ident()?,
            _ => String::new(),
        };
        let mut dims = 0;
        while self.eat_p(P::LBracket) {
            if let Tok::Int(_, _) = self.peek() {
                self.bump();
            }
            self.expect_p(P::RBracket)?;
            dims += 1;
        }
        for _ in 0..dims {
            ty = Type::Ptr(Box::new(ty));
        }
        Ok((name, ty))
    }

    /// A full (possibly abstract) type, for casts, `sizeof`, `compile`,
    /// `local`, `param`.
    fn type_name(&mut self) -> Result<Type, FrontError> {
        let base = self.base_type()?;
        let mut ty = base;
        while self.eat_p(P::Star) {
            ty = Type::Ptr(Box::new(ty));
        }
        if self.eat_kw(Kw::Cspec) {
            ty = Type::Cspec(Box::new(ty));
        } else if self.eat_kw(Kw::Vspec) {
            ty = Type::Vspec(Box::new(ty));
        }
        if self.peek() == &Tok::P(P::LParen) && self.peek2() == &Tok::P(P::Star) {
            self.bump();
            self.bump();
            self.expect_p(P::RParen)?;
            let params = self.param_types()?;
            ty = Type::Ptr(Box::new(Type::Func(Box::new(FuncSig { ret: ty, params }))));
        }
        Ok(ty)
    }

    // ---- top level -------------------------------------------------------

    fn unit(&mut self) -> Result<(), FrontError> {
        while self.peek() != &Tok::Eof {
            let line = self.line();
            let base = self.base_type()?;
            // Bare struct definition: `struct S { ... };`
            if matches!(base, Type::Struct(_)) && self.eat_p(P::Semi) {
                continue;
            }
            let (name, ty) = self.declarator(base.clone())?;
            if self.peek() == &Tok::P(P::LParen) && !matches!(ty, Type::Ptr(_)) {
                // Function definition or prototype.
                let params = self.params()?;
                if self.eat_p(P::Semi) {
                    continue; // prototype: ignored (defs carry the truth)
                }
                let body = self.block()?;
                self.unit.funcs.push(RawFunc {
                    name,
                    ret: ty,
                    params,
                    body,
                    line,
                });
                continue;
            }
            // Global declaration list.
            let mut items = Vec::new();
            let init = if self.eat_p(P::Assign) {
                Some(self.initializer()?)
            } else {
                None
            };
            items.push(DeclItem {
                name,
                ty,
                init,
                local_id: usize::MAX,
            });
            while self.eat_p(P::Comma) {
                let (n, t) = self.declarator(base.clone())?;
                let init = if self.eat_p(P::Assign) {
                    Some(self.initializer()?)
                } else {
                    None
                };
                items.push(DeclItem {
                    name: n,
                    ty: t,
                    init,
                    local_id: usize::MAX,
                });
            }
            self.expect_p(P::Semi)?;
            self.unit.globals.extend(items);
        }
        Ok(())
    }

    fn initializer(&mut self) -> Result<Init, FrontError> {
        if self.eat_p(P::LBrace) {
            let mut list = Vec::new();
            if !self.eat_p(P::RBrace) {
                loop {
                    list.push(self.initializer()?);
                    if !self.eat_p(P::Comma) {
                        break;
                    }
                    if self.peek() == &Tok::P(P::RBrace) {
                        break; // trailing comma
                    }
                }
                self.expect_p(P::RBrace)?;
            }
            Ok(Init::List(list))
        } else {
            Ok(Init::Expr(self.assign_expr()?))
        }
    }

    // ---- statements ------------------------------------------------------

    fn block(&mut self) -> Result<Vec<Stmt>, FrontError> {
        self.expect_p(P::LBrace)?;
        let mut out = Vec::new();
        while !self.eat_p(P::RBrace) {
            out.push(self.stmt()?);
        }
        Ok(out)
    }

    fn decl_stmt(&mut self) -> Result<Stmt, FrontError> {
        let base = self.base_type()?;
        let mut items = Vec::new();
        loop {
            let (name, ty) = self.declarator(base.clone())?;
            let init = if self.eat_p(P::Assign) {
                Some(self.initializer()?)
            } else {
                None
            };
            items.push(DeclItem {
                name,
                ty,
                init,
                local_id: usize::MAX,
            });
            if !self.eat_p(P::Comma) {
                break;
            }
        }
        self.expect_p(P::Semi)?;
        Ok(Stmt::Decl(items))
    }

    fn stmt(&mut self) -> Result<Stmt, FrontError> {
        if self.starts_type() {
            return self.decl_stmt();
        }
        match self.peek().clone() {
            Tok::P(P::LBrace) => Ok(Stmt::Block(self.block()?)),
            Tok::P(P::Semi) => {
                self.bump();
                Ok(Stmt::Empty)
            }
            Tok::Kw(Kw::If) => {
                self.bump();
                self.expect_p(P::LParen)?;
                let c = self.expr()?;
                self.expect_p(P::RParen)?;
                let t = Box::new(self.stmt()?);
                let e = if self.eat_kw(Kw::Else) {
                    Some(Box::new(self.stmt()?))
                } else {
                    None
                };
                Ok(Stmt::If(c, t, e))
            }
            Tok::Kw(Kw::While) => {
                self.bump();
                self.expect_p(P::LParen)?;
                let c = self.expr()?;
                self.expect_p(P::RParen)?;
                Ok(Stmt::While(c, Box::new(self.stmt()?)))
            }
            Tok::Kw(Kw::Do) => {
                self.bump();
                let b = Box::new(self.stmt()?);
                if !self.eat_kw(Kw::While) {
                    return Err(self.err("expected while after do body"));
                }
                self.expect_p(P::LParen)?;
                let c = self.expr()?;
                self.expect_p(P::RParen)?;
                self.expect_p(P::Semi)?;
                Ok(Stmt::DoWhile(b, c))
            }
            Tok::Kw(Kw::For) => {
                self.bump();
                self.expect_p(P::LParen)?;
                let init = if self.eat_p(P::Semi) {
                    None
                } else if self.starts_type() {
                    Some(Box::new(self.decl_stmt()?))
                } else {
                    let e = self.expr()?;
                    self.expect_p(P::Semi)?;
                    Some(Box::new(Stmt::Expr(e)))
                };
                let cond = if self.peek() == &Tok::P(P::Semi) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect_p(P::Semi)?;
                let step = if self.peek() == &Tok::P(P::RParen) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect_p(P::RParen)?;
                Ok(Stmt::For(init, cond, step, Box::new(self.stmt()?)))
            }
            Tok::Kw(Kw::Return) => {
                self.bump();
                if self.eat_p(P::Semi) {
                    Ok(Stmt::Return(None))
                } else {
                    let e = self.expr()?;
                    self.expect_p(P::Semi)?;
                    Ok(Stmt::Return(Some(e)))
                }
            }
            Tok::Kw(Kw::Break) => {
                self.bump();
                self.expect_p(P::Semi)?;
                Ok(Stmt::Break)
            }
            Tok::Kw(Kw::Continue) => {
                self.bump();
                self.expect_p(P::Semi)?;
                Ok(Stmt::Continue)
            }
            Tok::Kw(Kw::Goto) => {
                self.bump();
                let l = self.expect_ident()?;
                self.expect_p(P::Semi)?;
                Ok(Stmt::Goto(l))
            }
            Tok::Kw(Kw::Switch) => {
                self.bump();
                self.expect_p(P::LParen)?;
                let scrut = self.expr()?;
                self.expect_p(P::RParen)?;
                self.expect_p(P::LBrace)?;
                let mut items = Vec::new();
                while !self.eat_p(P::RBrace) {
                    if self.eat_kw(Kw::Case) {
                        let v = match self.bump() {
                            Tok::Int(v, _) => v,
                            Tok::Char(c) => c as i64,
                            Tok::P(P::Minus) => match self.bump() {
                                Tok::Int(v, _) => -v,
                                t => return Err(self.err(format!("bad case value {t}"))),
                            },
                            t => return Err(self.err(format!("bad case value {t}"))),
                        };
                        self.expect_p(P::Colon)?;
                        items.push(SwitchItem::Case(v));
                    } else if self.eat_kw(Kw::Default) {
                        self.expect_p(P::Colon)?;
                        items.push(SwitchItem::Default);
                    } else {
                        items.push(SwitchItem::Stmt(self.stmt()?));
                    }
                }
                Ok(Stmt::Switch(scrut, items))
            }
            Tok::Ident(name) if self.peek2() == &Tok::P(P::Colon) => {
                self.bump();
                self.bump();
                Ok(Stmt::Labeled(name, Box::new(self.stmt()?)))
            }
            _ => {
                let e = self.expr()?;
                self.expect_p(P::Semi)?;
                Ok(Stmt::Expr(e))
            }
        }
    }

    // ---- expressions -----------------------------------------------------

    fn expr(&mut self) -> Result<Expr, FrontError> {
        let line = self.line();
        let mut e = self.assign_expr()?;
        while self.eat_p(P::Comma) {
            let rhs = self.assign_expr()?;
            e = Expr::new(ExprKind::Comma(Box::new(e), Box::new(rhs)), line);
        }
        Ok(e)
    }

    fn assign_expr(&mut self) -> Result<Expr, FrontError> {
        let line = self.line();
        let lhs = self.cond_expr()?;
        let op = match self.peek() {
            Tok::P(P::Assign) => None,
            Tok::P(P::PlusEq) => Some(BinaryOp::Add),
            Tok::P(P::MinusEq) => Some(BinaryOp::Sub),
            Tok::P(P::StarEq) => Some(BinaryOp::Mul),
            Tok::P(P::SlashEq) => Some(BinaryOp::Div),
            Tok::P(P::PercentEq) => Some(BinaryOp::Rem),
            Tok::P(P::ShlEq) => Some(BinaryOp::Shl),
            Tok::P(P::ShrEq) => Some(BinaryOp::Shr),
            Tok::P(P::AmpEq) => Some(BinaryOp::BitAnd),
            Tok::P(P::PipeEq) => Some(BinaryOp::BitOr),
            Tok::P(P::CaretEq) => Some(BinaryOp::BitXor),
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.assign_expr()?;
        Ok(Expr::new(
            ExprKind::Assign(op, Box::new(lhs), Box::new(rhs)),
            line,
        ))
    }

    fn cond_expr(&mut self) -> Result<Expr, FrontError> {
        let line = self.line();
        let c = self.binary_expr(0)?;
        if self.eat_p(P::Question) {
            let t = self.expr()?;
            self.expect_p(P::Colon)?;
            let e = self.cond_expr()?;
            return Ok(Expr::new(
                ExprKind::Cond(Box::new(c), Box::new(t), Box::new(e)),
                line,
            ));
        }
        Ok(c)
    }

    fn bin_op_prec(&self) -> Option<(BinaryOp, u8)> {
        Some(match self.peek() {
            Tok::P(P::PipePipe) => (BinaryOp::LogOr, 1),
            Tok::P(P::AmpAmp) => (BinaryOp::LogAnd, 2),
            Tok::P(P::Pipe) => (BinaryOp::BitOr, 3),
            Tok::P(P::Caret) => (BinaryOp::BitXor, 4),
            Tok::P(P::Amp) => (BinaryOp::BitAnd, 5),
            Tok::P(P::EqEq) => (BinaryOp::Eq, 6),
            Tok::P(P::Ne) => (BinaryOp::Ne, 6),
            Tok::P(P::Lt) => (BinaryOp::Lt, 7),
            Tok::P(P::Gt) => (BinaryOp::Gt, 7),
            Tok::P(P::Le) => (BinaryOp::Le, 7),
            Tok::P(P::Ge) => (BinaryOp::Ge, 7),
            Tok::P(P::Shl) => (BinaryOp::Shl, 8),
            Tok::P(P::Shr) => (BinaryOp::Shr, 8),
            Tok::P(P::Plus) => (BinaryOp::Add, 9),
            Tok::P(P::Minus) => (BinaryOp::Sub, 9),
            Tok::P(P::Star) => (BinaryOp::Mul, 10),
            Tok::P(P::Slash) => (BinaryOp::Div, 10),
            Tok::P(P::Percent) => (BinaryOp::Rem, 10),
            _ => return None,
        })
    }

    fn binary_expr(&mut self, min_prec: u8) -> Result<Expr, FrontError> {
        let mut lhs = self.unary_expr()?;
        while let Some((op, prec)) = self.bin_op_prec() {
            if prec < min_prec {
                break;
            }
            let line = self.line();
            self.bump();
            let rhs = self.binary_expr(prec + 1)?;
            lhs = Expr::new(ExprKind::Bin(op, Box::new(lhs), Box::new(rhs)), line);
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, FrontError> {
        let line = self.line();
        match self.peek().clone() {
            Tok::P(P::Inc) => {
                self.bump();
                let e = self.unary_expr()?;
                Ok(Expr::new(ExprKind::PreIncDec(Box::new(e), true), line))
            }
            Tok::P(P::Dec) => {
                self.bump();
                let e = self.unary_expr()?;
                Ok(Expr::new(ExprKind::PreIncDec(Box::new(e), false), line))
            }
            Tok::P(P::Plus) => {
                self.bump();
                self.unary_expr()
            }
            Tok::P(P::Minus) => {
                self.bump();
                let e = self.unary_expr()?;
                Ok(Expr::new(ExprKind::Un(UnaryOp::Neg, Box::new(e)), line))
            }
            Tok::P(P::Tilde) => {
                self.bump();
                let e = self.unary_expr()?;
                Ok(Expr::new(ExprKind::Un(UnaryOp::BitNot, Box::new(e)), line))
            }
            Tok::P(P::Bang) => {
                self.bump();
                let e = self.unary_expr()?;
                Ok(Expr::new(ExprKind::Un(UnaryOp::LogNot, Box::new(e)), line))
            }
            Tok::P(P::Star) => {
                self.bump();
                let e = self.unary_expr()?;
                Ok(Expr::new(ExprKind::Un(UnaryOp::Deref, Box::new(e)), line))
            }
            Tok::P(P::Amp) => {
                self.bump();
                let e = self.unary_expr()?;
                Ok(Expr::new(ExprKind::Un(UnaryOp::Addr, Box::new(e)), line))
            }
            Tok::P(P::Backquote) => {
                self.bump();
                if self.peek() == &Tok::P(P::LBrace) {
                    let b = self.block()?;
                    Ok(Expr::new(
                        ExprKind::TickRaw(Box::new(TickBody::Block(b))),
                        line,
                    ))
                } else {
                    let e = self.unary_expr()?;
                    Ok(Expr::new(
                        ExprKind::TickRaw(Box::new(TickBody::Expr(e))),
                        line,
                    ))
                }
            }
            Tok::P(P::Dollar) => {
                self.bump();
                let e = self.unary_expr()?;
                Ok(Expr::new(ExprKind::Dollar(Box::new(e)), line))
            }
            Tok::P(P::At) => {
                // `@expr` is accepted as an explicit splice marker but is
                // semantically identical to mentioning the cspec.
                self.bump();
                self.unary_expr()
            }
            Tok::Kw(Kw::Sizeof) => {
                self.bump();
                if self.peek() == &Tok::P(P::LParen) && matches!(self.peek2(), Tok::Kw(_)) && {
                    // sizeof(type)
                    let save = self.pos;
                    self.bump();
                    let is_ty = self.starts_type();
                    self.pos = save;
                    is_ty
                } {
                    self.bump();
                    let ty = self.type_name()?;
                    self.expect_p(P::RParen)?;
                    Ok(Expr::new(ExprKind::SizeofT(ty), line))
                } else {
                    let e = self.unary_expr()?;
                    Ok(Expr::new(ExprKind::SizeofE(Box::new(e)), line))
                }
            }
            Tok::P(P::LParen) => {
                // Cast or parenthesized expression.
                let save = self.pos;
                self.bump();
                if self.starts_type() {
                    let ty = self.type_name()?;
                    self.expect_p(P::RParen)?;
                    let e = self.unary_expr()?;
                    return Ok(Expr::new(ExprKind::Cast(ty, Box::new(e)), line));
                }
                self.pos = save;
                self.postfix_expr()
            }
            _ => self.postfix_expr(),
        }
    }

    fn postfix_expr(&mut self) -> Result<Expr, FrontError> {
        let mut e = self.primary_expr()?;
        loop {
            let line = self.line();
            match self.peek() {
                Tok::P(P::LParen) => {
                    self.bump();
                    let mut args = Vec::new();
                    if !self.eat_p(P::RParen) {
                        loop {
                            args.push(self.assign_expr()?);
                            if !self.eat_p(P::Comma) {
                                break;
                            }
                        }
                        self.expect_p(P::RParen)?;
                    }
                    e = Expr::new(ExprKind::Call(Box::new(e), args), line);
                }
                Tok::P(P::LBracket) => {
                    self.bump();
                    let i = self.expr()?;
                    self.expect_p(P::RBracket)?;
                    e = Expr::new(ExprKind::Index(Box::new(e), Box::new(i)), line);
                }
                Tok::P(P::Dot) => {
                    self.bump();
                    let f = self.expect_ident()?;
                    e = Expr::new(ExprKind::Member(Box::new(e), f, false, 0), line);
                }
                Tok::P(P::Arrow) => {
                    self.bump();
                    let f = self.expect_ident()?;
                    e = Expr::new(ExprKind::Member(Box::new(e), f, true, 0), line);
                }
                Tok::P(P::Inc) => {
                    self.bump();
                    e = Expr::new(ExprKind::PostIncDec(Box::new(e), true), line);
                }
                Tok::P(P::Dec) => {
                    self.bump();
                    e = Expr::new(ExprKind::PostIncDec(Box::new(e), false), line);
                }
                _ => return Ok(e),
            }
        }
    }

    fn primary_expr(&mut self) -> Result<Expr, FrontError> {
        let line = self.line();
        match self.bump() {
            Tok::Int(v, long) => {
                let mut e = Expr::new(ExprKind::IntLit(v), line);
                if long {
                    e = Expr::new(ExprKind::Cast(Type::Long, Box::new(e)), line);
                }
                Ok(e)
            }
            Tok::Float(v) => Ok(Expr::new(ExprKind::FloatLit(v), line)),
            Tok::Char(c) => Ok(Expr::new(ExprKind::IntLit(c as i64), line)),
            Tok::Str(s) => Ok(Expr::new(ExprKind::StrLit(s), line)),
            Tok::Ident(name) => Ok(Expr::new(ExprKind::Ident(name), line)),
            Tok::P(P::LParen) => {
                let e = self.expr()?;
                self.expect_p(P::RParen)?;
                Ok(e)
            }
            Tok::Kw(Kw::Compile) => {
                self.expect_p(P::LParen)?;
                let c = self.assign_expr()?;
                self.expect_p(P::Comma)?;
                let ty = self.type_name()?;
                self.expect_p(P::RParen)?;
                Ok(Expr::new(ExprKind::CompileExpr(Box::new(c), ty), line))
            }
            Tok::Kw(Kw::Local) => {
                self.expect_p(P::LParen)?;
                let ty = self.type_name()?;
                self.expect_p(P::RParen)?;
                Ok(Expr::new(ExprKind::LocalForm(ty), line))
            }
            Tok::Kw(Kw::Param) => {
                self.expect_p(P::LParen)?;
                let ty = self.type_name()?;
                self.expect_p(P::Comma)?;
                let idx = self.assign_expr()?;
                self.expect_p(P::RParen)?;
                Ok(Expr::new(ExprKind::ParamForm(ty, Box::new(idx)), line))
            }
            t => Err(FrontError::Parse {
                line,
                msg: format!("expected an expression, found {t}"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_hello_world_tick() {
        let src = r#"
            void f(void) {
                void cspec hello = `{ printf("hello world\n"); };
                (*compile(hello, void))();
            }
        "#;
        let u = parse(src).unwrap();
        assert_eq!(u.funcs.len(), 1);
        assert_eq!(u.funcs[0].name, "f");
    }

    #[test]
    fn parses_cspec_composition() {
        let src = r#"
            int f(void) {
                int cspec c1 = `4, cspec c2 = `5;
                int cspec c = `($c1 + $c2);
                return 0;
            }
        "#;
        // NOTE: composition without $ also parses:
        let src2 = r#"
            int f(void) {
                int cspec c1 = `4, cspec c2 = `5;
                int cspec c = `(c1 + c2);
                return 0;
            }
        "#;
        parse(src).unwrap();
        parse(src2).unwrap();
    }

    #[test]
    fn parses_structs_arrays_funcptrs() {
        let src = r#"
            struct rec { int key; int a; int b; };
            struct rec table[100];
            int apply(int (*f)(int, int), int x, int y) { return f(x, y); }
            int deref_apply(int (*f)(int, int), int x) { return (*f)(x, x); }
        "#;
        let u = parse(src).unwrap();
        assert_eq!(u.structs.len(), 1);
        assert_eq!(u.structs[0].size, 12);
        assert_eq!(u.globals.len(), 1);
        assert_eq!(u.funcs.len(), 2);
        assert_eq!(u.funcs[0].params.len(), 3);
    }

    #[test]
    fn parses_control_flow_and_switch() {
        let src = r#"
            int f(int x) {
                int s = 0;
                for (s = 0; x > 0; x--) s += x;
                while (x < 10) { x++; if (x == 5) continue; }
                do { x--; } while (x);
                switch (s) {
                    case 1: s = 10; break;
                    case 2:
                    case 3: s = 20; break;
                    default: s = 30;
                }
                goto out;
                out: return s;
            }
        "#;
        parse(src).unwrap();
    }

    #[test]
    fn parses_dollar_binding_tightly_over_postfix() {
        let src = "int f(int k) { int cspec c = `($row[k] + 1); return 0; } int row[4];";
        let u = parse(src).unwrap();
        // $ applies to row[k] (postfix binds into the unary operand)
        let _ = u;
    }

    #[test]
    fn parses_special_forms() {
        let src = r#"
            void f(void) {
                int vspec v = local(int);
                int vspec p = param(int, 0);
                void cspec c = `{ v = p + 1; };
                compile(c, void);
            }
        "#;
        parse(src).unwrap();
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("int f( {").is_err());
        assert!(parse("int 3x;").is_err());
        assert!(parse("void f(void) { return 1 }").is_err());
    }

    #[test]
    fn parses_initializer_lists() {
        let src = "int a[4] = {1, 2, 3, 4}; double d = 1.5; char *s = \"hi\";";
        let u = parse(src).unwrap();
        assert_eq!(u.globals.len(), 3);
        assert!(matches!(u.globals[0].init, Some(Init::List(_))));
    }
}
