//! The `C type system: ANSI C scalar/aggregate types plus the `cspec` and
//! `vspec` type constructors with their *evaluation types* (paper §3:
//! "an evaluation type allows dynamic code to be statically typed,
//! enabling the compiler to do all type checking and some instruction
//! selection at static compile time").

use std::fmt;
use tcc_rt::ValKind;

/// A `C type.
#[derive(Clone, Debug, PartialEq)]
pub enum Type {
    /// `void`.
    Void,
    /// `char` (signed, 1 byte).
    Char,
    /// `unsigned char`.
    UChar,
    /// `short`.
    Short,
    /// `unsigned short`.
    UShort,
    /// `int` (32-bit).
    Int,
    /// `unsigned int`.
    UInt,
    /// `long` (64-bit).
    Long,
    /// `unsigned long`.
    ULong,
    /// `double` (also the representation of `float`).
    Double,
    /// Pointer.
    Ptr(Box<Type>),
    /// Array with element type and length.
    Array(Box<Type>, u64),
    /// Struct, by index into the program's struct table.
    Struct(usize),
    /// Function type.
    Func(Box<FuncSig>),
    /// `T cspec` — a code specification with evaluation type `T`.
    Cspec(Box<Type>),
    /// `T vspec` — a variable specification with evaluation type `T`.
    Vspec(Box<Type>),
}

/// A function signature.
#[derive(Clone, Debug, PartialEq)]
pub struct FuncSig {
    /// Return type.
    pub ret: Type,
    /// Parameter types.
    pub params: Vec<Type>,
}

/// One field of a struct.
#[derive(Clone, Debug, PartialEq)]
pub struct Field {
    /// Field name.
    pub name: String,
    /// Field type.
    pub ty: Type,
    /// Byte offset within the struct.
    pub offset: u64,
}

/// A struct definition with computed layout.
#[derive(Clone, Debug, PartialEq)]
pub struct StructDef {
    /// Tag name.
    pub name: String,
    /// Fields in declaration order.
    pub fields: Vec<Field>,
    /// Total size (padded to alignment).
    pub size: u64,
    /// Alignment.
    pub align: u64,
}

impl StructDef {
    /// Computes field offsets, size and alignment from field types.
    pub fn layout(name: String, fields: Vec<(String, Type)>, structs: &[StructDef]) -> StructDef {
        let mut off = 0u64;
        let mut align = 1u64;
        let mut out = Vec::new();
        for (fname, ty) in fields {
            let a = ty.align(structs);
            let s = ty.size(structs);
            off = (off + a - 1) & !(a - 1);
            out.push(Field {
                name: fname,
                ty,
                offset: off,
            });
            off += s;
            align = align.max(a);
        }
        let size = (off + align - 1) & !(align - 1);
        StructDef {
            name,
            fields: out,
            size: size.max(1),
            align,
        }
    }

    /// Finds a field by name.
    pub fn field(&self, name: &str) -> Option<&Field> {
        self.fields.iter().find(|f| f.name == name)
    }
}

impl Type {
    /// Size in bytes.
    ///
    /// # Panics
    ///
    /// Panics for `void` and function types (no size).
    pub fn size(&self, structs: &[StructDef]) -> u64 {
        match self {
            Type::Char | Type::UChar => 1,
            Type::Short | Type::UShort => 2,
            Type::Int | Type::UInt => 4,
            Type::Long | Type::ULong | Type::Double => 8,
            Type::Ptr(_) | Type::Cspec(_) | Type::Vspec(_) => 8,
            Type::Array(t, n) => t.size(structs) * n,
            Type::Struct(i) => structs[*i].size,
            Type::Void | Type::Func(_) => panic!("sizeless type {self:?}"),
        }
    }

    /// Alignment in bytes.
    pub fn align(&self, structs: &[StructDef]) -> u64 {
        match self {
            Type::Array(t, _) => t.align(structs),
            Type::Struct(i) => structs[*i].align,
            _ => self.size(structs),
        }
    }

    /// The machine value kind carrying this type in a register.
    ///
    /// # Panics
    ///
    /// Panics for types that are not register values (arrays, structs,
    /// void).
    pub fn kind(&self) -> ValKind {
        match self {
            Type::Char | Type::UChar | Type::Short | Type::UShort | Type::Int | Type::UInt => {
                ValKind::W
            }
            Type::Long | Type::ULong => ValKind::D,
            Type::Ptr(_) | Type::Func(_) | Type::Cspec(_) | Type::Vspec(_) => ValKind::P,
            Type::Double => ValKind::F,
            Type::Void | Type::Array(..) | Type::Struct(_) => {
                panic!("{self:?} is not a register value")
            }
        }
    }

    /// True for the integer types.
    pub fn is_integer(&self) -> bool {
        matches!(
            self,
            Type::Char
                | Type::UChar
                | Type::Short
                | Type::UShort
                | Type::Int
                | Type::UInt
                | Type::Long
                | Type::ULong
        )
    }

    /// True for integer or floating types.
    pub fn is_arith(&self) -> bool {
        self.is_integer() || *self == Type::Double
    }

    /// True for unsigned integer types.
    pub fn is_unsigned(&self) -> bool {
        matches!(self, Type::UChar | Type::UShort | Type::UInt | Type::ULong)
    }

    /// True for pointer types (after decay).
    pub fn is_ptr(&self) -> bool {
        matches!(self, Type::Ptr(_))
    }

    /// True for `cspec`/`vspec` types.
    pub fn is_spec(&self) -> bool {
        matches!(self, Type::Cspec(_) | Type::Vspec(_))
    }

    /// The evaluation type of a cspec/vspec, or `self` otherwise.
    pub fn eval_ty(&self) -> &Type {
        match self {
            Type::Cspec(t) | Type::Vspec(t) => t,
            t => t,
        }
    }

    /// Array-to-pointer and function-to-pointer decay.
    pub fn decay(&self) -> Type {
        match self {
            Type::Array(t, _) => Type::Ptr(t.clone()),
            Type::Func(sig) => Type::Ptr(Box::new(Type::Func(sig.clone()))),
            t => t.clone(),
        }
    }

    /// The usual arithmetic conversions (simplified to this machine:
    /// `int` rank for everything below `int`, then `unsigned int`,
    /// `long`, `unsigned long`, `double`).
    pub fn usual_arith(&self, other: &Type) -> Type {
        use Type::*;
        if *self == Double || *other == Double {
            return Double;
        }
        let rank = |t: &Type| match t {
            ULong => 5,
            Long => 4,
            UInt => 3,
            _ => 2, // everything at/below int promotes to int
        };
        let (a, b) = (rank(self), rank(other));
        match a.max(b) {
            5 => ULong,
            4 => Long,
            3 => UInt,
            _ => Int,
        }
    }

    /// Integer promotion (char/short → int).
    pub fn promote(&self) -> Type {
        match self {
            Type::Char | Type::UChar | Type::Short | Type::UShort => Type::Int,
            t => t.clone(),
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Void => write!(f, "void"),
            Type::Char => write!(f, "char"),
            Type::UChar => write!(f, "unsigned char"),
            Type::Short => write!(f, "short"),
            Type::UShort => write!(f, "unsigned short"),
            Type::Int => write!(f, "int"),
            Type::UInt => write!(f, "unsigned"),
            Type::Long => write!(f, "long"),
            Type::ULong => write!(f, "unsigned long"),
            Type::Double => write!(f, "double"),
            Type::Ptr(t) => write!(f, "{t}*"),
            Type::Array(t, n) => write!(f, "{t}[{n}]"),
            Type::Struct(i) => write!(f, "struct#{i}"),
            Type::Func(sig) => {
                write!(f, "{}(", sig.ret)?;
                for (i, p) in sig.params.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
            Type::Cspec(t) => write!(f, "{t} cspec"),
            Type::Vspec(t) => write!(f, "{t} vspec"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_and_kinds() {
        let s = &[];
        assert_eq!(Type::Int.size(s), 4);
        assert_eq!(Type::Ptr(Box::new(Type::Char)).size(s), 8);
        assert_eq!(Type::Array(Box::new(Type::Int), 10).size(s), 40);
        assert_eq!(Type::Int.kind(), ValKind::W);
        assert_eq!(Type::ULong.kind(), ValKind::D);
        assert_eq!(Type::Double.kind(), ValKind::F);
        assert_eq!(Type::Cspec(Box::new(Type::Int)).kind(), ValKind::P);
    }

    #[test]
    fn struct_layout_with_padding() {
        // { char c; int i; char d; long l; } -> offsets 0, 4, 8, 16; size 24
        let sd = StructDef::layout(
            "s".into(),
            vec![
                ("c".into(), Type::Char),
                ("i".into(), Type::Int),
                ("d".into(), Type::Char),
                ("l".into(), Type::Long),
            ],
            &[],
        );
        assert_eq!(sd.field("c").unwrap().offset, 0);
        assert_eq!(sd.field("i").unwrap().offset, 4);
        assert_eq!(sd.field("d").unwrap().offset, 8);
        assert_eq!(sd.field("l").unwrap().offset, 16);
        assert_eq!(sd.size, 24);
        assert_eq!(sd.align, 8);
    }

    #[test]
    fn twelve_byte_struct_like_heap_benchmark() {
        let sd = StructDef::layout(
            "rec".into(),
            vec![
                ("a".into(), Type::Int),
                ("b".into(), Type::Int),
                ("c".into(), Type::Int),
            ],
            &[],
        );
        assert_eq!(sd.size, 12);
    }

    #[test]
    fn usual_arith_conversions() {
        assert_eq!(Type::Char.usual_arith(&Type::Char), Type::Int);
        assert_eq!(Type::Int.usual_arith(&Type::UInt), Type::UInt);
        assert_eq!(Type::UInt.usual_arith(&Type::Long), Type::Long);
        assert_eq!(Type::Long.usual_arith(&Type::ULong), Type::ULong);
        assert_eq!(Type::Int.usual_arith(&Type::Double), Type::Double);
    }

    #[test]
    fn decay_and_eval_types() {
        let arr = Type::Array(Box::new(Type::Int), 4);
        assert_eq!(arr.decay(), Type::Ptr(Box::new(Type::Int)));
        let cs = Type::Cspec(Box::new(Type::Int));
        assert_eq!(cs.eval_ty(), &Type::Int);
        assert!(cs.is_spec());
    }
}
