//! The `C lexer.

use crate::error::FrontError;
use crate::token::{keyword, Spanned, Tok, P};

/// Tokenizes `src`.
///
/// # Errors
///
/// Returns [`FrontError`] on malformed literals or stray characters.
pub fn lex(src: &str) -> Result<Vec<Spanned>, FrontError> {
    Lexer {
        b: src.as_bytes(),
        pos: 0,
        line: 1,
    }
    .run()
}

struct Lexer<'a> {
    b: &'a [u8],
    pos: usize,
    line: u32,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Result<Vec<Spanned>, FrontError> {
        let mut out = Vec::new();
        loop {
            self.skip_ws_and_comments()?;
            let line = self.line;
            if self.pos >= self.b.len() {
                out.push(Spanned {
                    tok: Tok::Eof,
                    line,
                });
                return Ok(out);
            }
            let tok = self.next_token()?;
            out.push(Spanned { tok, line });
        }
    }

    fn err(&self, msg: impl Into<String>) -> FrontError {
        FrontError::Lex {
            line: self.line,
            msg: msg.into(),
        }
    }

    fn peek(&self) -> u8 {
        *self.b.get(self.pos).unwrap_or(&0)
    }

    fn peek2(&self) -> u8 {
        *self.b.get(self.pos + 1).unwrap_or(&0)
    }

    fn bump(&mut self) -> u8 {
        let c = self.peek();
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
        }
        c
    }

    fn skip_ws_and_comments(&mut self) -> Result<(), FrontError> {
        loop {
            match self.peek() {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek2() == b'*' => {
                    self.bump();
                    self.bump();
                    loop {
                        if self.pos >= self.b.len() {
                            return Err(self.err("unterminated comment"));
                        }
                        if self.peek() == b'*' && self.peek2() == b'/' {
                            self.bump();
                            self.bump();
                            break;
                        }
                        self.bump();
                    }
                }
                b'/' if self.peek2() == b'/' => {
                    while self.pos < self.b.len() && self.peek() != b'\n' {
                        self.bump();
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn next_token(&mut self) -> Result<Tok, FrontError> {
        let c = self.peek();
        if c.is_ascii_alphabetic() || c == b'_' {
            return Ok(self.ident_or_kw());
        }
        if c.is_ascii_digit() || (c == b'.' && self.peek2().is_ascii_digit()) {
            return self.number();
        }
        match c {
            b'"' => return self.string(),
            b'\'' => return self.char_lit(),
            _ => {}
        }
        self.bump();
        let two = |l: &mut Lexer<'_>, p: P| {
            l.bump();
            Tok::P(p)
        };
        let tok = match c {
            b'{' => Tok::P(P::LBrace),
            b'}' => Tok::P(P::RBrace),
            b'(' => Tok::P(P::LParen),
            b')' => Tok::P(P::RParen),
            b'[' => Tok::P(P::LBracket),
            b']' => Tok::P(P::RBracket),
            b';' => Tok::P(P::Semi),
            b',' => Tok::P(P::Comma),
            b'?' => Tok::P(P::Question),
            b':' => Tok::P(P::Colon),
            b'~' => Tok::P(P::Tilde),
            b'`' => Tok::P(P::Backquote),
            b'$' => Tok::P(P::Dollar),
            b'@' => Tok::P(P::At),
            b'.' => Tok::P(P::Dot),
            b'+' => match self.peek() {
                b'+' => two(self, P::Inc),
                b'=' => two(self, P::PlusEq),
                _ => Tok::P(P::Plus),
            },
            b'-' => match self.peek() {
                b'-' => two(self, P::Dec),
                b'=' => two(self, P::MinusEq),
                b'>' => two(self, P::Arrow),
                _ => Tok::P(P::Minus),
            },
            b'*' => match self.peek() {
                b'=' => two(self, P::StarEq),
                _ => Tok::P(P::Star),
            },
            b'/' => match self.peek() {
                b'=' => two(self, P::SlashEq),
                _ => Tok::P(P::Slash),
            },
            b'%' => match self.peek() {
                b'=' => two(self, P::PercentEq),
                _ => Tok::P(P::Percent),
            },
            b'&' => match self.peek() {
                b'&' => two(self, P::AmpAmp),
                b'=' => two(self, P::AmpEq),
                _ => Tok::P(P::Amp),
            },
            b'|' => match self.peek() {
                b'|' => two(self, P::PipePipe),
                b'=' => two(self, P::PipeEq),
                _ => Tok::P(P::Pipe),
            },
            b'^' => match self.peek() {
                b'=' => two(self, P::CaretEq),
                _ => Tok::P(P::Caret),
            },
            b'!' => match self.peek() {
                b'=' => two(self, P::Ne),
                _ => Tok::P(P::Bang),
            },
            b'=' => match self.peek() {
                b'=' => two(self, P::EqEq),
                _ => Tok::P(P::Assign),
            },
            b'<' => match self.peek() {
                b'<' => {
                    self.bump();
                    if self.peek() == b'=' {
                        two(self, P::ShlEq)
                    } else {
                        Tok::P(P::Shl)
                    }
                }
                b'=' => two(self, P::Le),
                _ => Tok::P(P::Lt),
            },
            b'>' => match self.peek() {
                b'>' => {
                    self.bump();
                    if self.peek() == b'=' {
                        two(self, P::ShrEq)
                    } else {
                        Tok::P(P::Shr)
                    }
                }
                b'=' => two(self, P::Ge),
                _ => Tok::P(P::Gt),
            },
            _ => return Err(self.err(format!("stray character {:?}", c as char))),
        };
        Ok(tok)
    }

    fn ident_or_kw(&mut self) -> Tok {
        let start = self.pos;
        while self.peek().is_ascii_alphanumeric() || self.peek() == b'_' {
            self.bump();
        }
        let s = std::str::from_utf8(&self.b[start..self.pos]).expect("ascii");
        match keyword(s) {
            Some(k) => Tok::Kw(k),
            None => Tok::Ident(s.to_string()),
        }
    }

    fn number(&mut self) -> Result<Tok, FrontError> {
        let start = self.pos;
        if self.peek() == b'0' && (self.peek2() == b'x' || self.peek2() == b'X') {
            self.bump();
            self.bump();
            let hs = self.pos;
            while self.peek().is_ascii_hexdigit() {
                self.bump();
            }
            let s = std::str::from_utf8(&self.b[hs..self.pos]).expect("ascii");
            let v = i64::from_str_radix(s, 16).map_err(|_| self.err("hex literal out of range"))?;
            let long = self.eat_long_suffix();
            return Ok(Tok::Int(v, long));
        }
        while self.peek().is_ascii_digit() {
            self.bump();
        }
        let is_float = self.peek() == b'.' || self.peek() == b'e' || self.peek() == b'E';
        if is_float {
            if self.peek() == b'.' {
                self.bump();
                while self.peek().is_ascii_digit() {
                    self.bump();
                }
            }
            if self.peek() == b'e' || self.peek() == b'E' {
                self.bump();
                if self.peek() == b'+' || self.peek() == b'-' {
                    self.bump();
                }
                while self.peek().is_ascii_digit() {
                    self.bump();
                }
            }
            let s = std::str::from_utf8(&self.b[start..self.pos]).expect("ascii");
            let v: f64 = s.parse().map_err(|_| self.err("bad float literal"))?;
            return Ok(Tok::Float(v));
        }
        let s = std::str::from_utf8(&self.b[start..self.pos]).expect("ascii");
        // Octal per C if it starts with 0, otherwise decimal.
        let v = if s.len() > 1 && s.starts_with('0') {
            i64::from_str_radix(&s[1..], 8).map_err(|_| self.err("bad octal literal"))?
        } else {
            s.parse()
                .map_err(|_| self.err("integer literal out of range"))?
        };
        let long = self.eat_long_suffix();
        Ok(Tok::Int(v, long))
    }

    fn eat_long_suffix(&mut self) -> bool {
        if self.peek() == b'l' || self.peek() == b'L' {
            self.bump();
            true
        } else {
            if self.peek() == b'u' || self.peek() == b'U' {
                self.bump();
            }
            false
        }
    }

    fn escape(&mut self) -> Result<u8, FrontError> {
        let e = self.bump();
        Ok(match e {
            b'n' => b'\n',
            b't' => b'\t',
            b'r' => b'\r',
            b'0' => 0,
            b'\\' => b'\\',
            b'\'' => b'\'',
            b'"' => b'"',
            _ => return Err(self.err(format!("unknown escape \\{}", e as char))),
        })
    }

    fn string(&mut self) -> Result<Tok, FrontError> {
        self.bump(); // opening quote
        let mut out = Vec::new();
        loop {
            if self.pos >= self.b.len() {
                return Err(self.err("unterminated string literal"));
            }
            match self.bump() {
                b'"' => break,
                b'\\' => out.push(self.escape()?),
                c => out.push(c),
            }
        }
        Ok(Tok::Str(out))
    }

    fn char_lit(&mut self) -> Result<Tok, FrontError> {
        self.bump(); // opening quote
        let c = match self.bump() {
            b'\\' => self.escape()?,
            c => c,
        };
        if self.bump() != b'\'' {
            return Err(self.err("unterminated char literal"));
        }
        Ok(Tok::Char(c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::Kw;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn keywords_idents_and_numbers() {
        assert_eq!(
            toks("int x = 42;"),
            vec![
                Tok::Kw(Kw::Int),
                Tok::Ident("x".into()),
                Tok::P(P::Assign),
                Tok::Int(42, false),
                Tok::P(P::Semi),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn tick_extensions() {
        assert_eq!(
            toks("`4 + $x cspec vspec compile"),
            vec![
                Tok::P(P::Backquote),
                Tok::Int(4, false),
                Tok::P(P::Plus),
                Tok::P(P::Dollar),
                Tok::Ident("x".into()),
                Tok::Kw(Kw::Cspec),
                Tok::Kw(Kw::Vspec),
                Tok::Kw(Kw::Compile),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn operators_longest_match() {
        assert_eq!(
            toks("a <<= b >> c <= d < e"),
            vec![
                Tok::Ident("a".into()),
                Tok::P(P::ShlEq),
                Tok::Ident("b".into()),
                Tok::P(P::Shr),
                Tok::Ident("c".into()),
                Tok::P(P::Le),
                Tok::Ident("d".into()),
                Tok::P(P::Lt),
                Tok::Ident("e".into()),
                Tok::Eof
            ]
        );
        assert_eq!(
            toks("p->f ++x --y"),
            vec![
                Tok::Ident("p".into()),
                Tok::P(P::Arrow),
                Tok::Ident("f".into()),
                Tok::P(P::Inc),
                Tok::Ident("x".into()),
                Tok::P(P::Dec),
                Tok::Ident("y".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn literals() {
        assert_eq!(
            toks("0x10 010 1L 3.5 1e3 'a' '\\n'")[..7].to_vec(),
            vec![
                Tok::Int(16, false),
                Tok::Int(8, false),
                Tok::Int(1, true),
                Tok::Float(3.5),
                Tok::Float(1000.0),
                Tok::Char(b'a'),
                Tok::Char(b'\n'),
            ]
        );
        assert_eq!(toks(r#""hi\n""#)[0], Tok::Str(b"hi\n".to_vec()));
    }

    #[test]
    fn comments_and_lines() {
        let ts = lex("int /* c */ x; // tail\nint y;").unwrap();
        assert_eq!(ts[0].line, 1);
        let y_decl_line = ts
            .iter()
            .find(|s| s.tok == Tok::Ident("y".into()))
            .unwrap()
            .line;
        assert_eq!(y_decl_line, 2);
    }

    #[test]
    fn errors_are_reported_with_lines() {
        let e = lex("int x;\n#").unwrap_err();
        let msg = e.to_string();
        assert!(msg.contains("line 2"), "{msg}");
    }
}
