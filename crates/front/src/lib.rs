//! # tcc-front — the `C front end
//!
//! Lexer, parser, and semantic analyzer for `C (Tick-C): ANSI C (a
//! practical subset — scalars, pointers, arrays, structs, function
//! pointers, the full statement set) extended with the paper's dynamic
//! code generation constructs:
//!
//! * the backquote operator `` ` `` over expressions and compound
//!   statements, producing `cspec` values,
//! * the `$` operator binding run-time constants at specification time,
//! * the `cspec`/`vspec` type constructors with evaluation types,
//! * the `compile`, `local` and `param` special forms.
//!
//! The analyzer resolves every name, types every expression, and — the
//! `C-specific part — hoists each tick expression into a
//! [`ast::TickDef`] carrying its *capture list*: exactly the fields the
//! closure will hold at run time (paper §4.3: CGF pointer, `$`-bound
//! run-time constants, free-variable addresses, nested cspec/vspec
//! pointers). Those captures drive both the static lowering (closure
//! construction code) and the dynamic compiler (CGF generation) in the
//! downstream crates.
//!
//! ```rust
//! let src = r#"
//!     int make_adder_body(int n) { return n; }
//!     void demo(int x) {
//!         int cspec c = `($x + 4);
//!         int (*f)(void) = compile(c, int);
//!     }
//! "#;
//! let prog = tcc_front::compile_unit(src).expect("valid `C");
//! assert_eq!(prog.ticks.len(), 1);
//! assert_eq!(prog.ticks[0].captures.len(), 1); // the $x run-time constant
//! ```

pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod sema;
pub mod token;
pub mod types;

pub use ast::Program;
pub use error::FrontError;

/// Parses and analyzes a `C translation unit.
///
/// # Errors
///
/// Returns the first lexical, syntax, or semantic error.
pub fn compile_unit(src: &str) -> Result<Program, FrontError> {
    sema::analyze(parser::parse(src)?)
}

#[cfg(test)]
mod tests {
    use super::ast::*;
    use super::types::Type;
    use super::*;

    #[test]
    fn hello_world_from_the_paper() {
        let src = r#"
            void f(void) {
                void cspec hello = `{ printf("hello world\n"); };
                void (*fp)(void) = compile(hello, void);
            }
        "#;
        let p = compile_unit(src).unwrap();
        assert_eq!(p.ticks.len(), 1);
        assert_eq!(p.ticks[0].eval_ty, Type::Void);
        assert!(p.ticks[0].captures.is_empty());
    }

    #[test]
    fn composition_example_from_the_paper() {
        // `4+5` via composition of two cspecs (paper §3).
        let src = r#"
            void f(void) {
                int cspec c1 = `4, cspec c2 = `5;
                int cspec c = `(c1 + c2);
            }
        "#;
        let p = compile_unit(src).unwrap();
        assert_eq!(p.ticks.len(), 3);
        let c = &p.ticks[2];
        assert_eq!(c.eval_ty, Type::Int);
        assert_eq!(c.captures.len(), 2);
        assert!(matches!(c.captures[0].kind, CaptureKind::Cspec(_)));
        assert!(matches!(c.captures[1].kind, CaptureKind::Cspec(_)));
    }

    #[test]
    fn dollar_binding_example_from_the_paper() {
        // fp = compile(`{ printf(..., $x, x); }, void)
        let src = r#"
            void f(void) {
                int x = 1;
                void cspec c = `{ printf("%d %d\n", $x, x); };
            }
        "#;
        let p = compile_unit(src).unwrap();
        let t = &p.ticks[0];
        assert_eq!(t.captures.len(), 2);
        assert!(matches!(t.captures[0].kind, CaptureKind::Dollar(_)));
        assert!(matches!(t.captures[1].kind, CaptureKind::FreeVar(_)));
        // The free variable forces x into memory.
        assert!(p.funcs[0]
            .locals
            .iter()
            .any(|l| l.name == "x" && l.addr_taken));
    }

    #[test]
    fn paper_closure_example_types() {
        // int cspec i = `5; void cspec c = `{ return i + $j * k; };
        let src = r#"
            void f(void) {
                int j = 2, k = 3;
                int cspec i = `5;
                void cspec c = `{ return i + $j * k; };
            }
        "#;
        let p = compile_unit(src).unwrap();
        let c = &p.ticks[1];
        assert_eq!(c.captures.len(), 3);
        // order of first reference: i (cspec), $j (rtc), k (free var)
        assert!(matches!(c.captures[0].kind, CaptureKind::Cspec(_)));
        assert!(matches!(c.captures[1].kind, CaptureKind::Dollar(_)));
        assert!(matches!(c.captures[2].kind, CaptureKind::FreeVar(_)));
    }

    #[test]
    fn vspec_param_and_local_forms() {
        let src = r#"
            void f(void) {
                int vspec v = local(int);
                int vspec p = param(int, 0);
                void cspec c = `{ v = p + 1; };
            }
        "#;
        let p = compile_unit(src).unwrap();
        let t = &p.ticks[0];
        assert_eq!(t.captures.len(), 2);
        assert!(matches!(t.captures[0].kind, CaptureKind::Vspec(_)));
        assert!(matches!(t.captures[1].kind, CaptureKind::Vspec(_)));
    }

    #[test]
    fn capture_dedup() {
        let src = r#"
            void f(int x) {
                int cspec c = `(x + x + $x + $x);
            }
        "#;
        let p = compile_unit(src).unwrap();
        // x dedups to one free-var capture; both $x dedup to one value
        // capture (the specification-time value is the same).
        assert_eq!(p.ticks[0].captures.len(), 2);
    }

    #[test]
    fn goto_cannot_escape_cspec() {
        let src = r#"
            void f(void) {
                void cspec c = `{ goto out; };
                out: return;
            }
        "#;
        let err = compile_unit(src).unwrap_err().to_string();
        assert!(err.contains("outside the cspec"), "{err}");
    }

    #[test]
    fn goto_within_cspec_is_fine() {
        let src = r#"
            void f(void) {
                void cspec c = `{ int i; i = 0; again: i = i + 1; if (i < 3) goto again; };
            }
        "#;
        compile_unit(src).unwrap();
    }

    #[test]
    fn dollar_outside_tick_rejected() {
        let err = compile_unit("void f(int x) { int y = $x; }")
            .unwrap_err()
            .to_string();
        assert!(err.contains("outside"), "{err}");
    }

    #[test]
    fn nested_ticks_rejected() {
        let err = compile_unit("void f(void) { int cspec c = `(1 + `2); }")
            .unwrap_err()
            .to_string();
        assert!(err.contains("nested"), "{err}");
    }

    #[test]
    fn cspec_type_mismatch_rejected() {
        let err = compile_unit("void f(void) { int cspec c = `1; double cspec d; d = c; }")
            .unwrap_err()
            .to_string();
        assert!(err.contains("cannot assign"), "{err}");
    }

    #[test]
    fn compile_requires_cspec() {
        let err = compile_unit("void f(int x) { int (*g)(void) = compile(x, int); }").unwrap_err();
        assert!(err.to_string().contains("requires a cspec"));
    }

    #[test]
    fn ordinary_c_type_errors_still_caught() {
        assert!(compile_unit("void f(void) { undeclared = 3; }").is_err());
        assert!(compile_unit("void f(int x) { x.field = 1; }").is_err());
        assert!(compile_unit("int f(void) { return; }").is_err());
        assert!(compile_unit("void f(void) { break; }").is_err());
        assert!(compile_unit("struct s { int a; }; void f(struct s v) { v->a = 1; }").is_err());
    }

    #[test]
    fn struct_member_offsets_resolved() {
        let src = r#"
            struct rec { int key; long val; };
            long get(struct rec *r) { return r->val; }
        "#;
        let p = compile_unit(src).unwrap();
        let body = &p.funcs[0].body;
        let Stmt::Return(Some(e)) = &body[0] else {
            panic!("expected return")
        };
        let ExprKind::Member(_, _, true, off) = &e.kind else {
            panic!("expected member")
        };
        assert_eq!(*off, 8);
        assert_eq!(e.ty, Type::Long);
    }

    #[test]
    fn pointer_arithmetic_types() {
        let src = "int f(int *p, int n) { return *(p + n); }";
        let p = compile_unit(src).unwrap();
        assert_eq!(p.funcs[0].sig.ret, Type::Int);
    }

    #[test]
    fn switch_checks() {
        assert!(compile_unit(
            "int f(int x) { switch (x) { case 1: return 1; case 1: return 2; } return 0; }"
        )
        .is_err());
        compile_unit(
            "int f(int x) { switch (x) { case 1: case 2: return 1; default: return 9; } }",
        )
        .unwrap();
    }

    #[test]
    fn sizeof_folds() {
        let src = "struct s { int a; int b; }; int f(void) { return sizeof(struct s); }";
        let p = compile_unit(src).unwrap();
        let Stmt::Return(Some(e)) = &p.funcs[0].body[0] else {
            panic!()
        };
        assert_eq!(e.kind, ExprKind::IntLit(8));
    }

    #[test]
    fn dyn_locals_in_tick_bodies() {
        let src = r#"
            void f(int n) {
                void cspec c = `{ int acc; acc = $n; acc = acc * 2; return acc; };
            }
        "#;
        let p = compile_unit(src).unwrap();
        assert_eq!(p.ticks[0].dyn_locals.len(), 1);
        assert_eq!(p.ticks[0].dyn_locals[0].name, "acc");
    }

    #[test]
    fn dollar_of_cspec_rejected() {
        let err = compile_unit("void f(void) { int cspec a = `1; int cspec b = `(1 + $a); }")
            .unwrap_err()
            .to_string();
        assert!(err.contains("cspec"), "{err}");
    }
}
