//! Semantic analysis: name resolution, type checking, and tick-expression
//! capture analysis.
//!
//! "All parsing and semantic checking of dynamic expressions occurs at
//! static compile time. … For each cspec, tcc performs type checking
//! similarly to a traditional C compiler. It also tracks goto statements
//! and labels to ensure that a goto does not transfer control outside the
//! body of the containing cspec" (§4.1). This module does exactly that,
//! and additionally computes each tick expression's closure layout: the
//! `$`-bound run-time constants, free-variable addresses, and nested
//! cspec/vspec references that the generated code captures at
//! specification time (§4.3).

use crate::ast::*;
use crate::error::FrontError;
use crate::parser::{ParsedUnit, RawFunc};
use crate::types::{FuncSig, Type};
use std::collections::{HashMap, HashSet};

/// Runs semantic analysis over a parsed unit.
///
/// # Errors
///
/// Returns the first semantic error.
pub fn analyze(unit: ParsedUnit) -> Result<Program, FrontError> {
    let mut sema = Sema {
        prog: Program {
            structs: unit.structs,
            globals: Vec::new(),
            funcs: Vec::new(),
            ticks: Vec::new(),
        },
        sigs: Vec::new(),
        ctx: None,
    };
    // Collect global names and function signatures first (forward refs).
    for g in &unit.globals {
        if g.ty == Type::Void {
            return Err(serr(0, format!("global {} has type void", g.name)));
        }
        sema.prog.globals.push(GlobalDef {
            name: g.name.clone(),
            ty: g.ty.clone(),
            init: g.init.clone(),
        });
    }
    for f in &unit.funcs {
        let sig = FuncSig {
            ret: f.ret.clone(),
            params: f.params.iter().map(|(_, t)| t.clone()).collect(),
        };
        sema.sigs.push((f.name.clone(), sig));
    }
    for f in unit.funcs {
        let fd = sema.check_func(f)?;
        sema.prog.funcs.push(fd);
    }
    // Validate global initializers are constant.
    for g in 0..sema.prog.globals.len() {
        if let Some(init) = sema.prog.globals[g].init.clone() {
            let folded = sema.check_global_init(&sema.prog.globals[g].ty.clone(), init)?;
            sema.prog.globals[g].init = Some(folded);
        }
    }
    Ok(sema.prog)
}

fn serr(line: u32, msg: impl Into<String>) -> FrontError {
    FrontError::Sema {
        line,
        msg: msg.into(),
    }
}

#[derive(Clone, Debug)]
enum Binding {
    Local(usize),
    TickLocal(usize),
}

/// Key for deduplicating `$`-value captures.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
enum DollarKey {
    Local(usize),
    Global(usize),
}

struct TickCtx {
    captures: Vec<Capture>,
    dyn_locals: Vec<LocalDef>,
    // Dedup maps: enclosing local id -> capture index.
    fv_map: HashMap<usize, usize>,
    spec_map: HashMap<usize, usize>,
    spec_global_map: HashMap<usize, usize>,
    dollar_map: HashMap<DollarKey, usize>,
    scopes: Vec<HashMap<String, Binding>>,
    labels: HashSet<String>,
    gotos: Vec<(String, u32)>,
}

struct FuncCtx {
    locals: Vec<LocalDef>,
    scopes: Vec<HashMap<String, Binding>>,
    ret: Type,
    loop_depth: u32,
    switch_depth: u32,
    labels: HashSet<String>,
    gotos: Vec<(String, u32)>,
    tick: Option<TickCtx>,
    in_dollar: bool,
}

struct Sema {
    prog: Program,
    sigs: Vec<(String, FuncSig)>,
    ctx: Option<FuncCtx>,
}

impl Sema {
    fn ctx(&mut self) -> &mut FuncCtx {
        self.ctx.as_mut().expect("inside a function")
    }

    fn check_func(&mut self, f: RawFunc) -> Result<FuncDef, FrontError> {
        let mut ctx = FuncCtx {
            locals: Vec::new(),
            scopes: vec![HashMap::new()],
            ret: f.ret.clone(),
            loop_depth: 0,
            switch_depth: 0,
            labels: HashSet::new(),
            gotos: Vec::new(),
            tick: None,
            in_dollar: false,
        };
        let nparams = f.params.len();
        for (name, ty) in &f.params {
            let id = ctx.locals.len();
            ctx.locals.push(LocalDef {
                name: name.clone(),
                ty: ty.clone(),
                addr_taken: false,
            });
            ctx.scopes[0].insert(name.clone(), Binding::Local(id));
        }
        self.ctx = Some(ctx);
        let mut body = f.body;
        for s in &mut body {
            self.check_stmt(s)?;
        }
        let ctx = self.ctx.take().expect("just set");
        for (label, line) in &ctx.gotos {
            if !ctx.labels.contains(label) {
                return Err(serr(*line, format!("goto to undefined label {label}")));
            }
        }
        let sig = FuncSig {
            ret: f.ret,
            params: f.params.into_iter().map(|(_, t)| t).collect(),
        };
        Ok(FuncDef {
            name: f.name,
            sig,
            nparams,
            locals: ctx.locals,
            body,
        })
    }

    // ---- scoping ---------------------------------------------------------

    fn push_scope(&mut self) {
        let c = self.ctx();
        match &mut c.tick {
            Some(t) => t.scopes.push(HashMap::new()),
            None => c.scopes.push(HashMap::new()),
        }
    }

    fn pop_scope(&mut self) {
        let c = self.ctx();
        match &mut c.tick {
            Some(t) => {
                t.scopes.pop();
            }
            None => {
                c.scopes.pop();
            }
        }
    }

    fn declare(&mut self, name: &str, ty: Type, line: u32) -> Result<Binding, FrontError> {
        let addressy = matches!(ty, Type::Array(..) | Type::Struct(_));
        let c = self.ctx();
        match &mut c.tick {
            Some(t) => {
                if ty.is_spec() {
                    return Err(serr(
                        line,
                        "cspec/vspec variables cannot be declared in dynamic code",
                    ));
                }
                let id = t.dyn_locals.len();
                t.dyn_locals.push(LocalDef {
                    name: name.into(),
                    ty,
                    addr_taken: addressy,
                });
                let b = Binding::TickLocal(id);
                t.scopes
                    .last_mut()
                    .expect("scope")
                    .insert(name.into(), b.clone());
                Ok(b)
            }
            None => {
                let id = c.locals.len();
                c.locals.push(LocalDef {
                    name: name.into(),
                    ty,
                    addr_taken: addressy,
                });
                let b = Binding::Local(id);
                c.scopes
                    .last_mut()
                    .expect("scope")
                    .insert(name.into(), b.clone());
                Ok(b)
            }
        }
    }

    /// Resolves `name`, performing tick capture conversion when inside a
    /// tick body.
    fn resolve(&mut self, name: &str, line: u32) -> Result<(VarRef, Type), FrontError> {
        let c = self.ctx();
        if let Some(t) = &mut c.tick {
            for s in t.scopes.iter().rev() {
                if let Some(Binding::TickLocal(i)) = s.get(name) {
                    let ty = t.dyn_locals[*i].ty.clone();
                    return Ok((VarRef::TickLocal(*i), ty));
                }
            }
            // Fall through to the enclosing function's locals: capture.
            for s in c.scopes.iter().rev() {
                if let Some(Binding::Local(i)) = s.get(name) {
                    let i = *i;
                    let ty = c.locals[i].ty.clone();
                    if c.in_dollar {
                        // Inside a `$` operand: capture the *value* at
                        // specification time (not the address).
                        if ty.is_spec() {
                            return Err(serr(line, "$ cannot be applied to cspec/vspec values"));
                        }
                        let t = c.tick.as_mut().expect("in tick");
                        let idx = *t.dollar_map.entry(DollarKey::Local(i)).or_insert_with(|| {
                            t.captures.push(Capture {
                                kind: CaptureKind::Dollar(Expr {
                                    kind: ExprKind::Var(VarRef::Local(i)),
                                    ty: ty.clone(),
                                    line,
                                }),
                                ty: ty.clone(),
                            });
                            t.captures.len() - 1
                        });
                        return Ok((VarRef::TickRtc(idx), ty));
                    }
                    let t = c.tick.as_mut().expect("in tick");
                    match &ty {
                        Type::Cspec(ev) => {
                            let idx = *t.spec_map.entry(i).or_insert_with(|| {
                                t.captures.push(Capture {
                                    kind: CaptureKind::Cspec(Expr {
                                        kind: ExprKind::Var(VarRef::Local(i)),
                                        ty: ty.clone(),
                                        line,
                                    }),
                                    ty: (**ev).clone(),
                                });
                                t.captures.len() - 1
                            });
                            return Ok((VarRef::TickCspec(idx), (**ev).clone()));
                        }
                        Type::Vspec(ev) => {
                            let idx = *t.spec_map.entry(i).or_insert_with(|| {
                                t.captures.push(Capture {
                                    kind: CaptureKind::Vspec(Expr {
                                        kind: ExprKind::Var(VarRef::Local(i)),
                                        ty: ty.clone(),
                                        line,
                                    }),
                                    ty: (**ev).clone(),
                                });
                                t.captures.len() - 1
                            });
                            return Ok((VarRef::TickVspec(idx), (**ev).clone()));
                        }
                        _ => {
                            c.locals[i].addr_taken = true;
                            let t = c.tick.as_mut().expect("in tick");
                            let idx = *t.fv_map.entry(i).or_insert_with(|| {
                                t.captures.push(Capture {
                                    kind: CaptureKind::FreeVar(i),
                                    ty: ty.clone(),
                                });
                                t.captures.len() - 1
                            });
                            return Ok((VarRef::TickFv(idx), ty));
                        }
                    }
                }
            }
        } else {
            for s in c.scopes.iter().rev() {
                match s.get(name) {
                    Some(Binding::Local(i)) => {
                        let ty = c.locals[*i].ty.clone();
                        return Ok((VarRef::Local(*i), ty));
                    }
                    Some(Binding::TickLocal(_)) => unreachable!("tick locals outside tick"),
                    None => {}
                }
            }
        }
        if let Some(gi) = self.prog.globals.iter().position(|g| g.name == name) {
            let ty = self.prog.globals[gi].ty.clone();
            let c = self.ctx();
            // Global cspec/vspec variables referenced in a tick body are
            // compositions, exactly like local ones.
            if let (Some(t), true) = (c.tick.as_mut(), ty.is_spec() && !c.in_dollar) {
                let ev = ty.eval_ty().clone();
                let is_cspec = matches!(ty, Type::Cspec(_));
                let idx = *t.spec_global_map.entry(gi).or_insert_with(|| {
                    let var = Expr {
                        kind: ExprKind::Var(VarRef::Global(gi)),
                        ty: ty.clone(),
                        line,
                    };
                    t.captures.push(Capture {
                        kind: if is_cspec {
                            CaptureKind::Cspec(var)
                        } else {
                            CaptureKind::Vspec(var)
                        },
                        ty: ev.clone(),
                    });
                    t.captures.len() - 1
                });
                return Ok((
                    if is_cspec {
                        VarRef::TickCspec(idx)
                    } else {
                        VarRef::TickVspec(idx)
                    },
                    ev,
                ));
            }
            // Scalar globals inside a `$` operand are value captures, so
            // the specification-time value is what gets hardwired.
            if c.in_dollar && !matches!(ty, Type::Array(..) | Type::Struct(_)) {
                if let Some(t) = c.tick.as_mut() {
                    let idx = *t
                        .dollar_map
                        .entry(DollarKey::Global(gi))
                        .or_insert_with(|| {
                            t.captures.push(Capture {
                                kind: CaptureKind::Dollar(Expr {
                                    kind: ExprKind::Var(VarRef::Global(gi)),
                                    ty: ty.clone(),
                                    line,
                                }),
                                ty: ty.clone(),
                            });
                            t.captures.len() - 1
                        });
                    return Ok((VarRef::TickRtc(idx), ty));
                }
            }
            return Ok((VarRef::Global(gi), ty));
        }
        if let Some(fi) = self.sigs.iter().position(|(n, _)| n == name) {
            let ty = Type::Func(Box::new(self.sigs[fi].1.clone()));
            return Ok((VarRef::Func(fi), ty));
        }
        if let Some(b) = Builtin::by_name(name) {
            return Ok((VarRef::Builtin(b), builtin_ty(b)));
        }
        Err(serr(line, format!("undefined identifier {name}")))
    }

    // ---- statements ------------------------------------------------------

    fn check_stmt(&mut self, s: &mut Stmt) -> Result<(), FrontError> {
        match s {
            Stmt::Expr(e) => {
                self.check_expr(e)?;
                Ok(())
            }
            Stmt::Decl(items) => {
                for item in items {
                    if item.ty == Type::Void {
                        return Err(serr(0, format!("variable {} has type void", item.name)));
                    }
                    let b = self.declare(&item.name, item.ty.clone(), 0)?;
                    item.local_id = match b {
                        Binding::Local(i) | Binding::TickLocal(i) => i,
                    };
                    if let Some(Init::Expr(e)) = &mut item.init {
                        self.check_expr(e)?;
                        self.require_assignable(&item.ty, &e.ty, e.line)?;
                    } else if let Some(Init::List(_)) = &item.init {
                        return Err(serr(0, "brace initializers are only supported on globals"));
                    }
                }
                Ok(())
            }
            Stmt::If(c, t, e) => {
                self.check_cond(c)?;
                self.check_stmt(t)?;
                if let Some(e) = e {
                    self.check_stmt(e)?;
                }
                Ok(())
            }
            Stmt::While(c, b) => {
                self.check_cond(c)?;
                self.ctx().loop_depth += 1;
                self.check_stmt(b)?;
                self.ctx().loop_depth -= 1;
                Ok(())
            }
            Stmt::DoWhile(b, c) => {
                self.ctx().loop_depth += 1;
                self.check_stmt(b)?;
                self.ctx().loop_depth -= 1;
                self.check_cond(c)?;
                Ok(())
            }
            Stmt::For(init, cond, step, body) => {
                self.push_scope();
                if let Some(i) = init {
                    self.check_stmt(i)?;
                }
                if let Some(c) = cond {
                    self.check_cond(c)?;
                }
                if let Some(st) = step {
                    self.check_expr(st)?;
                }
                self.ctx().loop_depth += 1;
                self.check_stmt(body)?;
                self.ctx().loop_depth -= 1;
                self.pop_scope();
                Ok(())
            }
            Stmt::Return(e) => {
                let in_tick = self.ctx().tick.is_some();
                if let Some(e) = e {
                    self.check_expr(e)?;
                    if !in_tick {
                        let ret = self.ctx().ret.clone();
                        self.require_assignable(&ret, &e.ty, e.line)?;
                    }
                } else if !in_tick && self.ctx().ret != Type::Void {
                    return Err(serr(0, "return without a value in a non-void function"));
                }
                Ok(())
            }
            Stmt::Break => {
                let c = self.ctx();
                if c.loop_depth == 0 && c.switch_depth == 0 {
                    return Err(serr(0, "break outside loop or switch"));
                }
                Ok(())
            }
            Stmt::Continue => {
                if self.ctx().loop_depth == 0 {
                    return Err(serr(0, "continue outside loop"));
                }
                Ok(())
            }
            Stmt::Block(stmts) => {
                self.push_scope();
                for s in stmts {
                    self.check_stmt(s)?;
                }
                self.pop_scope();
                Ok(())
            }
            Stmt::Switch(scrut, items) => {
                self.check_expr(scrut)?;
                if !scrut.ty.is_integer() {
                    return Err(serr(scrut.line, "switch requires an integer"));
                }
                let mut seen = HashSet::new();
                let mut defaults = 0;
                self.ctx().switch_depth += 1;
                self.push_scope();
                for item in items.iter_mut() {
                    match item {
                        SwitchItem::Case(v) => {
                            if !seen.insert(*v) {
                                return Err(serr(scrut.line, format!("duplicate case {v}")));
                            }
                        }
                        SwitchItem::Default => defaults += 1,
                        SwitchItem::Stmt(s) => self.check_stmt(s)?,
                    }
                }
                self.pop_scope();
                self.ctx().switch_depth -= 1;
                if defaults > 1 {
                    return Err(serr(scrut.line, "multiple default labels"));
                }
                Ok(())
            }
            Stmt::Goto(label) => {
                let c = self.ctx();
                match &mut c.tick {
                    Some(t) => t.gotos.push((label.clone(), 0)),
                    None => c.gotos.push((label.clone(), 0)),
                }
                Ok(())
            }
            Stmt::Labeled(label, inner) => {
                {
                    let c = self.ctx();
                    let labels = match &mut c.tick {
                        Some(t) => &mut t.labels,
                        None => &mut c.labels,
                    };
                    if !labels.insert(label.clone()) {
                        return Err(serr(0, format!("duplicate label {label}")));
                    }
                }
                self.check_stmt(inner)
            }
            Stmt::Empty => Ok(()),
        }
    }

    fn check_cond(&mut self, e: &mut Expr) -> Result<(), FrontError> {
        self.check_expr(e)?;
        if !is_scalar(&e.ty) {
            return Err(serr(
                e.line,
                format!("condition has non-scalar type {}", e.ty),
            ));
        }
        Ok(())
    }

    // ---- expressions -----------------------------------------------------

    fn check_expr(&mut self, e: &mut Expr) -> Result<(), FrontError> {
        let line = e.line;
        if let Some(c) = self.ctx.as_ref() {
            if c.in_dollar
                && matches!(
                    e.kind,
                    ExprKind::Call(..)
                        | ExprKind::Assign(..)
                        | ExprKind::PreIncDec(..)
                        | ExprKind::PostIncDec(..)
                        | ExprKind::TickRaw(_)
                        | ExprKind::CompileExpr(..)
                        | ExprKind::LocalForm(_)
                        | ExprKind::ParamForm(..)
                        | ExprKind::LabelForm
                        | ExprKind::JumpForm(_)
                        | ExprKind::ArglistNew
                        | ExprKind::ArglistPush(..)
                        | ExprKind::Apply(..)
                )
            {
                return Err(serr(line, "impure expression inside a $ operand"));
            }
        }
        match &mut e.kind {
            ExprKind::IntLit(v) => {
                e.ty = if *v > i32::MAX as i64 || *v < i32::MIN as i64 {
                    Type::Long
                } else {
                    Type::Int
                };
            }
            ExprKind::FloatLit(_) => e.ty = Type::Double,
            ExprKind::StrLit(_) => e.ty = Type::Ptr(Box::new(Type::Char)),
            ExprKind::Ident(name) => {
                let name = name.clone();
                let (vr, ty) = self.resolve(&name, line)?;
                e.kind = ExprKind::Var(vr);
                e.ty = ty;
            }
            ExprKind::Var(_) => {}
            ExprKind::Un(op, inner) => {
                let op = *op;
                self.check_expr(inner)?;
                e.ty = self.check_unary(op, inner, line)?;
            }
            ExprKind::PreIncDec(inner, _) | ExprKind::PostIncDec(inner, _) => {
                self.check_expr(inner)?;
                self.require_lvalue(inner)?;
                let t = inner.ty.decay();
                if !t.is_arith() && !t.is_ptr() {
                    return Err(serr(line, "++/-- requires arithmetic or pointer type"));
                }
                e.ty = t;
            }
            ExprKind::Bin(op, a, b) => {
                let op = *op;
                self.check_expr(a)?;
                self.check_expr(b)?;
                e.ty = self.check_binary(op, a, b, line)?;
            }
            ExprKind::Assign(op, lhs, rhs) => {
                self.check_expr(lhs)?;
                self.require_lvalue(lhs)?;
                self.check_expr(rhs)?;
                if let Some(op) = op {
                    // Validate the implied binary operation.
                    let mut l2 = lhs.clone();
                    let mut r2 = rhs.clone();
                    self.check_binary(*op, &mut l2, &mut r2, line)?;
                }
                self.require_assignable(&lhs.ty, &rhs.ty, line)?;
                e.ty = lhs.ty.clone();
            }
            ExprKind::Call(callee, args) => {
                // Contextual special forms: `label`, `jump`, `push_init`,
                // `push`, `apply` act as special forms unless the name is
                // bound by the program (user declarations take priority,
                // as with builtins).
                if let ExprKind::Ident(name) = &callee.kind {
                    let special = matches!(
                        name.as_str(),
                        "label" | "jump" | "push_init" | "push" | "apply"
                    );
                    if special && self.resolve(&name.clone(), line).is_err() {
                        let n_expected = match name.as_str() {
                            "label" | "push_init" => 0,
                            "jump" => 1,
                            _ => 2,
                        };
                        if args.len() != n_expected {
                            return Err(serr(
                                line,
                                format!("{name}() expects {n_expected} argument(s)"),
                            ));
                        }
                        let mut args = std::mem::take(args);
                        e.kind = match name.as_str() {
                            "label" => ExprKind::LabelForm,
                            "push_init" => ExprKind::ArglistNew,
                            "jump" => ExprKind::JumpForm(Box::new(args.remove(0))),
                            "push" => {
                                let l = args.remove(0);
                                ExprKind::ArglistPush(Box::new(l), Box::new(args.remove(0)))
                            }
                            _ => {
                                let f = args.remove(0);
                                ExprKind::Apply(Box::new(f), Box::new(args.remove(0)))
                            }
                        };
                        return self.check_expr(e);
                    }
                }
                self.check_expr(callee)?;
                for a in args.iter_mut() {
                    self.check_expr(a)?;
                }
                e.ty = self.check_call(callee, args, line)?;
            }
            ExprKind::Index(base, idx) => {
                self.check_expr(base)?;
                self.check_expr(idx)?;
                let bt = base.ty.decay();
                let elem = match &bt {
                    Type::Ptr(t) => (**t).clone(),
                    _ => return Err(serr(line, format!("cannot index type {}", base.ty))),
                };
                if !idx.ty.is_integer() {
                    return Err(serr(line, "array index must be an integer"));
                }
                e.ty = elem;
            }
            ExprKind::Member(base, fname, arrow, offset) => {
                self.check_expr(base)?;
                let si = match (&base.ty, *arrow) {
                    (Type::Struct(i), false) => *i,
                    (Type::Ptr(inner), true) => match &**inner {
                        Type::Struct(i) => *i,
                        _ => return Err(serr(line, "-> on non-struct pointer")),
                    },
                    _ => {
                        return Err(serr(
                            line,
                            format!("member access on {} (arrow={})", base.ty, arrow),
                        ))
                    }
                };
                let f = self.prog.structs[si]
                    .field(fname)
                    .ok_or_else(|| serr(line, format!("no field {fname}")))?;
                *offset = f.offset;
                e.ty = f.ty.clone();
            }
            ExprKind::Cast(ty, inner) => {
                self.check_expr(inner)?;
                let ok = (is_scalar(&ty.clone()) && is_scalar(&inner.ty))
                    || *ty == Type::Void
                    || (ty.is_ptr() && inner.ty.decay().is_ptr());
                if !ok {
                    return Err(serr(
                        line,
                        format!("invalid cast from {} to {ty}", inner.ty),
                    ));
                }
                e.ty = ty.clone();
            }
            ExprKind::Cond(c, t, f) => {
                self.check_expr(c)?;
                if !is_scalar(&c.ty) {
                    return Err(serr(line, "?: condition must be scalar"));
                }
                self.check_expr(t)?;
                self.check_expr(f)?;
                e.ty = if t.ty.is_arith() && f.ty.is_arith() {
                    t.ty.usual_arith(&f.ty)
                } else if t.ty.decay() == f.ty.decay()
                    || (t.ty.decay().is_ptr() && f.ty.decay().is_ptr())
                {
                    t.ty.decay()
                } else {
                    return Err(serr(line, "incompatible ?: arms"));
                };
            }
            ExprKind::Comma(a, b) => {
                self.check_expr(a)?;
                self.check_expr(b)?;
                e.ty = b.ty.clone();
            }
            ExprKind::SizeofT(ty) => {
                let size = ty.size(&self.prog.structs) as i64;
                e.kind = ExprKind::IntLit(size);
                e.ty = Type::Int;
            }
            ExprKind::SizeofE(inner) => {
                self.check_expr(inner)?;
                let size = inner.ty.size(&self.prog.structs) as i64;
                e.kind = ExprKind::IntLit(size);
                e.ty = Type::Int;
            }
            ExprKind::TickRaw(body) => {
                if self.ctx().tick.is_some() {
                    return Err(serr(line, "nested tick expressions are not supported"));
                }
                let body = std::mem::replace(&mut **body, TickBody::Block(Vec::new()));
                let (tick_id, eval_ty) = self.check_tick(body, line)?;
                e.kind = ExprKind::Tick(tick_id);
                e.ty = Type::Cspec(Box::new(eval_ty));
            }
            ExprKind::Tick(_) => {}
            ExprKind::Dollar(inner) => {
                if self.ctx().tick.is_none() {
                    return Err(serr(line, "$ outside of a tick expression"));
                }
                if self.ctx().in_dollar {
                    return Err(serr(line, "nested $ operators"));
                }
                // Names in the operand resolve against tick locals
                // (derived run-time constants, e.g. `$row[k]` under
                // dynamic loop unrolling) and otherwise become
                // specification-time *value* captures. The operand is
                // then evaluated at dynamic compile time; it must be pure.
                self.ctx().in_dollar = true;
                let res = self.check_expr(inner);
                self.ctx().in_dollar = false;
                res?;
                if inner.ty.is_spec() {
                    return Err(serr(line, "$ cannot be applied to cspec/vspec values"));
                }
                if !is_scalar(&inner.ty) {
                    return Err(serr(line, "$ requires a scalar value"));
                }
                e.ty = inner.ty.clone();
            }
            ExprKind::CompileExpr(c, ty) => {
                self.check_expr(c)?;
                match &c.ty {
                    Type::Cspec(_) => {}
                    other => {
                        return Err(serr(
                            line,
                            format!("compile() requires a cspec, got {other}"),
                        ))
                    }
                }
                let sig = FuncSig {
                    ret: ty.clone(),
                    params: vec![],
                };
                e.ty = Type::Ptr(Box::new(Type::Func(Box::new(sig))));
            }
            ExprKind::LocalForm(ty) => {
                if self.ctx().tick.is_some() {
                    return Err(serr(line, "local() must be used at specification time"));
                }
                if !is_scalar(ty) {
                    return Err(serr(line, "local() requires a scalar type"));
                }
                e.ty = Type::Vspec(Box::new(ty.clone()));
            }
            ExprKind::LabelForm => {
                if self.ctx().tick.is_some() {
                    return Err(serr(line, "label() must be used at specification time"));
                }
                e.ty = Type::Cspec(Box::new(Type::Void));
            }
            ExprKind::JumpForm(l) => {
                if self.ctx().tick.is_none() {
                    return Err(serr(line, "jump() is only meaningful inside dynamic code"));
                }
                self.check_expr(l)?;
                if !matches!(l.kind, ExprKind::Var(VarRef::TickCspec(_))) || l.ty != Type::Void {
                    return Err(serr(line, "jump() requires a void cspec label"));
                }
                e.ty = Type::Void;
            }
            ExprKind::ArglistNew => {
                if self.ctx().tick.is_some() {
                    return Err(serr(line, "push_init() must be used at specification time"));
                }
                e.ty = Type::Cspec(Box::new(Type::Void));
            }
            ExprKind::ArglistPush(l, c) => {
                if self.ctx().tick.is_some() {
                    return Err(serr(line, "push() must be used at specification time"));
                }
                self.check_expr(l)?;
                self.check_expr(c)?;
                if !matches!(l.ty, Type::Cspec(_)) {
                    return Err(serr(line, "push() requires an argument list"));
                }
                match &c.ty {
                    Type::Cspec(ev) if **ev != Type::Void => {}
                    _ => return Err(serr(line, "push() requires a non-void cspec argument")),
                }
                e.ty = Type::Void;
            }
            ExprKind::Apply(f, l) => {
                if self.ctx().tick.is_none() {
                    return Err(serr(line, "apply() is only meaningful inside dynamic code"));
                }
                self.check_expr(f)?;
                let callable = matches!(f.ty.decay(), Type::Ptr(ref inner) if matches!(**inner, Type::Func(_)));
                if !callable {
                    return Err(serr(line, "apply() requires a function"));
                }
                self.check_expr(l)?;
                if !matches!(l.kind, ExprKind::Var(VarRef::TickCspec(_))) {
                    return Err(serr(line, "apply() requires a captured argument list"));
                }
                e.ty = Type::Int;
            }
            ExprKind::ParamForm(ty, idx) => {
                if self.ctx().tick.is_some() {
                    return Err(serr(line, "param() must be used at specification time"));
                }
                if !is_scalar(ty) {
                    return Err(serr(line, "param() requires a scalar type"));
                }
                self.check_expr(idx)?;
                if !idx.ty.is_integer() {
                    return Err(serr(line, "param() index must be an integer"));
                }
                e.ty = Type::Vspec(Box::new(ty.clone()));
            }
        }
        Ok(())
    }

    fn check_tick(&mut self, body: TickBody, line: u32) -> Result<(usize, Type), FrontError> {
        self.ctx().tick = Some(TickCtx {
            captures: Vec::new(),
            dyn_locals: Vec::new(),
            fv_map: HashMap::new(),
            spec_map: HashMap::new(),
            spec_global_map: HashMap::new(),
            dollar_map: HashMap::new(),
            scopes: vec![HashMap::new()],
            labels: HashSet::new(),
            gotos: Vec::new(),
        });
        let mut body = body;
        let eval_ty = match &mut body {
            TickBody::Expr(e) => {
                self.check_expr(e)?;
                if e.ty.is_spec() {
                    // `c where c is a cspec: the evaluation type surfaced.
                    e.ty.eval_ty().clone()
                } else {
                    e.ty.decay()
                }
            }
            TickBody::Block(stmts) => {
                for s in stmts {
                    self.check_stmt(s)?;
                }
                Type::Void
            }
        };
        let t = self.ctx().tick.take().expect("tick context");
        for (label, _) in &t.gotos {
            if !t.labels.contains(label) {
                return Err(serr(
                    line,
                    format!("goto {label} would transfer control outside the cspec body"),
                ));
            }
        }
        let owner = self.prog.funcs.len(); // index this function will get
        self.prog.ticks.push(TickDef {
            eval_ty: eval_ty.clone(),
            body,
            captures: t.captures,
            dyn_locals: t.dyn_locals,
            owner,
        });
        Ok((self.prog.ticks.len() - 1, eval_ty))
    }

    fn check_unary(
        &mut self,
        op: UnaryOp,
        inner: &mut Expr,
        line: u32,
    ) -> Result<Type, FrontError> {
        match op {
            UnaryOp::Neg => {
                if !inner.ty.is_arith() {
                    return Err(serr(line, "negation requires arithmetic type"));
                }
                Ok(inner.ty.promote())
            }
            UnaryOp::BitNot => {
                if !inner.ty.is_integer() {
                    return Err(serr(line, "~ requires integer type"));
                }
                Ok(inner.ty.promote())
            }
            UnaryOp::LogNot => {
                if !is_scalar(&inner.ty) {
                    return Err(serr(line, "! requires scalar type"));
                }
                Ok(Type::Int)
            }
            UnaryOp::Deref => match inner.ty.decay() {
                Type::Ptr(t) => match *t {
                    Type::Func(sig) => Ok(Type::Func(sig)),
                    t => Ok(t),
                },
                other => Err(serr(line, format!("cannot dereference {other}"))),
            },
            UnaryOp::Addr => {
                self.require_lvalue(inner)?;
                if let ExprKind::Var(VarRef::Local(i)) = &inner.kind {
                    self.ctx().locals[*i].addr_taken = true;
                }
                if let ExprKind::Var(VarRef::TickLocal(i)) = &inner.kind {
                    let i = *i;
                    if let Some(t) = self.ctx().tick.as_mut() {
                        t.dyn_locals[i].addr_taken = true;
                    }
                }
                Ok(Type::Ptr(Box::new(inner.ty.clone())))
            }
        }
    }

    fn check_binary(
        &mut self,
        op: BinaryOp,
        a: &mut Expr,
        b: &mut Expr,
        line: u32,
    ) -> Result<Type, FrontError> {
        use BinaryOp::*;
        let ta = a.ty.decay();
        let tb = b.ty.decay();
        match op {
            Add | Sub => {
                if ta.is_ptr() && tb.is_integer() {
                    return Ok(ta);
                }
                if ta.is_integer() && tb.is_ptr() && op == Add {
                    return Ok(tb);
                }
                if ta.is_ptr() && tb.is_ptr() && op == Sub {
                    return Ok(Type::Long);
                }
                if ta.is_arith() && tb.is_arith() {
                    return Ok(ta.usual_arith(&tb));
                }
                Err(serr(line, format!("invalid operands {ta} {op:?} {tb}")))
            }
            Mul | Div => {
                if ta.is_arith() && tb.is_arith() {
                    Ok(ta.usual_arith(&tb))
                } else {
                    Err(serr(line, format!("invalid operands {ta} {op:?} {tb}")))
                }
            }
            Rem | BitAnd | BitOr | BitXor => {
                if ta.is_integer() && tb.is_integer() {
                    Ok(ta.usual_arith(&tb))
                } else {
                    Err(serr(line, format!("{op:?} requires integers")))
                }
            }
            Shl | Shr => {
                if ta.is_integer() && tb.is_integer() {
                    Ok(ta.promote())
                } else {
                    Err(serr(line, "shift requires integers"))
                }
            }
            Lt | Gt | Le | Ge | Eq | Ne => {
                let ok = (ta.is_arith() && tb.is_arith())
                    || (ta.is_ptr() && tb.is_ptr())
                    || (ta.is_ptr() && matches!(b.kind, ExprKind::IntLit(0)))
                    || (tb.is_ptr() && matches!(a.kind, ExprKind::IntLit(0)));
                if ok {
                    Ok(Type::Int)
                } else {
                    Err(serr(line, format!("cannot compare {ta} and {tb}")))
                }
            }
            LogAnd | LogOr => {
                if is_scalar(&ta) && is_scalar(&tb) {
                    Ok(Type::Int)
                } else {
                    Err(serr(line, "&&/|| require scalar operands"))
                }
            }
        }
    }

    fn check_call(
        &mut self,
        callee: &Expr,
        args: &mut [Expr],
        line: u32,
    ) -> Result<Type, FrontError> {
        if let ExprKind::Var(VarRef::Builtin(b)) = &callee.kind {
            return self.check_builtin_call(*b, args, line);
        }
        let sig = match callee.ty.decay() {
            Type::Ptr(inner) => match *inner {
                Type::Func(sig) => *sig,
                other => return Err(serr(line, format!("calling non-function {other}"))),
            },
            Type::Func(sig) => *sig,
            other => return Err(serr(line, format!("calling non-function {other}"))),
        };
        // Pointers produced by compile() have unknown parameter lists
        // (dynamically constructed parameters); accept any arguments.
        let dynamic_sig = sig.params.is_empty() && !args.is_empty();
        if !dynamic_sig {
            if sig.params.len() != args.len() {
                return Err(serr(
                    line,
                    format!(
                        "expected {} arguments, got {}",
                        sig.params.len(),
                        args.len()
                    ),
                ));
            }
            for (p, a) in sig.params.iter().zip(args.iter()) {
                self.require_assignable(p, &a.ty, a.line)?;
            }
        }
        if args.len() > 6 {
            return Err(serr(
                line,
                "more than 6 arguments are not supported by this ABI",
            ));
        }
        Ok(sig.ret)
    }

    fn check_builtin_call(
        &mut self,
        b: Builtin,
        args: &mut [Expr],
        line: u32,
    ) -> Result<Type, FrontError> {
        let require = |n: usize| -> Result<(), FrontError> {
            if args.len() != n {
                Err(serr(line, format!("{b:?} expects {n} argument(s)")))
            } else {
                Ok(())
            }
        };
        match b {
            Builtin::Puts => {
                require(1)?;
                if !args[0].ty.decay().is_ptr() {
                    return Err(serr(line, "puts expects a string"));
                }
                Ok(Type::Void)
            }
            Builtin::Puti | Builtin::Putchar => {
                require(1)?;
                if !args[0].ty.is_integer() {
                    return Err(serr(line, "expected an integer"));
                }
                Ok(Type::Void)
            }
            Builtin::Putd => {
                require(1)?;
                if !args[0].ty.is_arith() {
                    return Err(serr(line, "putd expects a number"));
                }
                Ok(Type::Void)
            }
            Builtin::Printf => {
                if args.is_empty() || args.len() > 6 {
                    return Err(serr(line, "printf takes 1..=6 arguments"));
                }
                if !args[0].ty.decay().is_ptr() {
                    return Err(serr(line, "printf format must be a string"));
                }
                for a in &args[1..] {
                    if !is_scalar(&a.ty.decay()) {
                        return Err(serr(line, "printf arguments must be scalar"));
                    }
                }
                Ok(Type::Void)
            }
            Builtin::Malloc => {
                require(1)?;
                if !args[0].ty.is_integer() {
                    return Err(serr(line, "malloc expects a size"));
                }
                Ok(Type::Ptr(Box::new(Type::Void)))
            }
            Builtin::Abort => {
                require(0)?;
                Ok(Type::Void)
            }
        }
    }

    fn require_lvalue(&self, e: &Expr) -> Result<(), FrontError> {
        let ok = match &e.kind {
            ExprKind::Var(vr) => matches!(
                vr,
                VarRef::Local(_)
                    | VarRef::Global(_)
                    | VarRef::TickLocal(_)
                    | VarRef::TickFv(_)
                    | VarRef::TickVspec(_)
            ),
            ExprKind::Un(UnaryOp::Deref, _) => true,
            ExprKind::Index(..) => true,
            ExprKind::Member(..) => true,
            _ => false,
        };
        if ok {
            Ok(())
        } else {
            Err(serr(e.line, "expression is not an lvalue"))
        }
    }

    fn require_assignable(&self, dst: &Type, src: &Type, line: u32) -> Result<(), FrontError> {
        let s = src.decay();
        let ok = match dst {
            _ if dst.is_arith() => s.is_arith(),
            Type::Ptr(inner) => match &s {
                Type::Ptr(si) => {
                    **inner == **si
                        || **inner == Type::Void
                        || **si == Type::Void
                        || matches!(**inner, Type::Func(_))
                }
                _ if s.is_integer() => true, // e.g. NULL as 0; kept lax
                _ => false,
            },
            Type::Cspec(a) => matches!(&s, Type::Cspec(b) if a == b),
            Type::Vspec(a) => matches!(&s, Type::Vspec(b) if a == b),
            Type::Struct(i) => matches!(&s, Type::Struct(j) if i == j),
            Type::Void => true,
            _ => false,
        };
        if ok {
            Ok(())
        } else {
            Err(serr(line, format!("cannot assign {src} to {dst}")))
        }
    }

    fn check_global_init(&mut self, ty: &Type, init: Init) -> Result<Init, FrontError> {
        match (ty, init) {
            (Type::Array(elem, n), Init::List(items)) => {
                if items.len() as u64 > *n {
                    return Err(serr(0, "too many initializers"));
                }
                let out = items
                    .into_iter()
                    .map(|i| self.check_global_init(elem, i))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Init::List(out))
            }
            (_, Init::Expr(mut e)) => {
                self.check_expr(&mut e)?;
                match const_fold(&e) {
                    Some(folded) => Ok(Init::Expr(folded)),
                    None if matches!(e.kind, ExprKind::StrLit(_)) => Ok(Init::Expr(e)),
                    None => Err(serr(e.line, "global initializer must be constant")),
                }
            }
            (_, Init::List(_)) => Err(serr(0, "brace initializer on a scalar global")),
        }
    }
}

/// Constant-folds trivially constant expressions (for global
/// initializers).
fn const_fold(e: &Expr) -> Option<Expr> {
    match &e.kind {
        ExprKind::IntLit(_) | ExprKind::FloatLit(_) => Some(e.clone()),
        ExprKind::Un(UnaryOp::Neg, inner) => match const_fold(inner)?.kind {
            ExprKind::IntLit(v) => Some(Expr {
                kind: ExprKind::IntLit(-v),
                ty: e.ty.clone(),
                line: e.line,
            }),
            ExprKind::FloatLit(v) => Some(Expr {
                kind: ExprKind::FloatLit(-v),
                ty: e.ty.clone(),
                line: e.line,
            }),
            _ => None,
        },
        ExprKind::Cast(_, inner) => const_fold(inner),
        _ => None,
    }
}

fn is_scalar(t: &Type) -> bool {
    t.is_arith() || t.decay().is_ptr() || t.is_spec()
}

fn builtin_ty(b: Builtin) -> Type {
    let sig = match b {
        Builtin::Puts => FuncSig {
            ret: Type::Void,
            params: vec![Type::Ptr(Box::new(Type::Char))],
        },
        Builtin::Puti => FuncSig {
            ret: Type::Void,
            params: vec![Type::Int],
        },
        Builtin::Putd => FuncSig {
            ret: Type::Void,
            params: vec![Type::Double],
        },
        Builtin::Putchar => FuncSig {
            ret: Type::Void,
            params: vec![Type::Int],
        },
        Builtin::Printf => FuncSig {
            ret: Type::Void,
            params: vec![],
        },
        Builtin::Malloc => FuncSig {
            ret: Type::Ptr(Box::new(Type::Void)),
            params: vec![Type::Long],
        },
        Builtin::Abort => FuncSig {
            ret: Type::Void,
            params: vec![],
        },
    };
    Type::Func(Box::new(sig))
}
