//! The linker/loader: lays out globals and string literals in VM memory,
//! compiles every function, and fills the function table.
//!
//! Direct calls are routed through a function table in data memory so
//! compilation order never matters (and so `&f` has a well-defined value
//! before anything runs). The table is filled once all code is emitted.

use crate::lower::{lower_function, LinkEnv, OptLevel};
use crate::opt::optimize;
use std::collections::HashMap;
use tcc_front::ast::{ExprKind, Init, Program};
use tcc_front::types::Type;
use tcc_icode::{IcodeBuf, IcodeCompiler, Strategy};
use tcc_vm::{CodeSpace, Memory, VmError};

/// A loaded program image: code, initialized data memory, and symbol
/// addresses.
#[derive(Clone, Debug)]
pub struct Image {
    /// Emitted code.
    pub code: CodeSpace,
    /// Data memory with globals, strings and the function table placed.
    pub mem: Memory,
    /// Function addresses by function index.
    pub func_addrs: Vec<u64>,
    /// Function names (same order).
    pub func_names: Vec<String>,
    /// Global addresses by global index.
    pub global_addrs: Vec<u64>,
    /// VM address of the function table.
    pub fn_table: u64,
    /// Total instructions emitted for static code.
    pub static_insns: u64,
}

impl Image {
    /// Address of the function named `name`.
    pub fn addr_of(&self, name: &str) -> Option<u64> {
        let i = self.func_names.iter().position(|n| n == name)?;
        Some(self.func_addrs[i])
    }

    /// Address of the global named `name` (requires the original
    /// program).
    pub fn global_addr_of(&self, prog: &Program, name: &str) -> Option<u64> {
        let i = prog.globals.iter().position(|g| g.name == name)?;
        Some(self.global_addrs[i])
    }
}

struct Env {
    global_addrs: Vec<u64>,
    fn_table: u64,
    strings: HashMap<Vec<u8>, u64>,
    mem: Memory,
}

impl LinkEnv for Env {
    fn global_addr(&self, i: usize) -> u64 {
        self.global_addrs[i]
    }

    fn intern_str(&mut self, bytes: &[u8]) -> u64 {
        if let Some(&a) = self.strings.get(bytes) {
            return a;
        }
        let a = self
            .mem
            .alloc(bytes.len() as u64 + 1, 1)
            .expect("string space");
        self.mem.write_bytes(a, bytes).expect("in range");
        self.mem
            .store_u8(a + bytes.len() as u64, 0)
            .expect("in range");
        self.strings.insert(bytes.to_vec(), a);
        a
    }

    fn fn_table_entry(&self, i: usize) -> u64 {
        self.fn_table + 8 * i as u64
    }
}

/// Builds an image from an analyzed program with the fusion-aware
/// scheduler on (the default configuration).
///
/// # Errors
///
/// Fails if the data memory cannot hold the globals.
///
/// # Panics
///
/// Panics on lowering bugs (malformed programs are rejected by sema).
pub fn build_image(prog: &Program, opt: OptLevel, mem_size: usize) -> Result<Image, VmError> {
    build_image_scheduled(prog, opt, mem_size, true)
}

/// [`build_image`] with an explicit fusion-scheduler toggle. The
/// `icode_schedule` ablation knob must cover static code too: the
/// suite's `fused_pairs_icode_*` comparison translates every function a
/// kernel executes (setup, drivers, and the dynamic function alike), so
/// an unscheduled measurement that still schedules the static image
/// would understate what the scheduler contributes.
///
/// # Errors
///
/// Fails if the data memory cannot hold the globals.
///
/// # Panics
///
/// Panics on lowering bugs (malformed programs are rejected by sema).
pub fn build_image_scheduled(
    prog: &Program,
    opt: OptLevel,
    mem_size: usize,
    schedule: bool,
) -> Result<Image, VmError> {
    let mut mem = Memory::new(mem_size);
    // Globals.
    let mut global_addrs = Vec::new();
    for g in &prog.globals {
        let size = g.ty.size(&prog.structs);
        let align = g.ty.align(&prog.structs).max(8);
        global_addrs.push(mem.alloc(size, align)?);
    }
    // Function table.
    let fn_table = mem.alloc(8 * prog.funcs.len().max(1) as u64, 8)?;

    let mut env = Env {
        global_addrs,
        fn_table,
        strings: HashMap::new(),
        mem,
    };

    // Write global initializers (after env so strings can intern).
    for (g, addr) in prog.globals.iter().zip(env.global_addrs.clone()) {
        if let Some(init) = &g.init {
            write_init(&mut env, prog, &g.ty, addr, init)?;
        }
    }

    // Compile every function.
    let mut code = CodeSpace::new();
    let mut compiler = IcodeCompiler::new(Strategy::LinearScan);
    compiler.run_peephole = true;
    compiler.schedule_fusion = schedule;
    let mut func_addrs = Vec::new();
    let mut func_names = Vec::new();
    let mut static_insns = 0;
    for fi in 0..prog.funcs.len() {
        let mut buf: IcodeBuf = lower_function(prog, fi, opt, &mut env);
        if opt == OptLevel::Optimizing {
            optimize(&mut buf);
        }
        let r = compiler.compile(&mut code, &prog.funcs[fi].name, buf);
        func_addrs.push(r.func.addr);
        func_names.push(prog.funcs[fi].name.clone());
        static_insns += r.func.insns;
    }
    // Fill the function table.
    for (i, &a) in func_addrs.iter().enumerate() {
        env.mem.store_u64(fn_table + 8 * i as u64, a)?;
    }
    Ok(Image {
        code,
        mem: env.mem,
        func_addrs,
        func_names,
        global_addrs: env.global_addrs,
        fn_table,
        static_insns,
    })
}

fn write_init(
    env: &mut Env,
    prog: &Program,
    ty: &Type,
    addr: u64,
    init: &Init,
) -> Result<(), VmError> {
    match (ty, init) {
        (Type::Array(elem, _), Init::List(items)) => {
            let stride = elem.size(&prog.structs);
            for (i, item) in items.iter().enumerate() {
                write_init(env, prog, elem, addr + stride * i as u64, item)?;
            }
            Ok(())
        }
        (Type::Array(elem, _), Init::Expr(e)) if matches!(e.kind, ExprKind::StrLit(_)) => {
            let ExprKind::StrLit(bytes) = &e.kind else {
                unreachable!()
            };
            debug_assert_eq!(**elem, Type::Char);
            env.mem.write_bytes(addr, bytes)?;
            env.mem.store_u8(addr + bytes.len() as u64, 0)
        }
        (_, Init::Expr(e)) => {
            match (&e.kind, ty) {
                (ExprKind::StrLit(bytes), _) => {
                    let s = env.intern_str(bytes);
                    env.mem.store_u64(addr, s)
                }
                (ExprKind::IntLit(v), Type::Double) => env.mem.store_f64(addr, *v as f64),
                (ExprKind::FloatLit(v), Type::Double) => env.mem.store_f64(addr, *v),
                (ExprKind::IntLit(v), _) => match ty.size(&prog.structs) {
                    1 => env.mem.store_u8(addr, *v as u8),
                    2 => env.mem.store_u16(addr, *v as u16),
                    4 => env.mem.store_u32(addr, *v as u32),
                    _ => env.mem.store_u64(addr, *v as u64),
                },
                (ExprKind::FloatLit(v), _) => {
                    // float literal initializing an int global
                    env.mem.store_u32(addr, *v as i32 as u32)
                }
                other => panic!("unsupported constant initializer {other:?}"),
            }
        }
        (_, Init::List(_)) => panic!("sema rejects brace init on scalars"),
    }
}
