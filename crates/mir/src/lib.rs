//! # tcc-mir — static compilation: lowering, optimization, linking
//!
//! The static half of the tcc pipeline (paper Figure 1): the analyzed `C
//! program is lowered to the ICODE-level IR and compiled to VM binary by
//! one of **two static back ends**:
//!
//! * [`OptLevel::Naive`] — the lcc-like baseline: named locals live in
//!   memory, no mid-level optimization. "The assembly code emitted by
//!   [lcc's] traditional static back ends is usually significantly slower
//!   (even three or more times slower) than that emitted by optimizing
//!   compilers" — this back end plays that role, and per the paper it is
//!   the correct baseline for dynamic-code speedups because the CGFs are
//!   generated from the same IR-level decisions.
//! * [`OptLevel::Optimizing`] — the gcc-like comparator: register-resident
//!   locals, constant/copy propagation, local value-numbering CSE, dead
//!   code elimination, strength reduction, plus the global linear-scan
//!   register allocator.
//!
//! Tick expressions in static code lower to closure construction (arena
//! `hcall`, CGF index, captured fields); `compile` becomes a host call
//! into the `tcc` crate's dynamic compiler.
//!
//! [`build_image`] produces a runnable [`Image`]: code space, initialized
//! data memory (globals, strings, function table) and symbol addresses.
//!
//! ```rust
//! use tcc_mir::{build_image, OptLevel};
//! use tcc_vm::{Vm, NoHost};
//!
//! let prog = tcc_front::compile_unit(
//!     "int add(int a, int b) { return a + b; }",
//! ).expect("valid C");
//! let img = build_image(&prog, OptLevel::Optimizing, 1 << 20).expect("links");
//! let mut vm = Vm::from_parts(img.code.clone(), img.mem.clone(), NoHost);
//! assert_eq!(vm.call(img.addr_of("add").unwrap(), &[2, 40]).unwrap(), 42);
//! ```

pub mod linker;
pub mod lower;
pub mod opt;

pub use linker::{build_image, build_image_scheduled, Image};
pub use lower::{lower_function, LinkEnv, OptLevel};
pub use opt::optimize;

#[cfg(test)]
mod tests {
    use super::*;
    use tcc_vm::{NoHost, Vm};

    fn run(src: &str, func: &str, args: &[u64], opt: OptLevel) -> u64 {
        let prog = tcc_front::compile_unit(src).expect("compiles");
        let img = build_image(&prog, opt, 1 << 22).expect("links");
        let mut vm = Vm::from_parts(img.code.clone(), img.mem.clone(), NoHost);
        vm.call(img.addr_of(func).expect("function exists"), args)
            .expect("runs")
    }

    fn run_both(src: &str, func: &str, args: &[u64]) -> u64 {
        let a = run(src, func, args, OptLevel::Naive);
        let b = run(src, func, args, OptLevel::Optimizing);
        assert_eq!(a, b, "naive and optimizing back ends disagree");
        a
    }

    #[test]
    fn arithmetic_and_calls() {
        let src = r#"
            int square(int x) { return x * x; }
            int f(int a, int b) { return square(a) + square(b) + a / b - a % b; }
        "#;
        assert_eq!(run_both(src, "f", &[7, 3]) as i64, 49 + 9 + 2 - 1);
    }

    #[test]
    fn loops_and_locals() {
        let src = r#"
            int sum(int n) {
                int s = 0;
                int i;
                for (i = 1; i <= n; i++) s += i;
                return s;
            }
        "#;
        assert_eq!(run_both(src, "sum", &[100]), 5050);
    }

    #[test]
    fn while_do_break_continue() {
        let src = r#"
            int f(int n) {
                int s = 0;
                while (1) {
                    n--;
                    if (n < 0) break;
                    if (n % 2) continue;
                    s += n;
                }
                do { s += 1000; } while (0);
                return s;
            }
        "#;
        let expect: i64 = (0..10).filter(|x| x % 2 == 0).sum::<i64>() + 1000;
        assert_eq!(run_both(src, "f", &[10]) as i64, expect);
    }

    #[test]
    fn arrays_and_pointers() {
        let src = r#"
            int a[10];
            int f(int n) {
                int i;
                int *p;
                for (i = 0; i < n; i++) a[i] = i * i;
                p = a;
                p = p + 2;
                return *p + a[3] + p[1];
            }
        "#;
        assert_eq!(run_both(src, "f", &[10]), 4 + 9 + 9);
    }

    #[test]
    fn structs_members_and_copies() {
        let src = r#"
            struct rec { int a; int b; long c; };
            struct rec g;
            long f(void) {
                struct rec r;
                r.a = 3; r.b = 4; r.c = 100;
                g = r;
                g.b += 1;
                return g.a + g.b + g.c;
            }
        "#;
        assert_eq!(run_both(src, "f", &[]), 3 + 5 + 100);
    }

    #[test]
    fn struct_pointers_and_arrow() {
        let src = r#"
            struct node { int v; struct node *next; };
            int sum(struct node *n) {
                int s = 0;
                while (n) { s += n->v; n = n->next; }
                return s;
            }
            struct node a, b, c;
            int f(void) {
                a.v = 1; b.v = 2; c.v = 3;
                a.next = &b; b.next = &c; c.next = (struct node*)0;
                return sum(&a);
            }
        "#;
        assert_eq!(run_both(src, "f", &[]), 6);
    }

    #[test]
    fn function_pointers() {
        let src = r#"
            int add(int a, int b) { return a + b; }
            int mul(int a, int b) { return a * b; }
            int apply(int (*f)(int, int), int x, int y) { return f(x, y); }
            int g(int sel) {
                int (*f)(int, int);
                if (sel) f = add; else f = mul;
                return apply(f, 6, 7) + (*f)(2, 3);
            }
        "#;
        assert_eq!(run_both(src, "g", &[1]), 13 + 5);
        assert_eq!(run_both(src, "g", &[0]), 42 + 6);
    }

    #[test]
    fn recursion() {
        let src = "int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }";
        assert_eq!(run_both(src, "fib", &[15]), 610);
    }

    #[test]
    fn doubles_and_conversions() {
        let src = r#"
            double half(double x) { return x / 2.0; }
            int f(int n) {
                double d = n;
                d = half(d) + 0.25;
                return (int)(d * 4.0);
            }
        "#;
        assert_eq!(run_both(src, "f", &[10]), 21);
    }

    #[test]
    fn unsigned_semantics() {
        let src = r#"
            int f(unsigned a, unsigned b) {
                unsigned q = a / b;
                unsigned r = a % b;
                if (a > b) q += 100;
                return (int)(q + r);
            }
        "#;
        // a = 0xFFFFFFF0 (as unsigned), b = 16
        let a = 0xFFFF_FFF0u32 as i32 as i64 as u64;
        let got = run_both(src, "f", &[a, 16]);
        let q = 0xFFFF_FFF0u32 / 16 + 100;
        let r = 0xFFFF_FFF0u32 % 16;
        assert_eq!(got as u32, q + r);
    }

    #[test]
    fn char_short_narrowing() {
        let src = r#"
            int f(int x) {
                char c = (char)x;
                unsigned char u = (unsigned char)x;
                short s = (short)x;
                return c + u + s;
            }
        "#;
        let x = 0x1234_89ABu32 as i32;
        let expect = (x as i8) as i32 + (x as u8) as i32 + (x as i16) as i32;
        assert_eq!(run_both(src, "f", &[x as i64 as u64]) as i64, expect as i64);
    }

    #[test]
    fn globals_with_initializers() {
        let src = r#"
            int scale = 7;
            int table[5] = {1, 2, 3, 4, 5};
            double pi = 3.5;
            char msg[6] = "hello";
            int f(void) {
                return scale * table[2] + (int)pi + msg[1];
            }
        "#;
        assert_eq!(run_both(src, "f", &[]) as i64, 21 + 3 + 'e' as i64);
    }

    #[test]
    fn switch_with_fallthrough() {
        let src = r#"
            int f(int x) {
                int r = 0;
                switch (x) {
                    case 1: r += 1;
                    case 2: r += 2; break;
                    case 3: r += 3; break;
                    default: r = 99;
                }
                return r;
            }
        "#;
        assert_eq!(run_both(src, "f", &[1]), 3);
        assert_eq!(run_both(src, "f", &[2]), 2);
        assert_eq!(run_both(src, "f", &[3]), 3);
        assert_eq!(run_both(src, "f", &[7]), 99);
    }

    #[test]
    fn goto_and_labels() {
        let src = r#"
            int f(int n) {
                int s = 0;
                top:
                s += n;
                n--;
                if (n > 0) goto top;
                return s;
            }
        "#;
        assert_eq!(run_both(src, "f", &[4]), 10);
    }

    #[test]
    fn ternary_comma_logical() {
        let src = r#"
            int f(int a, int b) {
                int m = a > b ? a : b;
                int both = a && b;
                int either = a || b;
                int seq = (a++, a + b);
                return m * 1000 + both * 100 + either * 10 + (seq == a + b);
            }
        "#;
        assert_eq!(run_both(src, "f", &[3, 9]), 9 * 1000 + 100 + 10 + 1);
        assert_eq!(run_both(src, "f", &[0, 9]), (9 * 1000) + 10 + 1);
    }

    #[test]
    fn inc_dec_with_pointers() {
        let src = r#"
            int a[4] = {10, 20, 30, 40};
            int f(void) {
                int *p = a;
                int x = *p++;
                x += *p;
                ++p;
                x += *--p * 100;
                return x;
            }
        "#;
        assert_eq!(run_both(src, "f", &[]), 10 + 20 + 2000);
    }

    #[test]
    fn optimizing_backend_is_faster_on_loops() {
        let src = r#"
            int work(int n) {
                int s = 0;
                int i;
                for (i = 0; i < n; i++) s += i * 3 + (s >> 2);
                return s;
            }
        "#;
        let prog = tcc_front::compile_unit(src).unwrap();
        let cycles = |opt| {
            let img = build_image(&prog, opt, 1 << 22).unwrap();
            let mut vm = Vm::from_parts(img.code.clone(), img.mem.clone(), NoHost);
            let r1 = vm.call(img.addr_of("work").unwrap(), &[1000]).unwrap();
            (r1, vm.cycles())
        };
        let (r_naive, c_naive) = cycles(OptLevel::Naive);
        let (r_opt, c_opt) = cycles(OptLevel::Optimizing);
        assert_eq!(r_naive, r_opt);
        assert!(
            c_opt * 3 < c_naive * 2,
            "optimizing ({c_opt}) should be at least 1.5x faster than naive ({c_naive})"
        );
    }

    #[test]
    fn malloc_builtin() {
        let src = r#"
            int f(int n) {
                int *p = (int*)malloc(n * sizeof(int));
                int i;
                for (i = 0; i < n; i++) p[i] = i;
                return p[n-1];
            }
        "#;
        // malloc is a host call: install the standard handler inline.
        let prog = tcc_front::compile_unit(src).unwrap();
        let img = build_image(&prog, OptLevel::Optimizing, 1 << 22).unwrap();
        let host = |num: u32, st: &mut tcc_vm::interp::MachineState| match num {
            tcc_rt::hcalls::HC_MALLOC => {
                let size = st.arg(0);
                let a = st.mem.alloc(size, 8)?;
                st.set_ret(a);
                Ok(())
            }
            n => Err(tcc_vm::VmError::BadHostCall(n)),
        };
        let mut vm = Vm::from_parts(img.code.clone(), img.mem.clone(), host);
        assert_eq!(vm.call(img.addr_of("f").unwrap(), &[10]).unwrap(), 9);
    }
}
