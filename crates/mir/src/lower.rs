//! Lowering from the typed `C AST to the ICODE-level IR.
//!
//! One lowering serves both static back ends; the [`OptLevel`] only
//! changes where named locals live (memory for the lcc-like back end,
//! virtual registers for the gcc-like one — address-taken locals and
//! aggregates are always memory) and which optimization passes run
//! afterwards.
//!
//! Tick expressions lower to *closure construction* exactly as in the
//! paper's §4.2 example: allocate from the closure arena (a host call),
//! store the CGF index, then store each captured field — `$` run-time
//! constant values, free-variable addresses, nested cspec/vspec
//! pointers — in capture order.

use std::collections::HashMap;
use tcc_front::ast::*;
use tcc_front::types::Type;
use tcc_icode::{IcodeBuf, LblId, VReg};
use tcc_rt::{hcalls, ValKind};
use tcc_vcode::ops::{BinOp, LoadKind, StoreKind, UnOp};
use tcc_vcode::CodeSink;

/// Static back-end flavor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OptLevel {
    /// lcc-like: named locals live in memory; no mid-level optimization.
    Naive,
    /// gcc-like: register-resident locals plus the optimization pipeline.
    Optimizing,
}

/// Services the lowering needs from the linker: global placement, string
/// interning, and the function table.
pub trait LinkEnv {
    /// VM address of global `i`.
    fn global_addr(&self, i: usize) -> u64;
    /// Interns a NUL-terminated string; returns its VM address.
    fn intern_str(&mut self, bytes: &[u8]) -> u64;
    /// VM address of the function-table entry for function `i`.
    fn fn_table_entry(&self, i: usize) -> u64;
}

enum Slot {
    Reg(VReg),
    Mem(usize), // frame block index
}

enum Place {
    Var(VReg, Type),
    Mem { addr: VReg, off: i64, ty: Type },
}

/// Lowers `func` (by index) of `prog` into an [`IcodeBuf`].
pub fn lower_function(prog: &Program, fi: usize, opt: OptLevel, env: &mut dyn LinkEnv) -> IcodeBuf {
    let func = &prog.funcs[fi];
    let mut lw = Lower {
        prog,
        func,
        opt,
        env,
        buf: IcodeBuf::new(),
        slots: Vec::new(),
        break_stack: Vec::new(),
        continue_stack: Vec::new(),
        labels: HashMap::new(),
    };
    lw.run();
    lw.buf
}

struct Lower<'a> {
    prog: &'a Program,
    func: &'a FuncDef,
    opt: OptLevel,
    env: &'a mut dyn LinkEnv,
    buf: IcodeBuf,
    slots: Vec<Slot>,
    break_stack: Vec<LblId>,
    continue_stack: Vec<LblId>,
    labels: HashMap<String, LblId>,
}

fn load_kind(ty: &Type) -> LoadKind {
    match ty {
        Type::Char => LoadKind::I8,
        Type::UChar => LoadKind::U8,
        Type::Short => LoadKind::I16,
        Type::UShort => LoadKind::U16,
        Type::Int | Type::UInt => LoadKind::I32,
        Type::Long | Type::ULong => LoadKind::I64,
        Type::Double => LoadKind::F64,
        Type::Ptr(_) | Type::Func(_) | Type::Cspec(_) | Type::Vspec(_) => LoadKind::I64,
        other => panic!("no load kind for {other}"),
    }
}

fn store_kind(ty: &Type) -> StoreKind {
    match ty {
        Type::Char | Type::UChar => StoreKind::I8,
        Type::Short | Type::UShort => StoreKind::I16,
        Type::Int | Type::UInt => StoreKind::I32,
        Type::Long | Type::ULong => StoreKind::I64,
        Type::Double => StoreKind::F64,
        Type::Ptr(_) | Type::Func(_) | Type::Cspec(_) | Type::Vspec(_) => StoreKind::I64,
        other => panic!("no store kind for {other}"),
    }
}

/// Picks the (possibly unsigned) machine op for a C binary operator at
/// the given operand type.
pub fn machine_binop(op: BinaryOp, ty: &Type) -> BinOp {
    let unsigned = ty.is_unsigned() || ty.is_ptr();
    match op {
        BinaryOp::Add => BinOp::Add,
        BinaryOp::Sub => BinOp::Sub,
        BinaryOp::Mul => BinOp::Mul,
        BinaryOp::Div => {
            if unsigned {
                BinOp::DivU
            } else {
                BinOp::Div
            }
        }
        BinaryOp::Rem => {
            if unsigned {
                BinOp::RemU
            } else {
                BinOp::Rem
            }
        }
        BinaryOp::Shl => BinOp::Shl,
        BinaryOp::Shr => {
            if unsigned {
                BinOp::ShrU
            } else {
                BinOp::Shr
            }
        }
        BinaryOp::BitAnd => BinOp::And,
        BinaryOp::BitOr => BinOp::Or,
        BinaryOp::BitXor => BinOp::Xor,
        BinaryOp::Lt => {
            if unsigned {
                BinOp::LtU
            } else {
                BinOp::Lt
            }
        }
        BinaryOp::Gt => {
            if unsigned {
                BinOp::GtU
            } else {
                BinOp::Gt
            }
        }
        BinaryOp::Le => {
            if unsigned {
                BinOp::LeU
            } else {
                BinOp::Le
            }
        }
        BinaryOp::Ge => {
            if unsigned {
                BinOp::GeU
            } else {
                BinOp::Ge
            }
        }
        BinaryOp::Eq => BinOp::Eq,
        BinaryOp::Ne => BinOp::Ne,
        BinaryOp::LogAnd | BinaryOp::LogOr => panic!("short-circuit ops lowered separately"),
    }
}

impl<'a> Lower<'a> {
    fn structs(&self) -> &[tcc_front::types::StructDef] {
        &self.prog.structs
    }

    fn run(&mut self) {
        // Decide where each local lives and bind parameters.
        let (mut iw, mut fw) = (0usize, 0usize);
        for (i, l) in self.func.locals.iter().enumerate() {
            let in_mem = matches!(l.ty, Type::Array(..) | Type::Struct(_))
                || l.addr_taken
                || self.opt == OptLevel::Naive;
            if in_mem {
                let size = l.ty.size(self.structs());
                let b = self.buf.frame_block(size);
                self.slots.push(Slot::Mem(b));
            } else {
                let v = self.buf.vreg(l.ty.kind());
                self.slots.push(Slot::Reg(v));
            }
            if i < self.func.nparams {
                let k = l.ty.kind();
                let pos = if k == ValKind::F {
                    fw += 1;
                    fw - 1
                } else {
                    iw += 1;
                    iw - 1
                };
                let pv = self.buf.param(pos, k);
                match &self.slots[i] {
                    Slot::Reg(v) => {
                        let v = *v;
                        self.buf.un(UnOp::Mov, k, v, pv);
                    }
                    Slot::Mem(b) => {
                        let b = *b;
                        let addr = self.buf.vreg(ValKind::P);
                        self.buf.frame_addr(addr, b);
                        self.buf.store(store_kind(&l.ty), pv, addr, 0);
                    }
                }
            }
        }
        let body = self.func.body.clone();
        for s in &body {
            self.stmt(s);
        }
        // Implicit return for void functions falling off the end.
        self.buf.ret_void();
    }

    fn label_for(&mut self, name: &str) -> LblId {
        if let Some(l) = self.labels.get(name) {
            return *l;
        }
        let l = self.buf.label();
        self.labels.insert(name.to_string(), l);
        l
    }

    // ---- statements ------------------------------------------------------

    fn stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Expr(e) => {
                self.rvalue(e);
            }
            Stmt::Decl(items) => {
                for item in items {
                    if let Some(Init::Expr(e)) = &item.init {
                        let v = self.rvalue(e);
                        let v = self.coerce(v, &e.ty, &item.ty);
                        self.store_local(item.local_id, &item.ty, v);
                    }
                }
            }
            Stmt::If(c, t, e) => {
                let lelse = self.buf.label();
                let lend = self.buf.label();
                self.cond_branch(c, None, Some(lelse));
                self.stmt(t);
                if e.is_some() {
                    self.buf.jmp(lend);
                }
                self.buf.bind(lelse);
                if let Some(e) = e {
                    self.stmt(e);
                }
                self.buf.bind(lend);
            }
            Stmt::While(c, body) => {
                let ltop = self.buf.label();
                let lcond = self.buf.label();
                let lend = self.buf.label();
                self.buf.jmp(lcond);
                self.buf.loop_begin();
                self.buf.bind(ltop);
                self.break_stack.push(lend);
                self.continue_stack.push(lcond);
                self.stmt(body);
                self.break_stack.pop();
                self.continue_stack.pop();
                self.buf.bind(lcond);
                self.cond_branch(c, Some(ltop), None);
                self.buf.loop_end();
                self.buf.bind(lend);
            }
            Stmt::DoWhile(body, c) => {
                let ltop = self.buf.label();
                let lcond = self.buf.label();
                let lend = self.buf.label();
                self.buf.loop_begin();
                self.buf.bind(ltop);
                self.break_stack.push(lend);
                self.continue_stack.push(lcond);
                self.stmt(body);
                self.break_stack.pop();
                self.continue_stack.pop();
                self.buf.bind(lcond);
                self.cond_branch(c, Some(ltop), None);
                self.buf.loop_end();
                self.buf.bind(lend);
            }
            Stmt::For(init, cond, step, body) => {
                if let Some(i) = init {
                    self.stmt(i);
                }
                let ltop = self.buf.label();
                let lcond = self.buf.label();
                let lstep = self.buf.label();
                let lend = self.buf.label();
                self.buf.jmp(lcond);
                self.buf.loop_begin();
                self.buf.bind(ltop);
                self.break_stack.push(lend);
                self.continue_stack.push(lstep);
                self.stmt(body);
                self.break_stack.pop();
                self.continue_stack.pop();
                self.buf.bind(lstep);
                if let Some(st) = step {
                    self.rvalue(st);
                }
                self.buf.bind(lcond);
                match cond {
                    Some(c) => self.cond_branch(c, Some(ltop), None),
                    None => self.buf.jmp(ltop),
                }
                self.buf.loop_end();
                self.buf.bind(lend);
            }
            Stmt::Return(e) => {
                match e {
                    Some(e) => {
                        let v = self.rvalue(e);
                        let ret_ty = self.func.sig.ret.clone();
                        let v = self.coerce(v, &e.ty, &ret_ty);
                        self.buf.ret_val(ret_ty.kind(), v);
                    }
                    None => self.buf.ret_void(),
                };
            }
            Stmt::Break => {
                let l = *self.break_stack.last().expect("sema checked break");
                self.buf.jmp(l);
            }
            Stmt::Continue => {
                let l = *self.continue_stack.last().expect("sema checked continue");
                self.buf.jmp(l);
            }
            Stmt::Block(stmts) => {
                for s in stmts {
                    self.stmt(s);
                }
            }
            Stmt::Switch(scrut, items) => {
                let sv = self.rvalue(scrut);
                let lend = self.buf.label();
                // One label per case item, plus default.
                let mut case_labels = Vec::new();
                let mut default_label = None;
                for item in items {
                    match item {
                        SwitchItem::Case(v) => {
                            let l = self.buf.label();
                            case_labels.push((*v, l));
                        }
                        SwitchItem::Default => {
                            default_label = Some(self.buf.label());
                        }
                        SwitchItem::Stmt(_) => {}
                    }
                }
                let k = scrut.ty.kind();
                for (v, l) in &case_labels {
                    let c = self.buf.vreg(k);
                    self.buf.li(c, *v);
                    self.buf.br_cmp(BinOp::Eq, k, sv, c, *l);
                }
                self.buf.jmp(default_label.unwrap_or(lend));
                self.break_stack.push(lend);
                let mut case_i = 0;
                for item in items {
                    match item {
                        SwitchItem::Case(_) => {
                            let (_, l) = case_labels[case_i];
                            case_i += 1;
                            self.buf.bind(l);
                        }
                        SwitchItem::Default => {
                            self.buf.bind(default_label.expect("collected above"));
                        }
                        SwitchItem::Stmt(s) => self.stmt(s),
                    }
                }
                self.break_stack.pop();
                self.buf.bind(lend);
            }
            Stmt::Goto(name) => {
                let l = self.label_for(name);
                self.buf.jmp(l);
            }
            Stmt::Labeled(name, inner) => {
                let l = self.label_for(name);
                self.buf.bind(l);
                self.stmt(inner);
            }
            Stmt::Empty => {}
        }
    }

    /// Branches on a condition. `ltrue`/`lfalse`: branch target when the
    /// condition holds / fails; `None` means fall through.
    fn cond_branch(&mut self, e: &Expr, ltrue: Option<LblId>, lfalse: Option<LblId>) {
        match &e.kind {
            ExprKind::Bin(op, a, b)
                if matches!(
                    op,
                    BinaryOp::Lt
                        | BinaryOp::Gt
                        | BinaryOp::Le
                        | BinaryOp::Ge
                        | BinaryOp::Eq
                        | BinaryOp::Ne
                ) =>
            {
                let common = a.ty.decay().is_arith() && b.ty.decay().is_arith();
                let ty = if common {
                    a.ty.usual_arith(&b.ty)
                } else {
                    a.ty.decay()
                };
                let va = self.rvalue(a);
                let va = self.coerce(va, &a.ty, &ty);
                let vb = self.rvalue(b);
                let vb = self.coerce(vb, &b.ty, &ty);
                let mop = machine_binop(*op, &ty);
                let k = ty.kind();
                match (ltrue, lfalse) {
                    (Some(lt), None) => self.buf.br_cmp(mop, k, va, vb, lt),
                    (None, Some(lf)) => {
                        let neg = mop.negated().expect("comparison");
                        self.buf.br_cmp(neg, k, va, vb, lf);
                    }
                    (Some(lt), Some(lf)) => {
                        self.buf.br_cmp(mop, k, va, vb, lt);
                        self.buf.jmp(lf);
                    }
                    (None, None) => {}
                }
            }
            ExprKind::Un(UnaryOp::LogNot, inner) => self.cond_branch(inner, lfalse, ltrue),
            ExprKind::Bin(BinaryOp::LogAnd, a, b) => {
                let lskip = self.buf.label();
                self.cond_branch(a, None, Some(lfalse.unwrap_or(lskip)));
                self.cond_branch(b, ltrue, lfalse);
                self.buf.bind(lskip);
            }
            ExprKind::Bin(BinaryOp::LogOr, a, b) => {
                let lskip = self.buf.label();
                self.cond_branch(a, Some(ltrue.unwrap_or(lskip)), None);
                self.cond_branch(b, ltrue, lfalse);
                self.buf.bind(lskip);
            }
            _ => {
                let v = self.rvalue(e);
                match (ltrue, lfalse) {
                    (Some(lt), None) => self.buf.br_true(v, lt),
                    (None, Some(lf)) => self.buf.br_false(v, lf),
                    (Some(lt), Some(lf)) => {
                        self.buf.br_true(v, lt);
                        self.buf.jmp(lf);
                    }
                    (None, None) => {}
                }
            }
        }
    }

    // ---- places ----------------------------------------------------------

    fn local_place(&mut self, id: usize, ty: &Type) -> Place {
        match &self.slots[id] {
            Slot::Reg(v) => Place::Var(*v, ty.clone()),
            Slot::Mem(b) => {
                let b = *b;
                let addr = self.buf.vreg(ValKind::P);
                self.buf.frame_addr(addr, b);
                Place::Mem {
                    addr,
                    off: 0,
                    ty: ty.clone(),
                }
            }
        }
    }

    fn place(&mut self, e: &Expr) -> Place {
        match &e.kind {
            ExprKind::Var(VarRef::Local(i)) => self.local_place(*i, &e.ty),
            ExprKind::Var(VarRef::Global(g)) => {
                let addr = self.buf.vreg(ValKind::P);
                let a = self.env.global_addr(*g);
                self.buf.li(addr, a as i64);
                Place::Mem {
                    addr,
                    off: 0,
                    ty: e.ty.clone(),
                }
            }
            ExprKind::Un(UnaryOp::Deref, inner) => {
                let addr = self.rvalue(inner);
                Place::Mem {
                    addr,
                    off: 0,
                    ty: e.ty.clone(),
                }
            }
            ExprKind::Index(base, idx) => {
                let bt = base.ty.decay();
                let elem = match &bt {
                    Type::Ptr(t) => (**t).clone(),
                    _ => panic!("sema guarantees pointer"),
                };
                let size = elem.size(self.structs()) as i64;
                let bv = self.rvalue(base);
                if let ExprKind::IntLit(c) = idx.kind {
                    return Place::Mem {
                        addr: bv,
                        off: c * size,
                        ty: e.ty.clone(),
                    };
                }
                let iv = self.rvalue(idx);
                let iv = self.coerce(iv, &idx.ty, &Type::Long);
                let scaled = self.buf.vreg(ValKind::D);
                self.buf.bin_imm(BinOp::Mul, ValKind::D, scaled, iv, size);
                let addr = self.buf.vreg(ValKind::P);
                self.buf.bin(BinOp::Add, ValKind::P, addr, bv, scaled);
                Place::Mem {
                    addr,
                    off: 0,
                    ty: e.ty.clone(),
                }
            }
            ExprKind::Member(base, _, arrow, offset) => {
                if *arrow {
                    let bv = self.rvalue(base);
                    Place::Mem {
                        addr: bv,
                        off: *offset as i64,
                        ty: e.ty.clone(),
                    }
                } else {
                    match self.place(base) {
                        Place::Mem { addr, off, .. } => Place::Mem {
                            addr,
                            off: off + *offset as i64,
                            ty: e.ty.clone(),
                        },
                        Place::Var(..) => panic!("struct locals always live in memory"),
                    }
                }
            }
            other => panic!("not a place: {other:?}"),
        }
    }

    fn load_place(&mut self, p: &Place) -> VReg {
        match p {
            Place::Var(v, _) => *v,
            Place::Mem { addr, off, ty } => {
                // Aggregates "load" as their address.
                if matches!(ty, Type::Array(..) | Type::Struct(_)) {
                    if *off == 0 {
                        return *addr;
                    }
                    let v = self.buf.vreg(ValKind::P);
                    self.buf.bin_imm(BinOp::Add, ValKind::P, v, *addr, *off);
                    return v;
                }
                let v = self.buf.vreg(ty.kind());
                self.buf.load(load_kind(ty), v, *addr, *off);
                v
            }
        }
    }

    fn store_place(&mut self, p: &Place, v: VReg) {
        match p {
            Place::Var(dst, ty) => {
                let (dst, k) = (*dst, ty.kind());
                self.buf.un(UnOp::Mov, k, dst, v);
                // Narrow sub-int register locals to keep canonical form.
                self.narrow_in_place(dst, ty);
            }
            Place::Mem { addr, off, ty } => {
                self.buf.store(store_kind(ty), v, *addr, *off);
            }
        }
    }

    fn narrow_in_place(&mut self, v: VReg, ty: &Type) {
        match ty {
            Type::Char => {
                self.buf.bin_imm(BinOp::Shl, ValKind::W, v, v, 24);
                self.buf.bin_imm(BinOp::Shr, ValKind::W, v, v, 24);
            }
            Type::UChar => self.buf.bin_imm(BinOp::And, ValKind::W, v, v, 0xff),
            Type::Short => {
                self.buf.bin_imm(BinOp::Shl, ValKind::W, v, v, 16);
                self.buf.bin_imm(BinOp::Shr, ValKind::W, v, v, 16);
            }
            Type::UShort => self.buf.bin_imm(BinOp::And, ValKind::W, v, v, 0xffff),
            _ => {}
        }
    }

    fn store_local(&mut self, id: usize, ty: &Type, v: VReg) {
        let p = self.local_place(id, ty);
        self.store_place(&p, v);
    }

    // ---- conversions -----------------------------------------------------

    /// Converts `v` from type `from` to type `to`, emitting code as
    /// needed; returns the converted value.
    fn coerce(&mut self, v: VReg, from: &Type, to: &Type) -> VReg {
        let from = from.decay();
        let to = to.clone();
        if from == to {
            return v;
        }
        let (fk, tk) = (from.kind(), to.kind());
        match (fk, tk) {
            (ValKind::F, ValKind::F) => v,
            (ValKind::F, ValKind::W) => {
                let d = self.buf.vreg(ValKind::W);
                self.buf.un(UnOp::CvtFtoW, ValKind::W, d, v);
                d
            }
            (ValKind::F, _) => {
                let d = self.buf.vreg(tk);
                self.buf.un(UnOp::CvtFtoL, tk, d, v);
                d
            }
            (ValKind::W, ValKind::F) => {
                let d = self.buf.vreg(ValKind::F);
                if from.is_unsigned() {
                    // zero-extend to 64 bits first so the value is exact
                    let z = self.buf.vreg(ValKind::D);
                    self.buf.bin_imm(BinOp::And, ValKind::D, z, v, 0xffff_ffff);
                    self.buf.un(UnOp::CvtLtoF, ValKind::F, d, z);
                } else {
                    self.buf.un(UnOp::CvtWtoF, ValKind::F, d, v);
                }
                d
            }
            (_, ValKind::F) => {
                let d = self.buf.vreg(ValKind::F);
                self.buf.un(UnOp::CvtLtoF, ValKind::F, d, v);
                d
            }
            (ValKind::W, ValKind::D | ValKind::P) => {
                if from.is_unsigned() {
                    let d = self.buf.vreg(tk);
                    self.buf.bin_imm(BinOp::And, ValKind::D, d, v, 0xffff_ffff);
                    d
                } else {
                    v // already sign-extended canonical
                }
            }
            (ValKind::D | ValKind::P, ValKind::W) => {
                let d = self.buf.vreg(ValKind::W);
                self.buf.un(UnOp::Mov, ValKind::W, d, v); // truncating move
                self.narrow_in_place(d, &to);
                d
            }
            (ValKind::W, ValKind::W) => {
                // Width/sign change within the 32-bit world.
                if to.size(self.structs()) < from.size(self.structs())
                    || (to.size(self.structs()) == from.size(self.structs())
                        && to.is_unsigned() != from.is_unsigned()
                        && to.size(self.structs()) < 4)
                {
                    let d = self.buf.vreg(ValKind::W);
                    self.buf.un(UnOp::Mov, ValKind::W, d, v);
                    self.narrow_in_place(d, &to);
                    d
                } else {
                    v
                }
            }
            (ValKind::D | ValKind::P, ValKind::D | ValKind::P) => v,
        }
    }

    // ---- expressions -----------------------------------------------------

    fn rvalue(&mut self, e: &Expr) -> VReg {
        match &e.kind {
            ExprKind::IntLit(v) => {
                let d = self.buf.vreg(e.ty.kind());
                self.buf.li(d, *v);
                d
            }
            ExprKind::FloatLit(v) => {
                let d = self.buf.vreg(ValKind::F);
                self.buf.lif(d, *v);
                d
            }
            ExprKind::StrLit(bytes) => {
                let addr = self.env.intern_str(bytes);
                let d = self.buf.vreg(ValKind::P);
                self.buf.li(d, addr as i64);
                d
            }
            ExprKind::Var(VarRef::Func(fi)) => {
                let d = self.buf.vreg(ValKind::P);
                let entry = self.env.fn_table_entry(*fi);
                self.buf.li(d, entry as i64);
                let v = self.buf.vreg(ValKind::P);
                self.buf.load(LoadKind::I64, v, d, 0);
                v
            }
            ExprKind::Var(VarRef::Builtin(_)) => panic!("builtins can only be called"),
            ExprKind::Var(_) | ExprKind::Index(..) | ExprKind::Member(..) => {
                let p = self.place(e);
                self.load_place(&p)
            }
            ExprKind::Un(UnaryOp::Deref, _) => {
                if matches!(e.ty, Type::Func(_)) {
                    // *fp where fp is a function pointer: the value is fp.
                    let ExprKind::Un(_, inner) = &e.kind else {
                        unreachable!()
                    };
                    return self.rvalue(inner);
                }
                let p = self.place(e);
                self.load_place(&p)
            }
            ExprKind::Un(op, inner) => self.unary(*op, inner, e),
            ExprKind::PreIncDec(inner, inc) => self.incdec(inner, *inc, false),
            ExprKind::PostIncDec(inner, inc) => self.incdec(inner, *inc, true),
            ExprKind::Bin(op, a, b) => self.binary(*op, a, b, e),
            ExprKind::Assign(op, lhs, rhs) => self.assign(op, lhs, rhs),
            ExprKind::Call(callee, args) => self.call(callee, args, e),
            ExprKind::Cast(ty, inner) => {
                if *ty == Type::Void {
                    let v = self.rvalue(inner);
                    return v;
                }
                let v = self.rvalue(inner);
                self.coerce(v, &inner.ty, ty)
            }
            ExprKind::Cond(c, t, f) => {
                let k = if e.ty == Type::Void {
                    ValKind::W
                } else {
                    e.ty.kind()
                };
                let d = self.buf.vreg(k);
                let lf = self.buf.label();
                let lend = self.buf.label();
                self.cond_branch(c, None, Some(lf));
                let tv = self.rvalue(t);
                let tv = self.coerce(tv, &t.ty, &e.ty);
                self.buf.un(UnOp::Mov, k, d, tv);
                self.buf.jmp(lend);
                self.buf.bind(lf);
                let fv = self.rvalue(f);
                let fv = self.coerce(fv, &f.ty, &e.ty);
                self.buf.un(UnOp::Mov, k, d, fv);
                self.buf.bind(lend);
                d
            }
            ExprKind::Comma(a, b) => {
                self.rvalue(a);
                self.rvalue(b)
            }
            ExprKind::Tick(tid) => self.build_closure(*tid),
            ExprKind::CompileExpr(c, ty) => {
                let cv = self.rvalue(c);
                // Second argument: the declared return kind (255 = void),
                // so the dynamic compiler knows what `return` must produce.
                let kc = self.buf.vreg(ValKind::W);
                let code = if *ty == Type::Void {
                    255
                } else {
                    ty.kind().code() as i64
                };
                self.buf.li(kc, code);
                let d = self.buf.vreg(ValKind::P);
                self.buf.hcall(
                    hcalls::HC_COMPILE,
                    &[(ValKind::P, cv), (ValKind::W, kc)],
                    Some((ValKind::P, d)),
                );
                d
            }
            ExprKind::LocalForm(ty) => {
                let kc = self.buf.vreg(ValKind::W);
                self.buf.li(kc, ty.kind().code() as i64);
                let d = self.buf.vreg(ValKind::P);
                self.buf
                    .hcall(hcalls::HC_LOCAL, &[(ValKind::W, kc)], Some((ValKind::P, d)));
                d
            }
            ExprKind::ParamForm(ty, idx) => {
                let kc = self.buf.vreg(ValKind::W);
                self.buf.li(kc, ty.kind().code() as i64);
                let iv = self.rvalue(idx);
                let d = self.buf.vreg(ValKind::P);
                self.buf.hcall(
                    hcalls::HC_PARAM,
                    &[(ValKind::W, kc), (ValKind::W, iv)],
                    Some((ValKind::P, d)),
                );
                d
            }
            ExprKind::LabelForm => {
                let d = self.buf.vreg(ValKind::P);
                self.buf
                    .hcall(hcalls::HC_LABEL_OBJ, &[], Some((ValKind::P, d)));
                d
            }
            ExprKind::JumpForm(_) => panic!("sema restricts jump() to tick bodies"),
            ExprKind::ArglistNew => {
                let d = self.buf.vreg(ValKind::P);
                self.buf
                    .hcall(hcalls::HC_ARGLIST_NEW, &[], Some((ValKind::P, d)));
                d
            }
            ExprKind::ArglistPush(l, c) => {
                let lv = self.rvalue(l);
                let cv = self.rvalue(c);
                self.buf.hcall(
                    hcalls::HC_ARGLIST_PUSH,
                    &[(ValKind::P, lv), (ValKind::P, cv)],
                    None,
                );
                VReg::NONE
            }
            ExprKind::Apply(..) => panic!("sema restricts apply() to tick bodies"),
            ExprKind::Ident(_) | ExprKind::TickRaw(_) | ExprKind::Dollar(_) => {
                panic!("sema leaves no {:?}", e.kind)
            }
            ExprKind::SizeofT(_) | ExprKind::SizeofE(_) => panic!("sema folds sizeof"),
        }
    }

    fn unary(&mut self, op: UnaryOp, inner: &Expr, e: &Expr) -> VReg {
        match op {
            UnaryOp::Neg => {
                let v = self.rvalue(inner);
                let v = self.coerce(v, &inner.ty, &e.ty);
                let d = self.buf.vreg(e.ty.kind());
                self.buf.un(UnOp::Neg, e.ty.kind(), d, v);
                d
            }
            UnaryOp::BitNot => {
                let v = self.rvalue(inner);
                let v = self.coerce(v, &inner.ty, &e.ty);
                let d = self.buf.vreg(e.ty.kind());
                self.buf.un(UnOp::Not, e.ty.kind(), d, v);
                d
            }
            UnaryOp::LogNot => {
                let v = self.rvalue(inner);
                let k = inner.ty.decay().kind();
                let z = self.buf.vreg(k);
                self.buf.li(z, 0);
                let d = self.buf.vreg(ValKind::W);
                self.buf.bin(
                    BinOp::Eq,
                    if k == ValKind::F { ValKind::F } else { k },
                    d,
                    v,
                    z,
                );
                d
            }
            UnaryOp::Addr => {
                let p = self.place(inner);
                match p {
                    Place::Mem { addr, off, .. } => {
                        if off == 0 {
                            addr
                        } else {
                            let d = self.buf.vreg(ValKind::P);
                            self.buf.bin_imm(BinOp::Add, ValKind::P, d, addr, off);
                            d
                        }
                    }
                    Place::Var(..) => panic!("address-taken locals live in memory"),
                }
            }
            UnaryOp::Deref => unreachable!("handled in rvalue"),
        }
    }

    fn incdec(&mut self, inner: &Expr, inc: bool, post: bool) -> VReg {
        let ty = inner.ty.decay();
        let k = ty.kind();
        let delta: i64 = match &ty {
            Type::Ptr(t) => t.size(self.structs()) as i64,
            _ => 1,
        };
        let delta = if inc { delta } else { -delta };
        let p = self.place(inner);
        let old = self.load_place(&p);
        let oldc = if post {
            // Preserve the old value against the in-place update.
            let c = self.buf.vreg(k);
            self.buf.un(UnOp::Mov, k, c, old);
            c
        } else {
            old
        };
        let newv = self.buf.vreg(k);
        if ty == Type::Double {
            let dv = self.buf.vreg(ValKind::F);
            self.buf.lif(dv, delta as f64);
            self.buf.bin(BinOp::Add, ValKind::F, newv, old, dv);
        } else {
            self.buf.bin_imm(BinOp::Add, k, newv, old, delta);
        }
        self.store_place(&p, newv);
        if post {
            oldc
        } else {
            // The stored value may have been narrowed; reload from place.
            self.load_place(&p)
        }
    }

    fn binary(&mut self, op: BinaryOp, a: &Expr, b: &Expr, e: &Expr) -> VReg {
        use BinaryOp::*;
        match op {
            LogAnd | LogOr => {
                let d = self.buf.vreg(ValKind::W);
                let lfalse = self.buf.label();
                let ltrue = self.buf.label();
                let lend = self.buf.label();
                self.cond_branch(e, Some(ltrue), Some(lfalse));
                self.buf.bind(ltrue);
                self.buf.li(d, 1);
                self.buf.jmp(lend);
                self.buf.bind(lfalse);
                self.buf.li(d, 0);
                self.buf.bind(lend);
                return d;
            }
            _ => {}
        }
        let ta = a.ty.decay();
        let tb = b.ty.decay();
        // Pointer arithmetic.
        if (op == Add || op == Sub) && ta.is_ptr() && tb.is_integer() {
            let elem = match &ta {
                Type::Ptr(t) => t.size(self.structs()) as i64,
                _ => unreachable!(),
            };
            let pv = self.rvalue(a);
            if let ExprKind::IntLit(c) = b.kind {
                let d = self.buf.vreg(ValKind::P);
                let off = if op == Add { c * elem } else { -c * elem };
                self.buf.bin_imm(BinOp::Add, ValKind::P, d, pv, off);
                return d;
            }
            let iv = self.rvalue(b);
            let iv = self.coerce(iv, &tb, &Type::Long);
            let scaled = self.buf.vreg(ValKind::D);
            self.buf.bin_imm(BinOp::Mul, ValKind::D, scaled, iv, elem);
            let d = self.buf.vreg(ValKind::P);
            let mop = if op == Add { BinOp::Add } else { BinOp::Sub };
            self.buf.bin(mop, ValKind::P, d, pv, scaled);
            return d;
        }
        if op == Add && ta.is_integer() && tb.is_ptr() {
            return self.binary(Add, b, a, e);
        }
        if op == Sub && ta.is_ptr() && tb.is_ptr() {
            let elem = match &ta {
                Type::Ptr(t) => t.size(self.structs()) as i64,
                _ => unreachable!(),
            };
            let av = self.rvalue(a);
            let bv = self.rvalue(b);
            let diff = self.buf.vreg(ValKind::D);
            self.buf.bin(BinOp::Sub, ValKind::D, diff, av, bv);
            let d = self.buf.vreg(ValKind::D);
            self.buf.bin_imm(BinOp::Div, ValKind::D, d, diff, elem);
            return d;
        }
        // Comparisons: operate at the common operand type, result W.
        let cmp = matches!(op, Lt | Gt | Le | Ge | Eq | Ne);
        let common = if cmp {
            if ta.is_arith() && tb.is_arith() {
                ta.usual_arith(&tb)
            } else {
                ta.clone()
            }
        } else {
            e.ty.clone()
        };
        let va = self.rvalue(a);
        let va = self.coerce(va, &ta, &common);
        // Constant right operands use the strength-reduced immediate
        // forms (integer non-comparison ops only).
        if !cmp && common.kind() != ValKind::F {
            if let ExprKind::IntLit(c) = b.kind {
                let d = self.buf.vreg(common.kind());
                self.buf
                    .bin_imm(machine_binop(op, &common), common.kind(), d, va, c);
                return d;
            }
        }
        let vb = self.rvalue(b);
        let vb = self.coerce(vb, &tb, &common);
        let k = common.kind();
        let d = self.buf.vreg(if cmp { ValKind::W } else { k });
        self.buf.bin(machine_binop(op, &common), k, d, va, vb);
        d
    }

    fn assign(&mut self, op: &Option<BinaryOp>, lhs: &Expr, rhs: &Expr) -> VReg {
        // Struct assignment: block copy.
        if let Type::Struct(si) = &lhs.ty {
            assert!(op.is_none(), "compound assignment on struct");
            let size = self.prog.structs[*si].size;
            let dst = self.place(lhs);
            let src = self.place(rhs);
            let (da, doff) = match &dst {
                Place::Mem { addr, off, .. } => (*addr, *off),
                _ => panic!("struct place"),
            };
            let (sa, soff) = match &src {
                Place::Mem { addr, off, .. } => (*addr, *off),
                _ => panic!("struct place"),
            };
            let mut copied = 0u64;
            while copied + 8 <= size {
                let t = self.buf.vreg(ValKind::D);
                self.buf.load(LoadKind::I64, t, sa, soff + copied as i64);
                self.buf.store(StoreKind::I64, t, da, doff + copied as i64);
                copied += 8;
            }
            while copied + 4 <= size {
                let t = self.buf.vreg(ValKind::W);
                self.buf.load(LoadKind::I32, t, sa, soff + copied as i64);
                self.buf.store(StoreKind::I32, t, da, doff + copied as i64);
                copied += 4;
            }
            while copied < size {
                let t = self.buf.vreg(ValKind::W);
                self.buf.load(LoadKind::U8, t, sa, soff + copied as i64);
                self.buf.store(StoreKind::I8, t, da, doff + copied as i64);
                copied += 1;
            }
            return da;
        }
        let p = self.place(lhs);
        let v = match op {
            None => {
                let v = self.rvalue(rhs);
                self.coerce(v, &rhs.ty, &lhs.ty)
            }
            Some(op) => {
                // lhs = lhs op rhs, with the usual conversions.
                let cur = self.load_place(&p);
                let ta = lhs.ty.decay();
                let tb = rhs.ty.decay();
                if ta.is_ptr() {
                    let elem = match &ta {
                        Type::Ptr(t) => t.size(self.structs()) as i64,
                        _ => unreachable!(),
                    };
                    let iv = self.rvalue(rhs);
                    let iv = self.coerce(iv, &tb, &Type::Long);
                    let scaled = self.buf.vreg(ValKind::D);
                    self.buf.bin_imm(BinOp::Mul, ValKind::D, scaled, iv, elem);
                    let d = self.buf.vreg(ValKind::P);
                    let mop = if *op == BinaryOp::Add {
                        BinOp::Add
                    } else {
                        BinOp::Sub
                    };
                    self.buf.bin(mop, ValKind::P, d, cur, scaled);
                    d
                } else {
                    let common = if ta.is_arith() && tb.is_arith() {
                        ta.usual_arith(&tb)
                    } else {
                        ta.clone()
                    };
                    let cv = self.coerce(cur, &ta, &common);
                    let d = self.buf.vreg(common.kind());
                    if common.kind() != ValKind::F {
                        if let ExprKind::IntLit(c) = rhs.kind {
                            self.buf
                                .bin_imm(machine_binop(*op, &common), common.kind(), d, cv, c);
                            let out = self.coerce(d, &common, &lhs.ty);
                            self.store_place(&p, out);
                            return self.load_place(&p);
                        }
                    }
                    let rv = self.rvalue(rhs);
                    let rv = self.coerce(rv, &tb, &common);
                    self.buf
                        .bin(machine_binop(*op, &common), common.kind(), d, cv, rv);
                    self.coerce(d, &common, &lhs.ty)
                }
            }
        };
        self.store_place(&p, v);
        self.load_place(&p)
    }

    fn call(&mut self, callee: &Expr, args: &[Expr], e: &Expr) -> VReg {
        // Builtins become host calls.
        if let ExprKind::Var(VarRef::Builtin(b)) = &callee.kind {
            return self.builtin_call(*b, args, e);
        }
        // Evaluate arguments, coercing to parameter types when known.
        let param_tys: Vec<Option<Type>> = match callee.ty.decay() {
            Type::Ptr(inner) => match *inner {
                Type::Func(sig) if sig.params.len() == args.len() => {
                    sig.params.iter().cloned().map(Some).collect()
                }
                _ => vec![None; args.len()],
            },
            _ => vec![None; args.len()],
        };
        let mut lowered = Vec::new();
        for (a, pt) in args.iter().zip(&param_tys) {
            let v = self.rvalue(a);
            let ty = pt.clone().unwrap_or_else(|| a.ty.decay());
            let v = self.coerce(v, &a.ty, &ty);
            lowered.push((ty.kind(), v));
        }
        let ret = if e.ty == Type::Void {
            None
        } else {
            let d = self.buf.vreg(e.ty.kind());
            Some((e.ty.kind(), d))
        };
        // Direct calls go through the function table (addresses are
        // assigned after all functions are compiled).
        let target = match &callee.kind {
            ExprKind::Var(VarRef::Func(fi)) => {
                let t = self.buf.vreg(ValKind::P);
                self.buf.li(t, self.env.fn_table_entry(*fi) as i64);
                let f = self.buf.vreg(ValKind::P);
                self.buf.load(LoadKind::I64, f, t, 0);
                f
            }
            _ => self.rvalue(callee),
        };
        self.buf.call_ind(target, &lowered, ret);
        ret.map(|(_, d)| d).unwrap_or(VReg::NONE)
    }

    fn builtin_call(&mut self, b: Builtin, args: &[Expr], _e: &Expr) -> VReg {
        let mut lowered = Vec::new();
        for a in args {
            let v = self.rvalue(a);
            let ty = a.ty.decay();
            lowered.push((ty.kind(), v));
        }
        match b {
            Builtin::Puts => self.buf.hcall(hcalls::HC_PUTS, &lowered, None),
            Builtin::Puti => self.buf.hcall(hcalls::HC_PUTINT, &lowered, None),
            Builtin::Putd => self.buf.hcall(hcalls::HC_PUTF, &lowered, None),
            Builtin::Putchar => self.buf.hcall(hcalls::HC_PUTCHAR, &lowered, None),
            Builtin::Printf => self.buf.hcall(hcalls::HC_PRINTF, &lowered, None),
            Builtin::Abort => self.buf.hcall(hcalls::HC_ABORT, &lowered, None),
            Builtin::Malloc => {
                let d = self.buf.vreg(ValKind::P);
                let (_, v) = lowered[0];
                let v2 = self.coerce(v, &args[0].ty, &Type::Long);
                self.buf.hcall(
                    hcalls::HC_MALLOC,
                    &[(ValKind::D, v2)],
                    Some((ValKind::P, d)),
                );
                return d;
            }
        }
        VReg::NONE
    }

    /// Lowers a tick expression to closure construction (paper §4.2).
    fn build_closure(&mut self, tid: usize) -> VReg {
        let tick = &self.prog.ticks[tid];
        let nfields = tick.captures.len();
        let size = 8 * (1 + nfields as i64);
        let sz = self.buf.vreg(ValKind::D);
        self.buf.li(sz, size);
        let clo = self.buf.vreg(ValKind::P);
        self.buf.hcall(
            hcalls::HC_ALLOC_CLOSURE,
            &[(ValKind::D, sz)],
            Some((ValKind::P, clo)),
        );
        // Header word: the CGF index.
        let id = self.buf.vreg(ValKind::D);
        self.buf.li(id, tid as i64);
        self.buf.store(StoreKind::I64, id, clo, 0);
        let captures = tick.captures.clone();
        for (i, cap) in captures.iter().enumerate() {
            let off = 8 * (1 + i as i64);
            match &cap.kind {
                CaptureKind::Dollar(expr) => {
                    let v = self.rvalue(expr);
                    let v = self.coerce(v, &expr.ty, &cap.ty);
                    if cap.ty.kind() == ValKind::F {
                        self.buf.store(StoreKind::F64, v, clo, off);
                    } else {
                        self.buf.store(StoreKind::I64, v, clo, off);
                    }
                }
                CaptureKind::FreeVar(local) => {
                    let p = self.local_place(*local, &self.func.locals[*local].ty.clone());
                    let addr = match p {
                        Place::Mem { addr, off: 0, .. } => addr,
                        Place::Mem { addr, off: o, .. } => {
                            let d = self.buf.vreg(ValKind::P);
                            self.buf.bin_imm(BinOp::Add, ValKind::P, d, addr, o);
                            d
                        }
                        Place::Var(..) => panic!("captured locals are address-taken"),
                    };
                    self.buf.store(StoreKind::I64, addr, clo, off);
                }
                CaptureKind::Cspec(expr) | CaptureKind::Vspec(expr) => {
                    let v = self.rvalue(expr);
                    self.buf.store(StoreKind::I64, v, clo, off);
                }
            }
        }
        clo
    }
}
