//! Mid-level optimization passes for the gcc-like static back end.
//!
//! The paper measures tcc against "an optimizing compiler of reasonable
//! quality" (GNU CC). These passes — constant propagation and folding,
//! copy propagation, local value-numbering CSE, and dead code removal —
//! together with register-resident locals and the global linear-scan
//! allocator, play that role on this machine.
//!
//! Soundness leans on a structural property of the lowering: most
//! temporaries are defined exactly once. Constants and copies are only
//! propagated out of *single-definition* virtual registers, which makes
//! the propagation flow-insensitive yet sound (a single definition
//! dominates every use the lowering can produce).

use std::collections::HashMap;
use tcc_icode::{IInsn, IOp, IcodeBuf, VReg};
use tcc_vcode::ops::BinOp;

/// Runs the full pipeline in place.
pub fn optimize(buf: &mut IcodeBuf) {
    for _ in 0..3 {
        let mut changed = false;
        changed |= const_and_copy_prop(buf);
        changed |= fold(buf);
        changed |= cse_local(buf);
        changed |= tcc_icode::peephole::dead_code(buf) > 0;
        if !changed {
            break;
        }
    }
    tcc_icode::peephole::thread_jumps(buf);
}

fn def_counts(buf: &IcodeBuf) -> Vec<u32> {
    let mut counts = vec![0u32; buf.num_vregs()];
    for i in &buf.insns {
        if let Some(d) = i.def() {
            counts[d.0 as usize] += 1;
        }
    }
    counts
}

/// Propagates constants (`Li` into single-def vregs) and copies
/// (`Un(Mov)` of single-def sources into single-def dests).
fn const_and_copy_prop(buf: &mut IcodeBuf) -> bool {
    let counts = def_counts(buf);
    let mut const_of: HashMap<VReg, i64> = HashMap::new();
    let mut copy_of: HashMap<VReg, VReg> = HashMap::new();
    for i in &buf.insns {
        if let Some(d) = i.def() {
            if counts[d.0 as usize] != 1 {
                continue;
            }
            match i.op {
                IOp::Li => {
                    const_of.insert(d, i.imm);
                }
                IOp::Un(tcc_vcode::ops::UnOp::Mov)
                    if i.a.is_some()
                        && counts[i.a.0 as usize] == 1
                        && buf.kind_of(i.a) == buf.kind_of(d) =>
                {
                    copy_of.insert(d, i.a);
                }
                _ => {}
            }
        }
    }
    // Resolve copy chains.
    let resolve = |mut v: VReg, copies: &HashMap<VReg, VReg>| -> VReg {
        let mut hops = 0;
        while let Some(&s) = copies.get(&v) {
            v = s;
            hops += 1;
            if hops > 64 {
                break;
            }
        }
        v
    };
    let mut changed = false;
    let copies = copy_of.clone();
    for i in &mut buf.insns {
        for field in [&mut i.a, &mut i.b] {
            if field.is_some() {
                let r = resolve(*field, &copies);
                if r != *field {
                    *field = r;
                    changed = true;
                }
            }
        }
        // Turn register operands that are known constants into immediate
        // forms where profitable.
        if let IOp::Bin(op) = i.op {
            if i.b.is_some() {
                if let Some(&c) = const_of.get(&i.b) {
                    if imm_form_ok(op) {
                        i.op = IOp::BinImm(op);
                        i.imm = c;
                        i.b = VReg::NONE;
                        changed = true;
                    }
                } else if let Some(&c) = const_of.get(&i.a) {
                    if let Some(sw) = op.swapped() {
                        if imm_form_ok(sw) {
                            i.op = IOp::BinImm(sw);
                            i.a = i.b;
                            i.imm = c;
                            i.b = VReg::NONE;
                            changed = true;
                        }
                    }
                }
            }
        }
        if let IOp::BrCmp(op) = i.op {
            // Keep BrCmp in register form, but materialized constants are
            // common on one side; nothing to do here (the VM branches are
            // reg-reg).
            let _ = op;
        }
    }
    changed
}

fn imm_form_ok(op: BinOp) -> bool {
    use BinOp::*;
    matches!(
        op,
        Add | Sub | Mul | Div | DivU | Rem | RemU | And | Or | Xor | Shl | Shr | ShrU
    )
}

/// Folds operations whose operands are all constants, and algebraic
/// identities (`x+0`, `x*1`, `x*0`).
fn fold(buf: &mut IcodeBuf) -> bool {
    let counts = def_counts(buf);
    let mut const_of: HashMap<VReg, i64> = HashMap::new();
    for i in &buf.insns {
        if let (IOp::Li, Some(d)) = (i.op, i.def()) {
            if counts[d.0 as usize] == 1 {
                const_of.insert(d, i.imm);
            }
        }
    }
    let mut changed = false;
    for i in &mut buf.insns {
        match i.op {
            IOp::BinImm(op) => {
                if let Some(&a) = const_of.get(&i.a) {
                    if let Some(v) = op.eval_int(i.k, a, i.imm) {
                        *i = IInsn {
                            op: IOp::Li,
                            k: i.k,
                            dst: i.dst,
                            a: VReg::NONE,
                            b: VReg::NONE,
                            imm: v,
                        };
                        changed = true;
                        continue;
                    }
                }
                // Identities.
                match (op, i.imm) {
                    (BinOp::Add | BinOp::Sub | BinOp::Shl | BinOp::Shr | BinOp::ShrU, 0)
                    | (BinOp::Mul | BinOp::Div | BinOp::DivU, 1) => {
                        i.op = IOp::Un(tcc_vcode::ops::UnOp::Mov);
                        i.imm = 0;
                        changed = true;
                    }
                    (BinOp::Mul | BinOp::And, 0) => {
                        *i = IInsn {
                            op: IOp::Li,
                            k: i.k,
                            dst: i.dst,
                            a: VReg::NONE,
                            b: VReg::NONE,
                            imm: 0,
                        };
                        changed = true;
                    }
                    _ => {}
                }
            }
            IOp::Bin(op) => {
                if let (Some(&a), Some(&b)) = (const_of.get(&i.a), const_of.get(&i.b)) {
                    if let Some(v) = op.eval_int(i.k, a, b) {
                        *i = IInsn {
                            op: IOp::Li,
                            k: i.k,
                            dst: i.dst,
                            a: VReg::NONE,
                            b: VReg::NONE,
                            imm: v,
                        };
                        changed = true;
                    }
                }
            }
            _ => {}
        }
    }
    changed
}

/// Local (per-block) value-numbering CSE over pure operations.
fn cse_local(buf: &mut IcodeBuf) -> bool {
    #[derive(Clone, PartialEq, Eq, Hash)]
    struct Key {
        op: IOp,
        k: tcc_rt::ValKind,
        a: VReg,
        b: VReg,
        imm: i64,
    }
    let mut changed = false;
    let mut avail: HashMap<Key, VReg> = HashMap::new();
    let n = buf.insns.len();
    for idx in 0..n {
        let i = buf.insns[idx];
        // Block boundaries invalidate everything (labels are join points).
        if matches!(
            i.op,
            IOp::Label | IOp::Jmp | IOp::BrCmp(_) | IOp::BrTrue | IOp::BrFalse | IOp::Ret
        ) || matches!(i.op, IOp::CallAddr | IOp::CallInd | IOp::Hcall)
        {
            avail.clear();
            continue;
        }
        let pure = matches!(
            i.op,
            IOp::Bin(_) | IOp::BinImm(_) | IOp::Un(_) | IOp::FrameAddr
        );
        let key = Key {
            op: i.op,
            k: i.k,
            a: i.a,
            b: i.b,
            imm: i.imm,
        };
        let hit = pure.then(|| avail.get(&key).copied()).flatten();
        if let Some(prev) = hit {
            // Replace with a move from the earlier value.
            buf.insns[idx] = IInsn {
                op: IOp::Un(tcc_vcode::ops::UnOp::Mov),
                k: i.k,
                dst: i.dst,
                a: prev,
                b: VReg::NONE,
                imm: 0,
            };
            changed = true;
        }
        // A (re)definition invalidates entries computed from the old
        // value — before recording the new availability.
        if let Some(d) = buf.insns[idx].def() {
            avail.retain(|k, v| k.a != d && k.b != d && *v != d);
        }
        if hit.is_none() && pure {
            if let Some(d) = i.def() {
                avail.insert(key, d);
            }
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcc_rt::ValKind;
    use tcc_vcode::CodeSink;

    #[test]
    fn constants_fold_through_chains() {
        let mut b = IcodeBuf::new();
        let x = b.temp(ValKind::W);
        let y = b.temp(ValKind::W);
        let z = b.temp(ValKind::W);
        b.li(x, 6);
        b.li(y, 7);
        b.bin(BinOp::Mul, ValKind::W, z, x, y);
        b.ret_val(ValKind::W, z);
        optimize(&mut b);
        // z = 42 directly; x and y dead.
        assert!(b.insns.iter().any(|i| i.op == IOp::Li && i.imm == 42));
        assert_eq!(b.insns.len(), 2, "{:?}", b.insns);
    }

    #[test]
    fn copies_are_propagated() {
        let mut b = IcodeBuf::new();
        let p = b.param(0, ValKind::W);
        let c1 = b.temp(ValKind::W);
        let c2 = b.temp(ValKind::W);
        b.un(tcc_vcode::ops::UnOp::Mov, ValKind::W, c1, p);
        b.un(tcc_vcode::ops::UnOp::Mov, ValKind::W, c2, c1);
        let d = b.temp(ValKind::W);
        b.bin(BinOp::Add, ValKind::W, d, c2, c2);
        b.ret_val(ValKind::W, d);
        optimize(&mut b);
        let add = b
            .insns
            .iter()
            .find(|i| matches!(i.op, IOp::Bin(BinOp::Add)))
            .unwrap();
        assert_eq!(add.a, p);
        assert_eq!(add.b, p);
        assert_eq!(b.insns.len(), 3); // getparam, add, ret
    }

    #[test]
    fn cse_removes_repeated_expressions() {
        let mut b = IcodeBuf::new();
        let p = b.param(0, ValKind::W);
        let t1 = b.temp(ValKind::W);
        let t2 = b.temp(ValKind::W);
        let s = b.temp(ValKind::W);
        b.bin(BinOp::Mul, ValKind::W, t1, p, p);
        b.bin(BinOp::Mul, ValKind::W, t2, p, p); // same value
        b.bin(BinOp::Add, ValKind::W, s, t1, t2);
        b.ret_val(ValKind::W, s);
        optimize(&mut b);
        let muls = b
            .insns
            .iter()
            .filter(|i| matches!(i.op, IOp::Bin(BinOp::Mul)))
            .count();
        assert_eq!(muls, 1, "{:?}", b.insns);
    }

    #[test]
    fn cse_respects_redefinitions() {
        let mut b = IcodeBuf::new();
        let p = b.param(0, ValKind::W);
        let acc = b.temp(ValKind::W); // multi-def: excluded from prop
        let t1 = b.temp(ValKind::W);
        let t2 = b.temp(ValKind::W);
        b.un(tcc_vcode::ops::UnOp::Mov, ValKind::W, acc, p);
        b.bin(BinOp::Add, ValKind::W, t1, acc, p);
        b.bin_imm(BinOp::Add, ValKind::W, acc, acc, 1); // redefines acc
        b.bin(BinOp::Add, ValKind::W, t2, acc, p); // NOT the same as t1
        let s = b.temp(ValKind::W);
        b.bin(BinOp::Sub, ValKind::W, s, t2, t1);
        b.ret_val(ValKind::W, s);
        let before = b.clone();
        optimize(&mut b);
        // Both adds must survive.
        let adds = b
            .insns
            .iter()
            .filter(|i| matches!(i.op, IOp::Bin(BinOp::Add)))
            .count();
        assert_eq!(adds, 2, "before: {:?}\nafter: {:?}", before.insns, b.insns);
    }

    #[test]
    fn constant_operand_becomes_immediate_form() {
        let mut b = IcodeBuf::new();
        let p = b.param(0, ValKind::W);
        let c = b.temp(ValKind::W);
        b.li(c, 8);
        let d = b.temp(ValKind::W);
        b.bin(BinOp::Mul, ValKind::W, d, p, c);
        b.ret_val(ValKind::W, d);
        optimize(&mut b);
        assert!(
            b.insns
                .iter()
                .any(|i| matches!(i.op, IOp::BinImm(BinOp::Mul)) && i.imm == 8),
            "{:?}",
            b.insns
        );
    }

    #[test]
    fn identity_operations_removed() {
        let mut b = IcodeBuf::new();
        let p = b.param(0, ValKind::W);
        let d = b.temp(ValKind::W);
        b.bin_imm(BinOp::Add, ValKind::W, d, p, 0);
        b.ret_val(ValKind::W, d);
        optimize(&mut b);
        // add 0 becomes a move; copy-prop then makes ret use p directly.
        assert!(b.insns.iter().all(|i| !matches!(i.op, IOp::BinImm(_))));
    }
}
