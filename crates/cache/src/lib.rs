//! # tcc-cache — the dynamic-code lifecycle manager
//!
//! The paper's economics are amortization: dynamic code pays for itself
//! after its codegen cost is spread over enough runs (Figures 6-7). A
//! long-lived session serving many requests, however, keeps *re-paying*
//! that cost for identical closures and leaks code space for abandoned
//! ones. This crate closes the loop:
//!
//! * **Compile memoization** — the `compile` host call consults a
//!   [`CodeCache`] keyed on a structural [`Fingerprint`] of the closure
//!   (CGF identity, `$`-bound runtime-constant values, backend and
//!   options, and recursively the fingerprints of composed cspec/vspec
//!   closures). A hit returns the previously generated function address
//!   without walking the CGF at all.
//! * **Reclamation** — evicted entries return their words to the
//!   `CodeSpace` free list (`free_function`), so the arena is recycled,
//!   not just abandoned; stale addresses fault with
//!   `VmError::StaleCode` instead of silently running reused bytes.
//! * **LRU eviction under a budget** — an optional byte budget bounds
//!   total live cached code. Inserting past the budget evicts
//!   least-recently-used unpinned entries. Pinned entries (addresses
//!   handed out and not released) are never evicted; if nothing can be
//!   evicted the insert proceeds over-budget rather than invalidating
//!   live code.
//!
//! Fingerprints are *injective encodings*, not hashes: two closures
//! receive equal fingerprints only if their encodings are equal
//! byte-for-byte, so differing `$`-constants can never collide (a
//! property test in `tests/faults.rs` leans on this).
//!
//! Everything observable is reported through
//! [`tcc_obs::CacheMetrics`] — hits, misses, uncacheable compiles,
//! evictions, live/reclaimed bytes, fragmentation, and nanoseconds
//! saved versus spent answering hits.

use std::collections::HashMap;

use tcc_obs::CacheMetrics;
use tcc_vm::{CodeSpace, FuncHandle, VmError};

pub mod persist;
pub mod shared;

pub use persist::{PersistentStore, StoredArtifact, FORMAT_VERSION};
pub use shared::{Acquire, Artifact, CompileClaim, SharedArtifacts, SlotState};

/// A structural, injective key for a dynamic closure.
///
/// Built with [`FingerprintBuilder`]; equality of fingerprints implies
/// byte-equality of the underlying length-delimited encodings, so
/// distinct closure structures or `$`-constant values cannot collide.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Fingerprint(Vec<u8>);

impl Fingerprint {
    /// Length of the encoding in bytes (diagnostics).
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when the encoding is empty (never for built fingerprints).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

/// Incrementally encodes a closure's identity into a [`Fingerprint`].
///
/// Every atom is tagged and length-delimited, so the final byte string
/// is an unambiguous (prefix-free) serialization of the sequence of
/// `push_*` calls: the encoding of `["ab", "c"]` differs from
/// `["a", "bc"]` and from `["abc"]`.
#[derive(Clone, Debug, Default)]
pub struct FingerprintBuilder {
    bytes: Vec<u8>,
}

impl FingerprintBuilder {
    /// Starts an empty fingerprint.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a small structural tag (node kind, backend id, ...).
    pub fn push_tag(&mut self, tag: u8) {
        self.bytes.push(0x01);
        self.bytes.push(tag);
    }

    /// Appends a 64-bit value (a `$`-constant, CGF id, arity, ...).
    pub fn push_u64(&mut self, v: u64) {
        self.bytes.push(0x02);
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a byte string, length-delimited.
    pub fn push_bytes(&mut self, b: &[u8]) {
        self.bytes.push(0x03);
        self.bytes
            .extend_from_slice(&(b.len() as u64).to_le_bytes());
        self.bytes.extend_from_slice(b);
    }

    /// Opens a child scope (e.g. a nested cspec argument). Must be
    /// balanced by [`FingerprintBuilder::close`].
    pub fn open(&mut self, tag: u8) {
        self.bytes.push(0x04);
        self.bytes.push(tag);
    }

    /// Closes the innermost open scope.
    pub fn close(&mut self) {
        self.bytes.push(0x05);
    }

    /// Finishes the encoding.
    pub fn build(self) -> Fingerprint {
        Fingerprint(self.bytes)
    }
}

/// One cached compilation.
#[derive(Clone, Debug)]
struct Entry {
    addr: u64,
    handle: FuncHandle,
    bytes: u64,
    /// LRU clock value of the most recent touch.
    last_use: u64,
    /// Times this entry answered a `compile` call (insert + hits) — the
    /// per-function reuse signal the adaptive engine's tier thresholds
    /// are calibrated against.
    uses: u64,
    /// Pin count; pinned entries are never evicted.
    pins: u32,
    /// Per-hit `ns_saved` credit. For a freshly compiled entry this is
    /// what the original compilation cost; for an entry installed from
    /// the persistent store it is `compile_ns − load_ns` (saturating) —
    /// a disk hit only saved the *difference*, so crediting the full
    /// compile time would overstate warm-start savings.
    compile_ns: u64,
}

/// Memoization table for compiled closures with LRU eviction under an
/// optional code budget (bytes).
///
/// The cache does not own the `CodeSpace`; eviction borrows it to call
/// `free_function`. All counters live in a [`CacheMetrics`] that the
/// session merges into its `SessionMetrics`.
#[derive(Clone, Debug, Default)]
pub struct CodeCache {
    entries: HashMap<Fingerprint, Entry>,
    /// Reverse index for pinning by handed-out address.
    by_addr: HashMap<u64, Fingerprint>,
    /// Monotonic LRU clock, bumped on every touch.
    clock: u64,
    /// Budget in bytes for live cached code; `None` = unbounded.
    budget: Option<u64>,
    bytes_live: u64,
    metrics: CacheMetrics,
}

/// Outcome of [`CodeCache::insert`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InsertOutcome {
    /// Entry stored (possibly after evictions).
    Cached,
    /// Entry larger than the whole budget: stored nowhere, compile
    /// counted as uncacheable. The caller keeps the address it already
    /// has; the function simply will not be reused or evicted.
    TooLarge,
}

impl CodeCache {
    /// An unbounded cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// A cache that evicts LRU entries to keep live cached code within
    /// `budget` bytes.
    pub fn with_budget(budget: Option<u64>) -> Self {
        CodeCache {
            budget,
            ..Self::default()
        }
    }

    /// The configured budget in bytes, if any.
    pub fn budget(&self) -> Option<u64> {
        self.budget
    }

    /// Bytes of code currently held live by cache entries.
    pub fn bytes_live(&self) -> u64 {
        self.bytes_live
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up a fingerprint; on a hit, touches the entry's LRU clock,
    /// credits `ns_saved` with the entry's original compile time, and
    /// returns the cached function address.
    pub fn lookup(&mut self, fp: &Fingerprint) -> Option<u64> {
        self.clock += 1;
        let clock = self.clock;
        if let Some(e) = self.entries.get_mut(fp) {
            e.last_use = clock;
            e.uses += 1;
            self.metrics.hits += 1;
            self.metrics.ns_saved += e.compile_ns;
            Some(e.addr)
        } else {
            None
        }
    }

    /// Times the cached function at `addr` has answered a `compile`
    /// call (its insert plus every hit since) — per-function reuse, the
    /// compile-side counterpart of the adaptive engine's run counts.
    /// `None` when `addr` is not a cached function (never cached, or
    /// evicted: eviction forgets the count along with the code).
    pub fn use_count(&self, addr: u64) -> Option<u64> {
        let fp = self.by_addr.get(&addr)?;
        self.entries.get(fp).map(|e| e.uses)
    }

    /// Records nanoseconds spent on the *hit path* (fingerprinting +
    /// lookup) so reports can compare saved vs. spent time.
    pub fn note_hit_ns(&mut self, ns: u64) {
        self.metrics.hit_ns += ns;
    }

    /// Records a compile that bypassed the cache entirely (memory-reading
    /// `$`-expression, external relocation table, ...).
    pub fn note_uncacheable(&mut self) {
        self.metrics.uncacheable += 1;
    }

    /// Inserts a freshly compiled function, evicting LRU unpinned
    /// entries (freeing their code in `code`) as needed to respect the
    /// budget. Counts the compile as a miss.
    ///
    /// If the function alone exceeds the budget it is not cached
    /// ([`InsertOutcome::TooLarge`], counted `uncacheable`); if
    /// everything evictable is pinned, the insert proceeds over-budget —
    /// handed-out code is never invalidated to make room.
    pub fn insert(
        &mut self,
        code: &mut CodeSpace,
        fp: Fingerprint,
        addr: u64,
        handle: FuncHandle,
        bytes: u64,
        compile_ns: u64,
    ) -> Result<InsertOutcome, VmError> {
        self.metrics.misses += 1;
        if let Some(budget) = self.budget {
            if bytes > budget {
                self.metrics.uncacheable += 1;
                return Ok(InsertOutcome::TooLarge);
            }
            while self.bytes_live + bytes > budget {
                if !self.evict_lru(code)? {
                    break; // everything left is pinned: go over budget
                }
            }
        }
        self.clock += 1;
        self.bytes_live += bytes;
        self.by_addr.insert(addr, fp.clone());
        self.entries.insert(
            fp,
            Entry {
                addr,
                handle,
                bytes,
                last_use: self.clock,
                uses: 1,
                pins: 0,
                compile_ns,
            },
        );
        Ok(InsertOutcome::Cached)
    }

    /// Inserts a function loaded from the persistent store: like
    /// [`CodeCache::insert`] but the compile was *answered from disk*,
    /// so it is not counted as a miss, and every credit — the
    /// immediate one for this event and the per-hit credit for future
    /// lookups — is `compile_ns − load_ns` (saturating): the disk hit
    /// saved the compile minus what the load itself cost.
    #[allow(clippy::too_many_arguments)]
    pub fn insert_loaded(
        &mut self,
        code: &mut CodeSpace,
        fp: Fingerprint,
        addr: u64,
        handle: FuncHandle,
        bytes: u64,
        compile_ns: u64,
        load_ns: u64,
    ) -> Result<InsertOutcome, VmError> {
        let credit = compile_ns.saturating_sub(load_ns);
        if let Some(budget) = self.budget {
            if bytes > budget {
                self.metrics.uncacheable += 1;
                return Ok(InsertOutcome::TooLarge);
            }
            while self.bytes_live + bytes > budget {
                if !self.evict_lru(code)? {
                    break; // everything left is pinned: go over budget
                }
            }
        }
        self.clock += 1;
        self.metrics.hits += 1;
        self.metrics.ns_saved += credit;
        self.bytes_live += bytes;
        self.by_addr.insert(addr, fp.clone());
        self.entries.insert(
            fp,
            Entry {
                addr,
                handle,
                bytes,
                last_use: self.clock,
                uses: 1,
                pins: 0,
                compile_ns: credit,
            },
        );
        Ok(InsertOutcome::Cached)
    }

    /// Evicts the least-recently-used unpinned entry, freeing its code.
    /// Returns false when no entry is evictable.
    fn evict_lru(&mut self, code: &mut CodeSpace) -> Result<bool, VmError> {
        let victim = self
            .entries
            .iter()
            .filter(|(_, e)| e.pins == 0)
            .min_by_key(|(_, e)| e.last_use)
            .map(|(fp, _)| fp.clone());
        let Some(fp) = victim else {
            return Ok(false);
        };
        let e = self.entries.remove(&fp).expect("victim exists");
        self.by_addr.remove(&e.addr);
        let freed = code.free_function(e.handle)?;
        debug_assert_eq!(freed, e.bytes);
        self.bytes_live -= e.bytes;
        self.metrics.evictions += 1;
        self.metrics.bytes_reclaimed += freed;
        Ok(true)
    }

    /// Pins the entry owning `addr` so it cannot be evicted. Returns
    /// false if no cache entry owns that address.
    pub fn pin(&mut self, addr: u64) -> bool {
        let Some(fp) = self.by_addr.get(&addr) else {
            return false;
        };
        self.entries.get_mut(fp).expect("index consistent").pins += 1;
        true
    }

    /// Releases one pin on the entry owning `addr`. Returns false if no
    /// entry owns the address or it was not pinned.
    pub fn unpin(&mut self, addr: u64) -> bool {
        let Some(fp) = self.by_addr.get(&addr) else {
            return false;
        };
        let e = self.entries.get_mut(fp).expect("index consistent");
        if e.pins == 0 {
            return false;
        }
        e.pins -= 1;
        true
    }

    /// Current counters, with live bytes and code-space occupancy
    /// (fragmentation, reclaimed bytes) folded in from `code`.
    pub fn metrics(&self, code: &CodeSpace) -> CacheMetrics {
        let stats = code.stats();
        CacheMetrics {
            bytes_live: self.bytes_live,
            fragmentation: stats.fragmentation(),
            ..self.metrics
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcc_vm::isa::Insn;

    fn fp(n: u64) -> Fingerprint {
        let mut b = FingerprintBuilder::new();
        b.push_tag(1);
        b.push_u64(n);
        b.build()
    }

    /// Emits a sealed `words`-word function and returns (addr, handle).
    fn emit(code: &mut CodeSpace, words: usize) -> (u64, FuncHandle) {
        let f = code.begin_function("f");
        for _ in 0..words.saturating_sub(1) {
            code.push(Insn::nop());
        }
        code.push(Insn::ret());
        let addr = code.finish_function(f).expect("seals");
        (addr, f)
    }

    #[test]
    fn use_counts_track_reuse_and_die_with_eviction() {
        let mut code = CodeSpace::new();
        let mut cache = CodeCache::with_budget(Some(64));
        let (a, ha) = emit(&mut code, 4);
        cache.insert(&mut code, fp(1), a, ha, 16, 100).unwrap();
        assert_eq!(cache.use_count(a), Some(1), "insert is the first use");
        assert_eq!(cache.lookup(&fp(1)), Some(a));
        assert_eq!(cache.lookup(&fp(1)), Some(a));
        assert_eq!(cache.use_count(a), Some(3));
        assert_eq!(cache.use_count(a + 4), None, "not a handed-out address");
        // Evicting forgets the count along with the code.
        let (b, hb) = emit(&mut code, 16);
        cache.insert(&mut code, fp(2), b, hb, 64, 100).unwrap();
        assert_eq!(cache.use_count(a), None, "evicted");
        assert_eq!(cache.use_count(b), Some(1));
    }

    #[test]
    fn fingerprints_are_injective_over_structure() {
        // ["ab","c"] vs ["a","bc"] vs ["abc"]: length delimiting keeps
        // them distinct even though the concatenated payloads agree.
        let enc = |parts: &[&str]| {
            let mut b = FingerprintBuilder::new();
            for p in parts {
                b.push_bytes(p.as_bytes());
            }
            b.build()
        };
        assert_ne!(enc(&["ab", "c"]), enc(&["a", "bc"]));
        assert_ne!(enc(&["ab", "c"]), enc(&["abc"]));
        // Scoping distinguishes nesting shapes.
        let nested = |split| {
            let mut b = FingerprintBuilder::new();
            b.open(7);
            b.push_u64(1);
            if split {
                b.close();
                b.open(7);
            }
            b.push_u64(2);
            b.close();
            b.build()
        };
        assert_ne!(nested(true), nested(false));
        // And u64 atoms cannot masquerade as tags or bytes.
        let mut a = FingerprintBuilder::new();
        a.push_u64(0x01_02);
        let mut b = FingerprintBuilder::new();
        b.push_tag(0x02);
        assert_ne!(a.build(), b.build());
    }

    #[test]
    fn hit_returns_cached_addr_and_counts() {
        let mut code = CodeSpace::new();
        let mut cache = CodeCache::new();
        assert_eq!(cache.lookup(&fp(1)), None);
        let (addr, h) = emit(&mut code, 4);
        cache
            .insert(&mut code, fp(1), addr, h, 16, 1000)
            .expect("inserts");
        assert_eq!(cache.lookup(&fp(1)), Some(addr));
        assert_eq!(cache.lookup(&fp(2)), None);
        let m = cache.metrics(&code);
        assert_eq!(m.hits, 1);
        assert_eq!(m.misses, 1);
        assert_eq!(m.ns_saved, 1000);
        assert_eq!(m.bytes_live, 16);
    }

    #[test]
    fn budget_evicts_lru_and_frees_code() {
        let mut code = CodeSpace::new();
        // Budget of 2 four-word functions.
        let mut cache = CodeCache::with_budget(Some(32));
        let (a_addr, a_h) = emit(&mut code, 4);
        cache.insert(&mut code, fp(1), a_addr, a_h, 16, 0).unwrap();
        let (b_addr, b_h) = emit(&mut code, 4);
        cache.insert(&mut code, fp(2), b_addr, b_h, 16, 0).unwrap();
        // Touch a so b becomes LRU.
        assert_eq!(cache.lookup(&fp(1)), Some(a_addr));
        let (c_addr, c_h) = emit(&mut code, 4);
        cache.insert(&mut code, fp(3), c_addr, c_h, 16, 0).unwrap();
        let m = cache.metrics(&code);
        assert_eq!(m.evictions, 1);
        assert_eq!(m.bytes_reclaimed, 16);
        assert_eq!(m.bytes_live, 32);
        // b was evicted; its code now faults, a and c survive.
        assert_eq!(cache.lookup(&fp(2)), None);
        assert!(matches!(
            code.fetch_exec(b_addr),
            Err(VmError::StaleCode(_))
        ));
        assert!(code.fetch_exec(a_addr).is_ok());
        // Cache accounting agrees with the code space's own books.
        assert_eq!(code.stats().reclaimed_words as u64 * 4, m.bytes_reclaimed);
    }

    #[test]
    fn pinned_entries_survive_eviction_pressure() {
        let mut code = CodeSpace::new();
        let mut cache = CodeCache::with_budget(Some(16));
        let (a_addr, a_h) = emit(&mut code, 4);
        cache.insert(&mut code, fp(1), a_addr, a_h, 16, 0).unwrap();
        assert!(cache.pin(a_addr));
        // Inserting b would need to evict a, but a is pinned: the cache
        // goes over budget instead of invalidating handed-out code.
        let (b_addr, b_h) = emit(&mut code, 4);
        cache.insert(&mut code, fp(2), b_addr, b_h, 16, 0).unwrap();
        let m = cache.metrics(&code);
        assert_eq!(m.evictions, 0);
        assert_eq!(m.bytes_live, 32);
        assert!(code.fetch_exec(a_addr).is_ok());
        // After unpinning, the next insert can evict a.
        assert!(cache.unpin(a_addr));
        let (c_addr, c_h) = emit(&mut code, 4);
        cache.insert(&mut code, fp(3), c_addr, c_h, 16, 0).unwrap();
        assert!(cache.metrics(&code).evictions >= 1);
        assert_eq!(cache.lookup(&fp(1)), None);
        let _ = c_addr;
    }

    #[test]
    fn oversized_function_bypasses_cache() {
        let mut code = CodeSpace::new();
        let mut cache = CodeCache::with_budget(Some(8));
        let (addr, h) = emit(&mut code, 4);
        let out = cache.insert(&mut code, fp(1), addr, h, 16, 0).unwrap();
        assert_eq!(out, InsertOutcome::TooLarge);
        assert_eq!(cache.lookup(&fp(1)), None);
        let m = cache.metrics(&code);
        assert_eq!(m.uncacheable, 1);
        assert_eq!(m.bytes_live, 0);
        // The function itself is untouched — still callable.
        assert!(code.fetch_exec(addr).is_ok());
    }

    #[test]
    fn pin_unknown_address_is_refused() {
        let mut cache = CodeCache::new();
        assert!(!cache.pin(0x8000_0000));
        assert!(!cache.unpin(0x8000_0000));
    }

    #[test]
    fn disk_loaded_entries_credit_compile_minus_load() {
        let mut code = CodeSpace::new();
        let mut cache = CodeCache::new();
        let (addr, h) = emit(&mut code, 4);
        // A disk hit that cost 300 ns against a 1000 ns compile saved
        // 700 ns — now, and on every future hit.
        cache
            .insert_loaded(&mut code, fp(1), addr, h, 16, 1000, 300)
            .expect("inserts");
        let m = cache.metrics(&code);
        assert_eq!(m.misses, 0, "a disk hit is not a compile miss");
        assert_eq!(m.hits, 1, "the disk hit counts as a hit");
        assert_eq!(m.ns_saved, 700);
        assert_eq!(cache.lookup(&fp(1)), Some(addr));
        assert_eq!(cache.metrics(&code).ns_saved, 1400);
        // A load slower than the compile saturates to zero credit —
        // never an underflow panic.
        let (b, hb) = emit(&mut code, 4);
        cache
            .insert_loaded(&mut code, fp(2), b, hb, 16, 100, 500)
            .expect("inserts");
        assert_eq!(cache.metrics(&code).ns_saved, 1400);
    }
}
