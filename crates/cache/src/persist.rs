//! Crash-safe on-disk persistence for compiled artifacts: the
//! cross-process half of the cache story.
//!
//! `tcc-cache` memoizes compiles within a process; a restarted fleet
//! still pays full compile cost for every closure it had already
//! compiled. [`PersistentStore`] serializes fingerprint → sealed VM
//! words (+ `orig_start` for install-time relocation and the original
//! `compile_ns` for savings accounting) so process N+1 warm-starts at
//! hit cost.
//!
//! Three properties the format is built around:
//!
//! * **Zero-trust loads.** A store file is input, not state: every
//!   length is bounds-checked, every payload is CRC-validated, and the
//!   header carries a format version plus an *ABI salt* (opcode-table
//!   signature ⊕ cost-model digest ⊕ fingerprint scheme version ⊕
//!   static-image layout, folded by the embedding session). Any
//!   mismatch degrades to a cold miss — counted in
//!   [`PersistMetrics`] as `corrupt_rejected` (per entry) or
//!   `version_rejected` (whole store) — and never panics or serves
//!   wrong bytes. A corrupt entry is skipped by its declared frame
//!   length, so valid entries after it still load; a truncated tail
//!   keeps every entry before the cut.
//! * **Atomic writes.** A flush serializes the complete store to a
//!   sibling temp file, fsyncs, and renames it over the store path —
//!   a crash mid-flush leaves either the old file or the new one,
//!   never a torn hybrid. A lock file (created with `create_new`,
//!   removed on drop) makes the writer unique: later openers of the
//!   same path get a read-only store whose `flush` fails cleanly.
//! * **Invalidation composes.** Entries dropped by
//!   `SharedArtifacts::invalidate` (or any caller of
//!   [`PersistentStore::tombstone`]) are simply omitted from the next
//!   flush — the rewrite-whole-file discipline makes tombstoning free
//!   and keeps the on-disk image canonical (entries sorted by
//!   fingerprint encoding, so equal stores are byte-identical).
//!
//! `SharedTranslation`s are *not* serialized: they are rebuilt lazily
//! from the loaded words by the engines that want them, which keeps
//! the format independent of the decoded-buffer layout.

use std::collections::HashMap;
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::time::Instant;

use tcc_obs::PersistMetrics;

use crate::Fingerprint;

/// On-disk format version. Bump on any change to the framing or
/// payload layout; stores written under a different version are
/// rejected whole (`version_rejected`).
pub const FORMAT_VERSION: u32 = 1;

/// `b"TCCP"` — the store file magic.
const MAGIC: [u8; 4] = *b"TCCP";

/// Header: magic + format version (u32 LE) + ABI salt (u64 LE).
const HEADER_LEN: usize = 16;

/// Per-entry frame prefix: payload length (u32 LE) + CRC32 (u32 LE).
const FRAME_LEN: usize = 8;

/// Sanity cap on a serialized fingerprint (1 MiB).
const MAX_FP_LEN: usize = 1 << 20;
/// Sanity cap on a function name (4 KiB).
const MAX_NAME_LEN: usize = 4096;
/// Sanity cap on a function body (16 Mi words = 64 MiB).
const MAX_WORDS: usize = 1 << 24;

/// CRC32 (IEEE, poly 0xEDB88320) lookup table, built at compile time —
/// the store cannot take a checksum dependency (leaf workspace).
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC32 (IEEE) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// One artifact as stored on disk: everything a session needs to
/// re-install the function without recompiling (the persistent
/// counterpart of `shared::Artifact`, minus the rebuildable
/// translation).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StoredArtifact {
    /// Function name (diagnostics; install reuses it).
    pub name: String,
    /// Start word the function was sealed at in the compiling
    /// session's code space; `install_function` rebases external
    /// control transfers relative to this.
    pub orig_start: usize,
    /// The sealed function's encoded words.
    pub words: Vec<u32>,
    /// What the original compilation cost — disk hits credit
    /// `compile_ns − load_ns` (saturating) to `ns_saved`.
    pub compile_ns: u64,
}

impl StoredArtifact {
    /// Code size in bytes (the cache budget unit).
    pub fn bytes(&self) -> u64 {
        (self.words.len() * 4) as u64
    }
}

/// The fingerprint-keyed persistent artifact store. One per store
/// path; the first opener in the fleet is the writer, later openers
/// are read-only. All loads happen eagerly at open (the store files
/// the suite produces are small); `load` is then an in-memory clone,
/// timed so hits can be charged their true warm-start cost.
#[derive(Debug)]
pub struct PersistentStore {
    path: PathBuf,
    abi_salt: u64,
    entries: HashMap<Fingerprint, StoredArtifact>,
    /// True when in-memory state has diverged from the file.
    dirty: bool,
    /// Whether this instance holds the single-writer lock.
    writer: bool,
    metrics: PersistMetrics,
}

impl PersistentStore {
    /// Opens (or creates) the store at `path` under this build's
    /// `abi_salt`. Never fails: an unreadable, corrupt, truncated, or
    /// version-mismatched file degrades to an empty (cold) store with
    /// the rejection counted in [`PersistMetrics`]. The first opener
    /// of a path becomes the writer; concurrent openers get a
    /// read-only view ([`PersistentStore::is_writer`] is false and
    /// [`PersistentStore::flush`] fails).
    pub fn open(path: impl Into<PathBuf>, abi_salt: u64) -> PersistentStore {
        let path = path.into();
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                let _ = fs::create_dir_all(dir);
            }
        }
        let writer = fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(lock_path(&path))
            .is_ok();
        let mut store = PersistentStore {
            path,
            abi_salt,
            entries: HashMap::new(),
            dirty: false,
            writer,
            metrics: PersistMetrics::default(),
        };
        if let Ok(bytes) = fs::read(&store.path) {
            store.parse(&bytes);
        }
        store
    }

    /// Whether this instance holds the single-writer lock (the first
    /// opener of the path in the fleet).
    pub fn is_writer(&self) -> bool {
        self.writer
    }

    /// The store path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The ABI salt this store was opened under.
    pub fn abi_salt(&self) -> u64 {
        self.abi_salt
    }

    /// Resident (loaded + recorded − tombstoned) entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether an artifact is resident for `fp` (no metrics side
    /// effects — use [`PersistentStore::load`] on the miss path).
    pub fn contains(&self, fp: &Fingerprint) -> bool {
        self.entries.contains_key(fp)
    }

    /// Looks up `fp`, counting a disk hit or miss. On a hit returns
    /// the artifact and the nanoseconds the load cost (also
    /// accumulated into `load_ns`) so the caller can credit
    /// `compile_ns − load_ns` rather than the full compile time.
    pub fn load(&mut self, fp: &Fingerprint) -> Option<(StoredArtifact, u64)> {
        let t0 = Instant::now();
        match self.entries.get(fp) {
            Some(art) => {
                let art = art.clone();
                let ns = t0.elapsed().as_nanos() as u64;
                self.metrics.disk_hits += 1;
                self.metrics.load_ns += ns;
                Some((art, ns))
            }
            None => {
                self.metrics.disk_misses += 1;
                None
            }
        }
    }

    /// Records (or replaces) an artifact for `fp`. The store is
    /// rewritten at the next flush; a tombstoned fingerprint recorded
    /// again is resurrected.
    pub fn record(&mut self, fp: Fingerprint, art: StoredArtifact) {
        self.entries.insert(fp, art);
        self.dirty = true;
    }

    /// Drops the artifact for `fp` so the next flush omits it —
    /// called when `SharedArtifacts::invalidate` (or private-cache
    /// eviction policy) retires the fingerprint. Returns whether an
    /// entry was resident.
    pub fn tombstone(&mut self, fp: &Fingerprint) -> bool {
        if self.entries.remove(fp).is_some() {
            self.metrics.tombstones += 1;
            self.dirty = true;
            true
        } else {
            false
        }
    }

    /// Serializes the complete store to a sibling temp file, syncs,
    /// and renames it over the store path — a crash mid-flush leaves
    /// the old file intact. Entries are written sorted by fingerprint
    /// encoding, so equal stores are byte-identical. Fails (without
    /// touching the file) on a read-only instance.
    pub fn flush(&mut self) -> io::Result<()> {
        if !self.writer {
            return Err(io::Error::new(
                io::ErrorKind::PermissionDenied,
                "store is read-only (another process holds the writer lock)",
            ));
        }
        let bytes = self.serialize();
        let tmp = self.path.with_extension("tmp");
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_all()?;
        }
        fs::rename(&tmp, &self.path)?;
        self.metrics.flushes += 1;
        self.metrics.bytes_flushed += bytes.len() as u64;
        self.dirty = false;
        Ok(())
    }

    /// Current counters.
    pub fn metrics(&self) -> PersistMetrics {
        self.metrics
    }

    fn serialize(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_LEN);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&self.abi_salt.to_le_bytes());
        let mut sorted: Vec<(&Fingerprint, &StoredArtifact)> = self.entries.iter().collect();
        sorted.sort_by(|a, b| a.0 .0.cmp(&b.0 .0));
        for (fp, art) in sorted {
            let payload = encode_payload(fp, art);
            out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            out.extend_from_slice(&crc32(&payload).to_le_bytes());
            out.extend_from_slice(&payload);
        }
        out
    }

    /// Zero-trust parse of a store image into `entries`. Any header
    /// problem rejects the whole file; a bad entry frame is skipped by
    /// its declared length (later entries still load); a truncated
    /// tail stops the parse keeping everything before it.
    fn parse(&mut self, bytes: &[u8]) {
        if bytes.is_empty() {
            return; // fresh store
        }
        if bytes.len() < HEADER_LEN || bytes[..4] != MAGIC {
            self.metrics.corrupt_rejected += 1;
            return;
        }
        let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
        let salt = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
        if version != FORMAT_VERSION || salt != self.abi_salt {
            self.metrics.version_rejected += 1;
            return;
        }
        let mut off = HEADER_LEN;
        while off < bytes.len() {
            let rest = &bytes[off..];
            if rest.len() < FRAME_LEN {
                self.metrics.corrupt_rejected += 1; // truncated frame
                return;
            }
            let len = u32::from_le_bytes(rest[..4].try_into().expect("4 bytes")) as usize;
            let crc = u32::from_le_bytes(rest[4..8].try_into().expect("4 bytes"));
            if len > rest.len() - FRAME_LEN {
                self.metrics.corrupt_rejected += 1; // truncated payload
                return;
            }
            let payload = &rest[FRAME_LEN..FRAME_LEN + len];
            off += FRAME_LEN + len;
            if crc32(payload) != crc {
                self.metrics.corrupt_rejected += 1; // bit rot: skip frame
                continue;
            }
            match decode_payload(payload) {
                Some((fp, art)) => {
                    self.entries.insert(fp, art);
                    self.metrics.entries_loaded += 1;
                }
                None => self.metrics.corrupt_rejected += 1,
            }
        }
    }
}

impl Drop for PersistentStore {
    fn drop(&mut self) {
        // Best-effort durability: unflushed changes go to disk on the
        // way out (ignoring errors — drop cannot report them), and the
        // writer lock is released so the next process can write.
        if self.dirty && self.writer {
            let _ = self.flush();
        }
        if self.writer {
            let _ = fs::remove_file(lock_path(&self.path));
        }
    }
}

fn lock_path(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".lock");
    PathBuf::from(os)
}

fn encode_payload(fp: &Fingerprint, art: &StoredArtifact) -> Vec<u8> {
    let mut p = Vec::with_capacity(fp.0.len() + art.name.len() + art.words.len() * 4 + 32);
    p.extend_from_slice(&(fp.0.len() as u32).to_le_bytes());
    p.extend_from_slice(&fp.0);
    p.push(0); // flags, reserved
    p.extend_from_slice(&(art.name.len() as u16).to_le_bytes());
    p.extend_from_slice(art.name.as_bytes());
    p.extend_from_slice(&(art.orig_start as u64).to_le_bytes());
    p.extend_from_slice(&art.compile_ns.to_le_bytes());
    p.extend_from_slice(&(art.words.len() as u32).to_le_bytes());
    for w in &art.words {
        p.extend_from_slice(&w.to_le_bytes());
    }
    p
}

/// Bounds-checked payload decode. `None` on any structural problem
/// (implausible length, short field, trailing garbage, non-UTF-8
/// name) — the caller counts it `corrupt_rejected`.
fn decode_payload(p: &[u8]) -> Option<(Fingerprint, StoredArtifact)> {
    let mut off = 0usize;
    let take = |off: &mut usize, n: usize| -> Option<&[u8]> {
        let s = p.get(*off..*off + n)?;
        *off += n;
        Some(s)
    };
    let fp_len = u32::from_le_bytes(take(&mut off, 4)?.try_into().ok()?) as usize;
    if fp_len > MAX_FP_LEN {
        return None;
    }
    let fp_bytes = take(&mut off, fp_len)?.to_vec();
    let _flags = take(&mut off, 1)?[0];
    let name_len = u16::from_le_bytes(take(&mut off, 2)?.try_into().ok()?) as usize;
    if name_len > MAX_NAME_LEN {
        return None;
    }
    let name = String::from_utf8(take(&mut off, name_len)?.to_vec()).ok()?;
    let orig_start = u64::from_le_bytes(take(&mut off, 8)?.try_into().ok()?);
    let compile_ns = u64::from_le_bytes(take(&mut off, 8)?.try_into().ok()?);
    let words_len = u32::from_le_bytes(take(&mut off, 4)?.try_into().ok()?) as usize;
    if words_len > MAX_WORDS {
        return None;
    }
    let mut words = Vec::with_capacity(words_len);
    for _ in 0..words_len {
        words.push(u32::from_le_bytes(take(&mut off, 4)?.try_into().ok()?));
    }
    if off != p.len() {
        return None; // trailing garbage under a (forged) valid CRC
    }
    Some((
        Fingerprint(fp_bytes),
        StoredArtifact {
            name,
            orig_start: orig_start as usize,
            words,
            compile_ns,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FingerprintBuilder;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn fp(n: u64) -> Fingerprint {
        let mut b = FingerprintBuilder::new();
        b.push_tag(3);
        b.push_u64(n);
        b.build()
    }

    fn art(n: u64, words: usize) -> StoredArtifact {
        StoredArtifact {
            name: format!("f{n}"),
            orig_start: n as usize * 16,
            words: (0..words as u32)
                .map(|w| w.wrapping_mul(n as u32))
                .collect(),
            compile_ns: 1000 * n,
        }
    }

    /// A unique temp path per call (no tempfile dependency).
    fn tmp_path(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "tcc_persist_{tag}_{}_{n}.store",
            std::process::id()
        ))
    }

    /// Removes the store file and its lock (test hygiene).
    fn cleanup(path: &Path) {
        let _ = fs::remove_file(path);
        let _ = fs::remove_file(lock_path(path));
    }

    /// Byte offset of the `i`-th entry's first payload byte.
    fn payload_offset(bytes: &[u8], i: usize) -> usize {
        let mut off = HEADER_LEN;
        for _ in 0..i {
            let len = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap()) as usize;
            off += FRAME_LEN + len;
        }
        off + FRAME_LEN
    }

    #[test]
    fn round_trips_across_reopen() {
        let path = tmp_path("roundtrip");
        {
            let mut s = PersistentStore::open(&path, 42);
            assert!(s.is_writer());
            assert!(s.is_empty());
            s.record(fp(1), art(1, 8));
            s.record(fp(2), art(2, 4));
            s.flush().expect("flush");
            let m = s.metrics();
            assert_eq!(m.flushes, 1);
            assert!(m.bytes_flushed > HEADER_LEN as u64);
        }
        let mut s = PersistentStore::open(&path, 42);
        assert_eq!(s.len(), 2);
        assert_eq!(s.metrics().entries_loaded, 2);
        let (a, ns) = s.load(&fp(1)).expect("hit");
        assert_eq!(a, art(1, 8));
        assert!(s.metrics().load_ns >= ns);
        assert_eq!(s.load(&fp(2)).expect("hit").0, art(2, 4));
        assert!(s.load(&fp(3)).is_none());
        let m = s.metrics();
        assert_eq!((m.disk_hits, m.disk_misses), (2, 1));
        assert_eq!(m.disk_hit_rate(), 2.0 / 3.0);
        assert_eq!((m.corrupt_rejected, m.version_rejected), (0, 0));
        cleanup(&path);
    }

    #[test]
    fn flushes_are_canonical() {
        // Same contents → byte-identical files, regardless of insert
        // order (entries sort by fingerprint encoding on flush).
        let (pa, pb) = (tmp_path("canon_a"), tmp_path("canon_b"));
        {
            let mut a = PersistentStore::open(&pa, 7);
            a.record(fp(1), art(1, 4));
            a.record(fp(2), art(2, 4));
            a.flush().unwrap();
            let mut b = PersistentStore::open(&pb, 7);
            b.record(fp(2), art(2, 4));
            b.record(fp(1), art(1, 4));
            b.flush().unwrap();
        }
        assert_eq!(fs::read(&pa).unwrap(), fs::read(&pb).unwrap());
        cleanup(&pa);
        cleanup(&pb);
    }

    #[test]
    fn bit_flip_rejects_one_entry_and_keeps_the_rest() {
        let path = tmp_path("bitflip");
        {
            let mut s = PersistentStore::open(&path, 9);
            for n in 1..=3 {
                s.record(fp(n), art(n, 6));
            }
            s.flush().unwrap();
        }
        // Flip one byte inside the second entry's payload: its CRC no
        // longer matches, so it is skipped by frame length; entries 1
        // and 3 still load.
        let mut bytes = fs::read(&path).unwrap();
        let off = payload_offset(&bytes, 1);
        bytes[off + 3] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        let mut s = PersistentStore::open(&path, 9);
        assert_eq!(s.len(), 2, "two of three entries survive");
        let m = s.metrics();
        assert_eq!(m.corrupt_rejected, 1);
        assert_eq!(m.entries_loaded, 2);
        assert_eq!(m.version_rejected, 0);
        // Exactly one fingerprint is gone; the survivors round-trip.
        let hits = (1..=3).filter(|&n| s.load(&fp(n)).is_some()).count();
        assert_eq!(hits, 2);
        cleanup(&path);
    }

    #[test]
    fn truncation_keeps_the_prefix() {
        let path = tmp_path("trunc");
        {
            let mut s = PersistentStore::open(&path, 9);
            for n in 1..=3 {
                s.record(fp(n), art(n, 6));
            }
            s.flush().unwrap();
        }
        // Cut the file mid-second-entry (a crash without the atomic
        // rename could not produce this, but a failing disk can).
        let bytes = fs::read(&path).unwrap();
        let cut = payload_offset(&bytes, 1) + 2;
        fs::write(&path, &bytes[..cut]).unwrap();
        let mut s = PersistentStore::open(&path, 9);
        assert_eq!(s.len(), 1, "only the entry before the cut survives");
        let m = s.metrics();
        assert_eq!(m.corrupt_rejected, 1);
        assert_eq!(m.entries_loaded, 1);
        assert!(s.load(&fp(1)).is_some());
        cleanup(&path);
    }

    #[test]
    fn wrong_salt_or_version_rejects_the_whole_store() {
        let path = tmp_path("salt");
        {
            let mut s = PersistentStore::open(&path, 1111);
            s.record(fp(1), art(1, 4));
            s.flush().unwrap();
        }
        // Same file, different ABI salt (a rebuilt opcode table or
        // cost model): everything is cold, nothing is corrupt.
        {
            let mut s = PersistentStore::open(&path, 2222);
            assert!(s.is_empty());
            assert!(s.load(&fp(1)).is_none());
            let m = s.metrics();
            assert_eq!(m.version_rejected, 1);
            assert_eq!(m.corrupt_rejected, 0);
            assert_eq!(m.entries_loaded, 0);
        }
        // Bump the header's format version in place: same rejection.
        let mut bytes = fs::read(&path).unwrap();
        bytes[4] = bytes[4].wrapping_add(1);
        fs::write(&path, &bytes).unwrap();
        let s = PersistentStore::open(&path, 1111);
        assert!(s.is_empty());
        assert_eq!(s.metrics().version_rejected, 1);
        cleanup(&path);
    }

    #[test]
    fn garbage_and_short_files_are_cold_not_fatal() {
        for (tag, bytes) in [
            ("garbage", b"not a store at all".to_vec()),
            ("shorthdr", b"TCCP\x01".to_vec()),
            ("badmagic", b"XXXXXXXXXXXXXXXX".to_vec()),
        ] {
            let path = tmp_path(tag);
            fs::write(&path, &bytes).unwrap();
            let mut s = PersistentStore::open(&path, 5);
            assert!(s.is_empty(), "{tag}");
            assert_eq!(s.metrics().corrupt_rejected, 1, "{tag}");
            // The store stays usable: record + flush overwrite the
            // junk atomically.
            s.record(fp(1), art(1, 4));
            s.flush().unwrap();
            drop(s);
            let s2 = PersistentStore::open(&path, 5);
            assert_eq!(s2.len(), 1);
            cleanup(&path);
        }
    }

    #[test]
    fn second_opener_is_read_only_until_writer_drops() {
        let path = tmp_path("lock");
        let a = PersistentStore::open(&path, 3);
        assert!(a.is_writer());
        let mut b = PersistentStore::open(&path, 3);
        assert!(!b.is_writer(), "writer lock is exclusive");
        b.record(fp(1), art(1, 4));
        assert!(b.flush().is_err(), "read-only flush must fail");
        drop(a); // releases the lock
        drop(b); // read-only: must NOT try to flush its dirty state
        let c = PersistentStore::open(&path, 3);
        assert!(c.is_writer(), "lock released on drop");
        assert!(c.is_empty(), "the reader's dirty state never hit disk");
        cleanup(&path);
    }

    #[test]
    fn drop_flushes_dirty_writer_state() {
        let path = tmp_path("dropflush");
        {
            let mut s = PersistentStore::open(&path, 3);
            s.record(fp(5), art(5, 4));
            // No explicit flush: drop is the process-exit path.
        }
        let s = PersistentStore::open(&path, 3);
        assert_eq!(s.len(), 1);
        cleanup(&path);
    }

    #[test]
    fn tombstones_are_omitted_on_flush_and_resurrectable() {
        let path = tmp_path("tomb");
        {
            let mut s = PersistentStore::open(&path, 3);
            s.record(fp(1), art(1, 4));
            s.record(fp(2), art(2, 4));
            s.flush().unwrap();
            assert!(s.tombstone(&fp(1)));
            assert!(!s.tombstone(&fp(1)), "already gone");
            assert_eq!(s.metrics().tombstones, 1);
            s.flush().unwrap();
        }
        {
            let mut s = PersistentStore::open(&path, 3);
            assert_eq!(s.len(), 1);
            assert!(s.load(&fp(1)).is_none(), "tombstoned entry is cold");
            assert!(s.load(&fp(2)).is_some());
            // Recording again resurrects the fingerprint.
            s.record(fp(1), art(1, 8));
            s.flush().unwrap();
        }
        let s = PersistentStore::open(&path, 3);
        assert_eq!(s.len(), 2);
        cleanup(&path);
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }
}
