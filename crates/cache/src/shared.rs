//! Multi-tenant shared artifact cache: the compile-once layer behind
//! `tcc-serve`.
//!
//! A single process running N worker sessions should pay for one
//! compile per unique closure, not N. [`SharedArtifacts`] is a
//! process-wide, thread-safe map from [`Fingerprint`] to an immutable
//! `Arc`'d [`Artifact`] — the sealed function's words plus (when the
//! function is position-independent) its shared decoded translation.
//! Sessions install an artifact's words into their own `CodeSpace`
//! (`install_function` rebases external calls), so the artifact itself
//! never aliases mutable VM state and is safe to hand to any thread.
//!
//! Three design points, in the order they matter:
//!
//! * **Sharding** — the map is split over `N` mutex shards selected by
//!   hashing the fingerprint, so concurrent sessions touching different
//!   closures never contend on one lock. Shard locks are held only for
//!   map operations, never across a compile or a wait.
//! * **In-flight slots** — the first requester of an absent fingerprint
//!   *claims* it ([`Acquire::Miss`]) and compiles; concurrent
//!   requesters find the in-flight slot and block on its condvar
//!   instead of duplicating the compile. A claim dropped without
//!   publishing (compile failed) aborts the slot and wakes waiters to
//!   retry, so a crash cannot wedge a fingerprint forever.
//! * **LRU under a global byte budget** — publishing past the budget
//!   evicts globally least-recently-used artifacts. Every eviction or
//!   explicit invalidation bumps a [`SharedArtifacts::generation`]
//!   stamp; sessions that installed copies of dropped artifacts observe
//!   the bump, free their local copies (`free_function` → epoch bump),
//!   and stale addresses fault `VmError::StaleCode` exactly as in the
//!   single-threaded lifecycle.
//!
//! Counters surface through [`tcc_obs::SharedCacheMetrics`]; the
//! `suite serve` harness gates the resulting hit rate and
//! compiles-per-unique-fingerprint.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use tcc_obs::{PersistMetrics, SharedCacheMetrics};
use tcc_vm::SharedTranslation;

use crate::persist::{PersistentStore, StoredArtifact};
use crate::Fingerprint;

/// Default shard count: enough to make cross-thread contention on
/// distinct fingerprints unlikely at the pool sizes `suite serve`
/// drives (N ≤ 4 threads), small enough that the global LRU scan stays
/// cheap.
pub const DEFAULT_SHARDS: usize = 16;

/// Passes [`SharedArtifacts::enforce_budget`] will attempt before
/// giving up (each pass evicts at most one artifact; a pass can also
/// lose a race and evict nothing). Purely a runaway backstop.
const MAX_EVICT_PASSES: usize = 4096;

/// One compiled closure, immutable and shareable across threads.
///
/// Everything a session needs to *install* the function into its own
/// `CodeSpace` and pre-seed its decoded translation — no addresses, no
/// handles, no references into any VM.
#[derive(Clone, Debug)]
pub struct Artifact {
    /// Function name (diagnostics; install reuses it).
    pub name: String,
    /// Start word index the words were sealed at in the compiling
    /// session's code space; `install_function` rebases external
    /// control transfers relative to this.
    pub orig_start: usize,
    /// The sealed function's encoded words.
    pub words: Vec<u32>,
    /// Code size in bytes (`words.len() * 4`), the budget unit.
    pub bytes: u64,
    /// What the original compilation cost (hit-side savings signal).
    pub compile_ns: u64,
    /// Shared decoded translation, present when the function is
    /// position-independent (see `SharedTranslation::build`).
    pub translation: Option<SharedTranslation>,
}

/// What a fingerprint request resolved to.
pub enum Acquire {
    /// An artifact was already published (or became published while we
    /// waited on the in-flight compile).
    Hit {
        /// The shared artifact.
        artifact: Arc<Artifact>,
        /// Whether this request blocked on another requester's
        /// in-flight compile rather than finding the artifact ready.
        waited: bool,
    },
    /// This requester claimed the fingerprint: it must compile and
    /// [`CompileClaim::publish`] (or drop the claim to abort).
    Miss(CompileClaim),
}

/// Nonblocking view of a fingerprint's slot, for deterministic
/// interleaving tests and diagnostics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SlotState {
    /// No slot: the next requester will claim it.
    Absent,
    /// A compile is in flight; requesters block on it.
    InFlight,
    /// A published artifact is resident.
    Ready,
}

/// The exclusive right (and obligation) to compile one fingerprint.
/// Returned by [`SharedArtifacts::get_or_begin`] on a miss. Publishing
/// stores the artifact and wakes waiters; dropping without publishing
/// aborts the slot and wakes waiters to retry.
pub struct CompileClaim {
    owner: Arc<SharedArtifacts>,
    fp: Fingerprint,
    slot: Arc<InFlight>,
    done: bool,
}

struct InFlight {
    state: Mutex<FlightState>,
    cv: Condvar,
}

enum FlightState {
    Pending,
    Done(Arc<Artifact>),
    Aborted,
}

enum Slot {
    Ready {
        artifact: Arc<Artifact>,
        last_use: u64,
    },
    InFlight(Arc<InFlight>),
}

#[derive(Default)]
struct Shard {
    entries: HashMap<Fingerprint, Slot>,
}

/// Recovers the guard from a poisoned mutex: every critical section in
/// this module is a handful of map operations that leave the shard
/// consistent, so a panic elsewhere must not wedge the whole cache.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// The sharded, fingerprint-keyed shared artifact cache. Construct
/// with [`SharedArtifacts::new`] (always behind an `Arc`; claims keep
/// the cache alive through it).
pub struct SharedArtifacts {
    shards: Vec<Mutex<Shard>>,
    /// Global byte budget over all published artifacts; `None` =
    /// unbounded.
    budget: Option<u64>,
    /// Bytes held by published artifacts.
    bytes_live: AtomicU64,
    /// Published artifacts resident.
    entries: AtomicU64,
    /// Monotonic LRU clock (global: eviction compares across shards).
    clock: AtomicU64,
    /// Bumped on every eviction or invalidation. Sessions compare
    /// against the value they last synced at and free local installs
    /// of artifacts that are no longer resident.
    generation: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    waits: AtomicU64,
    published: AtomicU64,
    evictions: AtomicU64,
    invalidations: AtomicU64,
    uncacheable: AtomicU64,
    /// Optional on-disk persistence: attached once per process
    /// ([`SharedArtifacts::attach_persist`]); disk fills answer misses
    /// before an in-flight compile slot is claimed, publishes are
    /// recorded, and invalidations tombstone. Lock order: shard lock →
    /// persist lock (the persist mutex is a leaf — it never takes a
    /// shard lock while held).
    persist: Mutex<Option<PersistentStore>>,
}

impl std::fmt::Debug for SharedArtifacts {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedArtifacts")
            .field("shards", &self.shards.len())
            .field("budget", &self.budget)
            .field("entries", &self.entries.load(Ordering::Relaxed))
            .field("bytes_live", &self.bytes_live.load(Ordering::Relaxed))
            .finish()
    }
}

impl SharedArtifacts {
    /// A cache with `shards` mutex shards (min 1) and an optional
    /// global byte budget.
    pub fn new(shards: usize, budget: Option<u64>) -> Arc<SharedArtifacts> {
        let n = shards.max(1);
        Arc::new(SharedArtifacts {
            shards: (0..n).map(|_| Mutex::new(Shard::default())).collect(),
            budget,
            bytes_live: AtomicU64::new(0),
            entries: AtomicU64::new(0),
            clock: AtomicU64::new(0),
            generation: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            waits: AtomicU64::new(0),
            published: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
            uncacheable: AtomicU64::new(0),
            persist: Mutex::new(None),
        })
    }

    /// Attaches a persistent store (first attach wins; later calls
    /// return false and drop their store). From here on, misses
    /// consult the store before claiming a compile slot, publishes
    /// are recorded, and invalidations tombstone on the next flush.
    pub fn attach_persist(&self, store: PersistentStore) -> bool {
        let mut p = lock(&self.persist);
        if p.is_some() {
            return false;
        }
        *p = Some(store);
        true
    }

    /// Whether a persistent store is attached.
    pub fn has_persist(&self) -> bool {
        lock(&self.persist).is_some()
    }

    /// Flushes the attached store (atomic temp-file + rename). A
    /// no-op `Ok` when no store is attached; an error when the store
    /// is read-only (another process holds the writer lock) or the
    /// write fails.
    pub fn flush_persist(&self) -> std::io::Result<()> {
        match lock(&self.persist).as_mut() {
            Some(store) => store.flush(),
            None => Ok(()),
        }
    }

    /// Counters of the attached store, if any.
    pub fn persist_metrics(&self) -> Option<PersistMetrics> {
        lock(&self.persist).as_ref().map(|s| s.metrics())
    }

    /// An unbounded cache with [`DEFAULT_SHARDS`] shards.
    pub fn unbounded() -> Arc<SharedArtifacts> {
        Self::new(DEFAULT_SHARDS, None)
    }

    /// A budget-bounded cache with [`DEFAULT_SHARDS`] shards.
    pub fn with_budget(budget: u64) -> Arc<SharedArtifacts> {
        Self::new(DEFAULT_SHARDS, Some(budget))
    }

    /// The configured global byte budget, if any.
    pub fn budget(&self) -> Option<u64> {
        self.budget
    }

    /// Published artifacts currently resident.
    pub fn len(&self) -> usize {
        self.entries.load(Ordering::Relaxed) as usize
    }

    /// True when nothing is published.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn shard_for(&self, fp: &Fingerprint) -> &Mutex<Shard> {
        let mut h = DefaultHasher::new();
        fp.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    fn next_use(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Resolves `fp`: a published artifact is a [`Acquire::Hit`]; an
    /// in-flight compile blocks until it publishes or aborts (abort
    /// retries from the top, so exactly one requester ends up
    /// compiling); an absent fingerprint is claimed and returned as
    /// [`Acquire::Miss`] — the caller must compile and publish (or
    /// drop the claim).
    ///
    /// Shard locks are never held while waiting; the wait is on the
    /// in-flight slot's own condvar.
    pub fn get_or_begin(self: &Arc<Self>, fp: &Fingerprint) -> Acquire {
        loop {
            let inflight = {
                let mut shard = lock(self.shard_for(fp));
                match shard.entries.get_mut(fp) {
                    Some(Slot::Ready { artifact, last_use }) => {
                        *last_use = self.next_use();
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        return Acquire::Hit {
                            artifact: Arc::clone(artifact),
                            waited: false,
                        };
                    }
                    Some(Slot::InFlight(slot)) => Arc::clone(slot),
                    None => {
                        // Disk fill: a persisted artifact answers the
                        // miss before an in-flight slot is claimed, so
                        // a warm-started process never recompiles what
                        // a previous process published. The shard
                        // guard must drop before `enforce_budget`
                        // (which takes shard locks itself).
                        if let Some(artifact) = self.persist_fill(fp, &mut shard) {
                            self.hits.fetch_add(1, Ordering::Relaxed);
                            drop(shard);
                            self.enforce_budget();
                            return Acquire::Hit {
                                artifact,
                                waited: false,
                            };
                        }
                        let slot = Arc::new(InFlight {
                            state: Mutex::new(FlightState::Pending),
                            cv: Condvar::new(),
                        });
                        shard
                            .entries
                            .insert(fp.clone(), Slot::InFlight(Arc::clone(&slot)));
                        self.misses.fetch_add(1, Ordering::Relaxed);
                        return Acquire::Miss(CompileClaim {
                            owner: Arc::clone(self),
                            fp: fp.clone(),
                            slot,
                            done: false,
                        });
                    }
                }
            };
            // Found someone else's in-flight compile: wait it out.
            self.waits.fetch_add(1, Ordering::Relaxed);
            let mut st = lock(&inflight.state);
            loop {
                match &*st {
                    FlightState::Pending => {
                        st = inflight.cv.wait(st).unwrap_or_else(|e| e.into_inner());
                    }
                    FlightState::Done(artifact) => {
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        return Acquire::Hit {
                            artifact: Arc::clone(artifact),
                            waited: true,
                        };
                    }
                    // The compiler aborted: race for the claim again.
                    FlightState::Aborted => break,
                }
            }
        }
    }

    /// Consults the attached persistent store for `fp` and, on a disk
    /// hit, publishes the loaded artifact into the (already locked)
    /// shard as `Ready`. The caller still holds the shard lock — it
    /// must drop it before calling `enforce_budget`. Translations are
    /// not persisted; sessions rebuild them lazily from the words.
    fn persist_fill(&self, fp: &Fingerprint, shard: &mut Shard) -> Option<Arc<Artifact>> {
        let loaded = lock(&self.persist).as_mut()?.load(fp);
        let (stored, _load_ns) = loaded?;
        let artifact = Arc::new(Artifact {
            name: stored.name,
            orig_start: stored.orig_start,
            bytes: (stored.words.len() * 4) as u64,
            words: stored.words,
            compile_ns: stored.compile_ns,
            translation: None,
        });
        let last_use = self.next_use();
        shard.entries.insert(
            fp.clone(),
            Slot::Ready {
                artifact: Arc::clone(&artifact),
                last_use,
            },
        );
        self.bytes_live.fetch_add(artifact.bytes, Ordering::Relaxed);
        self.entries.fetch_add(1, Ordering::Relaxed);
        Some(artifact)
    }

    /// Nonblocking slot inspection (deterministic interleaving tests).
    pub fn poll(&self, fp: &Fingerprint) -> SlotState {
        match lock(self.shard_for(fp)).entries.get(fp) {
            None => SlotState::Absent,
            Some(Slot::InFlight(_)) => SlotState::InFlight,
            Some(Slot::Ready { .. }) => SlotState::Ready,
        }
    }

    /// Whether a published artifact is resident for `fp`.
    pub fn contains(&self, fp: &Fingerprint) -> bool {
        matches!(
            lock(self.shard_for(fp)).entries.get(fp),
            Some(Slot::Ready { .. })
        )
    }

    /// Counts a request served from a session's locally *installed*
    /// copy of a shared artifact (a shared-cache hit that needed no
    /// shard probe beyond refreshing the LRU clock). Returns whether
    /// the artifact is still resident; a `false` tells the session its
    /// install is due to be dropped at the next generation sync.
    pub fn touch(&self, fp: &Fingerprint) -> bool {
        self.hits.fetch_add(1, Ordering::Relaxed);
        let mut shard = lock(self.shard_for(fp));
        if let Some(Slot::Ready { last_use, .. }) = shard.entries.get_mut(fp) {
            *last_use = self.next_use();
            true
        } else {
            false
        }
    }

    /// Drops the published artifact for `fp` (rule-set churn). Bumps
    /// the generation so sessions free their installed copies, and
    /// tombstones the fingerprint in the persistent store so the next
    /// flush omits it — churned-out rules must not resurrect at the
    /// next warm start. An in-flight compile is left alone — it will
    /// publish normally.
    pub fn invalidate(&self, fp: &Fingerprint) -> bool {
        {
            let mut shard = lock(self.shard_for(fp));
            if !matches!(shard.entries.get(fp), Some(Slot::Ready { .. })) {
                return false;
            }
            let Some(Slot::Ready { artifact, .. }) = shard.entries.remove(fp) else {
                unreachable!("checked Ready above");
            };
            self.bytes_live.fetch_sub(artifact.bytes, Ordering::Relaxed);
            self.entries.fetch_sub(1, Ordering::Relaxed);
            self.invalidations.fetch_add(1, Ordering::Relaxed);
            self.generation.fetch_add(1, Ordering::AcqRel);
        }
        if let Some(store) = lock(&self.persist).as_mut() {
            store.tombstone(fp);
        }
        true
    }

    /// The eviction/invalidation stamp. Sessions cache the value they
    /// last synced at; a change means some artifact they may have
    /// installed is gone and local copies must be revalidated.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// A deterministic pick among the resident fingerprints (`k`-th in
    /// encoding order, mod count), for the serve harness's churn
    /// injector. `None` when nothing is published.
    pub fn sample_fingerprint(&self, k: u64) -> Option<Fingerprint> {
        let mut all: Vec<Fingerprint> = Vec::new();
        for shard in &self.shards {
            let shard = lock(shard);
            for (fp, slot) in &shard.entries {
                if matches!(slot, Slot::Ready { .. }) {
                    all.push(fp.clone());
                }
            }
        }
        if all.is_empty() {
            return None;
        }
        all.sort_by(|a, b| a.0.cmp(&b.0));
        Some(all[(k as usize) % all.len()].clone())
    }

    /// Snapshot of the counters.
    pub fn metrics(&self) -> SharedCacheMetrics {
        SharedCacheMetrics {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            waits: self.waits.load(Ordering::Relaxed),
            published: self.published.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            uncacheable: self.uncacheable.load(Ordering::Relaxed),
            bytes_live: self.bytes_live.load(Ordering::Relaxed),
            entries: self.entries.load(Ordering::Relaxed),
        }
    }

    /// Evicts globally least-recently-used artifacts until live bytes
    /// fit the budget. The scan takes each shard lock briefly (never
    /// two at once) and re-checks the victim's recency before removing
    /// it, so a concurrent touch can save an entry the scan chose.
    /// Eviction does *not* tombstone the persistent store: it is a
    /// memory-budget decision, and the disk copy stays valuable for
    /// the next warm start (only explicit invalidation tombstones).
    fn enforce_budget(&self) {
        let Some(budget) = self.budget else {
            return;
        };
        for _ in 0..MAX_EVICT_PASSES {
            if self.bytes_live.load(Ordering::Relaxed) <= budget {
                return;
            }
            let mut victim: Option<(usize, Fingerprint, u64)> = None;
            for (si, shard) in self.shards.iter().enumerate() {
                let shard = lock(shard);
                for (fp, slot) in &shard.entries {
                    if let Slot::Ready { last_use, .. } = slot {
                        if victim.as_ref().is_none_or(|(_, _, lu)| last_use < lu) {
                            victim = Some((si, fp.clone(), *last_use));
                        }
                    }
                }
            }
            let Some((si, fp, lu)) = victim else {
                // Everything evictable is gone (all in-flight): live
                // with being over budget rather than spinning.
                return;
            };
            let mut shard = lock(&self.shards[si]);
            let still_lru = matches!(
                shard.entries.get(&fp),
                Some(Slot::Ready { last_use, .. }) if *last_use == lu
            );
            if still_lru {
                if let Some(Slot::Ready { artifact, .. }) = shard.entries.remove(&fp) {
                    self.bytes_live.fetch_sub(artifact.bytes, Ordering::Relaxed);
                    self.entries.fetch_sub(1, Ordering::Relaxed);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                    self.generation.fetch_add(1, Ordering::AcqRel);
                }
            }
            // A lost race (entry touched or removed since the scan)
            // just rescans on the next pass.
        }
    }
}

impl CompileClaim {
    /// The fingerprint this claim owns.
    pub fn fingerprint(&self) -> &Fingerprint {
        &self.fp
    }

    /// Publishes the compiled artifact: stores it (evicting under the
    /// budget), wakes every waiter with the `Arc`, and returns it. An
    /// artifact larger than the whole budget is *not* retained
    /// (counted `uncacheable`) — but waiters still receive it, so
    /// nobody recompiles what this claim already built.
    pub fn publish(mut self, artifact: Artifact) -> Arc<Artifact> {
        let artifact = Arc::new(artifact);
        let owner = Arc::clone(&self.owner);
        let retain = owner.budget.is_none_or(|b| artifact.bytes <= b);
        {
            let mut shard = lock(owner.shard_for(&self.fp));
            // Only replace the slot if it is still ours (an invalidate
            // cannot remove an in-flight slot today, but stay robust).
            let ours = matches!(
                shard.entries.get(&self.fp),
                Some(Slot::InFlight(s)) if Arc::ptr_eq(s, &self.slot)
            );
            if ours {
                if retain {
                    let last_use = owner.next_use();
                    shard.entries.insert(
                        self.fp.clone(),
                        Slot::Ready {
                            artifact: Arc::clone(&artifact),
                            last_use,
                        },
                    );
                    owner
                        .bytes_live
                        .fetch_add(artifact.bytes, Ordering::Relaxed);
                    owner.entries.fetch_add(1, Ordering::Relaxed);
                } else {
                    shard.entries.remove(&self.fp);
                    owner.uncacheable.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        // Record to the persistent store (memory-budget decisions do
        // not apply to disk: even an uncacheable-in-memory artifact is
        // worth a warm start). The translation is intentionally not
        // serialized — it is rebuilt lazily from the words.
        if let Some(store) = lock(&owner.persist).as_mut() {
            store.record(
                self.fp.clone(),
                StoredArtifact {
                    name: artifact.name.clone(),
                    orig_start: artifact.orig_start,
                    words: artifact.words.clone(),
                    compile_ns: artifact.compile_ns,
                },
            );
        }
        owner.published.fetch_add(1, Ordering::Relaxed);
        {
            let mut st = lock(&self.slot.state);
            *st = FlightState::Done(Arc::clone(&artifact));
            self.slot.cv.notify_all();
        }
        self.done = true;
        if retain {
            owner.enforce_budget();
        }
        artifact
    }
}

impl Drop for CompileClaim {
    fn drop(&mut self) {
        if self.done {
            return;
        }
        // Compile failed or was abandoned: free the fingerprint and
        // wake waiters so one of them claims it next.
        {
            let mut shard = lock(self.owner.shard_for(&self.fp));
            let ours = matches!(
                shard.entries.get(&self.fp),
                Some(Slot::InFlight(s)) if Arc::ptr_eq(s, &self.slot)
            );
            if ours {
                shard.entries.remove(&self.fp);
            }
        }
        let mut st = lock(&self.slot.state);
        *st = FlightState::Aborted;
        self.slot.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FingerprintBuilder;
    use std::sync::Barrier;
    use std::thread;

    fn fp(n: u64) -> Fingerprint {
        let mut b = FingerprintBuilder::new();
        b.push_tag(9);
        b.push_u64(n);
        b.build()
    }

    fn art(n: u64, words: usize) -> Artifact {
        Artifact {
            name: format!("f{n}"),
            orig_start: 0,
            words: vec![0; words],
            bytes: (words * 4) as u64,
            compile_ns: 100,
            translation: None,
        }
    }

    #[test]
    fn first_compiler_wins_and_waiters_share_the_artifact() {
        let cache = SharedArtifacts::unbounded();
        let threads = 4;
        let barrier = Arc::new(Barrier::new(threads));
        let mut handles = Vec::new();
        for _ in 0..threads {
            let cache = Arc::clone(&cache);
            let barrier = Arc::clone(&barrier);
            handles.push(thread::spawn(move || {
                barrier.wait();
                match cache.get_or_begin(&fp(1)) {
                    Acquire::Miss(claim) => {
                        // Give the other threads time to pile onto the
                        // in-flight slot before publishing.
                        thread::sleep(std::time::Duration::from_millis(20));
                        (true, claim.publish(art(1, 8)))
                    }
                    Acquire::Hit { artifact, .. } => (false, artifact),
                }
            }));
        }
        let results: Vec<(bool, Arc<Artifact>)> =
            handles.into_iter().map(|h| h.join().unwrap()).collect();
        let compilers = results.iter().filter(|(compiled, _)| *compiled).count();
        assert_eq!(compilers, 1, "exactly one thread compiled");
        for (_, a) in &results {
            assert!(Arc::ptr_eq(a, &results[0].1), "all threads share one Arc");
        }
        let m = cache.metrics();
        assert_eq!(m.published, 1);
        assert_eq!(m.misses, 1);
        assert_eq!(m.hits, (threads - 1) as u64);
        assert!(m.waits >= 1, "someone blocked on the in-flight slot");
        assert_eq!(m.entries, 1);
        assert_eq!(m.bytes_live, 32);
    }

    #[test]
    fn inflight_slot_interleavings_are_deterministic() {
        // A single-threaded script through every slot state — the
        // deterministic (loom-style) check that each observable
        // interleaving point behaves as specified, with no timing.
        let cache = SharedArtifacts::unbounded();
        assert_eq!(cache.poll(&fp(1)), SlotState::Absent);

        // Claim → in flight.
        let Acquire::Miss(claim) = cache.get_or_begin(&fp(1)) else {
            panic!("first requester must claim");
        };
        assert_eq!(cache.poll(&fp(1)), SlotState::InFlight);
        assert!(!cache.contains(&fp(1)));

        // Abort (drop without publish) → absent again, claimable.
        drop(claim);
        assert_eq!(cache.poll(&fp(1)), SlotState::Absent);

        // Re-claim → publish → ready; later requesters hit.
        let Acquire::Miss(claim) = cache.get_or_begin(&fp(1)) else {
            panic!("aborted fingerprint must be claimable again");
        };
        let published = claim.publish(art(1, 4));
        assert_eq!(cache.poll(&fp(1)), SlotState::Ready);
        match cache.get_or_begin(&fp(1)) {
            Acquire::Hit { artifact, waited } => {
                assert!(Arc::ptr_eq(&artifact, &published));
                assert!(!waited, "ready artifacts do not block");
            }
            Acquire::Miss(_) => panic!("published artifact must hit"),
        }
        let m = cache.metrics();
        assert_eq!((m.misses, m.hits, m.published), (2, 1, 1));
        assert_eq!(m.waits, 0, "nothing blocked in this script");
    }

    #[test]
    fn aborted_compile_wakes_waiters_to_retry() {
        let cache = SharedArtifacts::unbounded();
        let Acquire::Miss(claim) = cache.get_or_begin(&fp(7)) else {
            panic!("claims");
        };
        let waiter = {
            let cache = Arc::clone(&cache);
            thread::spawn(move || match cache.get_or_begin(&fp(7)) {
                // After the abort the waiter retries and wins the claim.
                Acquire::Miss(c) => {
                    c.publish(art(7, 4));
                    true
                }
                Acquire::Hit { .. } => false,
            })
        };
        // Let the waiter reach the in-flight slot, then abort.
        while cache.metrics().waits == 0 {
            thread::yield_now();
        }
        drop(claim);
        assert!(waiter.join().unwrap(), "waiter retried and compiled");
        assert!(cache.contains(&fp(7)));
        assert_eq!(cache.metrics().published, 1);
    }

    #[test]
    fn lru_eviction_under_budget_bumps_generation() {
        // Budget fits two 40-byte artifacts.
        let cache = SharedArtifacts::new(4, Some(80));
        for n in [1, 2] {
            let Acquire::Miss(c) = cache.get_or_begin(&fp(n)) else {
                panic!("miss");
            };
            c.publish(art(n, 10));
        }
        assert_eq!(cache.generation(), 0);
        // Touch 1 so 2 is the global LRU, then publish 3.
        assert!(matches!(cache.get_or_begin(&fp(1)), Acquire::Hit { .. }));
        let Acquire::Miss(c) = cache.get_or_begin(&fp(3)) else {
            panic!("miss");
        };
        c.publish(art(3, 10));
        assert!(cache.contains(&fp(1)), "recently used survives");
        assert!(!cache.contains(&fp(2)), "LRU evicted");
        assert!(cache.contains(&fp(3)));
        let m = cache.metrics();
        assert_eq!(m.evictions, 1);
        assert_eq!(m.bytes_live, 80);
        assert_eq!(m.entries, 2);
        assert_eq!(cache.generation(), 1, "eviction bumped the stamp");
        // Explicit invalidation also bumps it.
        assert!(cache.invalidate(&fp(3)));
        assert!(!cache.invalidate(&fp(3)), "already gone");
        assert_eq!(cache.generation(), 2);
        assert_eq!(cache.metrics().invalidations, 1);
        assert_eq!(cache.metrics().bytes_live, 40);
    }

    #[test]
    fn oversized_artifact_serves_waiters_but_is_not_retained() {
        let cache = SharedArtifacts::new(2, Some(16));
        let Acquire::Miss(c) = cache.get_or_begin(&fp(1)) else {
            panic!("miss");
        };
        let a = c.publish(art(1, 100)); // 400 bytes > 16-byte budget
        assert_eq!(a.bytes, 400, "the caller still got the artifact");
        assert!(!cache.contains(&fp(1)), "not retained");
        let m = cache.metrics();
        assert_eq!(m.uncacheable, 1);
        assert_eq!(m.published, 1);
        assert_eq!(m.bytes_live, 0);
        assert_eq!(m.entries, 0);
        assert_eq!(cache.generation(), 0, "nothing resident was dropped");
    }

    #[test]
    fn sample_fingerprint_is_deterministic_over_residents() {
        let cache = SharedArtifacts::unbounded();
        assert_eq!(cache.sample_fingerprint(0), None);
        for n in [5, 1, 9] {
            let Acquire::Miss(c) = cache.get_or_begin(&fp(n)) else {
                panic!("miss");
            };
            c.publish(art(n, 4));
        }
        let picks: Vec<_> = (0..6)
            .map(|k| cache.sample_fingerprint(k).unwrap())
            .collect();
        // Encoding order, cycling: the same k always picks the same fp.
        assert_eq!(picks[0], picks[3]);
        assert_eq!(picks[1], picks[4]);
        assert_eq!(picks[2], picks[5]);
        let mut distinct = picks[..3].to_vec();
        distinct.dedup();
        assert_eq!(distinct.len(), 3, "three residents, three picks");
    }

    #[test]
    fn persist_fill_answers_misses_and_invalidate_tombstones() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("tcc_shared_persist_{}.store", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(format!("{}.lock", path.display()));
        // Process 1: compile, publish, invalidate one, flush on drop.
        {
            let cache = SharedArtifacts::unbounded();
            assert!(cache.attach_persist(PersistentStore::open(&path, 77)));
            assert!(
                !cache.attach_persist(PersistentStore::open(&path, 77)),
                "second attach loses"
            );
            for n in [1, 2] {
                let Acquire::Miss(c) = cache.get_or_begin(&fp(n)) else {
                    panic!("cold process must miss");
                };
                c.publish(art(n, 8));
            }
            assert!(cache.invalidate(&fp(2)), "churned out before shutdown");
            cache.flush_persist().expect("writer flushes");
            let pm = cache.persist_metrics().expect("attached");
            assert_eq!(pm.tombstones, 1);
            assert!(pm.flushes >= 1);
        }
        // Process 2: the published artifact disk-fills (no compile
        // slot claimed); the invalidated one is cold.
        {
            let cache = SharedArtifacts::unbounded();
            assert!(cache.attach_persist(PersistentStore::open(&path, 77)));
            match cache.get_or_begin(&fp(1)) {
                Acquire::Hit { artifact, waited } => {
                    assert!(!waited);
                    assert_eq!(artifact.words, art(1, 8).words);
                    assert_eq!(artifact.orig_start, art(1, 8).orig_start);
                    assert!(artifact.translation.is_none(), "rebuilt lazily");
                }
                Acquire::Miss(_) => panic!("persisted artifact must disk-fill"),
            }
            assert!(cache.contains(&fp(1)), "disk fill published into memory");
            assert!(matches!(cache.get_or_begin(&fp(2)), Acquire::Miss(_)));
            let pm = cache.persist_metrics().expect("attached");
            assert_eq!((pm.disk_hits, pm.disk_misses), (1, 1));
            assert_eq!(pm.entries_loaded, 1);
            let m = cache.metrics();
            assert_eq!((m.hits, m.misses), (1, 1));
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn hit_rate_counts_touches_and_waiting() {
        let cache = SharedArtifacts::unbounded();
        let Acquire::Miss(c) = cache.get_or_begin(&fp(1)) else {
            panic!("miss");
        };
        c.publish(art(1, 4));
        assert!(cache.touch(&fp(1)), "resident");
        assert!(!cache.touch(&fp(2)), "absent");
        let m = cache.metrics();
        // 1 miss, 2 touches-as-hits.
        assert_eq!((m.hits, m.misses), (2, 1));
        assert!((m.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }
}
