//! The typed operation vocabulary shared by VCODE and ICODE.
//!
//! VCODE's interface is a cross product of operation kinds and operand
//! types; ICODE extends the same interface with unbounded registers
//! (paper §5.2). Both layers in this repo speak the vocabulary defined
//! here, parameterized by [`ValKind`].

use tcc_rt::ValKind;
use tcc_vm::Op;

/// Binary operations. Comparison members materialize 0/1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Signed division (FP division for [`ValKind::F`]).
    Div,
    /// Unsigned division.
    DivU,
    /// Signed remainder.
    Rem,
    /// Unsigned remainder.
    RemU,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Shift left.
    Shl,
    /// Arithmetic shift right.
    Shr,
    /// Logical shift right.
    ShrU,
    /// Equality.
    Eq,
    /// Inequality.
    Ne,
    /// Signed less-than.
    Lt,
    /// Unsigned less-than.
    LtU,
    /// Signed less-or-equal.
    Le,
    /// Unsigned less-or-equal.
    LeU,
    /// Signed greater-than.
    Gt,
    /// Unsigned greater-than.
    GtU,
    /// Signed greater-or-equal.
    Ge,
    /// Unsigned greater-or-equal.
    GeU,
}

impl BinOp {
    /// True for the ten comparison operations.
    pub fn is_cmp(self) -> bool {
        use BinOp::*;
        matches!(self, Eq | Ne | Lt | LtU | Le | LeU | Gt | GtU | Ge | GeU)
    }

    /// True for operations that are commutative at every kind.
    pub fn is_commutative(self) -> bool {
        use BinOp::*;
        matches!(self, Add | Mul | And | Or | Xor | Eq | Ne)
    }

    /// The comparison with swapped operands (`a < b` ⇔ `b > a`);
    /// returns `self` for non-comparisons that are commutative, `None`
    /// otherwise.
    pub fn swapped(self) -> Option<BinOp> {
        use BinOp::*;
        Some(match self {
            Lt => Gt,
            Gt => Lt,
            Le => Ge,
            Ge => Le,
            LtU => GtU,
            GtU => LtU,
            LeU => GeU,
            GeU => LeU,
            Eq => Eq,
            Ne => Ne,
            op if op.is_commutative() => op,
            _ => return None,
        })
    }

    /// The negated comparison (`a < b` ⇔ `!(a >= b)`); `None` for
    /// non-comparisons.
    pub fn negated(self) -> Option<BinOp> {
        use BinOp::*;
        Some(match self {
            Eq => Ne,
            Ne => Eq,
            Lt => Ge,
            Ge => Lt,
            Le => Gt,
            Gt => Le,
            LtU => GeU,
            GeU => LtU,
            LeU => GtU,
            GtU => LeU,
            _ => return None,
        })
    }

    /// Evaluates the operation on constant integers of kind `k`
    /// (reference semantics, used by constant folding and by tests).
    /// Returns `None` for division by zero.
    pub fn eval_int(self, k: ValKind, a: i64, b: i64) -> Option<i64> {
        use BinOp::*;
        let w = k == ValKind::W;
        let (aw, bw) = (a as i32, b as i32);
        let r: i64 = match self {
            Add => {
                if w {
                    aw.wrapping_add(bw) as i64
                } else {
                    a.wrapping_add(b)
                }
            }
            Sub => {
                if w {
                    aw.wrapping_sub(bw) as i64
                } else {
                    a.wrapping_sub(b)
                }
            }
            Mul => {
                if w {
                    aw.wrapping_mul(bw) as i64
                } else {
                    a.wrapping_mul(b)
                }
            }
            Div => {
                if b == 0 {
                    return None;
                }
                if w {
                    aw.wrapping_div(bw) as i64
                } else {
                    a.wrapping_div(b)
                }
            }
            DivU => {
                if b == 0 {
                    return None;
                }
                if w {
                    ((aw as u32) / (bw as u32)) as i32 as i64
                } else {
                    ((a as u64) / (b as u64)) as i64
                }
            }
            Rem => {
                if b == 0 {
                    return None;
                }
                if w {
                    aw.wrapping_rem(bw) as i64
                } else {
                    a.wrapping_rem(b)
                }
            }
            RemU => {
                if b == 0 {
                    return None;
                }
                if w {
                    ((aw as u32) % (bw as u32)) as i32 as i64
                } else {
                    ((a as u64) % (b as u64)) as i64
                }
            }
            And => a & b,
            Or => a | b,
            Xor => a ^ b,
            Shl => {
                if w {
                    aw.wrapping_shl(b as u32 & 31) as i64
                } else {
                    a.wrapping_shl(b as u32 & 63)
                }
            }
            Shr => {
                if w {
                    (aw >> (b as u32 & 31)) as i64
                } else {
                    a >> (b & 63)
                }
            }
            ShrU => {
                if w {
                    ((aw as u32) >> (b as u32 & 31)) as i32 as i64
                } else {
                    ((a as u64) >> (b as u64 & 63)) as i64
                }
            }
            Eq => i64::from(a == b),
            Ne => i64::from(a != b),
            Lt => i64::from(if w { aw < bw } else { a < b }),
            LtU => i64::from(if w {
                (aw as u32) < (bw as u32)
            } else {
                (a as u64) < (b as u64)
            }),
            Le => i64::from(if w { aw <= bw } else { a <= b }),
            LeU => i64::from(if w {
                (aw as u32) <= (bw as u32)
            } else {
                (a as u64) <= (b as u64)
            }),
            Gt => i64::from(if w { aw > bw } else { a > b }),
            GtU => i64::from(if w {
                (aw as u32) > (bw as u32)
            } else {
                (a as u64) > (b as u64)
            }),
            Ge => i64::from(if w { aw >= bw } else { a >= b }),
            GeU => i64::from(if w {
                (aw as u32) >= (bw as u32)
            } else {
                (a as u64) >= (b as u64)
            }),
        };
        Some(r)
    }
}

/// Unary operations (including the conversions).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Bitwise complement.
    Not,
    /// Register move / kind reinterpretation between integer kinds.
    Mov,
    /// 32-bit int → double.
    CvtWtoF,
    /// double → 32-bit int (truncating).
    CvtFtoW,
    /// 64-bit int → double.
    CvtLtoF,
    /// double → 64-bit int (truncating).
    CvtFtoL,
}

/// Memory load widths and extensions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LoadKind {
    /// Sign-extending byte load.
    I8,
    /// Zero-extending byte load.
    U8,
    /// Sign-extending halfword load.
    I16,
    /// Zero-extending halfword load.
    U16,
    /// Sign-extending word load (C `int`).
    I32,
    /// Zero-extending word load (C `unsigned`).
    U32,
    /// Doubleword load (`long`, pointers).
    I64,
    /// Double-precision float load.
    F64,
}

impl LoadKind {
    /// The machine opcode implementing this load.
    pub fn op(self) -> Op {
        match self {
            LoadKind::I8 => Op::Lb,
            LoadKind::U8 => Op::Lbu,
            LoadKind::I16 => Op::Lh,
            LoadKind::U16 => Op::Lhu,
            LoadKind::I32 => Op::Lw,
            LoadKind::U32 => Op::Lwu,
            LoadKind::I64 => Op::Ld,
            LoadKind::F64 => Op::Fld,
        }
    }

    /// The [`ValKind`] of the loaded value.
    pub fn result_kind(self) -> ValKind {
        match self {
            LoadKind::F64 => ValKind::F,
            LoadKind::I64 => ValKind::D,
            _ => ValKind::W,
        }
    }
}

/// Memory store widths.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StoreKind {
    /// Byte store.
    I8,
    /// Halfword store.
    I16,
    /// Word store.
    I32,
    /// Doubleword store.
    I64,
    /// Double-precision float store.
    F64,
}

impl StoreKind {
    /// The machine opcode implementing this store.
    pub fn op(self) -> Op {
        match self {
            StoreKind::I8 => Op::Sb,
            StoreKind::I16 => Op::Sh,
            StoreKind::I32 => Op::Sw,
            StoreKind::I64 => Op::Sd,
            StoreKind::F64 => Op::Fsd,
        }
    }

    /// The [`ValKind`] of the stored value's source.
    pub fn value_kind(self) -> ValKind {
        match self {
            StoreKind::F64 => ValKind::F,
            StoreKind::I64 => ValKind::D,
            _ => ValKind::W,
        }
    }
}

/// Maps an integer binary op at kind `k` to its direct machine opcode, if
/// one exists (`Le`/`Gt` style comparisons need multi-instruction
/// sequences and return `None`).
pub fn int_binop_op(op: BinOp, k: ValKind) -> Option<Op> {
    use BinOp::*;
    debug_assert!(k != ValKind::F);
    let w = k == ValKind::W;
    Some(match op {
        Add => {
            if w {
                Op::Addw
            } else {
                Op::Addd
            }
        }
        Sub => {
            if w {
                Op::Subw
            } else {
                Op::Subd
            }
        }
        Mul => {
            if w {
                Op::Mulw
            } else {
                Op::Muld
            }
        }
        Div => {
            if w {
                Op::Divw
            } else {
                Op::Divd
            }
        }
        DivU => {
            if w {
                Op::Divuw
            } else {
                Op::Divud
            }
        }
        Rem => {
            if w {
                Op::Remw
            } else {
                Op::Remd
            }
        }
        RemU => {
            if w {
                Op::Remuw
            } else {
                Op::Remud
            }
        }
        And => Op::And,
        Or => Op::Or,
        Xor => Op::Xor,
        Shl => {
            if w {
                Op::Sllw
            } else {
                Op::Slld
            }
        }
        Shr => {
            if w {
                Op::Sraw
            } else {
                Op::Srad
            }
        }
        ShrU => {
            if w {
                Op::Srlw
            } else {
                Op::Srld
            }
        }
        Eq => Op::Seq,
        Ne => Op::Sne,
        Lt => {
            if w {
                Op::Sltw
            } else {
                Op::Sltd
            }
        }
        LtU => {
            if w {
                Op::Sltuw
            } else {
                Op::Sltud
            }
        }
        _ => return None,
    })
}

/// Maps a comparison to the machine *branch* opcode `branch-if-cmp(a,b)`,
/// together with whether operands must be swapped. Works for all ten
/// integer comparisons.
pub fn int_branch_op(op: BinOp, k: ValKind) -> Option<(Op, bool)> {
    use BinOp::*;
    let w = k == ValKind::W;
    Some(match op {
        Eq => (Op::Beq, false),
        Ne => (Op::Bne, false),
        Lt => (if w { Op::Bltw } else { Op::Bltd }, false),
        Ge => (if w { Op::Bgew } else { Op::Bged }, false),
        LtU => (if w { Op::Bltuw } else { Op::Bltud }, false),
        GeU => (if w { Op::Bgeuw } else { Op::Bgeud }, false),
        // a > b  ==  b < a ; a <= b  ==  b >= a
        Gt => (if w { Op::Bltw } else { Op::Bltd }, true),
        Le => (if w { Op::Bgew } else { Op::Bged }, true),
        GtU => (if w { Op::Bltuw } else { Op::Bltud }, true),
        LeU => (if w { Op::Bgeuw } else { Op::Bgeud }, true),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn swapped_and_negated_are_involutions() {
        use BinOp::*;
        for op in [Eq, Ne, Lt, LtU, Le, LeU, Gt, GtU, Ge, GeU] {
            assert_eq!(op.swapped().unwrap().swapped().unwrap(), op);
            assert_eq!(op.negated().unwrap().negated().unwrap(), op);
        }
        assert_eq!(Sub.swapped(), None);
        assert_eq!(Add.negated(), None);
    }

    #[test]
    fn eval_int_matches_rust_semantics() {
        assert_eq!(
            BinOp::Add.eval_int(ValKind::W, i32::MAX as i64, 1),
            Some(i32::MIN as i64)
        );
        assert_eq!(
            BinOp::Add.eval_int(ValKind::D, i32::MAX as i64, 1),
            Some(1 << 31)
        );
        assert_eq!(BinOp::Div.eval_int(ValKind::W, 7, 0), None);
        assert_eq!(BinOp::Lt.eval_int(ValKind::W, -1, 0), Some(1));
        assert_eq!(BinOp::LtU.eval_int(ValKind::W, -1, 0), Some(0));
        assert_eq!(BinOp::Shl.eval_int(ValKind::W, 1, 33), Some(2)); // masked
    }

    #[test]
    fn branch_mapping_covers_all_comparisons() {
        use BinOp::*;
        for op in [Eq, Ne, Lt, LtU, Le, LeU, Gt, GtU, Ge, GeU] {
            assert!(int_branch_op(op, ValKind::W).is_some());
            assert!(int_branch_op(op, ValKind::D).is_some());
        }
        assert!(int_branch_op(Add, ValKind::W).is_none());
    }

    #[test]
    fn direct_op_mapping() {
        assert_eq!(int_binop_op(BinOp::Add, ValKind::W), Some(Op::Addw));
        assert_eq!(int_binop_op(BinOp::Add, ValKind::P), Some(Op::Addd));
        assert_eq!(int_binop_op(BinOp::Gt, ValKind::W), None);
        assert_eq!(int_binop_op(BinOp::Eq, ValKind::D), Some(Op::Seq));
    }

    #[test]
    fn load_store_kinds_map_to_ops() {
        assert_eq!(LoadKind::I8.op(), Op::Lb);
        assert_eq!(LoadKind::U32.op(), Op::Lwu);
        assert_eq!(LoadKind::F64.op(), Op::Fld);
        assert_eq!(StoreKind::I16.op(), Op::Sh);
        assert_eq!(LoadKind::I32.result_kind(), ValKind::W);
        assert_eq!(StoreKind::F64.value_kind(), ValKind::F);
    }
}
