//! The VCODE abstraction: one-pass typed emission over possibly-spilled
//! locations.
//!
//! This is the paper's fast dynamic back end (§5.1): `getreg`/`putreg`
//! register management, spilled locations recognized by every macro, and
//! immediate binary emission with no intermediate representation. Code
//! quality is whatever falls out of the one pass — which is the point:
//! the VCODE/ICODE comparison in the evaluation hinges on exactly this
//! trade-off.

use crate::asm::Label;
use crate::func::{FinishedFunc, FuncBuilder};
use crate::ops::{int_binop_op, int_branch_op, BinOp, LoadKind, StoreKind, UnOp};
use crate::regmgr::RegMgr;
use tcc_rt::ValKind;
use tcc_vm::regs::{ARG_REGS, AT0, AT1, FARG_REGS, FAT, RA, ZERO};
use tcc_vm::{CodeSpace, FReg, Insn, Op, Reg};

/// A value location: a physical register or a spilled stack slot.
///
/// Spilled locations are the paper's "negative register numbers": every
/// emission macro accepts them and brackets the operation with reloads
/// and stores through the reserved scratch registers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Loc {
    /// An integer register.
    R(Reg),
    /// A floating point register.
    F(FReg),
    /// An integer value spilled to the stack (`fp`-relative offset).
    Spill(i32),
    /// A floating point value spilled to the stack.
    FSpill(i32),
}

impl Loc {
    /// True for floating point locations.
    pub fn is_float(self) -> bool {
        matches!(self, Loc::F(_) | Loc::FSpill(_))
    }

    /// True for spilled locations.
    pub fn is_spill(self) -> bool {
        matches!(self, Loc::Spill(_) | Loc::FSpill(_))
    }
}

/// A call target for [`Vcode::call`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CallTarget {
    /// A known code address (direct `jal`).
    Addr(u64),
    /// An address held in a location (indirect `jalr`).
    Ind(Loc),
}

/// The one-pass code generator. See the [crate docs](crate) for an
/// example.
#[derive(Debug)]
pub struct Vcode<'a> {
    /// Function scaffolding (public for prologue-level access).
    pub fb: FuncBuilder<'a>,
    regs: RegMgr,
    unchecked: bool,
    free_slots: Vec<i32>,
    free_fslots: Vec<i32>,
    /// How many getreg requests had to be satisfied with spill slots.
    pub spill_getregs: u64,
}

impl<'a> Vcode<'a> {
    /// Begins a new function (prologue included).
    pub fn new(code: &'a mut CodeSpace, name: &str) -> Vcode<'a> {
        Vcode {
            fb: FuncBuilder::new(code, name),
            regs: RegMgr::new(),
            unchecked: false,
            free_slots: Vec::new(),
            free_fslots: Vec::new(),
            spill_getregs: 0,
        }
    }

    /// Disables the per-operand spill checks: `getreg` will panic instead
    /// of returning a spilled location. The paper offers this mode for
    /// "situations where register pressure is not data dependent", buying
    /// roughly a factor of two in code generation speed.
    pub fn set_unchecked(&mut self, unchecked: bool) {
        self.unchecked = unchecked;
    }

    /// Number of instructions emitted so far.
    pub fn emitted(&self) -> u64 {
        self.fb.asm.emitted()
    }

    /// Allocates a location of kind `k` (`getreg`). Falls back to a spill
    /// slot when the pool is empty (checked mode).
    ///
    /// # Panics
    ///
    /// In unchecked mode, panics when the pool is exhausted (the paper:
    /// "it terminates the program with a run-time error").
    pub fn getreg(&mut self, k: ValKind) -> Loc {
        self.getreg_pref(k, false)
    }

    /// `getreg` preferring a callee-saved register — for values that must
    /// survive calls (including nested-CGF-driven calls in dynamic code).
    pub fn getreg_saved(&mut self, k: ValKind) -> Loc {
        self.getreg_pref(k, true)
    }

    fn getreg_pref(&mut self, k: ValKind, prefer_saved: bool) -> Loc {
        if k == ValKind::F {
            if let Some((f, callee_saved)) = self.regs.get_float(prefer_saved) {
                if callee_saved {
                    self.fb.use_callee_saved_f(f);
                }
                return Loc::F(f);
            }
            assert!(
                !self.unchecked,
                "fp register pool exhausted in unchecked mode"
            );
            self.spill_getregs += 1;
            let off = self
                .free_fslots
                .pop()
                .unwrap_or_else(|| self.fb.alloc_slot());
            return Loc::FSpill(off);
        }
        if let Some((r, callee_saved)) = self.regs.get_int(prefer_saved) {
            if callee_saved {
                self.fb.use_callee_saved(r);
            }
            return Loc::R(r);
        }
        assert!(!self.unchecked, "register pool exhausted in unchecked mode");
        self.spill_getregs += 1;
        let off = self
            .free_slots
            .pop()
            .unwrap_or_else(|| self.fb.alloc_slot());
        Loc::Spill(off)
    }

    /// Releases a location (`putreg`).
    pub fn putreg(&mut self, loc: Loc) {
        match loc {
            Loc::R(r) => self.regs.put_int(r),
            Loc::F(f) => self.regs.put_float(f),
            Loc::Spill(off) => self.free_slots.push(off),
            Loc::FSpill(off) => self.free_fslots.push(off),
        }
    }

    /// Reserves `n` temporaries for static management (see
    /// [`RegMgr::reserve_temps`]).
    pub fn reserve_temps(&mut self, n: usize) -> Vec<Reg> {
        self.regs.reserve_temps(n)
    }

    /// The location of the `i`-th integer argument on entry.
    pub fn arg_loc(&self, i: usize) -> Loc {
        Loc::R(ARG_REGS[i])
    }

    /// The location of the `i`-th floating point argument on entry.
    pub fn farg_loc(&self, i: usize) -> Loc {
        Loc::F(FARG_REGS[i])
    }

    /// Creates an unbound label.
    pub fn new_label(&mut self) -> Label {
        self.fb.asm.new_label()
    }

    /// Binds a label here.
    pub fn bind(&mut self, l: Label) {
        self.fb.asm.bind(l);
    }

    // ---- operand plumbing ------------------------------------------------

    /// Materializes an integer operand into a register (reloading spills
    /// into the selected scratch register).
    fn use_int(&mut self, loc: Loc, scratch: Reg) -> Reg {
        match loc {
            Loc::R(r) => r,
            Loc::Spill(off) => {
                self.fb.load_slot(scratch, off);
                scratch
            }
            _ => panic!("expected integer location, got {loc:?}"),
        }
    }

    fn use_f(&mut self, loc: Loc, scratch: FReg) -> FReg {
        match loc {
            Loc::F(f) => f,
            Loc::FSpill(off) => {
                self.fb.load_slot_f(scratch, off);
                scratch
            }
            _ => panic!("expected fp location, got {loc:?}"),
        }
    }

    fn def_int(&mut self, loc: Loc) -> Reg {
        match loc {
            Loc::R(r) => r,
            Loc::Spill(_) => AT0,
            _ => panic!("expected integer location, got {loc:?}"),
        }
    }

    fn commit_int(&mut self, loc: Loc, r: Reg) {
        if let Loc::Spill(off) = loc {
            self.fb.store_slot(r, off);
        }
    }

    fn def_f(&mut self, loc: Loc) -> FReg {
        match loc {
            Loc::F(f) => f,
            Loc::FSpill(_) => FAT,
            _ => panic!("expected fp location, got {loc:?}"),
        }
    }

    fn commit_f(&mut self, loc: Loc, f: FReg) {
        if let Loc::FSpill(off) = loc {
            self.fb.store_slot_f(f, off);
        }
    }

    // ---- typed emission macros -------------------------------------------

    /// Loads an integer constant into `dst`.
    pub fn li(&mut self, dst: Loc, v: i64) {
        let d = self.def_int(dst);
        self.fb.asm.li(d, v);
        self.commit_int(dst, d);
    }

    /// Loads a floating point constant into `dst`.
    pub fn lif(&mut self, dst: Loc, v: f64) {
        let d = self.def_f(dst);
        self.fb.asm.lif(d, v);
        self.commit_f(dst, d);
    }

    /// `dst <- a op b` at kind `k`. Comparisons at kind `F` take fp
    /// operands but an *integer* destination.
    pub fn bin(&mut self, op: BinOp, k: ValKind, dst: Loc, a: Loc, b: Loc) {
        if k == ValKind::F {
            if op.is_cmp() {
                self.float_cmp(op, dst, a, b);
            } else {
                let fa = self.use_f(a, FAT);
                // A second fp scratch does not exist; spilled second
                // operands reload into FAT only when `a` was in a register.
                let fb_reg = match b {
                    Loc::F(f) => f,
                    Loc::FSpill(off) => {
                        assert!(
                            !matches!(a, Loc::FSpill(_)),
                            "both fp operands spilled; reserve a register first"
                        );
                        self.fb.load_slot_f(FAT, off);
                        FAT
                    }
                    _ => panic!("expected fp operand"),
                };
                let d = self.def_f(dst);
                let mop = match op {
                    BinOp::Add => Op::Fadd,
                    BinOp::Sub => Op::Fsub,
                    BinOp::Mul => Op::Fmul,
                    BinOp::Div => Op::Fdiv,
                    _ => panic!("fp op {op:?} unsupported"),
                };
                self.fb.asm.emit(Insn::fr(mop, d, fa, fb_reg));
                self.commit_f(dst, d);
            }
            return;
        }
        let ra = self.use_int(a, AT0);
        let rb = self.use_int(b, AT1);
        let d = self.def_int(dst);
        self.int_bin_regs(op, k, d, ra, rb);
        self.commit_int(dst, d);
    }

    fn int_bin_regs(&mut self, op: BinOp, k: ValKind, d: Reg, ra: Reg, rb: Reg) {
        if let Some(mop) = int_binop_op(op, k) {
            self.fb.asm.emit(Insn::r(mop, d, ra, rb));
            return;
        }
        // Gt/Ge/Le and unsigned variants: compose from slt/xori.
        use BinOp::*;
        match op {
            Gt | GtU => {
                let slt = int_binop_op(if op == Gt { Lt } else { LtU }, k).expect("slt exists");
                self.fb.asm.emit(Insn::r(slt, d, rb, ra));
            }
            Le | LeU => {
                let slt = int_binop_op(if op == Le { Lt } else { LtU }, k).expect("slt exists");
                self.fb.asm.emit(Insn::r(slt, d, rb, ra));
                self.fb.asm.emit(Insn::i(Op::Xori, d, d, 1));
            }
            Ge | GeU => {
                let slt = int_binop_op(if op == Ge { Lt } else { LtU }, k).expect("slt exists");
                self.fb.asm.emit(Insn::r(slt, d, ra, rb));
                self.fb.asm.emit(Insn::i(Op::Xori, d, d, 1));
            }
            _ => panic!("unhandled integer op {op:?}"),
        }
    }

    fn float_cmp(&mut self, op: BinOp, dst: Loc, a: Loc, b: Loc) {
        use BinOp::*;
        let fa = self.use_f(a, FAT);
        let fb_reg = match b {
            Loc::F(f) => f,
            Loc::FSpill(off) => {
                assert!(!matches!(a, Loc::FSpill(_)), "both fp operands spilled");
                self.fb.load_slot_f(FAT, off);
                FAT
            }
            _ => panic!("expected fp operand"),
        };
        let d = self.def_int(dst);
        let (mop, swap, negate) = match op {
            Eq => (Op::Feq, false, false),
            Ne => (Op::Feq, false, true),
            Lt => (Op::Flt, false, false),
            Le => (Op::Fle, false, false),
            Gt => (Op::Flt, true, false),
            Ge => (Op::Fle, true, false),
            _ => panic!("fp comparison {op:?} unsupported"),
        };
        let (x, y) = if swap { (fb_reg, fa) } else { (fa, fb_reg) };
        self.fb.asm.emit(Insn {
            op: mop,
            rd: d.0,
            rs1: x.0,
            rs2: y.0,
            imm: 0,
        });
        if negate {
            self.fb.asm.emit(Insn::i(Op::Xori, d, d, 1));
        }
        self.commit_int(dst, d);
    }

    /// `dst <- a + imm` at kind `k` (integer kinds).
    pub fn addi(&mut self, k: ValKind, dst: Loc, a: Loc, imm: i64) {
        let ra = self.use_int(a, AT0);
        let d = self.def_int(dst);
        self.fb.asm.add_ri(k, d, ra, imm);
        self.commit_int(dst, d);
    }

    /// Strength-reduced `dst <- a * imm` (the run-time-constant multiply
    /// macro).
    pub fn mul_imm(&mut self, k: ValKind, dst: Loc, a: Loc, imm: i64) {
        let ra = self.use_int(a, AT1);
        let d = self.def_int(dst);
        self.fb.asm.mul_imm(k, d, ra, imm);
        self.commit_int(dst, d);
    }

    /// Strength-reduced signed divide by a constant.
    pub fn divs_imm(&mut self, k: ValKind, dst: Loc, a: Loc, imm: i64) {
        let ra = self.use_int(a, AT1);
        let d = self.def_int(dst);
        self.fb.asm.divs_imm(k, d, ra, imm);
        self.commit_int(dst, d);
    }

    /// Strength-reduced unsigned divide by a constant.
    pub fn divu_imm(&mut self, k: ValKind, dst: Loc, a: Loc, imm: u64) {
        let ra = self.use_int(a, AT1);
        let d = self.def_int(dst);
        self.fb.asm.divu_imm(k, d, ra, imm);
        self.commit_int(dst, d);
    }

    /// Strength-reduced unsigned remainder by a constant.
    pub fn remu_imm(&mut self, k: ValKind, dst: Loc, a: Loc, imm: u64) {
        let ra = self.use_int(a, AT1);
        let d = self.def_int(dst);
        self.fb.asm.remu_imm(k, d, ra, imm);
        self.commit_int(dst, d);
    }

    /// `dst <- op a` at kind `k`.
    pub fn un(&mut self, op: UnOp, k: ValKind, dst: Loc, a: Loc) {
        match op {
            UnOp::Neg if k == ValKind::F => {
                let fa = self.use_f(a, FAT);
                let d = self.def_f(dst);
                self.fb.asm.emit(Insn::fr(Op::Fneg, d, fa, fa));
                self.commit_f(dst, d);
            }
            UnOp::Mov if k == ValKind::F => {
                let fa = self.use_f(a, FAT);
                let d = self.def_f(dst);
                self.fb.asm.fmov(d, fa);
                self.commit_f(dst, d);
            }
            UnOp::Neg => {
                let ra = self.use_int(a, AT0);
                let d = self.def_int(dst);
                let sub = if k == ValKind::W { Op::Subw } else { Op::Subd };
                self.fb.asm.emit(Insn::r(sub, d, ZERO, ra));
                self.commit_int(dst, d);
            }
            UnOp::Not => {
                let ra = self.use_int(a, AT0);
                let d = self.def_int(dst);
                self.fb.asm.li(AT1, -1);
                self.fb.asm.emit(Insn::r(Op::Xor, d, ra, AT1));
                if k == ValKind::W {
                    // renormalize to sign-extended 32-bit form
                    self.fb.asm.emit(Insn::i(Op::Addiw, d, d, 0));
                }
                self.commit_int(dst, d);
            }
            UnOp::Mov => {
                let ra = self.use_int(a, AT0);
                let d = self.def_int(dst);
                if k == ValKind::W {
                    self.fb.asm.emit(Insn::i(Op::Addiw, d, ra, 0));
                } else {
                    self.fb.asm.mov(d, ra);
                }
                self.commit_int(dst, d);
            }
            UnOp::CvtWtoF | UnOp::CvtLtoF => {
                let ra = self.use_int(a, AT0);
                let d = self.def_f(dst);
                let mop = if op == UnOp::CvtWtoF {
                    Op::Cvtwd
                } else {
                    Op::Cvtld
                };
                self.fb.asm.emit(Insn {
                    op: mop,
                    rd: d.0,
                    rs1: ra.0,
                    rs2: 0,
                    imm: 0,
                });
                self.commit_f(dst, d);
            }
            UnOp::CvtFtoW | UnOp::CvtFtoL => {
                let fa = self.use_f(a, FAT);
                let d = self.def_int(dst);
                let mop = if op == UnOp::CvtFtoW {
                    Op::Cvtdw
                } else {
                    Op::Cvtdl
                };
                self.fb.asm.emit(Insn {
                    op: mop,
                    rd: d.0,
                    rs1: fa.0,
                    rs2: 0,
                    imm: 0,
                });
                self.commit_int(dst, d);
            }
        }
    }

    /// Typed load `dst <- mem[base + off]`.
    pub fn load(&mut self, lk: LoadKind, dst: Loc, base: Loc, off: i64) {
        let rb = self.use_int(base, AT1);
        if lk == LoadKind::F64 {
            let d = self.def_f(dst);
            self.fb.asm.fload(d, rb, off);
            self.commit_f(dst, d);
        } else {
            let d = self.def_int(dst);
            self.fb.asm.load(lk.op(), d, rb, off);
            self.commit_int(dst, d);
        }
    }

    /// Typed store `mem[base + off] <- val`.
    pub fn store(&mut self, sk: StoreKind, val: Loc, base: Loc, off: i64) {
        let rb = self.use_int(base, AT0);
        if sk == StoreKind::F64 {
            let fv = self.use_f(val, FAT);
            self.fb.asm.fstore(fv, rb, off);
        } else {
            let rv = self.use_int(val, AT1);
            self.fb.asm.store(sk.op(), rv, rb, off);
        }
    }

    /// Fused compare-and-branch: `if (a op b) goto label`.
    pub fn br_cmp(&mut self, op: BinOp, k: ValKind, a: Loc, b: Loc, label: Label) {
        debug_assert!(op.is_cmp());
        if k == ValKind::F {
            let t = Loc::R(AT0);
            self.float_cmp(op, t, a, b);
            self.fb.asm.br(Op::Bne, AT0, ZERO, label);
            return;
        }
        let ra = self.use_int(a, AT0);
        let rb = self.use_int(b, AT1);
        let (mop, swap) = int_branch_op(op, k).expect("comparison");
        let (x, y) = if swap { (rb, ra) } else { (ra, rb) };
        self.fb.asm.br(mop, x, y, label);
    }

    /// Branch if `loc` is non-zero.
    pub fn br_true(&mut self, loc: Loc, label: Label) {
        let r = self.use_int(loc, AT0);
        self.fb.asm.br(Op::Bne, r, ZERO, label);
    }

    /// Branch if `loc` is zero.
    pub fn br_false(&mut self, loc: Loc, label: Label) {
        let r = self.use_int(loc, AT0);
        self.fb.asm.br(Op::Beq, r, ZERO, label);
    }

    /// Unconditional jump.
    pub fn jmp(&mut self, label: Label) {
        self.fb.asm.jmp(label);
    }

    /// Emits a call. `args` are `(kind, loc)` pairs assigned to argument
    /// registers in order (integers and floats numbered separately).
    /// Returns results into `ret` if given.
    ///
    /// Caller-saved locations are **not** preserved across the call; the
    /// caller of this method must have arranged for live values to sit in
    /// callee-saved registers or spill slots (see [`Vcode::getreg_saved`]).
    pub fn call(
        &mut self,
        target: CallTarget,
        args: &[(ValKind, Loc)],
        ret: Option<(ValKind, Loc)>,
    ) {
        // Assign argument registers.
        let mut int_moves: Vec<(Loc, Reg)> = Vec::new();
        let mut float_moves: Vec<(Loc, FReg)> = Vec::new();
        let (mut ni, mut nf) = (0, 0);
        for &(k, loc) in args {
            if k == ValKind::F {
                float_moves.push((loc, FARG_REGS[nf]));
                nf += 1;
            } else {
                int_moves.push((loc, ARG_REGS[ni]));
                ni += 1;
            }
        }
        self.parallel_int_moves(&int_moves);
        // Float moves: sources are never float arg registers in our
        // lowerings except the identity case; do a simple hazard check.
        for &(src, dst) in &float_moves {
            let hazard = float_moves
                .iter()
                .any(|&(s, _)| matches!(s, Loc::F(f) if f == dst) && s != src);
            assert!(!hazard, "fp argument shuffle cycle unsupported");
            let f = self.use_f(src, FAT);
            self.fb.asm.fmov(dst, f);
        }
        match target {
            CallTarget::Addr(a) => self.fb.asm.call_addr(a),
            CallTarget::Ind(loc) => {
                let r = match loc {
                    // Target must survive the argument moves; it may not
                    // be an argument register.
                    Loc::R(r) => {
                        debug_assert!(!ARG_REGS.contains(&r), "call target in argument register");
                        r
                    }
                    Loc::Spill(off) => {
                        self.fb.load_slot(AT0, off);
                        AT0
                    }
                    _ => panic!("call target must be an integer location"),
                };
                self.fb.asm.call_reg(r);
            }
        }
        if let Some((k, loc)) = ret {
            if k == ValKind::F {
                let d = self.def_f(loc);
                self.fb.asm.fmov(d, FARG_REGS[0]);
                self.commit_f(loc, d);
            } else {
                let d = self.def_int(loc);
                self.fb.asm.mov(d, ARG_REGS[0]);
                self.commit_int(loc, d);
            }
        }
    }

    /// Executes a set of moves into distinct destination registers,
    /// honoring read-before-write hazards (breaking cycles via `at1`).
    fn parallel_int_moves(&mut self, moves: &[(Loc, Reg)]) {
        let mut pending: Vec<(Loc, Reg)> = moves
            .iter()
            .copied()
            .filter(|&(src, dst)| src != Loc::R(dst))
            .collect();
        while !pending.is_empty() {
            let ready = pending.iter().position(|&(_, dst)| {
                !pending
                    .iter()
                    .any(|&(s, _)| matches!(s, Loc::R(r) if r == dst))
            });
            match ready {
                Some(i) => {
                    let (src, dst) = pending.remove(i);
                    match src {
                        Loc::R(r) => self.fb.asm.mov(dst, r),
                        Loc::Spill(off) => self.fb.load_slot(dst, off),
                        _ => panic!("integer argument expected"),
                    }
                }
                None => {
                    // Cycle: `dst` is a source of some other pending move,
                    // so park dst's current value in at1, repoint the moves
                    // that read it, then perform this move.
                    let (src, dst) = pending.remove(0);
                    debug_assert!(
                        !pending.iter().any(|&(s, _)| s == Loc::R(AT1)),
                        "overlapping move cycles"
                    );
                    self.fb.asm.mov(AT1, dst);
                    for p in &mut pending {
                        if p.0 == Loc::R(dst) {
                            p.0 = Loc::R(AT1);
                        }
                    }
                    match src {
                        Loc::R(r) => self.fb.asm.mov(dst, r),
                        Loc::Spill(off) => self.fb.load_slot(dst, off),
                        _ => panic!("integer argument expected"),
                    }
                }
            }
        }
    }

    /// Host call with call-style argument passing.
    pub fn hcall_with(&mut self, num: u32, args: &[(ValKind, Loc)], ret: Option<(ValKind, Loc)>) {
        let mut int_moves: Vec<(Loc, Reg)> = Vec::new();
        let (mut ni, mut nf) = (0, 0);
        for &(k, loc) in args {
            if k == ValKind::F {
                let f = self.use_f(loc, FAT);
                self.fb.asm.fmov(FARG_REGS[nf], f);
                nf += 1;
            } else {
                int_moves.push((loc, ARG_REGS[ni]));
                ni += 1;
            }
        }
        self.parallel_int_moves(&int_moves);
        self.fb.asm.hcall(num);
        if let Some((k, loc)) = ret {
            if k == ValKind::F {
                let d = self.def_f(loc);
                self.fb.asm.fmov(d, FARG_REGS[0]);
                self.commit_f(loc, d);
            } else {
                let d = self.def_int(loc);
                self.fb.asm.mov(d, ARG_REGS[0]);
                self.commit_int(loc, d);
            }
        }
    }

    /// Moves `loc` to the ABI return register and returns.
    pub fn ret_val(&mut self, k: ValKind, loc: Loc) {
        if k == ValKind::F {
            let f = self.use_f(loc, FAT);
            self.fb.ret_freg(f);
        } else {
            let r = self.use_int(loc, AT0);
            self.fb.ret_reg(r);
        }
    }

    /// Returns with no value.
    pub fn ret(&mut self) {
        self.fb.ret();
    }

    /// Raw access to the link register (used when a caller wants the
    /// current return address — not normally needed).
    pub fn ra(&self) -> Reg {
        RA
    }

    /// Seals the function.
    pub fn finish(self) -> FinishedFunc {
        self.fb.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcc_vm::Vm;

    fn with_vm(build: impl FnOnce(&mut Vcode<'_>)) -> (Vm, u64) {
        let mut code = CodeSpace::new();
        let mut vc = Vcode::new(&mut code, "t");
        build(&mut vc);
        let f = vc.finish();
        (Vm::new(code, 1 << 20), f.addr)
    }

    #[test]
    fn all_int_binops_against_reference() {
        use BinOp::*;
        let cases = [
            (7i64, 3i64),
            (-7, 3),
            (0, 5),
            (i32::MAX as i64, 2),
            (i32::MIN as i64, -1),
            (100, 10),
            (-1, 1),
        ];
        for op in [
            Add, Sub, Mul, Div, DivU, Rem, RemU, And, Or, Xor, Shl, Shr, ShrU, Eq, Ne, Lt, LtU, Le,
            LeU, Gt, GtU, Ge, GeU,
        ] {
            for k in [ValKind::W, ValKind::D] {
                for (a, b) in cases {
                    if matches!(op, Div | DivU | Rem | RemU) && b == 0 {
                        continue;
                    }
                    if matches!(op, Shl | Shr | ShrU) && b < 0 {
                        continue;
                    }
                    // skip the W-kind overflow div corner (hardware traps vary)
                    let expect = match op.eval_int(k, a, b) {
                        Some(v) => v,
                        None => continue,
                    };
                    let (mut vm, addr) = with_vm(|vc| {
                        let x = vc.arg_loc(0);
                        let y = vc.arg_loc(1);
                        let d = vc.getreg(k);
                        vc.bin(op, k, d, x, y);
                        vc.ret_val(k, d);
                    });
                    let got = vm.call(addr, &[a as u64, b as u64]).unwrap();
                    assert_eq!(got as i64, expect, "{op:?}/{k:?} {a} {b}");
                }
            }
        }
    }

    #[test]
    fn spilled_locations_work_transparently() {
        // Exhaust the pool, compute with spilled locations.
        let (mut vm, addr) = with_vm(|vc| {
            let mut locs = Vec::new();
            for i in 0..25 {
                let l = vc.getreg(ValKind::W);
                vc.li(l, i as i64 + 1);
                locs.push(l);
            }
            assert!(
                locs.iter().any(|l| l.is_spill()),
                "expected spills after 20 getregs"
            );
            let acc = vc.getreg(ValKind::W);
            assert!(acc.is_spill());
            vc.li(acc, 0);
            for &l in &locs {
                vc.bin(BinOp::Add, ValKind::W, acc, acc, l);
            }
            vc.ret_val(ValKind::W, acc);
        });
        assert_eq!(vm.call(addr, &[]).unwrap(), (1..=25).sum::<u64>());
    }

    #[test]
    #[should_panic(expected = "exhausted in unchecked mode")]
    fn unchecked_mode_panics_on_exhaustion() {
        let mut code = CodeSpace::new();
        let mut vc = Vcode::new(&mut code, "t");
        vc.set_unchecked(true);
        for _ in 0..21 {
            vc.getreg(ValKind::W);
        }
    }

    #[test]
    fn float_arithmetic_and_compare() {
        let (mut vm, addr) = with_vm(|vc| {
            let x = vc.farg_loc(0);
            let y = vc.farg_loc(1);
            let d = vc.getreg(ValKind::F);
            vc.bin(BinOp::Mul, ValKind::F, d, x, y);
            let c = vc.getreg(ValKind::W);
            vc.bin(BinOp::Gt, ValKind::F, c, d, x);
            vc.ret_val(ValKind::W, c);
        });
        assert_eq!(vm.call_with(addr, &[], &[2.0, 3.0]).unwrap().0, 1); // 6 > 2
        assert_eq!(vm.call_with(addr, &[], &[2.0, 0.5]).unwrap().0, 0); // 1 !> 2
    }

    #[test]
    fn branches_over_locs() {
        // max(a, b)
        let (mut vm, addr) = with_vm(|vc| {
            let a = vc.arg_loc(0);
            let b = vc.arg_loc(1);
            let l = vc.new_label();
            let r = vc.getreg(ValKind::W);
            vc.un(UnOp::Mov, ValKind::W, r, a);
            vc.br_cmp(BinOp::Ge, ValKind::W, a, b, l);
            vc.un(UnOp::Mov, ValKind::W, r, b);
            vc.bind(l);
            vc.ret_val(ValKind::W, r);
        });
        assert_eq!(vm.call(addr, &[3, 9]).unwrap(), 9);
        assert_eq!(vm.call(addr, &[9, 3]).unwrap(), 9);
        assert_eq!(vm.call(addr, &[(-5i64) as u64, 3]).unwrap(), 3);
    }

    #[test]
    fn call_shuffles_argument_registers_safely() {
        let mut code = CodeSpace::new();
        // callee(a, b) = a - b
        let mut vc = Vcode::new(&mut code, "callee");
        let d = vc.getreg(ValKind::W);
        let (a, b) = (vc.arg_loc(0), vc.arg_loc(1));
        vc.bin(BinOp::Sub, ValKind::W, d, a, b);
        vc.ret_val(ValKind::W, d);
        let callee = vc.finish();

        // caller(a, b) = callee(b, a)  — swap requires cycle breaking
        let mut vc = Vcode::new(&mut code, "caller");
        let (a, b) = (vc.arg_loc(0), vc.arg_loc(1));
        let r = vc.getreg_saved(ValKind::W);
        vc.call(
            CallTarget::Addr(callee.addr),
            &[(ValKind::W, b), (ValKind::W, a)],
            Some((ValKind::W, r)),
        );
        vc.ret_val(ValKind::W, r);
        let caller = vc.finish();

        let mut vm = Vm::new(code, 1 << 20);
        assert_eq!(vm.call(caller.addr, &[10, 3]).unwrap() as i64, -7);
    }

    #[test]
    fn indirect_call_through_spill() {
        let mut code = CodeSpace::new();
        let mut vc = Vcode::new(&mut code, "seven");
        let d = vc.getreg(ValKind::W);
        vc.li(d, 7);
        vc.ret_val(ValKind::W, d);
        let seven = vc.finish();

        let mut vc = Vcode::new(&mut code, "caller");
        let t = vc.getreg(ValKind::P);
        vc.li(t, seven.addr as i64);
        vc.call(CallTarget::Ind(t), &[], Some((ValKind::W, t)));
        vc.ret_val(ValKind::W, t);
        let caller = vc.finish();

        let mut vm = Vm::new(code, 1 << 20);
        assert_eq!(vm.call(caller.addr, &[]).unwrap(), 7);
    }

    #[test]
    fn loads_stores_and_conversions() {
        let (mut vm, addr) = with_vm(|vc| {
            let base = vc.arg_loc(1);
            let v = vc.arg_loc(0);
            vc.store(StoreKind::I32, v, base, 0);
            let w = vc.getreg(ValKind::W);
            vc.load(LoadKind::I32, w, base, 0);
            let f = vc.getreg(ValKind::F);
            vc.un(UnOp::CvtWtoF, ValKind::F, f, w);
            vc.bin(BinOp::Add, ValKind::F, f, f, f);
            let out = vc.getreg(ValKind::W);
            vc.un(UnOp::CvtFtoW, ValKind::W, out, f);
            vc.ret_val(ValKind::W, out);
        });
        let buf_vm_addr = {
            // allocate after VM construction
            0
        };
        let _ = buf_vm_addr;
        let buf = vm.state_mut().mem.alloc(8, 8).unwrap();
        assert_eq!(vm.call(addr, &[21, buf]).unwrap(), 42);
    }

    #[test]
    fn unops_match_reference() {
        for (op, x, expect) in [
            (UnOp::Neg, 5i64, -5i64),
            (UnOp::Neg, i32::MIN as i64, i32::MIN as i64), // wraps
            (UnOp::Not, 0, -1),
            (UnOp::Not, -1, 0),
            (UnOp::Mov, 77, 77),
        ] {
            let (mut vm, addr) = with_vm(|vc| {
                let a = vc.arg_loc(0);
                let d = vc.getreg(ValKind::W);
                vc.un(op, ValKind::W, d, a);
                vc.ret_val(ValKind::W, d);
            });
            assert_eq!(
                vm.call(addr, &[x as u64]).unwrap() as i64,
                expect,
                "{op:?} {x}"
            );
        }
    }
}
