//! Function scaffolding: prologue, epilogue, stack slots, lazy
//! callee-saved spills.
//!
//! Frame layout (grows down; `fp` = caller's `sp`):
//!
//! ```text
//!   fp -  8 : saved ra
//!   fp - 16 : saved caller fp
//!   fp - 24 - 8*i : slot i   (spills, dynamic locals, callee-saved saves)
//!   sp      : 16-aligned bottom of the frame
//! ```
//!
//! The prologue is five fixed instructions; the `sp` adjustment for slots
//! is a placeholder patched when the function is finished, so one-pass
//! emitters never need to know their frame size in advance. Callee-saved
//! registers are saved *lazily*, at the moment a code generator first
//! claims one — at that point the caller's value is still intact, so a
//! single store suffices and the epilogue restores it.

use crate::asm::{Asm, Label};
use tcc_vm::regs::{FP, RA, SP};
use tcc_vm::{CodeSpace, FReg, FuncHandle, Insn, Op, Reg};

/// A completed function: address, handle, and emission statistics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FinishedFunc {
    /// Callable address.
    pub addr: u64,
    /// Handle in the code space (for disassembly).
    pub handle: FuncHandle,
    /// Number of instructions emitted (the denominator of the paper's
    /// "cycles per generated instruction" metric).
    pub insns: u64,
}

/// Builder for one function: an [`Asm`] plus frame management.
#[derive(Debug)]
pub struct FuncBuilder<'a> {
    /// The underlying assembler (public: code generators emit through it).
    pub asm: Asm<'a>,
    nslots: u32,
    sp_patch: usize,
    epilogue: Label,
    saved: Vec<(Reg, i32)>,
    fsaved: Vec<(FReg, i32)>,
}

impl<'a> FuncBuilder<'a> {
    /// Begins a function and emits its prologue.
    pub fn new(code: &'a mut CodeSpace, name: &str) -> FuncBuilder<'a> {
        let mut asm = Asm::new(code, name);
        asm.emit(Insn::i(Op::Addid, SP, SP, -16));
        asm.emit(Insn::i(Op::Sd, RA, SP, 8));
        asm.emit(Insn::i(Op::Sd, FP, SP, 0));
        asm.emit(Insn::i(Op::Addid, FP, SP, 16));
        let sp_patch = asm.emit(Insn::i(Op::Addid, SP, SP, 0));
        let epilogue = asm.new_label();
        FuncBuilder {
            asm,
            nslots: 0,
            sp_patch,
            epilogue,
            saved: Vec::new(),
            fsaved: Vec::new(),
        }
    }

    /// Allocates a fresh 8-byte stack slot; returns its `fp`-relative
    /// offset (negative).
    ///
    /// # Panics
    ///
    /// Panics beyond 1000 slots (the offset would leave immediate range).
    pub fn alloc_slot(&mut self) -> i32 {
        let off = -24 - 8 * self.nslots as i32;
        self.nslots += 1;
        assert!(self.nslots <= 1000, "frame too large");
        off
    }

    /// Allocates a contiguous block of `bytes` (rounded up to 8) in the
    /// frame; returns the `fp`-relative offset of its *lowest* address.
    /// Used for local arrays and structs.
    ///
    /// # Panics
    ///
    /// Panics if the frame grows past 1000 slots.
    pub fn alloc_block(&mut self, bytes: u64) -> i32 {
        let n = bytes.div_ceil(8).max(1) as u32;
        self.nslots += n;
        assert!(self.nslots <= 1000, "frame too large");
        -24 - 8 * (self.nslots as i32 - 1)
    }

    /// Marks a callee-saved integer register as used, saving it into a
    /// fresh slot on first use.
    pub fn use_callee_saved(&mut self, r: Reg) {
        if self.saved.iter().any(|&(s, _)| s == r) {
            return;
        }
        let off = self.alloc_slot();
        self.asm.emit(Insn::i(Op::Sd, r, FP, off));
        self.saved.push((r, off));
    }

    /// Marks a callee-saved floating point register as used.
    pub fn use_callee_saved_f(&mut self, f: FReg) {
        if self.fsaved.iter().any(|&(s, _)| s == f) {
            return;
        }
        let off = self.alloc_slot();
        self.asm.emit(Insn::fmem(Op::Fsd, f, FP, off));
        self.fsaved.push((f, off));
    }

    /// Loads a slot into an integer register (full 64-bit, preserving the
    /// canonical form of whatever was stored).
    pub fn load_slot(&mut self, rd: Reg, off: i32) {
        self.asm.emit(Insn::i(Op::Ld, rd, FP, off));
    }

    /// Stores an integer register into a slot.
    pub fn store_slot(&mut self, rs: Reg, off: i32) {
        self.asm.emit(Insn::i(Op::Sd, rs, FP, off));
    }

    /// Loads a slot into a floating point register.
    pub fn load_slot_f(&mut self, fd: FReg, off: i32) {
        self.asm.emit(Insn::fmem(Op::Fld, fd, FP, off));
    }

    /// Stores a floating point register into a slot.
    pub fn store_slot_f(&mut self, fs: FReg, off: i32) {
        self.asm.emit(Insn::fmem(Op::Fsd, fs, FP, off));
    }

    /// The address expression of a slot, as `(base, offset)` — slots are
    /// addressable so dynamic locals can live in them.
    pub fn slot_base_off(&self, off: i32) -> (Reg, i32) {
        (FP, off)
    }

    /// Jumps to the (shared) epilogue.
    pub fn ret(&mut self) {
        let l = self.epilogue;
        self.asm.jmp(l);
    }

    /// Moves an integer value into the return register and returns. The
    /// value must already be in `a0`'s kind-correct form.
    pub fn ret_reg(&mut self, r: Reg) {
        self.asm.mov(tcc_vm::regs::A0, r);
        self.ret();
    }

    /// Binds the epilogue, patches the frame size, and seals the
    /// function.
    pub fn finish(mut self) -> FinishedFunc {
        let epilogue = self.epilogue;
        self.asm.bind(epilogue);
        for &(r, off) in &self.saved.clone() {
            self.asm.emit(Insn::i(Op::Ld, r, FP, off));
        }
        for &(f, off) in &self.fsaved.clone() {
            self.asm.emit(Insn::fmem(Op::Fld, f, FP, off));
        }
        self.asm.emit(Insn::i(Op::Ld, RA, FP, -8));
        self.asm.emit(Insn::i(Op::Ld, tcc_vm::regs::AT0, FP, -16));
        self.asm.emit(Insn::i(Op::Addid, SP, FP, 0));
        self.asm.emit(Insn::i(Op::Addid, FP, tcc_vm::regs::AT0, 0));
        self.asm.emit(Insn::ret());
        // Patch the slot-area sp adjustment (16-byte aligned).
        let area = (8 * self.nslots as i32 + 15) & !15;
        self.asm
            .patch(self.sp_patch, Insn::i(Op::Addid, SP, SP, -area));
        let insns = self.asm.emitted();
        let handle = self.asm.func();
        let addr = self.asm.finish();
        FinishedFunc {
            addr,
            handle,
            insns,
        }
    }

    /// Moves a floating point return value into `fa0` and returns.
    pub fn ret_freg(&mut self, f: FReg) {
        self.asm.fmov(tcc_vm::regs::FA0, f);
        self.ret();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcc_vm::regs::{A0, A1, S0};
    use tcc_vm::Vm;

    #[test]
    fn prologue_epilogue_preserve_callee_saved_and_fp() {
        let mut code = CodeSpace::new();
        // leaf: clobbers s0, must restore it.
        let mut fb = FuncBuilder::new(&mut code, "leaf");
        fb.use_callee_saved(S0);
        fb.asm.li(S0, 999);
        fb.asm.mov(A0, S0);
        fb.ret();
        let leaf = fb.finish();

        // caller: puts a sentinel in s0, calls leaf, checks it survived.
        let mut fb = FuncBuilder::new(&mut code, "caller");
        fb.use_callee_saved(S0);
        fb.asm.li(S0, 123);
        fb.asm.call_addr(leaf.addr);
        // a0 = leaf() + s0  (999 + 123)
        fb.asm.emit(Insn::r(Op::Addw, A0, A0, S0));
        fb.ret();
        let caller = fb.finish();

        let mut vm = Vm::new(code, 1 << 20);
        assert_eq!(vm.call(caller.addr, &[]).unwrap(), 1122);
    }

    #[test]
    fn slots_hold_values_across_calls() {
        let mut code = CodeSpace::new();
        let mut fb = FuncBuilder::new(&mut code, "id");
        fb.ret();
        let id = fb.finish();

        let mut fb = FuncBuilder::new(&mut code, "f");
        let slot = fb.alloc_slot();
        fb.store_slot(A1, slot);
        fb.asm.call_addr(id.addr);
        fb.load_slot(A0, slot);
        fb.ret();
        let f = fb.finish();

        let mut vm = Vm::new(code, 1 << 20);
        assert_eq!(vm.call(f.addr, &[0, 4242]).unwrap(), 4242);
    }

    #[test]
    fn recursion_works() {
        // fact(n) = n <= 1 ? 1 : n * fact(n-1)
        let mut code = CodeSpace::new();
        let mut fb = FuncBuilder::new(&mut code, "fact");
        let self_addr = code_addr_guess(&fb);
        let base = fb.asm.new_label();
        fb.asm.li(tcc_vm::regs::AT1, 1);
        fb.asm.br(Op::Bged, tcc_vm::regs::AT1, A0, base);
        let slot = fb.alloc_slot();
        fb.store_slot(A0, slot);
        fb.asm.emit(Insn::i(Op::Addiw, A0, A0, -1));
        fb.asm.call_addr(self_addr);
        fb.load_slot(A1, slot);
        fb.asm.emit(Insn::r(Op::Mulw, A0, A0, A1));
        fb.ret();
        fb.asm.bind(base);
        fb.asm.li(A0, 1);
        fb.ret();
        let fact = fb.finish();
        assert_eq!(fact.addr, self_addr);

        let mut vm = Vm::new(code, 1 << 20);
        assert_eq!(vm.call(fact.addr, &[10]).unwrap(), 3_628_800);
    }

    fn code_addr_guess(fb: &FuncBuilder<'_>) -> u64 {
        // The function started `emitted()` instructions ago.
        tcc_vm::CODE_BASE + ((fb.asm.here() as u64) - fb.asm.emitted()) * 4
    }

    #[test]
    fn float_callee_saved_round_trip() {
        use tcc_vm::regs::{FA0, FSAVED_REGS};
        let mut code = CodeSpace::new();
        let mut fb = FuncBuilder::new(&mut code, "f");
        let fs0 = FSAVED_REGS[0];
        fb.use_callee_saved_f(fs0);
        fb.asm.lif(fs0, 1.25);
        fb.asm.fmov(FA0, fs0);
        fb.ret();
        let f = fb.finish();
        let mut vm = Vm::new(code, 1 << 20);
        assert_eq!(vm.call_f(f.addr, &[], &[]).unwrap(), 1.25);
    }

    #[test]
    fn finished_func_counts_instructions() {
        let mut code = CodeSpace::new();
        let mut fb = FuncBuilder::new(&mut code, "f");
        fb.asm.li(A0, 7);
        fb.ret();
        let f = fb.finish();
        // 5 prologue + li + jmp + epilogue(5) = 12
        assert_eq!(f.insns, 12);
    }
}
