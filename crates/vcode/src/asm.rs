//! Raw instruction emission: labels, forward-reference patching, constant
//! synthesis, long-offset addressing, calls.
//!
//! `Asm` is the lowest layer every code generator in the workspace shares.
//! It deliberately mirrors what VCODE's per-instruction C macros did:
//! "most VCODE macros simply perform bit manipulations on their arguments
//! and write the resulting machine instruction to memory" (§5.1). Multi-
//! instruction sequences appear exactly where a real RISC needs them:
//! large immediates, long memory offsets, strength-reduced multiplies.

use tcc_rt::ValKind;
use tcc_vm::isa::{fits_imm14, IMM14_MAX, IMM14_MIN};
use tcc_vm::regs::{AT0, AT1, RA, ZERO};
use tcc_vm::{CodeSpace, FReg, FuncHandle, Insn, Op, Reg, CODE_BASE};

/// A branch target within the function being emitted.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Label(usize);

#[derive(Clone, Debug, Default)]
struct LabelInfo {
    bound: Option<usize>,
    refs: Vec<usize>,
}

/// An assembler positioned inside one function of a [`CodeSpace`].
#[derive(Debug)]
pub struct Asm<'a> {
    code: &'a mut CodeSpace,
    func: FuncHandle,
    labels: Vec<LabelInfo>,
    start_index: usize,
}

impl<'a> Asm<'a> {
    /// Begins a new function named `name` in `code`.
    pub fn new(code: &'a mut CodeSpace, name: &str) -> Asm<'a> {
        let func = code.begin_function(name);
        let start_index = code.next_index();
        Asm {
            code,
            func,
            labels: Vec::new(),
            start_index,
        }
    }

    /// The function handle being emitted into.
    pub fn func(&self) -> FuncHandle {
        self.func
    }

    /// Number of instructions emitted into this function so far.
    pub fn emitted(&self) -> u64 {
        (self.code.next_index() - self.start_index) as u64
    }

    /// Emits one instruction; returns its word index for patching.
    #[inline]
    pub fn emit(&mut self, insn: Insn) -> usize {
        self.code.push(insn)
    }

    /// Overwrites a previously emitted instruction.
    pub fn patch(&mut self, index: usize, insn: Insn) {
        self.code.patch(index, insn);
    }

    /// Word index the next instruction will occupy.
    pub fn here(&self) -> usize {
        self.code.next_index()
    }

    /// Seals the function; returns its callable address. All labels must
    /// be bound.
    ///
    /// # Panics
    ///
    /// Panics if a referenced label was never bound.
    pub fn finish(self) -> u64 {
        for (i, l) in self.labels.iter().enumerate() {
            assert!(
                l.bound.is_some() || l.refs.is_empty(),
                "label {i} referenced but never bound"
            );
        }
        self.code
            .finish_function(self.func)
            .expect("asm seals its function exactly once")
    }

    /// Creates a fresh unbound label.
    pub fn new_label(&mut self) -> Label {
        self.labels.push(LabelInfo::default());
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the next instruction and patches every earlier
    /// reference.
    ///
    /// # Panics
    ///
    /// Panics if the label is already bound or a branch offset overflows.
    pub fn bind(&mut self, label: Label) {
        let at = self.code.next_index();
        let info = &mut self.labels[label.0];
        assert!(info.bound.is_none(), "label bound twice");
        info.bound = Some(at);
        let refs = std::mem::take(&mut info.refs);
        for r in refs {
            let word = self
                .code
                .fetch(CODE_BASE + (r as u64) * 4)
                .expect("own code");
            let mut insn = Insn::decode(word).expect("own code decodes");
            let off = at as i64 - (r as i64 + 1);
            if insn.op == Op::J || insn.op == Op::Jal {
                insn.imm = i32::try_from(off).expect("jump offset overflows imm24");
            } else {
                assert!(
                    (IMM14_MIN as i64..=IMM14_MAX as i64).contains(&off),
                    "branch offset {off} overflows imm14"
                );
                insn.imm = off as i32;
            }
            self.code.patch(r, insn);
        }
    }

    fn label_ref(&mut self, label: Label, at: usize) -> i32 {
        match self.labels[label.0].bound {
            Some(b) => {
                let off = b as i64 - (at as i64 + 1);
                i32::try_from(off).expect("offset overflow")
            }
            None => {
                self.labels[label.0].refs.push(at);
                0
            }
        }
    }

    /// Emits a conditional branch `op` comparing `a` and `b`, targeting
    /// `label`.
    pub fn br(&mut self, op: Op, a: Reg, b: Reg, label: Label) {
        debug_assert!(op.is_branch());
        let at = self.here();
        let imm = self.label_ref(label, at);
        self.emit(Insn {
            op,
            rd: a.0,
            rs1: b.0,
            rs2: 0,
            imm,
        });
    }

    /// Unconditional jump to `label`.
    pub fn jmp(&mut self, label: Label) {
        let at = self.here();
        let imm = self.label_ref(label, at);
        self.emit(Insn {
            op: Op::J,
            rd: 0,
            rs1: 0,
            rs2: 0,
            imm,
        });
    }

    /// Direct call to an absolute code address (`jal` with a relative
    /// offset).
    ///
    /// # Panics
    ///
    /// Panics if the displacement overflows the 24-bit jump field.
    pub fn call_addr(&mut self, target: u64) {
        debug_assert!(target >= CODE_BASE && target.is_multiple_of(4));
        let at = self.here() as i64;
        let target_word = ((target - CODE_BASE) / 4) as i64;
        let off = target_word - (at + 1);
        let imm = i32::try_from(off).expect("call displacement overflow");
        self.emit(Insn::j(Op::Jal, imm));
    }

    /// Indirect call through a register.
    pub fn call_reg(&mut self, target: Reg) {
        self.emit(Insn {
            op: Op::Jalr,
            rd: RA.0,
            rs1: target.0,
            rs2: 0,
            imm: 0,
        });
    }

    /// Host call trap.
    pub fn hcall(&mut self, num: u32) {
        self.emit(Insn::i(Op::Hcall, ZERO, ZERO, num as i32));
    }

    /// Register move.
    pub fn mov(&mut self, rd: Reg, rs: Reg) {
        if rd != rs {
            self.emit(Insn::i(Op::Addid, rd, rs, 0));
        }
    }

    /// Floating point register move.
    pub fn fmov(&mut self, fd: FReg, fs: FReg) {
        if fd != fs {
            self.emit(Insn::fr(Op::Fmov, fd, fs, fs));
        }
    }

    /// Loads an arbitrary 64-bit constant into `rd`, choosing the
    /// shortest sequence (1, 2 or up to 7 instructions). Data and code
    /// addresses and all `i32`/`u32` values take at most two.
    ///
    /// Uses `at1` (or `at0` when `rd == at1`) as scratch on the full
    /// 64-bit path.
    pub fn li(&mut self, rd: Reg, v: i64) {
        if fits_imm14(v) {
            self.emit(Insn::i(Op::Addid, rd, ZERO, v as i32));
            return;
        }
        // sethi+ori reaches any value whose top bits collapse into a
        // signed 19-bit high part: v in [-2^32, 2^33).
        let hi = v >> 14;
        if (-(1 << 18)..(1 << 18)).contains(&hi) {
            self.emit(Insn::sethi(rd, hi as i32));
            let lo = (v & 0x3fff) as i32;
            if lo != 0 {
                self.emit(Insn::i(Op::Ori, rd, rd, lo));
            }
            return;
        }
        // Full 64-bit: high 32 into rd, shift, build low 32 in scratch,
        // zero-extend it, or together.
        let scratch = if rd == AT1 { AT0 } else { AT1 };
        let hi32 = v >> 32;
        let lo32 = v & 0xffff_ffff;
        self.li(rd, hi32);
        self.emit(Insn::i(Op::Sllid, rd, rd, 32));
        self.li(scratch, lo32); // 0..2^32: within sethi+ori reach
        self.emit(Insn::r(Op::Or, rd, rd, scratch));
    }

    /// Loads an `f64` constant into `fd` by synthesizing its bits in
    /// `at0` and moving them across.
    pub fn lif(&mut self, fd: FReg, v: f64) {
        self.li(AT0, v.to_bits() as i64);
        self.emit(Insn {
            op: Op::Fmvdx,
            rd: fd.0,
            rs1: AT0.0,
            rs2: 0,
            imm: 0,
        });
    }

    /// `rd <- rs + imm` at kind `k`, synthesizing large immediates.
    pub fn add_ri(&mut self, k: ValKind, rd: Reg, rs: Reg, imm: i64) {
        let op = if k == ValKind::W {
            Op::Addiw
        } else {
            Op::Addid
        };
        if fits_imm14(imm) {
            self.emit(Insn::i(op, rd, rs, imm as i32));
        } else {
            self.li(AT0, imm);
            let rop = if k == ValKind::W { Op::Addw } else { Op::Addd };
            self.emit(Insn::r(rop, rd, rs, AT0));
        }
    }

    /// Integer load with an offset of any size (long offsets go through
    /// `at0`).
    pub fn load(&mut self, op: Op, rd: Reg, base: Reg, off: i64) {
        debug_assert!(matches!(
            op,
            Op::Lb | Op::Lbu | Op::Lh | Op::Lhu | Op::Lw | Op::Lwu | Op::Ld
        ));
        if fits_imm14(off) {
            self.emit(Insn::i(op, rd, base, off as i32));
        } else {
            self.li(AT0, off);
            self.emit(Insn::r(Op::Addd, AT0, base, AT0));
            self.emit(Insn::i(op, rd, AT0, 0));
        }
    }

    /// Integer store with an offset of any size.
    pub fn store(&mut self, op: Op, value: Reg, base: Reg, off: i64) {
        debug_assert!(matches!(op, Op::Sb | Op::Sh | Op::Sw | Op::Sd));
        debug_assert!(value != AT0, "store value must not be the scratch reg");
        if fits_imm14(off) {
            self.emit(Insn::i(op, value, base, off as i32));
        } else {
            self.li(AT0, off);
            self.emit(Insn::r(Op::Addd, AT0, base, AT0));
            self.emit(Insn::i(op, value, AT0, 0));
        }
    }

    /// Floating load with an offset of any size.
    pub fn fload(&mut self, fd: FReg, base: Reg, off: i64) {
        if fits_imm14(off) {
            self.emit(Insn::fmem(Op::Fld, fd, base, off as i32));
        } else {
            self.li(AT0, off);
            self.emit(Insn::r(Op::Addd, AT0, base, AT0));
            self.emit(Insn::fmem(Op::Fld, fd, AT0, 0));
        }
    }

    /// Floating store with an offset of any size.
    pub fn fstore(&mut self, fs: FReg, base: Reg, off: i64) {
        if fits_imm14(off) {
            self.emit(Insn::fmem(Op::Fsd, fs, base, off as i32));
        } else {
            self.li(AT0, off);
            self.emit(Insn::r(Op::Addd, AT0, base, AT0));
            self.emit(Insn::fmem(Op::Fsd, fs, AT0, 0));
        }
    }

    /// Strength-reduced multiply by a compile-time-known constant — the
    /// paper's "fancier code-generation macro than usual: rather than
    /// emitting a fixed sequence of instructions, it first checks the
    /// value of its immediate operand" (§4.4). Handles 0, ±1, powers of
    /// two and 2^n±1; falls back to `li`+`mul`.
    pub fn mul_imm(&mut self, k: ValKind, rd: Reg, rs: Reg, imm: i64) {
        debug_assert!(k != ValKind::F);
        let w = k == ValKind::W;
        let (shl, add, sub, mul) = if w {
            (Op::Slliw, Op::Addw, Op::Subw, Op::Mulw)
        } else {
            (Op::Sllid, Op::Addd, Op::Subd, Op::Muld)
        };
        let neg = imm < 0;
        let mag = imm.unsigned_abs();
        match mag {
            0 => {
                self.emit(Insn::i(Op::Addid, rd, ZERO, 0));
                return;
            }
            1 => {
                if neg {
                    self.emit(Insn::r(sub, rd, ZERO, rs));
                } else {
                    self.mov(rd, rs);
                }
                return;
            }
            m if m.is_power_of_two() => {
                let sh = m.trailing_zeros() as i32;
                self.emit(Insn::i(shl, rd, rs, sh));
                if neg {
                    self.emit(Insn::r(sub, rd, ZERO, rd));
                }
                return;
            }
            m if (m - 1).is_power_of_two() => {
                // x * (2^n + 1) = (x << n) + x
                let sh = (m - 1).trailing_zeros() as i32;
                self.emit(Insn::i(shl, AT0, rs, sh));
                self.emit(Insn::r(add, rd, AT0, rs));
                if neg {
                    self.emit(Insn::r(sub, rd, ZERO, rd));
                }
                return;
            }
            m if (m + 1).is_power_of_two() => {
                // x * (2^n - 1) = (x << n) - x
                let sh = (m + 1).trailing_zeros() as i32;
                self.emit(Insn::i(shl, AT0, rs, sh));
                self.emit(Insn::r(sub, rd, AT0, rs));
                if neg {
                    self.emit(Insn::r(sub, rd, ZERO, rd));
                }
                return;
            }
            _ => {}
        }
        self.li(AT0, imm);
        self.emit(Insn::r(mul, rd, rs, AT0));
    }

    /// Strength-reduced *unsigned* divide by a constant (powers of two
    /// become logical shifts).
    pub fn divu_imm(&mut self, k: ValKind, rd: Reg, rs: Reg, imm: u64) {
        debug_assert!(k != ValKind::F && imm != 0);
        let w = k == ValKind::W;
        if imm.is_power_of_two() {
            let sh = imm.trailing_zeros() as i32;
            let op = if w { Op::Srliw } else { Op::Srlid };
            if sh == 0 {
                self.mov(rd, rs);
            } else {
                self.emit(Insn::i(op, rd, rs, sh));
            }
            return;
        }
        self.li(AT0, imm as i64);
        let op = if w { Op::Divuw } else { Op::Divud };
        self.emit(Insn::r(op, rd, rs, AT0));
    }

    /// Strength-reduced *signed* divide by a constant. Powers of two use
    /// the round-toward-zero shift sequence; everything else falls back
    /// to `li`+`div`.
    pub fn divs_imm(&mut self, k: ValKind, rd: Reg, rs: Reg, imm: i64) {
        debug_assert!(k != ValKind::F && imm != 0);
        let w = k == ValKind::W;
        if imm > 1 && (imm as u64).is_power_of_two() {
            let sh = imm.trailing_zeros() as i32;
            let bits = if w { 32 } else { 64 };
            let (srai, srli, add) = if w {
                (Op::Sraiw, Op::Srliw, Op::Addw)
            } else {
                (Op::Sraid, Op::Srlid, Op::Addd)
            };
            // bias = (x >> bits-1) >>u (bits - sh); x' = x + bias; x' >> sh
            self.emit(Insn::i(srai, AT0, rs, bits - 1));
            self.emit(Insn::i(srli, AT0, AT0, bits - sh));
            self.emit(Insn::r(add, AT0, rs, AT0));
            self.emit(Insn::i(srai, rd, AT0, sh));
            return;
        }
        self.li(AT0, imm);
        let op = if w { Op::Divw } else { Op::Divd };
        self.emit(Insn::r(op, rd, rs, AT0));
    }

    /// Strength-reduced *unsigned* remainder by a constant (powers of two
    /// become masks).
    pub fn remu_imm(&mut self, k: ValKind, rd: Reg, rs: Reg, imm: u64) {
        debug_assert!(k != ValKind::F && imm != 0);
        let w = k == ValKind::W;
        if imm.is_power_of_two() {
            let mask = imm - 1;
            if mask <= 0x3fff {
                self.emit(Insn::i(Op::Andi, rd, rs, mask as i32));
            } else {
                self.li(AT0, mask as i64);
                self.emit(Insn::r(Op::And, rd, rs, AT0));
            }
            return;
        }
        self.li(AT0, imm as i64);
        let op = if w { Op::Remuw } else { Op::Remud };
        self.emit(Insn::r(op, rd, rs, AT0));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcc_vm::regs::{A0, A1};
    use tcc_vm::Vm;

    fn exec(build: impl FnOnce(&mut Asm<'_>), args: &[u64]) -> u64 {
        let mut code = CodeSpace::new();
        let mut asm = Asm::new(&mut code, "t");
        build(&mut asm);
        asm.emit(Insn::ret());
        let addr = asm.finish();
        let mut vm = Vm::new(code, 1 << 20);
        vm.call(addr, args).unwrap()
    }

    #[test]
    fn li_covers_interesting_constants() {
        for v in [
            0i64,
            1,
            -1,
            8191,
            -8192,
            8192,
            0x1234_5678,
            -0x1234_5678,
            i32::MAX as i64,
            i32::MIN as i64,
            u32::MAX as i64,
            CODE_BASE as i64,
            0x1_0000_0000,
            i64::MAX,
            i64::MIN,
            -0x1234_5678_9abc_def0,
        ] {
            let got = exec(|a| a.li(A0, v), &[]);
            assert_eq!(got as i64, v, "li {v:#x}");
        }
    }

    #[test]
    fn li_into_scratch_register_is_safe() {
        let got = exec(
            |a| {
                a.li(AT1, 0x1234_5678_9abc_def0);
                a.mov(A0, AT1);
            },
            &[],
        );
        assert_eq!(got as i64, 0x1234_5678_9abc_def0);
    }

    #[test]
    fn forward_and_backward_labels() {
        // a0 = (a0 != 0) ? 10 : 20, with a forward branch and a join.
        let got = |x: u64| {
            exec(
                |a| {
                    let els = a.new_label();
                    let join = a.new_label();
                    a.br(Op::Beq, A0, ZERO, els);
                    a.li(A0, 10);
                    a.jmp(join);
                    a.bind(els);
                    a.li(A0, 20);
                    a.bind(join);
                },
                &[x],
            )
        };
        assert_eq!(got(1), 10);
        assert_eq!(got(0), 20);
    }

    #[test]
    fn backward_branch_loops() {
        // sum 1..=a0
        let got = exec(
            |a| {
                a.li(A1, 0);
                let top = a.new_label();
                let done = a.new_label();
                a.bind(top);
                a.br(Op::Beq, A0, ZERO, done);
                a.emit(Insn::r(Op::Addw, A1, A1, A0));
                a.emit(Insn::i(Op::Addiw, A0, A0, -1));
                a.jmp(top);
                a.bind(done);
                a.mov(A0, A1);
            },
            &[10],
        );
        assert_eq!(got, 55);
    }

    #[test]
    #[should_panic(expected = "never bound")]
    fn unbound_label_panics_on_finish() {
        let mut code = CodeSpace::new();
        let mut asm = Asm::new(&mut code, "t");
        let l = asm.new_label();
        asm.jmp(l);
        asm.finish();
    }

    #[test]
    fn mul_imm_strength_reduction_is_correct() {
        for imm in [
            0i64, 1, -1, 2, -2, 8, 3, 5, 9, 7, 15, -7, 6, 10, 100, -100, 12345,
        ] {
            for x in [0i64, 1, -1, 7, -13, 1 << 20, i32::MAX as i64] {
                let got = exec(|a| a.mul_imm(ValKind::W, A0, A0, imm), &[x as u64]);
                assert_eq!(
                    got as i64,
                    (x as i32).wrapping_mul(imm as i32) as i64,
                    "w: {x} * {imm}"
                );
                let got = exec(|a| a.mul_imm(ValKind::D, A0, A0, imm), &[x as u64]);
                assert_eq!(got as i64, x.wrapping_mul(imm), "d: {x} * {imm}");
            }
        }
    }

    #[test]
    fn mul_imm_power_of_two_avoids_mul() {
        let mut code = CodeSpace::new();
        let mut asm = Asm::new(&mut code, "t");
        asm.mul_imm(ValKind::W, A0, A1, 16);
        let f = asm.func();
        asm.emit(Insn::ret());
        asm.finish();
        let insns = code.instructions(f).unwrap();
        assert!(insns.iter().all(|i| i.op != Op::Mulw && i.op != Op::Muld));
    }

    #[test]
    fn div_rem_imm_match_reference() {
        for imm in [1i64, 2, 4, 1024, 3, 10] {
            for x in [
                0i64,
                5,
                -5,
                1023,
                -1024,
                i32::MAX as i64,
                i32::MIN as i64 + 1,
            ] {
                let got = exec(|a| a.divs_imm(ValKind::W, A0, A0, imm), &[x as u64]);
                assert_eq!(got as i64, ((x as i32) / (imm as i32)) as i64, "{x}/{imm}");
            }
            for x in [0u64, 5, 1023, u32::MAX as u64] {
                let got = exec(
                    |a| a.divu_imm(ValKind::W, A0, A0, imm as u64),
                    &[x as u32 as i32 as i64 as u64],
                );
                assert_eq!(got as u32, (x as u32) / (imm as u32), "{x}/u{imm}");
                let got = exec(
                    |a| a.remu_imm(ValKind::W, A0, A0, imm as u64),
                    &[x as u32 as i32 as i64 as u64],
                );
                assert_eq!(got as u32, (x as u32) % (imm as u32), "{x}%u{imm}");
            }
        }
    }

    #[test]
    fn long_offset_loads_and_stores() {
        let mut code = CodeSpace::new();
        let mut asm = Asm::new(&mut code, "t");
        asm.store(Op::Sw, A0, A1, 100_000);
        asm.load(Op::Lw, A0, A1, 100_000);
        asm.emit(Insn::ret());
        let addr = asm.finish();
        let mut vm = Vm::new(code, 1 << 20);
        let region = vm.state_mut().mem.alloc(100_016, 8).unwrap();
        let got = vm.call(addr, &[77, region]).unwrap();
        assert_eq!(got, 77);
        assert_eq!(
            vm.state().mem.load_u32(region + 100_000).unwrap(),
            77,
            "store landed at base+offset"
        );
    }

    #[test]
    fn call_addr_links_and_returns() {
        let mut code = CodeSpace::new();
        let mut asm = Asm::new(&mut code, "callee");
        asm.emit(Insn::i(Op::Addiw, A0, A0, 5));
        asm.emit(Insn::ret());
        let callee = asm.finish();

        let mut asm = Asm::new(&mut code, "caller");
        use tcc_vm::regs::SP;
        asm.emit(Insn::i(Op::Addid, SP, SP, -16));
        asm.emit(Insn::i(Op::Sd, RA, SP, 0));
        asm.call_addr(callee);
        asm.emit(Insn::i(Op::Ld, RA, SP, 0));
        asm.emit(Insn::i(Op::Addid, SP, SP, 16));
        asm.emit(Insn::ret());
        let caller = asm.finish();

        let mut vm = Vm::new(code, 1 << 20);
        assert_eq!(vm.call(caller, &[1]).unwrap(), 6);
    }

    #[test]
    fn lif_materializes_doubles() {
        let mut code = CodeSpace::new();
        let mut asm = Asm::new(&mut code, "t");
        use tcc_vm::regs::FA0;
        asm.lif(FA0, 2.5);
        asm.emit(Insn::ret());
        let addr = asm.finish();
        let mut vm = Vm::new(code, 1 << 20);
        assert_eq!(vm.call_f(addr, &[], &[]).unwrap(), 2.5);
    }

    #[test]
    fn emitted_counts_instructions() {
        let mut code = CodeSpace::new();
        let mut asm = Asm::new(&mut code, "t");
        assert_eq!(asm.emitted(), 0);
        asm.li(A0, 1);
        assert_eq!(asm.emitted(), 1);
        asm.li(A0, 0x7fff_0001);
        assert_eq!(asm.emitted(), 3); // sethi+ori
        asm.li(A0, 0x7fff_0000);
        assert_eq!(asm.emitted(), 4); // sethi only (low bits zero)
    }
}
