//! The abstract code-generation interface shared by both dynamic back
//! ends.
//!
//! tcc "compiles dynamic code to two abstract machines" (§4.2): VCODE
//! emits binary immediately, ICODE records an intermediate representation
//! first. Both expose the same instruction vocabulary; in this
//! reproduction that shared vocabulary is the [`CodeSink`] trait, and the
//! code-generating functions produced by the static compiler are
//! interpreted against *either* implementation.

use crate::asm::Label;
use crate::ops::{BinOp, LoadKind, StoreKind, UnOp};
use crate::vcode::{CallTarget, Loc, Vcode};
use tcc_rt::ValKind;

/// Abstract code generation: the operation vocabulary of VCODE/ICODE over
/// an implementation-defined value type (physical/spilled locations for
/// VCODE, virtual registers for ICODE).
pub trait CodeSink {
    /// A value location.
    type Val: Copy + std::fmt::Debug + PartialEq;
    /// A branch target handle.
    type Lbl: Copy + std::fmt::Debug;

    /// Allocates a temporary of kind `k`.
    fn temp(&mut self, k: ValKind) -> Self::Val;
    /// Allocates a temporary that must survive calls (VCODE prefers a
    /// callee-saved register; ICODE lets the allocator decide).
    fn temp_saved(&mut self, k: ValKind) -> Self::Val;
    /// Releases a temporary (`putreg`; a no-op for ICODE).
    fn release(&mut self, v: Self::Val);
    /// Binds the `i`-th integer-or-float parameter (numbered separately
    /// per class) to a value usable anywhere in the function.
    fn param(&mut self, i: usize, k: ValKind) -> Self::Val;

    /// Integer constant.
    fn li(&mut self, dst: Self::Val, v: i64);
    /// Floating constant.
    fn lif(&mut self, dst: Self::Val, v: f64);
    /// `dst <- a op b`.
    fn bin(&mut self, op: BinOp, k: ValKind, dst: Self::Val, a: Self::Val, b: Self::Val);
    /// `dst <- a op imm`, strength-reduced per the immediate's value —
    /// the paper's run-time-constant partial evaluation hook.
    fn bin_imm(&mut self, op: BinOp, k: ValKind, dst: Self::Val, a: Self::Val, imm: i64);
    /// `dst <- op a`.
    fn un(&mut self, op: UnOp, k: ValKind, dst: Self::Val, a: Self::Val);
    /// Typed load.
    fn load(&mut self, lk: LoadKind, dst: Self::Val, base: Self::Val, off: i64);
    /// Typed store.
    fn store(&mut self, sk: StoreKind, val: Self::Val, base: Self::Val, off: i64);

    /// Creates an unbound label.
    fn label(&mut self) -> Self::Lbl;
    /// Binds a label at the current position.
    fn bind(&mut self, l: Self::Lbl);
    /// Unconditional jump.
    fn jmp(&mut self, l: Self::Lbl);
    /// Fused compare-and-branch.
    fn br_cmp(&mut self, op: BinOp, k: ValKind, a: Self::Val, b: Self::Val, l: Self::Lbl);
    /// Branch if non-zero.
    fn br_true(&mut self, a: Self::Val, l: Self::Lbl);
    /// Branch if zero.
    fn br_false(&mut self, a: Self::Val, l: Self::Lbl);

    /// Direct call to a known address.
    fn call_addr(
        &mut self,
        addr: u64,
        args: &[(ValKind, Self::Val)],
        ret: Option<(ValKind, Self::Val)>,
    );
    /// Indirect call through a value.
    fn call_ind(
        &mut self,
        target: Self::Val,
        args: &[(ValKind, Self::Val)],
        ret: Option<(ValKind, Self::Val)>,
    );
    /// Host call with the same argument convention as calls.
    fn hcall(&mut self, num: u32, args: &[(ValKind, Self::Val)], ret: Option<(ValKind, Self::Val)>);

    /// Return a value.
    fn ret_val(&mut self, k: ValKind, v: Self::Val);
    /// Return without a value.
    fn ret_void(&mut self);

    /// Usage-frequency hint: entering a loop (ICODE §5.2: "primitives to
    /// express changes in estimated usage frequency of code").
    fn loop_begin(&mut self) {}
    /// Usage-frequency hint: leaving a loop.
    fn loop_end(&mut self) {}

    /// Work emitted so far (machine instructions for VCODE, IR
    /// instructions for ICODE) — feeds the per-instruction cost metrics.
    fn emitted(&self) -> u64;
}

impl<'a> CodeSink for Vcode<'a> {
    type Val = Loc;
    type Lbl = Label;

    fn temp(&mut self, k: ValKind) -> Loc {
        self.getreg(k)
    }

    fn temp_saved(&mut self, k: ValKind) -> Loc {
        self.getreg_saved(k)
    }

    fn release(&mut self, v: Loc) {
        self.putreg(v);
    }

    fn param(&mut self, i: usize, k: ValKind) -> Loc {
        // Move the incoming argument register to a call-surviving home.
        let home = self.getreg_saved(k);
        if k == ValKind::F {
            let src = self.farg_loc(i);
            self.un(UnOp::Mov, k, home, src);
        } else {
            let src = self.arg_loc(i);
            self.un(UnOp::Mov, k, home, src);
        }
        home
    }

    fn li(&mut self, dst: Loc, v: i64) {
        Vcode::li(self, dst, v);
    }

    fn lif(&mut self, dst: Loc, v: f64) {
        Vcode::lif(self, dst, v);
    }

    fn bin(&mut self, op: BinOp, k: ValKind, dst: Loc, a: Loc, b: Loc) {
        Vcode::bin(self, op, k, dst, a, b);
    }

    fn bin_imm(&mut self, op: BinOp, k: ValKind, dst: Loc, a: Loc, imm: i64) {
        match op {
            BinOp::Add => self.addi(k, dst, a, imm),
            BinOp::Sub => self.addi(k, dst, a, imm.wrapping_neg()),
            BinOp::Mul => self.mul_imm(k, dst, a, imm),
            BinOp::Div => self.divs_imm(k, dst, a, imm),
            BinOp::DivU => self.divu_imm(k, dst, a, imm as u64),
            BinOp::RemU => self.remu_imm(k, dst, a, imm as u64),
            _ => {
                // General path: materialize and use the register form.
                let t = Loc::R(tcc_vm::regs::AT1);
                Vcode::li(self, t, imm);
                Vcode::bin(self, op, k, dst, a, t);
            }
        }
    }

    fn un(&mut self, op: UnOp, k: ValKind, dst: Loc, a: Loc) {
        Vcode::un(self, op, k, dst, a);
    }

    fn load(&mut self, lk: LoadKind, dst: Loc, base: Loc, off: i64) {
        Vcode::load(self, lk, dst, base, off);
    }

    fn store(&mut self, sk: StoreKind, val: Loc, base: Loc, off: i64) {
        Vcode::store(self, sk, val, base, off);
    }

    fn label(&mut self) -> Label {
        self.new_label()
    }

    fn bind(&mut self, l: Label) {
        Vcode::bind(self, l);
    }

    fn jmp(&mut self, l: Label) {
        Vcode::jmp(self, l);
    }

    fn br_cmp(&mut self, op: BinOp, k: ValKind, a: Loc, b: Loc, l: Label) {
        Vcode::br_cmp(self, op, k, a, b, l);
    }

    fn br_true(&mut self, a: Loc, l: Label) {
        Vcode::br_true(self, a, l);
    }

    fn br_false(&mut self, a: Loc, l: Label) {
        Vcode::br_false(self, a, l);
    }

    fn call_addr(&mut self, addr: u64, args: &[(ValKind, Loc)], ret: Option<(ValKind, Loc)>) {
        self.call(CallTarget::Addr(addr), args, ret);
    }

    fn call_ind(&mut self, target: Loc, args: &[(ValKind, Loc)], ret: Option<(ValKind, Loc)>) {
        self.call(CallTarget::Ind(target), args, ret);
    }

    fn hcall(&mut self, num: u32, args: &[(ValKind, Loc)], ret: Option<(ValKind, Loc)>) {
        Vcode::hcall_with(self, num, args, ret);
    }

    fn ret_val(&mut self, k: ValKind, v: Loc) {
        Vcode::ret_val(self, k, v);
    }

    fn ret_void(&mut self) {
        Vcode::ret(self);
    }

    fn emitted(&self) -> u64 {
        Vcode::emitted(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcc_vm::{CodeSpace, Vm};

    // A generic builder exercising the trait — the same function text
    // works against any sink.
    fn build_poly<S: CodeSink>(s: &mut S) {
        // f(x) = x > 10 ? x * 8 : x + 100
        let x = s.param(0, ValKind::W);
        let r = s.temp(ValKind::W);
        let big = s.label();
        let done = s.label();
        let ten = s.temp(ValKind::W);
        s.li(ten, 10);
        s.br_cmp(BinOp::Gt, ValKind::W, x, ten, big);
        s.bin_imm(BinOp::Add, ValKind::W, r, x, 100);
        s.jmp(done);
        s.bind(big);
        s.bin_imm(BinOp::Mul, ValKind::W, r, x, 8);
        s.bind(done);
        s.ret_val(ValKind::W, r);
    }

    #[test]
    fn vcode_implements_the_sink() {
        let mut code = CodeSpace::new();
        let mut vc = Vcode::new(&mut code, "poly");
        build_poly(&mut vc);
        let f = vc.finish();
        let mut vm = Vm::new(code, 1 << 20);
        assert_eq!(vm.call(f.addr, &[5]).unwrap(), 105);
        assert_eq!(vm.call(f.addr, &[11]).unwrap(), 88);
    }

    #[test]
    fn hcall_through_sink() {
        use tcc_vm::interp::MachineState;
        let mut code = CodeSpace::new();
        let mut vc = Vcode::new(&mut code, "h");
        let x = vc.param(0, ValKind::W);
        let r = vc.temp(ValKind::W);
        CodeSink::hcall(&mut vc, 40, &[(ValKind::W, x)], Some((ValKind::W, r)));
        vc.ret_val(ValKind::W, r);
        let f = vc.finish();
        let host = |num: u32, st: &mut MachineState| {
            let a = st.arg(0);
            st.set_ret(a + num as u64);
            Ok(())
        };
        let mut vm = Vm::with_host(code, 1 << 20, host);
        assert_eq!(vm.call(f.addr, &[2]).unwrap(), 42);
    }
}
