//! # tcc-vcode — the fast one-pass code generation layer
//!
//! A Rust reimplementation of the role VCODE plays in tcc (paper §4.2 and
//! §5.1): "an interface resembling that of an idealized load/store RISC
//! architecture; each instruction in this interface is a C macro which
//! emits the corresponding instruction (or series of instructions) for
//! the target architecture."
//!
//! Layering, bottom up:
//!
//! * [`asm::Asm`] — raw instruction emission over a [`tcc_vm::CodeSpace`]:
//!   labels with forward-reference patching, constant synthesis
//!   (`sethi`/`ori` sequences), long-offset memory access, calls.
//! * [`ops`] — the *typed operation vocabulary* shared with ICODE:
//!   [`ops::BinOp`]/[`ops::UnOp`] parameterized by [`tcc_rt::ValKind`],
//!   plus load/store widths.
//! * [`func::FuncBuilder`] — function scaffolding: prologue/epilogue,
//!   stack-slot allocation, lazy callee-saved register saves. The static
//!   back ends build on this directly.
//! * [`regmgr::RegMgr`] — `getreg`/`putreg`. When the register pool runs
//!   dry, `getreg` returns a *spilled location* ("designated by a negative
//!   number" in the paper; a typed [`Loc::Spill`] here), and the emission
//!   macros transparently wrap such operands in loads and stores. That
//!   per-operand check can be disabled (`unchecked` mode) for roughly the
//!   paper's "factor of two" emission speedup, at the price of a run-time
//!   error when the pool is exhausted.
//! * [`vcode::Vcode`] — the VCODE abstraction itself: typed emission
//!   macros over [`Loc`]s, one pass, no IR.
//!
//! ## Example: emit `f(x) = 3*x + 1` dynamically
//!
//! ```rust
//! use tcc_rt::ValKind;
//! use tcc_vcode::{ops::BinOp, Vcode};
//! use tcc_vm::{CodeSpace, Vm};
//!
//! # fn main() -> Result<(), tcc_vm::VmError> {
//! let mut code = CodeSpace::new();
//! let mut vc = Vcode::new(&mut code, "triple_plus_one");
//! let x = vc.arg_loc(0);
//! let t = vc.getreg(ValKind::W);
//! vc.li(t, 3);
//! vc.bin(BinOp::Mul, ValKind::W, t, t, x);
//! vc.addi(ValKind::W, t, t, 1);
//! vc.ret_val(ValKind::W, t);
//! let f = vc.finish();
//!
//! let mut vm = Vm::new(code, 1 << 20);
//! assert_eq!(vm.call(f.addr, &[13])?, 40);
//! # Ok(())
//! # }
//! ```

pub mod asm;
pub mod func;
pub mod ops;
pub mod regmgr;
pub mod sink;
pub mod vcode;

pub use asm::{Asm, Label};
pub use func::{FinishedFunc, FuncBuilder};
pub use ops::{BinOp, LoadKind, StoreKind, UnOp};
pub use regmgr::RegMgr;
pub use sink::CodeSink;
pub use vcode::{CallTarget, Loc, Vcode};
