//! `getreg`/`putreg` — VCODE's dynamic register management (paper §5.1).
//!
//! The pool hands out caller-saved temporaries first, then callee-saved
//! registers (whose first use triggers a lazy save, handled by the
//! [`crate::Vcode`] layer). A code generator can also *reserve* registers
//! out of the pool: "tcc reduces the number of run-time register
//! allocations that occur by reserving a limited number of physical
//! registers … managed at static compile time" — the tcc crate uses that
//! for expression temporaries whose live ranges do not span cspec
//! composition.

use tcc_vm::regs::{FSAVED_REGS, FTEMP_REGS, SAVED_REGS, TEMP_REGS};
use tcc_vm::{FReg, Reg};

/// The register pool. Pure bookkeeping: no instructions are emitted here.
#[derive(Clone, Debug)]
pub struct RegMgr {
    free_temp: Vec<Reg>,
    free_saved: Vec<Reg>,
    free_ftemp: Vec<FReg>,
    free_fsaved: Vec<FReg>,
    reserved: Vec<Reg>,
}

impl Default for RegMgr {
    fn default() -> Self {
        RegMgr::new()
    }
}

impl RegMgr {
    /// A full pool: all temporaries and callee-saved registers.
    pub fn new() -> RegMgr {
        RegMgr {
            // Pop from the end: hand out t0 first, then t1, …
            free_temp: TEMP_REGS.iter().rev().copied().collect(),
            free_saved: SAVED_REGS.iter().rev().copied().collect(),
            free_ftemp: FTEMP_REGS.iter().rev().copied().collect(),
            free_fsaved: FSAVED_REGS.iter().rev().copied().collect(),
            reserved: Vec::new(),
        }
    }

    /// Removes `n` caller-saved temporaries from the pool for static
    /// management; returns them. They are never handed out by `getreg`
    /// again until [`RegMgr::unreserve_all`].
    pub fn reserve_temps(&mut self, n: usize) -> Vec<Reg> {
        let n = n.min(self.free_temp.len());
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let r = self.free_temp.pop().expect("len checked");
            self.reserved.push(r);
            out.push(r);
        }
        out
    }

    /// Returns all reserved registers to the pool.
    pub fn unreserve_all(&mut self) {
        while let Some(r) = self.reserved.pop() {
            self.free_temp.push(r);
        }
    }

    /// Takes an integer register from the pool. `prefer_saved` requests a
    /// callee-saved register (for values that must survive calls).
    /// Returns the register and whether it is callee-saved.
    pub fn get_int(&mut self, prefer_saved: bool) -> Option<(Reg, bool)> {
        if prefer_saved {
            if let Some(r) = self.free_saved.pop() {
                return Some((r, true));
            }
            return self.free_temp.pop().map(|r| (r, false));
        }
        if let Some(r) = self.free_temp.pop() {
            return Some((r, false));
        }
        self.free_saved.pop().map(|r| (r, true))
    }

    /// Takes a floating point register from the pool.
    pub fn get_float(&mut self, prefer_saved: bool) -> Option<(FReg, bool)> {
        if prefer_saved {
            if let Some(f) = self.free_fsaved.pop() {
                return Some((f, true));
            }
            return self.free_ftemp.pop().map(|f| (f, false));
        }
        if let Some(f) = self.free_ftemp.pop() {
            return Some((f, false));
        }
        self.free_fsaved.pop().map(|f| (f, true))
    }

    /// Returns an integer register to the pool.
    ///
    /// # Panics
    ///
    /// Panics if the register is not a pool register (argument and
    /// scratch registers are never pooled).
    pub fn put_int(&mut self, r: Reg) {
        if TEMP_REGS.contains(&r) {
            debug_assert!(!self.free_temp.contains(&r), "double putreg of {r}");
            self.free_temp.push(r);
        } else if SAVED_REGS.contains(&r) {
            debug_assert!(!self.free_saved.contains(&r), "double putreg of {r}");
            self.free_saved.push(r);
        } else {
            panic!("putreg of non-pool register {r}");
        }
    }

    /// Returns a floating point register to the pool.
    ///
    /// # Panics
    ///
    /// Panics if the register is not a pool register.
    pub fn put_float(&mut self, f: FReg) {
        if FTEMP_REGS.contains(&f) {
            debug_assert!(!self.free_ftemp.contains(&f));
            self.free_ftemp.push(f);
        } else if FSAVED_REGS.contains(&f) {
            debug_assert!(!self.free_fsaved.contains(&f));
            self.free_fsaved.push(f);
        } else {
            panic!("putreg of non-pool fp register {f}");
        }
    }

    /// Number of integer registers currently available.
    pub fn free_int_count(&self) -> usize {
        self.free_temp.len() + self.free_saved.len()
    }

    /// Number of fp registers currently available.
    pub fn free_float_count(&self) -> usize {
        self.free_ftemp.len() + self.free_fsaved.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_put_cycles_through_pool() {
        let mut m = RegMgr::new();
        let (r1, cs1) = m.get_int(false).unwrap();
        assert!(!cs1);
        m.put_int(r1);
        let (r2, _) = m.get_int(false).unwrap();
        assert_eq!(r1, r2);
    }

    #[test]
    fn pool_exhaustion_returns_none() {
        let mut m = RegMgr::new();
        let mut got = Vec::new();
        while let Some((r, _)) = m.get_int(false) {
            got.push(r);
        }
        assert_eq!(got.len(), 20); // 10 temps + 10 saved
        assert!(m.get_int(false).is_none());
        for r in got {
            m.put_int(r);
        }
        assert_eq!(m.free_int_count(), 20);
    }

    #[test]
    fn prefer_saved_hands_out_callee_saved() {
        let mut m = RegMgr::new();
        let (r, cs) = m.get_int(true).unwrap();
        assert!(cs, "expected a callee-saved register, got {r}");
    }

    #[test]
    fn reserve_shrinks_pool() {
        let mut m = RegMgr::new();
        let reserved = m.reserve_temps(4);
        assert_eq!(reserved.len(), 4);
        let mut handed = Vec::new();
        while let Some((r, _)) = m.get_int(false) {
            assert!(!reserved.contains(&r));
            handed.push(r);
        }
        assert_eq!(handed.len(), 16);
        for r in handed {
            m.put_int(r);
        }
        m.unreserve_all();
        assert_eq!(m.free_int_count(), 20);
    }

    #[test]
    #[should_panic(expected = "non-pool register")]
    fn putting_argument_register_panics() {
        let mut m = RegMgr::new();
        m.put_int(tcc_vm::regs::A0);
    }

    #[test]
    fn float_pool_works() {
        let mut m = RegMgr::new();
        let (f, cs) = m.get_float(false).unwrap();
        assert!(!cs);
        m.put_float(f);
        assert_eq!(m.free_float_count(), 11);
    }
}
