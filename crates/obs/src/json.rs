//! A small JSON value type and serializer.
//!
//! The workspace cannot take a `serde` dependency (offline build), and
//! the reports only ever *write* JSON, so a hand-rolled emitter keeps
//! the surface tiny: [`Json`] plus `Display`. Numbers are emitted as
//! integers when exact, otherwise as shortest-roundtrip floats;
//! non-finite floats degrade to `null` (JSON has no NaN/Infinity).

use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Signed integer (covers u64 counters below 2^63 and i64).
    Int(i64),
    /// Floating point.
    Num(f64),
    /// String (escaped on output).
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Pretty-prints with two-space indentation and a trailing newline,
    /// the format written to `BENCH_*.json`.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    out.push_str(&"  ".repeat(indent + 1));
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push(']');
            }
            Json::Obj(fields) if !fields.is_empty() => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    out.push_str(&"  ".repeat(indent + 1));
                    out.push_str(&format!("{}: ", Json::Str(k.clone())));
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
            other => {
                out.push_str(&other.to_string());
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Int(i) => write!(f, "{i}"),
            Json::Num(n) => {
                if !n.is_finite() {
                    f.write_str("null")
                } else if *n == n.trunc() && n.abs() < 1e15 {
                    // Keep a decimal point so consumers see a float.
                    write!(f, "{n:.1}")
                } else {
                    write!(f, "{n}")
                }
            }
            Json::Str(s) => {
                f.write_str("\"")?;
                for c in s.chars() {
                    match c {
                        '"' => f.write_str("\\\"")?,
                        '\\' => f.write_str("\\\\")?,
                        '\n' => f.write_str("\\n")?,
                        '\r' => f.write_str("\\r")?,
                        '\t' => f.write_str("\\t")?,
                        c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
                        c => write!(f, "{c}")?,
                    }
                }
                f.write_str("\"")
            }
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{}:{v}", Json::Str(k.clone()))?;
                }
                f.write_str("}")
            }
        }
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        if v <= i64::MAX as u64 {
            Json::Int(v as i64)
        } else {
            Json::Num(v as f64)
        }
    }
}

impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::Int(v as i64)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::from(v as u64)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(v: Option<T>) -> Json {
        v.map_or(Json::Null, Into::into)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_strings() {
        let j = Json::Str("a\"b\\c\nd\u{1}".to_string());
        assert_eq!(j.to_string(), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn numbers() {
        assert_eq!(Json::from(42u64).to_string(), "42");
        assert_eq!(Json::from(2.5f64).to_string(), "2.5");
        assert_eq!(Json::from(3.0f64).to_string(), "3.0");
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn compact_structure() {
        let j = Json::obj(vec![
            ("a", Json::from(1u64)),
            ("b", Json::Arr(vec![Json::Null, Json::from(true)])),
        ]);
        assert_eq!(j.to_string(), "{\"a\":1,\"b\":[null,true]}");
    }

    #[test]
    fn pretty_round_trips_keys() {
        let j = Json::obj(vec![(
            "rows",
            Json::Arr(vec![Json::obj(vec![("x", Json::from(1u64))])]),
        )]);
        let p = j.pretty();
        assert!(p.contains("\"rows\": ["));
        assert!(p.ends_with("}\n"));
        assert!(p.contains("\"x\": 1"));
    }

    #[test]
    fn option_maps_to_null() {
        assert_eq!(Json::from(None::<u64>).to_string(), "null");
        assert_eq!(Json::from(Some(7u64)).to_string(), "7");
    }
}
