//! Unified observability for the tcc reproduction.
//!
//! Every layer of the pipeline reports into the types defined here:
//!
//! * the front end ([`FrontendMetrics`]: parse + semantic analysis),
//! * static MIR lowering and linking ([`StaticMetrics`]),
//! * dynamic compilation ([`DynMetrics`]: CGF walking, per-backend
//!   codegen phases in [`CodegenPhases`], instruction/spill counters),
//! * and the VM itself ([`VmMetrics`]: instructions retired, modeled
//!   cycles, host-call traps).
//!
//! `Session::metrics()` in the facade crate assembles them into a
//! [`SessionMetrics`], which renders to JSON via [`json::Json`] — the
//! machine-readable substrate behind the suite's `BENCH_*.json` files
//! (Table 1 and Figures 4-7 of the paper).
//!
//! This crate is a leaf: no dependencies, so every other crate in the
//! workspace can report into it.

pub mod json;

use json::Json;

/// Per-phase codegen time, in nanoseconds.
///
/// For the ICODE back end every field is meaningful (the paper's
/// Figure 7 breakdown); the one-pass VCODE back end only populates
/// `emit_ns` (walk time is tracked separately in [`DynMetrics`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CodegenPhases {
    /// IR cleanup (DCE, jump threading).
    pub peephole_ns: u64,
    /// Flow graph construction.
    pub flow_ns: u64,
    /// Live-variable relaxation.
    pub liveness_ns: u64,
    /// Live interval construction.
    pub intervals_ns: u64,
    /// Register allocation proper.
    pub alloc_ns: u64,
    /// Translation to binary.
    pub emit_ns: u64,
}

impl CodegenPhases {
    /// Total nanoseconds across phases.
    pub fn total_ns(&self) -> u64 {
        self.peephole_ns
            + self.flow_ns
            + self.liveness_ns
            + self.intervals_ns
            + self.alloc_ns
            + self.emit_ns
    }

    /// Fraction of time in liveness + intervals + allocation ("register
    /// allocation and related operations", the paper's 70-80% claim).
    pub fn alloc_fraction(&self) -> f64 {
        let a = self.liveness_ns + self.intervals_ns + self.alloc_ns;
        a as f64 / self.total_ns().max(1) as f64
    }

    /// Adds another breakdown into this one, phase by phase.
    pub fn accumulate(&mut self, other: &CodegenPhases) {
        self.peephole_ns += other.peephole_ns;
        self.flow_ns += other.flow_ns;
        self.liveness_ns += other.liveness_ns;
        self.intervals_ns += other.intervals_ns;
        self.alloc_ns += other.alloc_ns;
        self.emit_ns += other.emit_ns;
    }

    /// `(phase name, nanoseconds)` pairs, in pipeline order.
    pub fn entries(&self) -> [(&'static str, u64); 6] {
        [
            ("peephole_ns", self.peephole_ns),
            ("flow_ns", self.flow_ns),
            ("liveness_ns", self.liveness_ns),
            ("intervals_ns", self.intervals_ns),
            ("alloc_ns", self.alloc_ns),
            ("emit_ns", self.emit_ns),
        ]
    }

    /// JSON object with one field per phase plus the total.
    pub fn to_json(&self) -> Json {
        let mut fields: Vec<(String, Json)> = self
            .entries()
            .iter()
            .map(|&(k, v)| (k.to_string(), Json::from(v)))
            .collect();
        fields.push(("total_ns".to_string(), Json::from(self.total_ns())));
        Json::Obj(fields)
    }
}

/// Accumulated dynamic-compilation statistics (the raw material for the
/// paper's Table 1 and Figures 5-7).
#[derive(Clone, Debug, Default)]
pub struct DynMetrics {
    /// Number of `compile` invocations.
    pub compiles: u64,
    /// Total wall-clock nanoseconds in `compile`.
    pub total_ns: u64,
    /// Nanoseconds spent walking CGFs (closure reads, partial
    /// evaluation, and — for ICODE — building the IR).
    pub walk_ns: u64,
    /// Per-phase breakdown, accumulated (ICODE back end).
    pub phases: CodegenPhases,
    /// Machine instructions generated.
    pub generated_insns: u64,
    /// ICODE IR instructions recorded.
    pub ir_insns: u64,
    /// Spilled live intervals (ICODE).
    pub spills: u64,
    /// Closures traversed.
    pub closures: u64,
    /// Loop iterations unrolled at dynamic compile time.
    pub unrolled_iters: u64,
}

impl DynMetrics {
    /// Codegen nanoseconds per generated machine instruction — the
    /// paper's central cost metric (Table 1 reports it in cycles; see
    /// [`DynMetrics::cycles_per_generated_insn`]).
    pub fn ns_per_generated_insn(&self) -> f64 {
        self.total_ns as f64 / self.generated_insns.max(1) as f64
    }

    /// Codegen cost in cycles per generated instruction, given a
    /// calibrated cycle time. The paper reports roughly 100 cycles per
    /// instruction for VCODE and 300-800 for ICODE.
    pub fn cycles_per_generated_insn(&self, ns_per_cycle: f64) -> f64 {
        self.ns_per_generated_insn() / ns_per_cycle.max(f64::MIN_POSITIVE)
    }

    /// JSON object with raw counters plus the derived per-instruction
    /// cost (in ns; callers with a calibrated clock add cycles).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("compiles", Json::from(self.compiles)),
            ("total_ns", Json::from(self.total_ns)),
            ("walk_ns", Json::from(self.walk_ns)),
            ("phases", self.phases.to_json()),
            ("generated_insns", Json::from(self.generated_insns)),
            ("ir_insns", Json::from(self.ir_insns)),
            ("spills", Json::from(self.spills)),
            ("closures", Json::from(self.closures)),
            ("unrolled_iters", Json::from(self.unrolled_iters)),
            (
                "ns_per_generated_insn",
                Json::from(self.ns_per_generated_insn()),
            ),
        ])
    }
}

/// Front-end cost: parsing plus semantic analysis ("compile time" in
/// the paper's static-compiler sense, minus code generation).
#[derive(Clone, Copy, Debug, Default)]
pub struct FrontendMetrics {
    /// Nanoseconds in parse + semantic analysis of the `C unit.
    pub parse_sema_ns: u64,
    /// Source length, for normalization.
    pub source_bytes: u64,
}

impl FrontendMetrics {
    /// JSON object form.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("parse_sema_ns", Json::from(self.parse_sema_ns)),
            ("source_bytes", Json::from(self.source_bytes)),
        ])
    }
}

/// Static compilation cost: MIR lowering, optimization, and linking
/// into the executable image.
#[derive(Clone, Copy, Debug, Default)]
pub struct StaticMetrics {
    /// Nanoseconds lowering MIR and linking the image.
    pub lower_ns: u64,
    /// Machine instructions in the static image.
    pub static_insns: u64,
}

impl StaticMetrics {
    /// JSON object form.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("lower_ns", Json::from(self.lower_ns)),
            ("static_insns", Json::from(self.static_insns)),
        ])
    }
}

/// Execution counters from the VM.
#[derive(Clone, Copy, Debug, Default)]
pub struct VmMetrics {
    /// Instructions retired.
    pub insns: u64,
    /// Modeled cycles (per-opcode cost model).
    pub cycles: u64,
    /// Host-call traps taken (`compile`, output, allocation, ...).
    pub hcalls: u64,
}

impl VmMetrics {
    /// Modeled CPI — sanity signal for the cost model.
    pub fn cycles_per_insn(&self) -> f64 {
        self.cycles as f64 / self.insns.max(1) as f64
    }

    /// JSON object form.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("insns", Json::from(self.insns)),
            ("cycles", Json::from(self.cycles)),
            ("hcalls", Json::from(self.hcalls)),
        ])
    }
}

/// Compile-memoization and code-lifecycle counters reported by the
/// `tcc-cache` subsystem: how often a `compile` host call was answered
/// from cache, what eviction under the code budget cost, and how
/// healthy the underlying code space is.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CacheMetrics {
    /// `compile` calls answered with an existing function address.
    pub hits: u64,
    /// `compile` calls that ran the CGF and inserted the result.
    pub misses: u64,
    /// Closures that cannot be memoized (e.g. `$`-expressions that read
    /// memory at compile time) or that exceed the whole code budget.
    pub uncacheable: u64,
    /// Entries evicted (LRU) to stay under the code budget.
    pub evictions: u64,
    /// Bytes of code currently live in cached functions.
    pub bytes_live: u64,
    /// Cumulative bytes of code freed by eviction.
    pub bytes_reclaimed: u64,
    /// Free-space fragmentation of the code space, `0.0..=1.0`
    /// (`1 - largest_free_range / total_free`).
    pub fragmentation: f64,
    /// Compile nanoseconds avoided by hits (the sum of each hit
    /// entry's original compile time).
    pub ns_saved: u64,
    /// Nanoseconds actually spent answering hits (fingerprint walk +
    /// lookup) — compare against [`CacheMetrics::ns_saved`].
    pub hit_ns: u64,
}

impl CacheMetrics {
    /// Hit rate over all memoizable `compile` calls (0.0 when none).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// JSON object form.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("hits", Json::from(self.hits)),
            ("misses", Json::from(self.misses)),
            ("uncacheable", Json::from(self.uncacheable)),
            ("evictions", Json::from(self.evictions)),
            ("bytes_live", Json::from(self.bytes_live)),
            ("bytes_reclaimed", Json::from(self.bytes_reclaimed)),
            ("fragmentation", Json::from(self.fragmentation)),
            ("ns_saved", Json::from(self.ns_saved)),
            ("hit_ns", Json::from(self.hit_ns)),
            ("hit_rate", Json::from(self.hit_rate())),
        ])
    }
}

/// Counters for the multi-tenant shared artifact cache (`tcc-cache`'s
/// `SharedArtifacts`): how often sessions on any thread found a
/// compiled artifact already published, how much duplicated compile
/// work the in-flight slots absorbed, and what eviction under the byte
/// budget cost.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SharedCacheMetrics {
    /// Requests answered with an already-published artifact (including
    /// requests that waited on an in-flight compile).
    pub hits: u64,
    /// Requests that claimed the fingerprint and compiled it.
    pub misses: u64,
    /// Hits that blocked on another thread's in-flight compile instead
    /// of duplicating it.
    pub waits: u64,
    /// Artifacts published (completed first compiles). With no churn
    /// this equals the number of unique fingerprints requested.
    pub published: u64,
    /// Artifacts evicted (global LRU) to stay under the byte budget.
    pub evictions: u64,
    /// Artifacts dropped by explicit invalidation (rule-set churn).
    pub invalidations: u64,
    /// Compiles whose artifact could not be retained (larger than the
    /// whole budget); waiters still received the one-shot result.
    pub uncacheable: u64,
    /// Bytes of compiled code currently held by published artifacts.
    pub bytes_live: u64,
    /// Published artifacts currently resident.
    pub entries: u64,
}

impl SharedCacheMetrics {
    /// Hit rate over all artifact requests (0.0 when none — matches
    /// [`CacheMetrics::hit_rate`]).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// JSON object form.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("hits", Json::from(self.hits)),
            ("misses", Json::from(self.misses)),
            ("waits", Json::from(self.waits)),
            ("published", Json::from(self.published)),
            ("evictions", Json::from(self.evictions)),
            ("invalidations", Json::from(self.invalidations)),
            ("uncacheable", Json::from(self.uncacheable)),
            ("bytes_live", Json::from(self.bytes_live)),
            ("entries", Json::from(self.entries)),
            ("hit_rate", Json::from(self.hit_rate())),
        ])
    }
}

/// Counters for the on-disk persistent artifact store (`tcc-cache`'s
/// `PersistentStore`): how many compiles were answered from disk
/// across a process restart, how much the zero-trust loader rejected,
/// and what flushing cost.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PersistMetrics {
    /// Compile requests answered by deserializing a stored artifact.
    pub disk_hits: u64,
    /// Compile requests that consulted the store and found nothing
    /// usable (absent, tombstoned, or rejected below).
    pub disk_misses: u64,
    /// Store entries rejected by the zero-trust loader: short reads,
    /// CRC mismatches, or implausible lengths. Each rejection degrades
    /// to a cold miss; valid entries elsewhere in the file still load.
    pub corrupt_rejected: u64,
    /// Whole stores rejected because the header's format version or
    /// ABI salt did not match this build (different opcode table, cost
    /// model, fingerprint scheme, or static image layout).
    pub version_rejected: u64,
    /// Entries successfully parsed from the store at open.
    pub entries_loaded: u64,
    /// Entries invalidated in memory and omitted from the next flush.
    pub tombstones: u64,
    /// Atomic flushes (temp file + rename) completed.
    pub flushes: u64,
    /// Bytes written across all flushes.
    pub bytes_flushed: u64,
    /// Nanoseconds spent loading artifacts from disk (charged against
    /// `ns_saved` so warm-start savings are not overstated).
    pub load_ns: u64,
}

impl PersistMetrics {
    /// Disk hit rate over all store consultations (0.0 when none —
    /// matches [`CacheMetrics::hit_rate`]).
    pub fn disk_hit_rate(&self) -> f64 {
        let total = self.disk_hits + self.disk_misses;
        if total == 0 {
            0.0
        } else {
            self.disk_hits as f64 / total as f64
        }
    }

    /// JSON object form.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("disk_hits", Json::from(self.disk_hits)),
            ("disk_misses", Json::from(self.disk_misses)),
            ("corrupt_rejected", Json::from(self.corrupt_rejected)),
            ("version_rejected", Json::from(self.version_rejected)),
            ("entries_loaded", Json::from(self.entries_loaded)),
            ("tombstones", Json::from(self.tombstones)),
            ("flushes", Json::from(self.flushes)),
            ("bytes_flushed", Json::from(self.bytes_flushed)),
            ("load_ns", Json::from(self.load_ns)),
            ("disk_hit_rate", Json::from(self.disk_hit_rate())),
        ])
    }
}

/// Execution-engine counters reported by the VM's translated engines
/// (predecoded and direct-threaded): how much code was translated, how
/// much fusion found, how many scalar runs were fuel-batched, and
/// which dispatch path retired instructions.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExecMetrics {
    /// Functions translated into decoded buffers.
    pub translations: u64,
    /// Code words covered by those translations.
    pub translated_words: u64,
    /// Instruction pairs fused into superinstructions.
    pub fused_pairs: u64,
    /// Instructions retired from decoded buffers.
    pub fast_insns: u64,
    /// Instructions retired by the decode-per-step path.
    pub slow_insns: u64,
    /// Whole-cache invalidations (free / live patch / eviction).
    pub invalidations: u64,
    /// Scalar runs fuel-charged in one batch by the threaded engine.
    pub batched_blocks: u64,
    /// Batched runs that exited early and un-charged their tail.
    pub fuel_reconciliations: u64,
    /// Direct-threaded handler-table size (0 until the threaded engine
    /// has translated something).
    pub handlers: u64,
    /// Superinstruction groups compiled by the threaded translator
    /// (run+jump, run+branch, pair, triple).
    pub superinstructions: u64,
    /// Dispatch-loop iterations executed by the threaded engine. Each
    /// superinstruction group retires with one dispatch, so this falls
    /// below `fast_insns` as fusion takes hold.
    pub dispatches: u64,
    /// Dispatches that entered a fused (superinstruction) handler.
    pub fused_dispatches: u64,
}

impl ExecMetrics {
    /// Fraction of retired instructions dispatched from translated
    /// buffers. Reports `0.0` when nothing has executed — a session
    /// that never ran code did not earn a perfect dispatch score
    /// (matches [`CacheMetrics::hit_rate`]).
    pub fn hit_rate(&self) -> f64 {
        let total = self.fast_insns + self.slow_insns;
        if total == 0 {
            0.0
        } else {
            self.fast_insns as f64 / total as f64
        }
    }

    /// Fraction of threaded dispatches that entered a fused
    /// (superinstruction) handler. `0.0` when nothing has dispatched —
    /// same zero-denominator rule as [`ExecMetrics::hit_rate`].
    pub fn fused_dispatch_rate(&self) -> f64 {
        if self.dispatches == 0 {
            0.0
        } else {
            self.fused_dispatches as f64 / self.dispatches as f64
        }
    }

    /// Threaded dispatch-loop iterations per fast-path retired
    /// instruction: `1.0` means one dispatch per instruction (no
    /// batching or fusion), lower is better. `0.0` when nothing retired
    /// from translated buffers — a session that never ran earns no
    /// score.
    pub fn dispatches_per_insn(&self) -> f64 {
        if self.fast_insns == 0 {
            0.0
        } else {
            self.dispatches as f64 / self.fast_insns as f64
        }
    }

    /// JSON object form.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("translations", Json::from(self.translations)),
            ("translated_words", Json::from(self.translated_words)),
            ("fused_pairs", Json::from(self.fused_pairs)),
            ("fast_insns", Json::from(self.fast_insns)),
            ("slow_insns", Json::from(self.slow_insns)),
            ("invalidations", Json::from(self.invalidations)),
            ("batched_blocks", Json::from(self.batched_blocks)),
            (
                "fuel_reconciliations",
                Json::from(self.fuel_reconciliations),
            ),
            ("handlers", Json::from(self.handlers)),
            ("superinstructions", Json::from(self.superinstructions)),
            ("dispatches", Json::from(self.dispatches)),
            ("fused_dispatches", Json::from(self.fused_dispatches)),
            ("dispatch_hit_rate", Json::from(self.hit_rate())),
            (
                "fused_dispatch_rate",
                Json::from(self.fused_dispatch_rate()),
            ),
            (
                "dispatches_per_insn",
                Json::from(self.dispatches_per_insn()),
            ),
        ])
    }
}

/// Adaptive-engine tiering counters reported by the VM: where function
/// runs executed (per tier), how functions moved between tiers, and
/// what translation cost the tiering spent vs avoided.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AdaptiveMetrics {
    /// Function entries executed, across all tiers. Equals
    /// `runs_tier0 + runs_tier1 + runs_tier2` (a tested invariant).
    pub total_runs: u64,
    /// Entries executed on decode-per-step (tier 0).
    pub runs_tier0: u64,
    /// Entries executed on the predecoded+fused engine (tier 1).
    pub runs_tier1: u64,
    /// Entries executed on the direct-threaded engine (tier 2).
    pub runs_tier2: u64,
    /// Tier levels gained, cumulative. Always `>= demotions`.
    pub promotions: u64,
    /// Tier levels lost to epoch-bump demotions, cumulative.
    pub demotions: u64,
    /// Nanoseconds spent translating promoted functions.
    pub translation_ns: u64,
    /// Estimated nanoseconds of translation avoided for functions that
    /// ran but were never promoted (priced at the session's observed
    /// ns/word; 0 until something has been translated).
    pub translation_ns_saved: u64,
    /// Translations built on the background worker and swapped in at a
    /// function entry (`adaptive_background` mode only).
    pub async_translations: u64,
    /// Background translations discarded on receipt because the live
    /// epoch moved between enqueue and completion.
    pub discarded_stale: u64,
    /// Total enqueue→swap-in nanoseconds across `async_translations`
    /// (latency the worker absorbed off the run loop's critical path).
    pub swap_latency_ns: u64,
}

impl AdaptiveMetrics {
    /// Fraction of function entries that ran on a translated tier.
    /// `0.0` when nothing has run (same rule as the other hit rates).
    pub fn promoted_run_rate(&self) -> f64 {
        if self.total_runs == 0 {
            0.0
        } else {
            (self.runs_tier1 + self.runs_tier2) as f64 / self.total_runs as f64
        }
    }

    /// JSON object form.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("total_runs", Json::from(self.total_runs)),
            ("runs_tier0", Json::from(self.runs_tier0)),
            ("runs_tier1", Json::from(self.runs_tier1)),
            ("runs_tier2", Json::from(self.runs_tier2)),
            ("promotions", Json::from(self.promotions)),
            ("demotions", Json::from(self.demotions)),
            ("translation_ns", Json::from(self.translation_ns)),
            (
                "translation_ns_saved",
                Json::from(self.translation_ns_saved),
            ),
            ("async_translations", Json::from(self.async_translations)),
            ("discarded_stale", Json::from(self.discarded_stale)),
            ("swap_latency_ns", Json::from(self.swap_latency_ns)),
            ("promoted_run_rate", Json::from(self.promoted_run_rate())),
        ])
    }
}

/// The unified per-phase breakdown for one session: everything from
/// source text to retired instructions.
#[derive(Clone, Debug, Default)]
pub struct SessionMetrics {
    /// Parse + semantic analysis.
    pub frontend: FrontendMetrics,
    /// Static MIR lowering and image linking.
    pub static_compile: StaticMetrics,
    /// Dynamic (run-time) compilation, accumulated over all `compile`
    /// host calls.
    pub dynamic: DynMetrics,
    /// Execution counters.
    pub vm: VmMetrics,
    /// Execution-engine translation/dispatch counters.
    pub exec: ExecMetrics,
    /// Adaptive-engine tiering counters.
    pub adaptive: AdaptiveMetrics,
    /// Compile memoization and code lifecycle (`tcc-cache`).
    pub cache: CacheMetrics,
    /// On-disk persistent artifact store (`tcc-cache` persist layer).
    pub persist: PersistMetrics,
}

impl SessionMetrics {
    /// Full JSON form — the per-session unit of the `BENCH_*.json`
    /// reports.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("frontend", self.frontend.to_json()),
            ("static", self.static_compile.to_json()),
            ("dynamic", self.dynamic.to_json()),
            ("vm", self.vm.to_json()),
            ("exec", self.exec.to_json()),
            ("adaptive", self.adaptive.to_json()),
            ("cache", self.cache.to_json()),
            ("persist", self.persist.to_json()),
        ])
    }
}

/// Break-even run count: after how many uses does paying `overhead`
/// once beat losing `per_run_gain` every run? (The paper's Figure 5
/// crossover.) `None` when the dynamic code is not actually faster.
pub fn crossover_runs(overhead: f64, per_run_gain: f64) -> Option<f64> {
    if per_run_gain > 0.0 {
        Some(overhead / per_run_gain)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_total_and_accumulate() {
        let mut a = CodegenPhases {
            peephole_ns: 1,
            flow_ns: 2,
            liveness_ns: 3,
            intervals_ns: 4,
            alloc_ns: 5,
            emit_ns: 6,
        };
        assert_eq!(a.total_ns(), 21);
        let b = a;
        a.accumulate(&b);
        assert_eq!(a.total_ns(), 42);
        assert_eq!(a.alloc_ns, 10);
        // alloc_fraction = (liveness + intervals + alloc) / total.
        let frac = a.alloc_fraction();
        assert!((frac - 24.0 / 42.0).abs() < 1e-12);
    }

    #[test]
    fn empty_session_ratios_are_zero_not_nan() {
        // Every ratio-shaped metric must report 0.0 — not NaN, not a
        // vacuous perfect score — for a session that never did the
        // thing being rated.
        assert_eq!(CodegenPhases::default().alloc_fraction(), 0.0);
        assert_eq!(DynMetrics::default().ns_per_generated_insn(), 0.0);
        assert_eq!(DynMetrics::default().cycles_per_generated_insn(2.0), 0.0);
        assert_eq!(VmMetrics::default().cycles_per_insn(), 0.0);
        assert_eq!(CacheMetrics::default().hit_rate(), 0.0);
        assert_eq!(CacheMetrics::default().fragmentation, 0.0);
        assert_eq!(ExecMetrics::default().hit_rate(), 0.0);
        assert_eq!(SharedCacheMetrics::default().hit_rate(), 0.0);
        assert_eq!(PersistMetrics::default().disk_hit_rate(), 0.0);
        assert_eq!(AdaptiveMetrics::default().promoted_run_rate(), 0.0);
        // The whole default-session JSON tree must be NaN-free (NaN
        // would serialize as a bare `NaN`, which is not valid JSON).
        let text = SessionMetrics::default().to_json().to_string();
        assert!(!text.contains("NaN"), "NaN leaked into JSON: {text}");
    }

    #[test]
    fn dyn_metrics_per_insn_guards_zero() {
        let m = DynMetrics {
            total_ns: 1000,
            generated_insns: 0,
            ..Default::default()
        };
        // max(1) guard: no division by zero.
        assert_eq!(m.ns_per_generated_insn(), 1000.0);
        let m = DynMetrics {
            total_ns: 1000,
            generated_insns: 10,
            ..Default::default()
        };
        assert_eq!(m.ns_per_generated_insn(), 100.0);
        assert_eq!(m.cycles_per_generated_insn(2.0), 50.0);
    }

    #[test]
    fn cache_hit_rate_guards_zero() {
        let m = CacheMetrics::default();
        assert_eq!(m.hit_rate(), 0.0);
        let m = CacheMetrics {
            hits: 3,
            misses: 1,
            ..Default::default()
        };
        assert_eq!(m.hit_rate(), 0.75);
        let text = m.to_json().to_string();
        for key in ["hits", "evictions", "bytes_live", "ns_saved", "hit_ns"] {
            assert!(text.contains(&format!("\"{key}\"")), "missing {key}");
        }
    }

    #[test]
    fn shared_cache_hit_rate_guards_zero() {
        let m = SharedCacheMetrics::default();
        assert_eq!(m.hit_rate(), 0.0);
        let m = SharedCacheMetrics {
            hits: 9,
            misses: 1,
            waits: 2,
            ..Default::default()
        };
        assert_eq!(m.hit_rate(), 0.9);
        let text = m.to_json().to_string();
        for key in [
            "hits",
            "misses",
            "waits",
            "published",
            "evictions",
            "invalidations",
            "uncacheable",
            "bytes_live",
            "entries",
            "hit_rate",
        ] {
            assert!(text.contains(&format!("\"{key}\"")), "missing {key}");
        }
    }

    #[test]
    fn exec_hit_rate_guards_zero() {
        // A session that never executed anything has no dispatch score
        // to report — 0.0, not a vacuous 1.0 (same rule as
        // CacheMetrics::hit_rate above).
        let m = ExecMetrics::default();
        assert_eq!(m.hit_rate(), 0.0);
        let m = ExecMetrics {
            fast_insns: 3,
            slow_insns: 1,
            ..Default::default()
        };
        assert_eq!(m.hit_rate(), 0.75);
        let text = m.to_json().to_string();
        for key in [
            "batched_blocks",
            "fuel_reconciliations",
            "handlers",
            "superinstructions",
            "dispatches",
            "fused_dispatches",
            "fused_dispatch_rate",
            "dispatches_per_insn",
        ] {
            assert!(text.contains(&format!("\"{key}\"")), "missing {key}");
        }
    }

    #[test]
    fn superinstruction_ratios_guard_zero() {
        // Zero denominators report 0.0, never NaN (PR 6 obs
        // convention): a session that never dispatched has no fused
        // share, and one that never retired fast-path instructions has
        // no dispatch density.
        let m = ExecMetrics::default();
        assert_eq!(m.fused_dispatch_rate(), 0.0);
        assert_eq!(m.dispatches_per_insn(), 0.0);
        // fused_dispatches set but dispatches == 0 (can only happen on
        // a hand-built value, but the guard must still hold).
        let m = ExecMetrics {
            fused_dispatches: 5,
            ..Default::default()
        };
        assert_eq!(m.fused_dispatch_rate(), 0.0);
        let m = ExecMetrics {
            dispatches: 8,
            fused_dispatches: 2,
            fast_insns: 16,
            ..Default::default()
        };
        assert_eq!(m.fused_dispatch_rate(), 0.25);
        assert_eq!(m.dispatches_per_insn(), 0.5);
        let text = m.to_json().to_string();
        assert!(!text.contains("NaN"), "NaN leaked into JSON: {text}");
    }

    #[test]
    fn adaptive_promoted_run_rate_guards_zero() {
        let m = AdaptiveMetrics::default();
        assert_eq!(m.promoted_run_rate(), 0.0);
        let m = AdaptiveMetrics {
            total_runs: 4,
            runs_tier0: 1,
            runs_tier1: 1,
            runs_tier2: 2,
            ..Default::default()
        };
        assert_eq!(m.promoted_run_rate(), 0.75);
        let text = m.to_json().to_string();
        for key in [
            "total_runs",
            "runs_tier0",
            "runs_tier2",
            "promotions",
            "demotions",
            "translation_ns",
            "translation_ns_saved",
            "async_translations",
            "discarded_stale",
            "swap_latency_ns",
        ] {
            assert!(text.contains(&format!("\"{key}\"")), "missing {key}");
        }
    }

    #[test]
    fn crossover_math() {
        assert_eq!(crossover_runs(1000.0, 10.0), Some(100.0));
        assert_eq!(crossover_runs(1000.0, 0.0), None);
        assert_eq!(crossover_runs(1000.0, -5.0), None);
    }

    #[test]
    fn session_metrics_json_shape() {
        let s = SessionMetrics::default();
        let j = s.to_json();
        let text = j.to_string();
        for key in [
            "frontend",
            "static",
            "dynamic",
            "vm",
            "hcalls",
            "phases",
            "exec",
            "dispatch_hit_rate",
            "adaptive",
            "promotions",
            "promoted_run_rate",
            "cache",
            "hit_rate",
            "persist",
            "disk_hit_rate",
        ] {
            assert!(
                text.contains(&format!("\"{key}\"")),
                "missing {key} in {text}"
            );
        }
    }

    #[test]
    fn persist_metrics_guard_zero() {
        let m = PersistMetrics::default();
        assert_eq!(m.disk_hit_rate(), 0.0);
        let m = PersistMetrics {
            disk_hits: 3,
            disk_misses: 1,
            ..Default::default()
        };
        assert_eq!(m.disk_hit_rate(), 0.75);
        let text = m.to_json().to_string();
        for key in [
            "disk_hits",
            "disk_misses",
            "corrupt_rejected",
            "version_rejected",
            "entries_loaded",
            "tombstones",
            "flushes",
            "bytes_flushed",
            "load_ns",
            "disk_hit_rate",
        ] {
            assert!(text.contains(&format!("\"{key}\"")), "missing {key}");
        }
        assert!(!text.contains("NaN"), "NaN leaked into JSON: {text}");
    }
}
