//! Measurement harness: runs a benchmark through every compilation path
//! and produces the numbers behind the paper's Table 1 and Figures 4-7.
//!
//! Units (see EXPERIMENTS.md): code *run time* is measured in exact VM
//! cycles under the configured cost model; *code generation* is measured
//! in host wall-clock nanoseconds and converted to equivalent VM cycles
//! with the interpreter calibration factor, so cross-over points are
//! expressed in "runs", exactly as in Figure 5.

use crate::programs::BenchDef;
use tcc::{Backend, Config, Session, Strategy};
use tcc_icode::Phases;
use tcc_mir::OptLevel;
use tcc_vm::CostModel;

/// How many fresh compiles to average code-generation cost over.
pub const COMPILE_REPS: u64 = 5;

/// Dynamic back ends measured.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DynBackend {
    /// One-pass VCODE.
    Vcode,
    /// ICODE with linear-scan allocation.
    IcodeLinear,
    /// ICODE with graph-coloring allocation.
    IcodeColor,
}

impl DynBackend {
    /// All measured back ends.
    pub const ALL: [DynBackend; 3] = [
        DynBackend::Vcode,
        DynBackend::IcodeLinear,
        DynBackend::IcodeColor,
    ];

    /// The runtime configuration for this back end.
    pub fn backend(self) -> Backend {
        match self {
            DynBackend::Vcode => Backend::Vcode { unchecked: false },
            DynBackend::IcodeLinear => Backend::Icode {
                strategy: Strategy::LinearScan,
            },
            DynBackend::IcodeColor => Backend::Icode {
                strategy: Strategy::GraphColor,
            },
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            DynBackend::Vcode => "vcode",
            DynBackend::IcodeLinear => "icode(ls)",
            DynBackend::IcodeColor => "icode(gc)",
        }
    }
}

/// Per-back-end dynamic measurements.
#[derive(Clone, Debug, Default)]
pub struct DynMeasure {
    /// Cycles per execution of the generated code.
    pub run_cycles: u64,
    /// Codegen nanoseconds per compile (averaged).
    pub codegen_ns: f64,
    /// Machine instructions generated per compile.
    pub insns: f64,
    /// CGF walk nanoseconds per compile.
    pub walk_ns: f64,
    /// ICODE phase breakdown per compile (zeros for VCODE).
    pub phases: Phases,
    /// ICODE IR instructions per compile.
    pub ir_insns: f64,
    /// Result value (for verification).
    pub result: u64,
    /// Side-effect checksum.
    pub check: u64,
}

/// Complete measurements for one benchmark.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Benchmark name.
    pub name: &'static str,
    /// Static run cycles under the lcc-like back end.
    pub static_naive_cycles: u64,
    /// Static run cycles under the gcc-like back end.
    pub static_opt_cycles: u64,
    /// Dynamic measurements: `[vcode, icode-ls, icode-gc]`.
    pub dynamic: [DynMeasure; 3],
    /// Static result value / checksum (for verification).
    pub static_result: u64,
    /// Static side-effect checksum.
    pub static_check: u64,
}

impl Measurement {
    /// Figure 4 ratio: static(naive=lcc) time over dynamic time.
    pub fn ratio_vs_naive(&self, b: DynBackend) -> f64 {
        self.static_naive_cycles as f64 / self.dynamic[b as usize].run_cycles.max(1) as f64
    }

    /// Figure 4 ratio: static(optimizing=gcc) time over dynamic time.
    pub fn ratio_vs_opt(&self, b: DynBackend) -> f64 {
        self.static_opt_cycles as f64 / self.dynamic[b as usize].run_cycles.max(1) as f64
    }

    /// Figure 5 cross-over point vs the chosen static baseline; `None`
    /// when dynamic code never pays off.
    pub fn crossover(&self, b: DynBackend, vs_opt: bool, ns_per_cycle: f64) -> Option<f64> {
        let stat = if vs_opt {
            self.static_opt_cycles
        } else {
            self.static_naive_cycles
        };
        let dynm = &self.dynamic[b as usize];
        if dynm.run_cycles >= stat {
            return None;
        }
        let codegen_cycles = dynm.codegen_ns / ns_per_cycle;
        Some(codegen_cycles / (stat - dynm.run_cycles) as f64)
    }
}

fn run_static(bench: &BenchDef, opt: OptLevel, cost: &CostModel) -> (u64, u64, u64) {
    let config = Config {
        static_opt: opt,
        backend: Backend::Vcode { unchecked: false },
        cost: cost.clone(),
        ..Config::default()
    };
    let mut s = Session::new(bench.src, config)
        .unwrap_or_else(|e| panic!("{}: front end failed: {e}", bench.name));
    (bench.setup)(&mut s);
    s.reset_counters();
    let result = (bench.run_static)(&mut s);
    let cycles = s.cycles();
    let check = (bench.check)(&mut s);
    (cycles, result, check)
}

fn run_dynamic(bench: &BenchDef, b: DynBackend, cost: &CostModel) -> DynMeasure {
    let config = Config {
        static_opt: OptLevel::Optimizing,
        backend: b.backend(),
        cost: cost.clone(),
        ..Config::default()
    };
    let mut s = Session::new(bench.src, config)
        .unwrap_or_else(|e| panic!("{}: front end failed: {e}", bench.name));
    (bench.setup)(&mut s);
    let fp = (bench.compile_dyn)(&mut s);
    for _ in 1..COMPILE_REPS {
        (bench.compile_dyn)(&mut s);
    }
    let st = s.dyn_stats().clone();
    let n = st.compiles.max(1) as f64;
    s.reset_counters();
    let result = (bench.run_dyn)(&mut s, fp);
    let run_cycles = s.cycles();
    let check = (bench.check)(&mut s);
    DynMeasure {
        run_cycles,
        codegen_ns: st.total_ns as f64 / n,
        insns: st.generated_insns as f64 / n,
        walk_ns: st.walk_ns as f64 / n,
        phases: st.phases,
        ir_insns: st.ir_insns as f64 / n,
        result,
        check,
    }
}

/// Runs one benchmark through all five compilation paths and verifies
/// that every path computes the same answer.
///
/// # Panics
///
/// Panics if any path disagrees with the static reference (correctness
/// is a precondition for the performance claims).
pub fn measure(bench: &BenchDef) -> Measurement {
    measure_with(bench, &CostModel::default())
}

/// Like [`measure`], under an explicit cycle cost model (the sensitivity
/// experiment).
///
/// # Panics
///
/// Panics if any path disagrees with the static reference.
pub fn measure_with(bench: &BenchDef, cost: &CostModel) -> Measurement {
    let (static_naive_cycles, r1, c1) = run_static(bench, OptLevel::Naive, cost);
    let (static_opt_cycles, r2, c2) = run_static(bench, OptLevel::Optimizing, cost);
    assert_eq!(r1, r2, "{}: static back ends disagree", bench.name);
    assert_eq!(
        c1, c2,
        "{}: static back ends disagree on checksum",
        bench.name
    );
    let dynamic = [
        run_dynamic(bench, DynBackend::Vcode, cost),
        run_dynamic(bench, DynBackend::IcodeLinear, cost),
        run_dynamic(bench, DynBackend::IcodeColor, cost),
    ];
    for (d, b) in dynamic.iter().zip(DynBackend::ALL) {
        assert_eq!(
            d.result,
            r1,
            "{}: dynamic ({}) result differs from static",
            bench.name,
            b.name()
        );
        assert_eq!(
            d.check,
            c1,
            "{}: dynamic ({}) checksum differs from static",
            bench.name,
            b.name()
        );
    }
    Measurement {
        name: bench.name,
        static_naive_cycles,
        static_opt_cycles,
        dynamic,
        static_result: r1,
        static_check: c1,
    }
}
