//! Table 1 micro-benchmarks: code generation overhead per generated
//! instruction in the paper's four extreme cases — {one large cspec,
//! many small cspecs} × {dynamic locals, free variables}.

use tcc::{Backend, Config, Session};
use tcc_mir::OptLevel;

use crate::measure::DynBackend;

/// One Table 1 row.
#[derive(Clone, Debug)]
pub struct MicroCase {
    /// Row label (paper's wording).
    pub label: &'static str,
    /// Generated `C source.
    pub src: String,
}

/// Builds the four Table 1 cases. `large_stmts` controls the size of the
/// "one large cspec" bodies (~4 instructions per statement; the paper
/// used ≈1000 instructions) and `compositions` the number of
/// self-compositions for the small-cspec cases (paper: 100).
pub fn table1_cases(large_stmts: usize, compositions: usize) -> Vec<MicroCase> {
    vec![
        MicroCase {
            label: "One large cspec, dynamic locals",
            src: large_cspec_src(large_stmts, false),
        },
        MicroCase {
            label: "One large cspec, free variables",
            src: large_cspec_src(large_stmts, true),
        },
        MicroCase {
            label: "Many small cspecs, dynamic locals",
            src: small_cspecs_src(compositions, false),
        },
        MicroCase {
            label: "Many small cspecs, free variables",
            src: small_cspecs_src(compositions, true),
        },
    ]
}

/// A single tick expression whose body is a long chain of statements.
fn large_cspec_src(stmts: usize, free_vars: bool) -> String {
    let mut body = String::new();
    for i in 0..stmts {
        // alternate the accumulators so the chain isn't trivially foldable
        let (d, s1) = if i % 2 == 0 { ("a", "b") } else { ("b", "a") };
        body.push_str(&format!("        {d} = {d} * 3 + {s1} + {};\n", i % 7 + 1));
    }
    if free_vars {
        format!(
            r#"
long micro_compile(void) {{
    int a = 1;
    int b = 2;
    void cspec c = `{{
{body}        return a + b;
    }};
    return (long)compile(c, int);
}}
"#
        )
    } else {
        format!(
            r#"
long micro_compile(void) {{
    void cspec c = `{{
        int a;
        int b;
        a = 1;
        b = 2;
{body}        return a + b;
    }};
    return (long)compile(c, int);
}}
"#
        )
    }
}

/// A small cspec (one composition + one addition) composed `n` times
/// with itself.
fn small_cspecs_src(n: usize, free_vars: bool) -> String {
    if free_vars {
        format!(
            r#"
long micro_compile(void) {{
    int x = 1;
    int cspec c = `(x + 1);
    int i;
    for (i = 0; i < {n}; i++) c = `(c + x + 1);
    return (long)compile(c, int);
}}
"#
        )
    } else {
        format!(
            r#"
long micro_compile(void) {{
    int vspec x = local(int);
    int cspec c = `(x + 1);
    int i;
    for (i = 0; i < {n}; i++) c = `(c + x + 1);
    return (long)compile(c, int);
}}
"#
        )
    }
}

/// Measured overheads for one case and back end.
#[derive(Clone, Copy, Debug)]
pub struct MicroResult {
    /// Nanoseconds of codegen per generated instruction.
    pub ns_per_insn: f64,
    /// Calibrated cycles per generated instruction.
    pub cycles_per_insn: f64,
    /// Generated instructions per compile.
    pub insns: f64,
}

/// Measures codegen cost per generated instruction for a case.
pub fn measure_micro(case: &MicroCase, b: DynBackend, ns_per_cycle: f64) -> MicroResult {
    measure_micro_backend(case, b.backend(), ns_per_cycle)
}

/// Like [`measure_micro`], for an arbitrary runtime [`Backend`]
/// configuration — the JSON Table 1 also reports VCODE's unchecked
/// mode, which [`DynBackend`] (the three standard measurement paths)
/// does not cover.
pub fn measure_micro_backend(case: &MicroCase, backend: Backend, ns_per_cycle: f64) -> MicroResult {
    let config = Config {
        static_opt: OptLevel::Optimizing,
        backend,
        ..Config::default()
    };
    let mut s = Session::new(&case.src, config)
        .unwrap_or_else(|e| panic!("micro case failed to compile: {e}"));
    let reps = 10;
    for _ in 0..reps {
        s.call("micro_compile", &[]).expect("compiles");
    }
    let st = s.dyn_stats();
    let ns = st.total_ns as f64 / st.compiles as f64;
    let insns = st.generated_insns as f64 / st.compiles as f64;
    MicroResult {
        ns_per_insn: ns / insns.max(1.0),
        cycles_per_insn: ns / insns.max(1.0) / ns_per_cycle,
        insns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn micro_sources_compile_and_run() {
        let cases = table1_cases(50, 10);
        // The two large-cspec variants compute the same statement chain
        // on (a=1, b=2); verify the value. The small-composition
        // variants read an uninitialized vspec by design (the paper's
        // composition stress test); just verify they compile and run.
        let expect = {
            let (mut a, mut b) = (1i32, 2i32);
            for i in 0..50 {
                if i % 2 == 0 {
                    a = a.wrapping_mul(3).wrapping_add(b).wrapping_add(i % 7 + 1);
                } else {
                    b = b.wrapping_mul(3).wrapping_add(a).wrapping_add(i % 7 + 1);
                }
            }
            a.wrapping_add(b)
        };
        for (ci, case) in cases.iter().enumerate() {
            for b in [DynBackend::Vcode, DynBackend::IcodeLinear] {
                let config = Config {
                    backend: b.backend(),
                    ..Config::default()
                };
                let mut s = Session::new(&case.src, config).expect("compiles");
                let fp = s.call("micro_compile", &[]).expect("runs");
                let v = s.call_addr(fp, &[]).expect("generated code runs");
                if ci < 2 {
                    assert_eq!(v as i64, expect as i64, "{} / {}", case.label, b.name());
                }
            }
        }
    }

    #[test]
    fn small_composition_chains_work() {
        // c composed n times: value = (x+1) + n*(x+1) with x = 5? No:
        // c0 = x+1; c_{k} = c_{k-1} + x + 1. With x bound at run time.
        let case = &table1_cases(10, 25)[2]; // dynamic locals variant
        let mut s = Session::with_defaults(&case.src).expect("compiles");
        let fp = s.call("micro_compile", &[]).expect("compile runs");
        let v = s.call_addr(fp, &[7]).expect("generated code runs");
        // x is param-like? No: vspec local, uninitialized. The dynamic
        // local variant returns garbage-based math; just check it runs.
        let _ = v;
    }
}
