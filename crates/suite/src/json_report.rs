//! Machine-readable reports: the same numbers the text printers in
//! [`crate::report`] format, emitted as JSON (`BENCH_table1.json`,
//! `BENCH_figure4.json`, ...) so downstream tooling can track the
//! reproduction's results without scraping tables.
//!
//! Every document carries `experiment` (which table/figure of the paper
//! it reproduces), `ns_per_cycle` where a calibration was used, and a
//! `rows` array with one object per benchmark.

use crate::measure::{DynBackend, Measurement, COMPILE_REPS};
use crate::micro::{measure_micro_backend, table1_cases, MicroResult};
use tcc::{Backend, Strategy};
use tcc_obs::json::Json;

/// The four Table 1 back-end configurations, with stable JSON keys.
fn table1_backends() -> [(&'static str, Backend); 4] {
    [
        ("vcode", Backend::Vcode { unchecked: false }),
        ("vcode_unchecked", Backend::Vcode { unchecked: true }),
        (
            "icode_linear_scan",
            Backend::Icode {
                strategy: Strategy::LinearScan,
            },
        ),
        (
            "icode_graph_color",
            Backend::Icode {
                strategy: Strategy::GraphColor,
            },
        ),
    ]
}

fn micro_json(r: &MicroResult) -> Json {
    Json::obj(vec![
        ("cycles_per_generated_insn", Json::from(r.cycles_per_insn)),
        ("ns_per_generated_insn", Json::from(r.ns_per_insn)),
        ("generated_insns_per_compile", Json::from(r.insns)),
    ])
}

/// Table 1 as JSON: codegen overhead in cycles per generated
/// instruction, four extreme cases × four back-end configurations
/// (VCODE, VCODE-unchecked, ICODE linear scan, ICODE graph coloring).
pub fn table1_json(ns_per_cycle: f64, large_stmts: usize, compositions: usize) -> Json {
    let rows: Vec<Json> = table1_cases(large_stmts, compositions)
        .iter()
        .map(|case| {
            let backends: Vec<(String, Json)> = table1_backends()
                .into_iter()
                .map(|(key, backend)| {
                    let r = measure_micro_backend(case, backend, ns_per_cycle);
                    (key.to_string(), micro_json(&r))
                })
                .collect();
            Json::obj(vec![
                ("benchmark", Json::from(case.label)),
                ("backends", Json::Obj(backends)),
            ])
        })
        .collect();
    Json::obj(vec![
        ("experiment", Json::from("table1")),
        (
            "description",
            Json::from("code generation overhead per generated instruction"),
        ),
        ("ns_per_cycle", Json::from(ns_per_cycle)),
        ("rows", Json::Arr(rows)),
    ])
}

/// Figure 4 as JSON: speedup of dynamic over static code, per benchmark
/// and back end, against both static baselines.
pub fn figure4_json(ms: &[Measurement]) -> Json {
    let rows: Vec<Json> = ms
        .iter()
        .map(|m| {
            Json::obj(vec![
                ("benchmark", Json::from(m.name)),
                ("static_naive_cycles", Json::from(m.static_naive_cycles)),
                ("static_opt_cycles", Json::from(m.static_opt_cycles)),
                (
                    "speedup",
                    Json::obj(vec![
                        (
                            "vcode_vs_lcc",
                            Json::from(m.ratio_vs_naive(DynBackend::Vcode)),
                        ),
                        (
                            "icode_vs_lcc",
                            Json::from(m.ratio_vs_naive(DynBackend::IcodeLinear)),
                        ),
                        (
                            "vcode_vs_gcc",
                            Json::from(m.ratio_vs_opt(DynBackend::Vcode)),
                        ),
                        (
                            "icode_vs_gcc",
                            Json::from(m.ratio_vs_opt(DynBackend::IcodeLinear)),
                        ),
                    ]),
                ),
            ])
        })
        .collect();
    Json::obj(vec![
        ("experiment", Json::from("figure4")),
        (
            "description",
            Json::from("ratio of static to dynamic run time"),
        ),
        ("rows", Json::Arr(rows)),
    ])
}

/// Figure 5 as JSON: cross-over points in runs (`null` = dynamic code
/// never pays off against that baseline).
pub fn figure5_json(ms: &[Measurement], ns_per_cycle: f64) -> Json {
    let rows: Vec<Json> = ms
        .iter()
        .map(|m| {
            Json::obj(vec![
                ("benchmark", Json::from(m.name)),
                (
                    "crossover_runs",
                    Json::obj(vec![
                        (
                            "vcode_vs_lcc",
                            Json::from(m.crossover(DynBackend::Vcode, false, ns_per_cycle)),
                        ),
                        (
                            "icode_vs_lcc",
                            Json::from(m.crossover(DynBackend::IcodeLinear, false, ns_per_cycle)),
                        ),
                        (
                            "vcode_vs_gcc",
                            Json::from(m.crossover(DynBackend::Vcode, true, ns_per_cycle)),
                        ),
                        (
                            "icode_vs_gcc",
                            Json::from(m.crossover(DynBackend::IcodeLinear, true, ns_per_cycle)),
                        ),
                    ]),
                ),
            ])
        })
        .collect();
    Json::obj(vec![
        ("experiment", Json::from("figure5")),
        (
            "description",
            Json::from("runs needed to amortize dynamic code generation"),
        ),
        ("ns_per_cycle", Json::from(ns_per_cycle)),
        ("rows", Json::Arr(rows)),
    ])
}

/// Figure 6 as JSON: VCODE codegen cost per benchmark.
pub fn figure6_json(ms: &[Measurement], ns_per_cycle: f64) -> Json {
    let rows: Vec<Json> = ms
        .iter()
        .map(|m| {
            let d = &m.dynamic[DynBackend::Vcode as usize];
            let per = d.codegen_ns / d.insns.max(1.0);
            Json::obj(vec![
                ("benchmark", Json::from(m.name)),
                ("generated_insns_per_compile", Json::from(d.insns)),
                ("ns_per_generated_insn", Json::from(per)),
                ("cycles_per_generated_insn", Json::from(per / ns_per_cycle)),
            ])
        })
        .collect();
    Json::obj(vec![
        ("experiment", Json::from("figure6")),
        (
            "description",
            Json::from("VCODE dynamic compilation cost per generated instruction"),
        ),
        ("ns_per_cycle", Json::from(ns_per_cycle)),
        ("rows", Json::Arr(rows)),
    ])
}

/// Figure 7 as JSON: ICODE codegen cost breakdown (cycles per generated
/// instruction per phase), linear scan vs graph coloring.
pub fn figure7_json(ms: &[Measurement], ns_per_cycle: f64) -> Json {
    let rows: Vec<Json> = ms
        .iter()
        .map(|m| {
            let allocators: Vec<(String, Json)> = [
                (DynBackend::IcodeLinear, "linear_scan"),
                (DynBackend::IcodeColor, "graph_color"),
            ]
            .into_iter()
            .map(|(b, key)| {
                let d = &m.dynamic[b as usize];
                let per = |ns: f64| ns / d.insns.max(1.0) / ns_per_cycle;
                let compiles = COMPILE_REPS as f64;
                let ph = &d.phases;
                let flow = ph.flow_ns as f64 / compiles;
                let live = (ph.liveness_ns + ph.intervals_ns) as f64 / compiles;
                let alloc = ph.alloc_ns as f64 / compiles;
                let emit = (ph.emit_ns + ph.peephole_ns) as f64 / compiles;
                let total = d.codegen_ns;
                let breakdown = Json::obj(vec![
                    ("walk_and_ir", Json::from(per(d.walk_ns))),
                    ("flow", Json::from(per(flow))),
                    ("liveness", Json::from(per(live))),
                    ("alloc", Json::from(per(alloc))),
                    ("emit", Json::from(per(emit))),
                    ("total", Json::from(per(total))),
                    (
                        "alloc_fraction",
                        Json::from((live + alloc) / total.max(1.0)),
                    ),
                ]);
                (key.to_string(), breakdown)
            })
            .collect();
            Json::obj(vec![
                ("benchmark", Json::from(m.name)),
                ("cycles_per_generated_insn", Json::Obj(allocators)),
            ])
        })
        .collect();
    Json::obj(vec![
        ("experiment", Json::from("figure7")),
        (
            "description",
            Json::from("ICODE dynamic compilation cost breakdown"),
        ),
        ("ns_per_cycle", Json::from(ns_per_cycle)),
        ("rows", Json::Arr(rows)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::measure;
    use crate::programs::{benchmarks, BLUR_SMALL};

    fn one_measurement() -> Measurement {
        let b = benchmarks(BLUR_SMALL)
            .into_iter()
            .find(|b| b.name == "pow")
            .expect("pow bench");
        measure(&b)
    }

    #[test]
    fn table1_json_has_all_four_backends() {
        let j = table1_json(1.0, 20, 8);
        let text = j.to_string();
        for key in [
            "vcode",
            "vcode_unchecked",
            "icode_linear_scan",
            "icode_graph_color",
        ] {
            assert!(
                text.contains(&format!("\"{key}\"")),
                "missing backend {key}"
            );
        }
        assert!(text.contains("\"cycles_per_generated_insn\""));
        // Four rows: {large, small} x {dynamic locals, free variables}.
        assert_eq!(text.matches("\"benchmark\"").count(), 4);
    }

    #[test]
    fn figure_jsons_cover_each_measurement() {
        let ms = vec![one_measurement()];
        for (j, needle) in [
            (figure4_json(&ms), "\"speedup\""),
            (figure5_json(&ms, 1.0), "\"crossover_runs\""),
            (figure6_json(&ms, 1.0), "\"ns_per_generated_insn\""),
            (figure7_json(&ms, 1.0), "\"alloc_fraction\""),
        ] {
            let text = j.to_string();
            assert!(text.contains("\"pow\""), "missing benchmark name in {text}");
            assert!(text.contains(needle), "missing {needle} in {text}");
        }
    }
}
