//! Benchmark regression gate: compare a freshly generated
//! `BENCH_exec.json` against the committed baseline in `baselines/`.
//!
//! The gate reads only the files this suite itself writes
//! ([`crate::exec_json`] serialized with `Json::pretty`), so a tiny
//! line-oriented scanner suffices — one `"key": value` pair per line,
//! rows delimited by their `"name"` keys. No general JSON parser is
//! needed (and the workspace deliberately has no serde dependency).
//!
//! Wall-clock nanoseconds are machine- and load-dependent, so the gate
//! compares *speedups* (ratios of engines run back-to-back on the same
//! machine), which are stable. The CI contract: for every kernel, none
//! of the gated speedup columns ([`GATED_COLUMNS`]: fused, threaded,
//! adaptive) may regress more than [`DEFAULT_TOLERANCE`] below the
//! committed baseline. A baseline written before a column existed
//! stores no value for it; such columns are reported as warnings and
//! skipped rather than gated, so an old `BENCH_exec.json` never turns
//! into a spurious CI failure.

use std::collections::BTreeMap;

/// Maximum tolerated relative drop in a gated speedup column (0.30 =
/// fresh may be at worst 30% below baseline).
pub const DEFAULT_TOLERANCE: f64 = 0.30;

/// One gated speedup column: its JSON key and row accessor.
pub type GatedColumn = (&'static str, fn(&CheckRow) -> f64);

/// The speedup columns the gate guards, as (key, accessor) pairs. Every
/// column is held to the same relative tolerance; a baseline value of
/// zero means the column predates the baseline and is warned about
/// instead of gated.
pub const GATED_COLUMNS: [GatedColumn; 3] = [
    ("speedup_fused", |r| r.speedup_fused),
    ("speedup_threaded", |r| r.speedup_threaded),
    ("speedup_adaptive", |r| r.speedup_adaptive),
];

/// The per-kernel fields the gate reads from `BENCH_exec.json`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CheckRow {
    /// Kernel name.
    pub name: String,
    /// Predecoded+fused speedup over decode-per-step (gated).
    pub speedup_fused: f64,
    /// Direct-threaded speedup over decode-per-step (gated).
    pub speedup_threaded: f64,
    /// Adaptive-tiering speedup over decode-per-step (gated; 0.0 when
    /// the file predates the adaptive engine).
    pub speedup_adaptive: f64,
    /// Threaded-over-fused ratio (reported).
    pub speedup_threaded_vs_fused: f64,
    /// ICODE fusion-aware scheduler pair gain (reported).
    pub fused_pairs_icode_delta: i64,
}

/// Extracts one `"key": value` pair from a pretty-printed JSON line.
/// Returns `None` for structural lines (braces, brackets).
fn key_value(line: &str) -> Option<(&str, &str)> {
    let line = line.trim().trim_end_matches(',');
    let rest = line.strip_prefix('"')?;
    let (key, rest) = rest.split_once('"')?;
    let value = rest.strip_prefix(':')?.trim();
    Some((key, value))
}

/// Scans the text of a `BENCH_exec.json` for its per-kernel rows.
/// Unknown keys are ignored; a new row starts at each `"name"`.
pub fn parse_exec_rows(text: &str) -> Vec<CheckRow> {
    let mut rows: Vec<CheckRow> = Vec::new();
    for line in text.lines() {
        let Some((key, value)) = key_value(line) else {
            continue;
        };
        if key == "name" {
            let name = value.trim_matches('"').to_string();
            // The top-level "experiment"/"description" strings never
            // use the key "name", so every hit opens a kernel row.
            rows.push(CheckRow {
                name,
                ..CheckRow::default()
            });
            continue;
        }
        let Some(row) = rows.last_mut() else { continue };
        match key {
            "speedup_fused" => row.speedup_fused = value.parse().unwrap_or(0.0),
            "speedup_threaded" => row.speedup_threaded = value.parse().unwrap_or(0.0),
            "speedup_adaptive" => row.speedup_adaptive = value.parse().unwrap_or(0.0),
            "speedup_threaded_vs_fused" => {
                row.speedup_threaded_vs_fused = value.parse().unwrap_or(0.0);
            }
            "fused_pairs_icode_delta" => {
                row.fused_pairs_icode_delta = value.parse().unwrap_or(0);
            }
            _ => {}
        }
    }
    rows
}

/// Compares fresh exec-bench results against a baseline. Returns a
/// human-readable report on success, or a description of every
/// violated bound on failure. A kernel fails when any gated speedup
/// column ([`GATED_COLUMNS`]) drops more than `tolerance` (relative)
/// below its baseline value; kernels present in the baseline but
/// missing from the fresh run also fail. Fresh kernels without a
/// baseline pass (they are new) and are noted in the report, as are
/// gated columns the baseline does not carry yet (value 0.0 — e.g. a
/// pre-adaptive `BENCH_exec.json`), which are warned about and
/// skipped.
///
/// # Errors
///
/// A multi-line description of every regression found.
pub fn check_exec(baseline: &str, fresh: &str, tolerance: f64) -> Result<String, String> {
    let base: BTreeMap<String, CheckRow> = parse_exec_rows(baseline)
        .into_iter()
        .map(|r| (r.name.clone(), r))
        .collect();
    let fresh_rows = parse_exec_rows(fresh);
    if fresh_rows.is_empty() {
        return Err("fresh BENCH_exec.json has no kernel rows".into());
    }
    let fresh_names: Vec<&str> = fresh_rows.iter().map(|r| r.name.as_str()).collect();
    let mut report = String::from(
        "exec-check: fresh speedups vs committed baseline\n\
         \n  bench     fused(base)  fused(fresh)   thread(fresh)  adapt(fresh)  t/f     icodeD\n",
    );
    let mut warnings = String::new();
    let mut failures = String::new();
    for f in &fresh_rows {
        let b = base.get(&f.name);
        let base_fused = b.map_or(0.0, |b| b.speedup_fused);
        report.push_str(&format!(
            "  {:7}   {:9.2}x   {:10.2}x   {:11.2}x  {:10.2}x  {:5.2}x   {:+5}{}\n",
            f.name,
            base_fused,
            f.speedup_fused,
            f.speedup_threaded,
            f.speedup_adaptive,
            f.speedup_threaded_vs_fused,
            f.fused_pairs_icode_delta,
            if b.is_none() { "   (no baseline)" } else { "" },
        ));
        let Some(b) = b else { continue };
        for (key, column) in GATED_COLUMNS {
            let base_value = column(b);
            if base_value == 0.0 {
                warnings.push_str(&format!(
                    "  warning: baseline has no {key} for {} (pre-{key} file?) — not gated\n",
                    f.name,
                ));
                continue;
            }
            let floor = base_value * (1.0 - tolerance);
            if column(f) < floor {
                failures.push_str(&format!(
                    "  {}: {key} {:.2}x regressed below {:.2}x \
                     (baseline {:.2}x - {:.0}% tolerance)\n",
                    f.name,
                    column(f),
                    floor,
                    base_value,
                    tolerance * 100.0,
                ));
            }
        }
    }
    for name in base.keys() {
        if !fresh_names.contains(&name.as_str()) {
            failures.push_str(&format!(
                "  {name}: present in baseline, missing from fresh run\n"
            ));
        }
    }
    if !warnings.is_empty() {
        report.push_str(&format!("\n{warnings}"));
    }
    if failures.is_empty() {
        Ok(report)
    } else {
        Err(format!("{report}\nREGRESSIONS:\n{failures}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec_bench::ExecBenchRow;
    use crate::exec_json;

    fn sample_row(name: &'static str, decode_ns: u64, fused_ns: u64) -> ExecBenchRow {
        engines_row(name, decode_ns, fused_ns, fused_ns / 2, fused_ns)
    }

    /// A row with every engine's wall-clock pinned independently, so
    /// tests can regress one gated column at a time.
    fn engines_row(
        name: &'static str,
        decode_ns: u64,
        fused_ns: u64,
        threaded_ns: u64,
        adaptive_ns: u64,
    ) -> ExecBenchRow {
        ExecBenchRow {
            name,
            reps: 10,
            decode_ns,
            predecoded_ns: fused_ns + 100,
            fused_ns,
            threaded_ns,
            adaptive_ns,
            promotions: 4,
            cycles: 1000,
            insns: 900,
            fused_pairs: 12,
            hit_rate: 1.0,
            batched_blocks: 40,
            fused_pairs_icode: 9,
            fused_pairs_icode_unsched: 7,
        }
    }

    #[test]
    fn roundtrips_through_the_emitted_json() {
        let rows = vec![sample_row("hash", 4000, 1000), sample_row("ms", 9000, 2000)];
        let text = exec_json(&rows).pretty();
        let parsed = parse_exec_rows(&text);
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].name, "hash");
        assert!((parsed[0].speedup_fused - 4.0).abs() < 1e-9);
        assert!((parsed[1].speedup_threaded - 9.0).abs() < 1e-9);
        assert!((parsed[0].speedup_threaded_vs_fused - 2.0).abs() < 1e-9);
        assert_eq!(parsed[0].fused_pairs_icode_delta, 2);
    }

    #[test]
    fn passes_within_tolerance_and_reports() {
        let base = exec_json(&[sample_row("hash", 4000, 1000)]).pretty();
        // 4.0x baseline; fresh 3.2x is a 20% drop — inside 30%.
        let fresh = exec_json(&[sample_row("hash", 3200, 1000)]).pretty();
        let report = check_exec(&base, &fresh, DEFAULT_TOLERANCE).expect("within tolerance");
        assert!(report.contains("hash"));
    }

    #[test]
    fn fails_beyond_tolerance() {
        let base = exec_json(&[sample_row("hash", 4000, 1000)]).pretty();
        // Fresh 2.0x vs baseline 4.0x: a 50% drop.
        let fresh = exec_json(&[sample_row("hash", 2000, 1000)]).pretty();
        let err = check_exec(&base, &fresh, DEFAULT_TOLERANCE).expect_err("regression");
        assert!(err.contains("REGRESSIONS"), "{err}");
        assert!(err.contains("hash"), "{err}");
    }

    #[test]
    fn fails_on_missing_kernel_and_tolerates_new_ones() {
        let base = exec_json(&[sample_row("hash", 4000, 1000)]).pretty();
        let fresh = exec_json(&[sample_row("ms", 4000, 1000)]).pretty();
        let err = check_exec(&base, &fresh, DEFAULT_TOLERANCE).expect_err("missing kernel");
        assert!(err.contains("missing from fresh run"), "{err}");
        // A fresh-only kernel alone is fine when the baseline is empty.
        let empty = exec_json(&[]).pretty();
        assert!(check_exec(&empty, &fresh, DEFAULT_TOLERANCE).is_ok());
    }

    #[test]
    fn fails_when_only_the_threaded_column_regresses() {
        // fused and adaptive hold steady; threaded alone drops from
        // 8.0x to 2.0x. The old single-column gate shipped this bug
        // through silently.
        let base = exec_json(&[engines_row("hash", 4000, 1000, 500, 1000)]).pretty();
        let fresh = exec_json(&[engines_row("hash", 4000, 1000, 2000, 1000)]).pretty();
        let err = check_exec(&base, &fresh, DEFAULT_TOLERANCE).expect_err("threaded regression");
        assert!(err.contains("speedup_threaded"), "{err}");
        assert!(!err.contains("speedup_fused 4"), "{err}");
    }

    #[test]
    fn fails_when_only_the_adaptive_column_regresses() {
        // adaptive alone drops from 4.0x to 1.0x (>30%).
        let base = exec_json(&[engines_row("hash", 4000, 1000, 500, 1000)]).pretty();
        let fresh = exec_json(&[engines_row("hash", 4000, 1000, 500, 4000)]).pretty();
        let err = check_exec(&base, &fresh, DEFAULT_TOLERANCE).expect_err("adaptive regression");
        assert!(err.contains("speedup_adaptive"), "{err}");
    }

    #[test]
    fn baseline_without_adaptive_column_warns_instead_of_failing() {
        // A pre-adaptive baseline: strip the adaptive lines from the
        // emitted JSON, as if the file had been written before the
        // column existed. Even a fresh adaptive value far below the
        // others must pass — with a warning — because there is nothing
        // to gate against.
        let base: String = exec_json(&[engines_row("hash", 4000, 1000, 500, 1000)])
            .pretty()
            .lines()
            .filter(|l| !l.contains("adaptive"))
            .collect::<Vec<_>>()
            .join("\n");
        assert!(!base.contains("speedup_adaptive"));
        let fresh = exec_json(&[engines_row("hash", 4000, 1000, 500, 40000)]).pretty();
        let report = check_exec(&base, &fresh, DEFAULT_TOLERANCE).expect("warns, not fails");
        assert!(
            report.contains("warning: baseline has no speedup_adaptive"),
            "{report}"
        );
    }

    #[test]
    fn empty_fresh_is_an_error() {
        let base = exec_json(&[sample_row("hash", 4000, 1000)]).pretty();
        assert!(check_exec(&base, "{}", DEFAULT_TOLERANCE).is_err());
    }
}
