//! Benchmark regression gate: compare a freshly generated
//! `BENCH_exec.json` (and, when present, `BENCH_adaptive.json`)
//! against the committed baselines in `baselines/`.
//!
//! The gate reads only the files this suite itself writes
//! ([`crate::exec_json`] serialized with `Json::pretty`), so a tiny
//! line-oriented scanner suffices — one `"key": value` pair per line,
//! rows delimited by their `"name"` keys. No general JSON parser is
//! needed (and the workspace deliberately has no serde dependency).
//!
//! Wall-clock nanoseconds are machine- and load-dependent, so the gate
//! compares *speedups* (ratios of engines run back-to-back on the same
//! machine), which are stable. The CI contract: for every kernel, none
//! of the gated speedup columns ([`GATED_COLUMNS`]: fused, threaded,
//! adaptive) may regress more than [`DEFAULT_TOLERANCE`] below the
//! committed baseline. A baseline written before a column existed
//! stores no value for it; such columns are reported as warnings and
//! skipped rather than gated, so an old `BENCH_exec.json` never turns
//! into a spurious CI failure.
//!
//! [`check_adaptive`] applies the same discipline to the tiering
//! pipeline's tail-latency column: per (kernel, reuse) row, the fresh
//! `tail_p99_improvement` (cold per-run p99 of the synchronous
//! adaptive engine over the background worker's — another same-machine
//! ratio) may not drop more than the tolerance below the baseline
//! (callers pass the looser [`TAIL_TOLERANCE`] here — p99 ratios are
//! noisier than min-estimator speedups), and a baseline value of 0.0
//! (file predating the tail columns) is warned about and skipped.
//!
//! Note the gate checks the tail ratio for *consistency*, not for
//! being above 1.0: whether the background worker actually beats the
//! synchronous engine at a given (kernel, reuse) point depends on the
//! host. On a single-CPU machine the worker time-shares the core with
//! the VM and the ratio sits below 1 for short loop kernels; it
//! crosses 1 where translation cost dominates run cost (the `straight`
//! kernel at low reuse) or when a spare hardware thread exists. The
//! committed baseline records this machine's measured ratios and the
//! gate catches relative regressions either way.

use std::collections::BTreeMap;

/// Maximum tolerated relative drop in a gated speedup column (0.30 =
/// fresh may be at worst 30% below baseline).
pub const DEFAULT_TOLERANCE: f64 = 0.30;

/// Tolerance for the adaptive tail gate. Looser than
/// [`DEFAULT_TOLERANCE`]: the speedup columns divide min-estimator
/// numbers (noise only ever adds time, so the min converges), but a
/// p99-over-p99 ratio keeps the tail noise on both sides by
/// construction, and single runs are microseconds long. The ratio is
/// still same-machine-stable enough to catch a real pipeline
/// regression (e.g. losing the mid-run swap point roughly halves it).
pub const TAIL_TOLERANCE: f64 = 0.50;

/// Floor the serve gate holds the largest pool's shared-cache hit
/// rate to, regardless of baseline: a hot Zipfian working set that
/// stops hitting means artifact sharing itself broke.
pub const SERVE_MIN_HIT_RATE: f64 = 0.90;

/// Tolerance for the serve p99 gate, looser still than
/// [`TAIL_TOLERANCE`]. The serve replay's p99 is bimodal by
/// construction: a few percent of requests carry a compile (cache
/// misses plus churn recompiles), so the 1% boundary lands on the
/// compile-latency cliff and shifts by 3–4x between idle and loaded
/// runs of identical code. A 75% tolerance (fresh p99 up to 4x the
/// baseline) still catches a real tail pathology — a lost in-flight
/// wait or a lock held across compilation inflates the tail by an
/// order of magnitude — without tripping on scheduler noise.
pub const SERVE_TAIL_TOLERANCE: f64 = 0.75;

/// Absolute floor the persist gate holds every kernel's warm-start
/// speedup to, regardless of baseline: the issue's acceptance bar is
/// that a warm restart's compile path (disk load + install) costs at
/// least 5x less than re-running the CGF. Falling below this means
/// either the store stopped answering (disk misses recompile) or loads
/// became as expensive as compiles.
pub const PERSIST_MIN_SPEEDUP: f64 = 5.0;

/// The unified gate-failure diagnostic: one line naming the row (the
/// kernel, sweep cell, or pool), the gated column, the observed value,
/// the floor it fell below, the baseline, and the tolerance that
/// produced the floor. Every gate in this module (exec speedups,
/// adaptive tails, serve ratios) reports violations through this one
/// formatter, so CI logs stay uniformly grep-able.
pub fn gate_failure_line(row: &str, key: &str, observed: f64, base: f64, tolerance: f64) -> String {
    let floor = base * (1.0 - tolerance);
    format!(
        "  {row}: {key} {observed:.2}x regressed below {floor:.2}x \
         (baseline {base:.2}x - {:.0}% tolerance)\n",
        tolerance * 100.0,
    )
}

/// Companion diagnostic for rows that vanished from the fresh run.
pub fn missing_row_line(row: &str) -> String {
    format!("  {row}: present in baseline, missing from fresh run\n")
}

/// One gated speedup column: its JSON key and row accessor.
pub type GatedColumn = (&'static str, fn(&CheckRow) -> f64);

/// The speedup columns the gate guards, as (key, accessor) pairs. Every
/// column is held to the same relative tolerance; a baseline value of
/// zero means the column predates the baseline and is warned about
/// instead of gated.
///
/// `dispatch_reduction` is the superinstruction gate: the reciprocal of
/// the threaded engine's dispatches-per-insn ratio (instructions
/// retired per dispatch-loop iteration), so "higher is better" holds
/// like the speedup columns and the same relative-drop floor applies.
/// Losing superinstruction or run-batching coverage raises
/// dispatches-per-insn toward 1.0 and drops this column. A baseline
/// written before the column existed parses as 0.0 and is warned about
/// and skipped, like every other gated column.
pub const GATED_COLUMNS: [GatedColumn; 4] = [
    ("speedup_fused", |r| r.speedup_fused),
    ("speedup_threaded", |r| r.speedup_threaded),
    ("speedup_adaptive", |r| r.speedup_adaptive),
    ("dispatch_reduction", CheckRow::dispatch_reduction),
];

/// The per-kernel fields the gate reads from `BENCH_exec.json`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CheckRow {
    /// Kernel name.
    pub name: String,
    /// Predecoded+fused speedup over decode-per-step (gated).
    pub speedup_fused: f64,
    /// Direct-threaded speedup over decode-per-step (gated).
    pub speedup_threaded: f64,
    /// Adaptive-tiering speedup over decode-per-step (gated; 0.0 when
    /// the file predates the adaptive engine).
    pub speedup_adaptive: f64,
    /// Threaded-over-fused ratio (reported).
    pub speedup_threaded_vs_fused: f64,
    /// ICODE fusion-aware scheduler pair gain (reported).
    pub fused_pairs_icode_delta: i64,
    /// Threaded dispatch-loop iterations per retired instruction
    /// (gated through [`CheckRow::dispatch_reduction`]; 0.0 when the
    /// file predates the superinstruction columns).
    pub dispatches_per_insn: f64,
}

impl CheckRow {
    /// Instructions retired per threaded dispatch — the reciprocal of
    /// `dispatches_per_insn`, so that bigger means more dispatch
    /// reduction and the standard "may not drop below baseline ×
    /// (1 − tolerance)" gate applies. 0.0 (warn-and-skip) when the
    /// column is absent.
    pub fn dispatch_reduction(&self) -> f64 {
        if self.dispatches_per_insn <= 0.0 {
            0.0
        } else {
            1.0 / self.dispatches_per_insn
        }
    }
}

/// Extracts one `"key": value` pair from a pretty-printed JSON line.
/// Returns `None` for structural lines (braces, brackets).
fn key_value(line: &str) -> Option<(&str, &str)> {
    let line = line.trim().trim_end_matches(',');
    let rest = line.strip_prefix('"')?;
    let (key, rest) = rest.split_once('"')?;
    let value = rest.strip_prefix(':')?.trim();
    Some((key, value))
}

/// Scans the text of a `BENCH_exec.json` for its per-kernel rows.
/// Unknown keys are ignored; a new row starts at each `"name"`.
pub fn parse_exec_rows(text: &str) -> Vec<CheckRow> {
    let mut rows: Vec<CheckRow> = Vec::new();
    for line in text.lines() {
        let Some((key, value)) = key_value(line) else {
            continue;
        };
        if key == "name" {
            let name = value.trim_matches('"').to_string();
            // The top-level "experiment"/"description" strings never
            // use the key "name", so every hit opens a kernel row.
            rows.push(CheckRow {
                name,
                ..CheckRow::default()
            });
            continue;
        }
        let Some(row) = rows.last_mut() else { continue };
        match key {
            "speedup_fused" => row.speedup_fused = value.parse().unwrap_or(0.0),
            "speedup_threaded" => row.speedup_threaded = value.parse().unwrap_or(0.0),
            "speedup_adaptive" => row.speedup_adaptive = value.parse().unwrap_or(0.0),
            "speedup_threaded_vs_fused" => {
                row.speedup_threaded_vs_fused = value.parse().unwrap_or(0.0);
            }
            "fused_pairs_icode_delta" => {
                row.fused_pairs_icode_delta = value.parse().unwrap_or(0);
            }
            "dispatches_per_insn" => {
                row.dispatches_per_insn = value.parse().unwrap_or(0.0);
            }
            _ => {}
        }
    }
    rows
}

/// Compares fresh exec-bench results against a baseline. Returns a
/// human-readable report on success, or a description of every
/// violated bound on failure. A kernel fails when any gated speedup
/// column ([`GATED_COLUMNS`]) drops more than `tolerance` (relative)
/// below its baseline value; kernels present in the baseline but
/// missing from the fresh run also fail. Fresh kernels without a
/// baseline pass (they are new) and are noted in the report, as are
/// gated columns the baseline does not carry yet (value 0.0 — e.g. a
/// pre-adaptive `BENCH_exec.json`), which are warned about and
/// skipped.
///
/// # Errors
///
/// A multi-line description of every regression found.
pub fn check_exec(baseline: &str, fresh: &str, tolerance: f64) -> Result<String, String> {
    let base: BTreeMap<String, CheckRow> = parse_exec_rows(baseline)
        .into_iter()
        .map(|r| (r.name.clone(), r))
        .collect();
    let fresh_rows = parse_exec_rows(fresh);
    if fresh_rows.is_empty() {
        return Err("fresh BENCH_exec.json has no kernel rows".into());
    }
    let fresh_names: Vec<&str> = fresh_rows.iter().map(|r| r.name.as_str()).collect();
    let mut report = String::from(
        "exec-check: fresh speedups vs committed baseline\n\
         \n  bench     fused(base)  fused(fresh)   thread(fresh)  adapt(fresh)  t/f     icodeD   d/i\n",
    );
    let mut warnings = String::new();
    let mut failures = String::new();
    for f in &fresh_rows {
        let b = base.get(&f.name);
        let base_fused = b.map_or(0.0, |b| b.speedup_fused);
        report.push_str(&format!(
            "  {:7}   {:9.2}x   {:10.2}x   {:11.2}x  {:10.2}x  {:5.2}x   {:+5}   {:4.2}{}\n",
            f.name,
            base_fused,
            f.speedup_fused,
            f.speedup_threaded,
            f.speedup_adaptive,
            f.speedup_threaded_vs_fused,
            f.fused_pairs_icode_delta,
            f.dispatches_per_insn,
            if b.is_none() { "   (no baseline)" } else { "" },
        ));
        let Some(b) = b else { continue };
        for (key, column) in GATED_COLUMNS {
            let base_value = column(b);
            if base_value == 0.0 {
                warnings.push_str(&format!(
                    "  warning: baseline has no {key} for {} (pre-{key} file?) — not gated\n",
                    f.name,
                ));
                continue;
            }
            if column(f) < base_value * (1.0 - tolerance) {
                failures.push_str(&gate_failure_line(
                    &f.name,
                    key,
                    column(f),
                    base_value,
                    tolerance,
                ));
            }
        }
    }
    for name in base.keys() {
        if !fresh_names.contains(&name.as_str()) {
            failures.push_str(&missing_row_line(name));
        }
    }
    if !warnings.is_empty() {
        report.push_str(&format!("\n{warnings}"));
    }
    if failures.is_empty() {
        Ok(report)
    } else {
        Err(format!("{report}\nREGRESSIONS:\n{failures}"))
    }
}

/// The per-row fields the adaptive tail gate reads from
/// `BENCH_adaptive.json`. Rows are keyed by (kernel, reuse) — each
/// kernel appears once per reuse point in the sweep.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct AdaptiveCheckRow {
    /// Kernel name.
    pub kernel: String,
    /// Reuse count of the sweep cell.
    pub reuse: u64,
    /// Sync-over-background cold per-run p99 ratio (gated; 0.0 when
    /// the file predates the tail columns).
    pub tail_p99_improvement: f64,
}

/// Scans the text of a `BENCH_adaptive.json` for its sweep rows. A new
/// row starts at each `"kernel"` key; the top-level `warm_summary`
/// entries also open on `"kernel"` but carry neither `reuse` nor
/// `tail_p99_improvement`, so they parse as zero rows and are dropped.
pub fn parse_adaptive_rows(text: &str) -> Vec<AdaptiveCheckRow> {
    let mut rows: Vec<AdaptiveCheckRow> = Vec::new();
    for line in text.lines() {
        let Some((key, value)) = key_value(line) else {
            continue;
        };
        if key == "kernel" {
            rows.push(AdaptiveCheckRow {
                kernel: value.trim_matches('"').to_string(),
                ..AdaptiveCheckRow::default()
            });
            continue;
        }
        let Some(row) = rows.last_mut() else { continue };
        match key {
            "reuse" => row.reuse = value.parse().unwrap_or(0),
            "tail_p99_improvement" => {
                row.tail_p99_improvement = value.parse().unwrap_or(0.0);
            }
            _ => {}
        }
    }
    // Drop the warm_summary echoes (no reuse key ⇒ not a sweep row).
    rows.retain(|r| r.reuse > 0);
    rows
}

/// Compares fresh adaptive-bench tail latencies against a baseline.
/// Per (kernel, reuse) row, the fresh `tail_p99_improvement` may not
/// drop more than `tolerance` (relative) below its baseline value.
/// Rows whose baseline value is 0.0 — a `BENCH_adaptive.json` written
/// before the tail columns existed — are warned about and skipped, as
/// are fresh rows with no baseline counterpart; baseline rows missing
/// from the fresh run fail, mirroring [`check_exec`].
///
/// # Errors
///
/// A multi-line description of every violated bound.
pub fn check_adaptive(baseline: &str, fresh: &str, tolerance: f64) -> Result<String, String> {
    let base: BTreeMap<(String, u64), AdaptiveCheckRow> = parse_adaptive_rows(baseline)
        .into_iter()
        .map(|r| ((r.kernel.clone(), r.reuse), r))
        .collect();
    let fresh_rows = parse_adaptive_rows(fresh);
    if fresh_rows.is_empty() {
        return Err("fresh BENCH_adaptive.json has no sweep rows".into());
    }
    let fresh_keys: Vec<(String, u64)> = fresh_rows
        .iter()
        .map(|r| (r.kernel.clone(), r.reuse))
        .collect();
    let mut report = String::from(
        "exec-check: adaptive cold-run tail (p99 sync / p99 background) vs baseline\n\
         \n  kernel    reuse   tail(base)   tail(fresh)\n",
    );
    let mut warnings = String::new();
    let mut failures = String::new();
    for f in &fresh_rows {
        let b = base.get(&(f.kernel.clone(), f.reuse));
        report.push_str(&format!(
            "  {:8} {:6}   {:8.2}x   {:9.2}x{}\n",
            f.kernel,
            f.reuse,
            b.map_or(0.0, |b| b.tail_p99_improvement),
            f.tail_p99_improvement,
            if b.is_none() { "   (no baseline)" } else { "" },
        ));
        let Some(b) = b else { continue };
        if b.tail_p99_improvement == 0.0 {
            warnings.push_str(&format!(
                "  warning: baseline has no tail_p99_improvement for {}/{} \
                 (pre-tail-column file?) — not gated\n",
                f.kernel, f.reuse,
            ));
            continue;
        }
        if f.tail_p99_improvement < b.tail_p99_improvement * (1.0 - tolerance) {
            failures.push_str(&gate_failure_line(
                &format!("{}/{}", f.kernel, f.reuse),
                "tail_p99_improvement",
                f.tail_p99_improvement,
                b.tail_p99_improvement,
                tolerance,
            ));
        }
    }
    for key in base.keys() {
        if !fresh_keys.contains(key) {
            failures.push_str(&missing_row_line(&format!("{}/{}", key.0, key.1)));
        }
    }
    if !warnings.is_empty() {
        report.push_str(&format!("\n{warnings}"));
    }
    if failures.is_empty() {
        Ok(report)
    } else {
        Err(format!("{report}\nREGRESSIONS:\n{failures}"))
    }
}

/// The per-pool fields the serve gate reads from `BENCH_serve.json`.
/// Rows are keyed by thread count — each pool size appears once.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ServeCheckRow {
    /// Worker threads in the pool.
    pub threads: u64,
    /// Requests per second over the replay wall clock (gated as a
    /// fresh/baseline ratio).
    pub throughput_rps: f64,
    /// 99th-percentile per-request latency (gated as a
    /// baseline/fresh ratio — bigger fresh tail ⇒ smaller ratio).
    pub p99_ns: f64,
    /// Shared-cache hit rate (absolute floor on the largest pool).
    pub hit_rate: f64,
    /// Compiles per compile-worthy event (absolute ceiling of 1 on the
    /// largest pool — above 1 means workers duplicated compiles).
    pub compiles_per_unique: f64,
}

/// Scans the text of a `BENCH_serve.json` for its per-pool rows. A new
/// row starts at each `"threads"` key.
pub fn parse_serve_rows(text: &str) -> Vec<ServeCheckRow> {
    let mut rows: Vec<ServeCheckRow> = Vec::new();
    for line in text.lines() {
        let Some((key, value)) = key_value(line) else {
            continue;
        };
        if key == "threads" {
            rows.push(ServeCheckRow {
                threads: value.parse().unwrap_or(0),
                ..ServeCheckRow::default()
            });
            continue;
        }
        let Some(row) = rows.last_mut() else { continue };
        match key {
            "throughput_rps" => row.throughput_rps = value.parse().unwrap_or(0.0),
            "p99_ns" => row.p99_ns = value.parse().unwrap_or(0.0),
            "hit_rate" => row.hit_rate = value.parse().unwrap_or(0.0),
            "compiles_per_unique" => {
                row.compiles_per_unique = value.parse().unwrap_or(0.0);
            }
            _ => {}
        }
    }
    rows
}

/// Compares a fresh serve sweep against a baseline. Per pool size, the
/// fresh throughput may not drop more than `tolerance` (relative)
/// below the baseline (callers pass [`TAIL_TOLERANCE`]: wall-clock on
/// a loaded CI box is far noisier than the same-machine engine ratios
/// of [`check_exec`]), and the fresh p99 tail may not grow so much
/// that `baseline_p99 / fresh_p99` falls below
/// `1 - max(tolerance, `[`SERVE_TAIL_TOLERANCE`]`)` — the p99 gets its
/// own, wider floor because the replay's tail is bimodal (see the
/// constant's docs). On top of the relative gates, the largest fresh
/// pool is held to two absolute bounds from the service's contract:
/// shared-cache hit rate at least [`SERVE_MIN_HIT_RATE`], and
/// compiles-per-unique at most 1 (the first-compiler-wins invariant —
/// above 1 means concurrent workers duplicated a compile). Baseline
/// rows with a zero value warn and skip; baseline pool sizes missing
/// from the fresh run fail, mirroring [`check_exec`].
///
/// # Errors
///
/// A multi-line description of every violated bound.
pub fn check_serve(baseline: &str, fresh: &str, tolerance: f64) -> Result<String, String> {
    let base: BTreeMap<u64, ServeCheckRow> = parse_serve_rows(baseline)
        .into_iter()
        .map(|r| (r.threads, r))
        .collect();
    let fresh_rows = parse_serve_rows(fresh);
    if fresh_rows.is_empty() {
        return Err("fresh BENCH_serve.json has no pool rows".into());
    }
    let fresh_threads: Vec<u64> = fresh_rows.iter().map(|r| r.threads).collect();
    let max_threads = *fresh_threads.iter().max().expect("non-empty");
    let mut report = String::from(
        "exec-check: serve throughput/p99 vs committed baseline\n\
         \n  threads    rps(base)    rps(fresh)    p99(base)    p99(fresh)   hit     c/u\n",
    );
    let mut warnings = String::new();
    let mut failures = String::new();
    for f in &fresh_rows {
        let b = base.get(&f.threads);
        report.push_str(&format!(
            "  {:7}   {:10.0}   {:11.0}   {:10.0}   {:11.0}   {:4.2}   {:5.2}{}\n",
            f.threads,
            b.map_or(0.0, |b| b.throughput_rps),
            f.throughput_rps,
            b.map_or(0.0, |b| b.p99_ns),
            f.p99_ns,
            f.hit_rate,
            f.compiles_per_unique,
            if b.is_none() { "   (no baseline)" } else { "" },
        ));
        if let Some(b) = b {
            if b.throughput_rps <= 0.0 {
                warnings.push_str(&format!(
                    "  warning: baseline has no throughput_rps for serve/{} — not gated\n",
                    f.threads,
                ));
            } else {
                let ratio = f.throughput_rps / b.throughput_rps;
                if ratio < 1.0 - tolerance {
                    failures.push_str(&gate_failure_line(
                        &format!("serve/{}", f.threads),
                        "throughput_ratio",
                        ratio,
                        1.0,
                        tolerance,
                    ));
                }
            }
            if b.p99_ns <= 0.0 {
                warnings.push_str(&format!(
                    "  warning: baseline has no p99_ns for serve/{} — not gated\n",
                    f.threads,
                ));
            } else {
                let tail_tolerance = tolerance.max(SERVE_TAIL_TOLERANCE);
                let ratio = b.p99_ns / f.p99_ns.max(1.0);
                if ratio < 1.0 - tail_tolerance {
                    failures.push_str(&gate_failure_line(
                        &format!("serve/{}", f.threads),
                        "tail_p99_ratio",
                        ratio,
                        1.0,
                        tail_tolerance,
                    ));
                }
            }
        }
        // The service's structural contract, gated absolutely on the
        // largest pool (the configuration the acceptance bar names).
        if f.threads == max_threads {
            if f.hit_rate < SERVE_MIN_HIT_RATE {
                failures.push_str(&gate_failure_line(
                    &format!("serve/{}", f.threads),
                    "hit_rate",
                    f.hit_rate,
                    SERVE_MIN_HIT_RATE,
                    0.0,
                ));
            }
            if f.compiles_per_unique > 1.0 + 1e-9 {
                failures.push_str(&format!(
                    "  serve/{}: compiles_per_unique {:.2} exceeded 1.00 — \
                     concurrent workers duplicated a compile\n",
                    f.threads, f.compiles_per_unique,
                ));
            }
        }
    }
    for threads in base.keys() {
        if !fresh_threads.contains(threads) {
            failures.push_str(&missing_row_line(&format!("serve/{threads}")));
        }
    }
    if !warnings.is_empty() {
        report.push_str(&format!("\n{warnings}"));
    }
    if failures.is_empty() {
        Ok(report)
    } else {
        Err(format!("{report}\nREGRESSIONS:\n{failures}"))
    }
}

/// The per-kernel fields the persist gate reads from
/// `BENCH_persist.json`. Rows are keyed by kernel name.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PersistCheckRow {
    /// Kernel name.
    pub kernel: String,
    /// Distinct closures the process pair compiled/loaded.
    pub cells: f64,
    /// Warm-process disk hits (structural: must cover every cell).
    pub disk_hits: f64,
    /// Cold compile-path cost over warm restart cost (gated: relative
    /// vs baseline *and* absolute vs [`PERSIST_MIN_SPEEDUP`]).
    pub warm_speedup: f64,
}

/// Scans the text of a `BENCH_persist.json` for its per-kernel rows.
/// A new row starts at each `"kernel"` key.
pub fn parse_persist_rows(text: &str) -> Vec<PersistCheckRow> {
    let mut rows: Vec<PersistCheckRow> = Vec::new();
    for line in text.lines() {
        let Some((key, value)) = key_value(line) else {
            continue;
        };
        if key == "kernel" {
            rows.push(PersistCheckRow {
                kernel: value.trim_matches('"').to_string(),
                ..PersistCheckRow::default()
            });
            continue;
        }
        let Some(row) = rows.last_mut() else { continue };
        match key {
            "cells" => row.cells = value.parse().unwrap_or(0.0),
            "disk_hits" => row.disk_hits = value.parse().unwrap_or(0.0),
            "warm_speedup" => row.warm_speedup = value.parse().unwrap_or(0.0),
            _ => {}
        }
    }
    rows
}

/// Compares a fresh persist sweep against a baseline. Per kernel, the
/// fresh warm-start speedup may not drop more than `tolerance`
/// (relative) below the baseline (callers pass [`TAIL_TOLERANCE`]:
/// cold/warm divides wall-clock sums, noisier than the exec engine
/// ratios), and — absolutely, baseline or not — may not fall below
/// [`PERSIST_MIN_SPEEDUP`], the acceptance bar for the store being
/// worth opening at all. Each fresh row must also show `disk_hits ==
/// cells` (the warm process answered everything from disk; the bench
/// asserts this at run time, so a violation here means the JSON was
/// produced some other way). Baseline rows with a zero speedup warn
/// and skip the relative gate; baseline kernels missing from the fresh
/// run fail, mirroring [`check_exec`].
///
/// # Errors
///
/// A multi-line description of every violated bound.
pub fn check_persist(baseline: &str, fresh: &str, tolerance: f64) -> Result<String, String> {
    let base: BTreeMap<String, PersistCheckRow> = parse_persist_rows(baseline)
        .into_iter()
        .map(|r| (r.kernel.clone(), r))
        .collect();
    let fresh_rows = parse_persist_rows(fresh);
    if fresh_rows.is_empty() {
        return Err("fresh BENCH_persist.json has no kernel rows".into());
    }
    let fresh_names: Vec<&str> = fresh_rows.iter().map(|r| r.kernel.as_str()).collect();
    let mut report = String::from(
        "exec-check: persist warm-start speedup vs committed baseline\n\
         \n  kernel     cells   hits   warm(base)   warm(fresh)\n",
    );
    let mut warnings = String::new();
    let mut failures = String::new();
    for f in &fresh_rows {
        let b = base.get(&f.kernel);
        report.push_str(&format!(
            "  {:8}   {:5.0}   {:4.0}   {:9.1}x   {:10.1}x{}\n",
            f.kernel,
            f.cells,
            f.disk_hits,
            b.map_or(0.0, |b| b.warm_speedup),
            f.warm_speedup,
            if b.is_none() { "   (no baseline)" } else { "" },
        ));
        if f.warm_speedup < PERSIST_MIN_SPEEDUP {
            failures.push_str(&gate_failure_line(
                &format!("persist/{}", f.kernel),
                "warm_speedup",
                f.warm_speedup,
                PERSIST_MIN_SPEEDUP,
                0.0,
            ));
        }
        if f.disk_hits < f.cells {
            failures.push_str(&format!(
                "  persist/{}: warm process hit disk {:.0} times for {:.0} cells — \
                 the store failed to answer every request\n",
                f.kernel, f.disk_hits, f.cells,
            ));
        }
        if let Some(b) = b {
            if b.warm_speedup <= 0.0 {
                warnings.push_str(&format!(
                    "  warning: baseline has no warm_speedup for persist/{} — not gated\n",
                    f.kernel,
                ));
            } else if f.warm_speedup < b.warm_speedup * (1.0 - tolerance) {
                failures.push_str(&gate_failure_line(
                    &format!("persist/{}", f.kernel),
                    "warm_speedup",
                    f.warm_speedup,
                    b.warm_speedup,
                    tolerance,
                ));
            }
        }
    }
    for kernel in base.keys() {
        if !fresh_names.contains(&kernel.as_str()) {
            failures.push_str(&missing_row_line(&format!("persist/{kernel}")));
        }
    }
    if !warnings.is_empty() {
        report.push_str(&format!("\n{warnings}"));
    }
    if failures.is_empty() {
        Ok(report)
    } else {
        Err(format!("{report}\nREGRESSIONS:\n{failures}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adaptive_bench::AdaptiveBenchRow;
    use crate::exec_bench::ExecBenchRow;
    use crate::persist_bench::PersistBenchRow;
    use crate::serve_bench::ServeBenchRow;
    use crate::{adaptive_json, exec_json, persist_json, serve_json};

    fn sample_row(name: &'static str, decode_ns: u64, fused_ns: u64) -> ExecBenchRow {
        engines_row(name, decode_ns, fused_ns, fused_ns / 2, fused_ns)
    }

    /// A row with every engine's wall-clock pinned independently, so
    /// tests can regress one gated column at a time.
    fn engines_row(
        name: &'static str,
        decode_ns: u64,
        fused_ns: u64,
        threaded_ns: u64,
        adaptive_ns: u64,
    ) -> ExecBenchRow {
        ExecBenchRow {
            name,
            reps: 10,
            decode_ns,
            predecoded_ns: fused_ns + 100,
            fused_ns,
            threaded_ns,
            adaptive_ns,
            promotions: 4,
            cycles: 1000,
            insns: 900,
            fused_pairs: 12,
            hit_rate: 1.0,
            batched_blocks: 40,
            fused_pairs_icode: 9,
            fused_pairs_icode_unsched: 7,
            superinstructions: 6,
            fused_dispatch_rate: 0.4,
            dispatches_per_insn: 0.5,
            pair_histogram: vec![("addiw+bne".into(), 20)],
        }
    }

    #[test]
    fn roundtrips_through_the_emitted_json() {
        let rows = vec![sample_row("hash", 4000, 1000), sample_row("ms", 9000, 2000)];
        let text = exec_json(&rows).pretty();
        let parsed = parse_exec_rows(&text);
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].name, "hash");
        assert!((parsed[0].speedup_fused - 4.0).abs() < 1e-9);
        assert!((parsed[1].speedup_threaded - 9.0).abs() < 1e-9);
        assert!((parsed[0].speedup_threaded_vs_fused - 2.0).abs() < 1e-9);
        assert_eq!(parsed[0].fused_pairs_icode_delta, 2);
    }

    #[test]
    fn passes_within_tolerance_and_reports() {
        let base = exec_json(&[sample_row("hash", 4000, 1000)]).pretty();
        // 4.0x baseline; fresh 3.2x is a 20% drop — inside 30%.
        let fresh = exec_json(&[sample_row("hash", 3200, 1000)]).pretty();
        let report = check_exec(&base, &fresh, DEFAULT_TOLERANCE).expect("within tolerance");
        assert!(report.contains("hash"));
    }

    #[test]
    fn fails_beyond_tolerance() {
        let base = exec_json(&[sample_row("hash", 4000, 1000)]).pretty();
        // Fresh 2.0x vs baseline 4.0x: a 50% drop.
        let fresh = exec_json(&[sample_row("hash", 2000, 1000)]).pretty();
        let err = check_exec(&base, &fresh, DEFAULT_TOLERANCE).expect_err("regression");
        assert!(err.contains("REGRESSIONS"), "{err}");
        assert!(err.contains("hash"), "{err}");
    }

    #[test]
    fn fails_on_missing_kernel_and_tolerates_new_ones() {
        let base = exec_json(&[sample_row("hash", 4000, 1000)]).pretty();
        let fresh = exec_json(&[sample_row("ms", 4000, 1000)]).pretty();
        let err = check_exec(&base, &fresh, DEFAULT_TOLERANCE).expect_err("missing kernel");
        assert!(err.contains("missing from fresh run"), "{err}");
        // A fresh-only kernel alone is fine when the baseline is empty.
        let empty = exec_json(&[]).pretty();
        assert!(check_exec(&empty, &fresh, DEFAULT_TOLERANCE).is_ok());
    }

    #[test]
    fn fails_when_only_the_threaded_column_regresses() {
        // fused and adaptive hold steady; threaded alone drops from
        // 8.0x to 2.0x. The old single-column gate shipped this bug
        // through silently.
        let base = exec_json(&[engines_row("hash", 4000, 1000, 500, 1000)]).pretty();
        let fresh = exec_json(&[engines_row("hash", 4000, 1000, 2000, 1000)]).pretty();
        let err = check_exec(&base, &fresh, DEFAULT_TOLERANCE).expect_err("threaded regression");
        assert!(err.contains("speedup_threaded"), "{err}");
        assert!(!err.contains("speedup_fused 4"), "{err}");
    }

    #[test]
    fn fails_when_only_the_dispatch_reduction_regresses() {
        // Every wall-clock speedup holds; the threaded engine merely
        // dispatches more per instruction (0.5 → 0.9 dispatches/insn,
        // i.e. dispatch_reduction 2.0x → 1.11x, a 44% drop): losing the
        // superinstruction coverage must fail on its own.
        let base = exec_json(&[engines_row("hash", 4000, 1000, 500, 1000)]).pretty();
        let regressed = ExecBenchRow {
            dispatches_per_insn: 0.9,
            ..engines_row("hash", 4000, 1000, 500, 1000)
        };
        let fresh = exec_json(&[regressed]).pretty();
        let err = check_exec(&base, &fresh, DEFAULT_TOLERANCE).expect_err("dispatch regression");
        assert!(err.contains("dispatch_reduction"), "{err}");
        assert!(!err.contains("speedup_threaded 8"), "{err}");
    }

    #[test]
    fn baseline_without_dispatch_column_warns_instead_of_failing() {
        // A pre-superinstruction baseline has no dispatches_per_insn
        // key: the reciprocal parses to 0.0 and the column is skipped
        // with a warning, never gated.
        let base: String = exec_json(&[engines_row("hash", 4000, 1000, 500, 1000)])
            .pretty()
            .lines()
            .filter(|l| !l.contains("dispatches_per_insn"))
            .collect::<Vec<_>>()
            .join("\n");
        assert!(!base.contains("dispatches_per_insn"));
        let fresh = exec_json(&[ExecBenchRow {
            dispatches_per_insn: 0.99,
            ..engines_row("hash", 4000, 1000, 500, 1000)
        }])
        .pretty();
        let report = check_exec(&base, &fresh, DEFAULT_TOLERANCE).expect("warns, not fails");
        assert!(
            report.contains("warning: baseline has no dispatch_reduction"),
            "{report}"
        );
    }

    #[test]
    fn fails_when_only_the_adaptive_column_regresses() {
        // adaptive alone drops from 4.0x to 1.0x (>30%).
        let base = exec_json(&[engines_row("hash", 4000, 1000, 500, 1000)]).pretty();
        let fresh = exec_json(&[engines_row("hash", 4000, 1000, 500, 4000)]).pretty();
        let err = check_exec(&base, &fresh, DEFAULT_TOLERANCE).expect_err("adaptive regression");
        assert!(err.contains("speedup_adaptive"), "{err}");
    }

    #[test]
    fn baseline_without_adaptive_column_warns_instead_of_failing() {
        // A pre-adaptive baseline: strip the adaptive lines from the
        // emitted JSON, as if the file had been written before the
        // column existed. Even a fresh adaptive value far below the
        // others must pass — with a warning — because there is nothing
        // to gate against.
        let base: String = exec_json(&[engines_row("hash", 4000, 1000, 500, 1000)])
            .pretty()
            .lines()
            .filter(|l| !l.contains("adaptive"))
            .collect::<Vec<_>>()
            .join("\n");
        assert!(!base.contains("speedup_adaptive"));
        let fresh = exec_json(&[engines_row("hash", 4000, 1000, 500, 40000)]).pretty();
        let report = check_exec(&base, &fresh, DEFAULT_TOLERANCE).expect("warns, not fails");
        assert!(
            report.contains("warning: baseline has no speedup_adaptive"),
            "{report}"
        );
    }

    #[test]
    fn empty_fresh_is_an_error() {
        let base = exec_json(&[sample_row("hash", 4000, 1000)]).pretty();
        assert!(check_exec(&base, "{}", DEFAULT_TOLERANCE).is_err());
    }

    /// A sweep row with the cold-run p99 tails pinned (sync, bg), so
    /// tests can steer `tail_p99_improvement` directly.
    fn tail_row(kernel: &'static str, reuse: u64, p99_sync: u64, p99_bg: u64) -> AdaptiveBenchRow {
        AdaptiveBenchRow {
            kernel,
            reuse,
            reps: 4,
            decode_ns: 4000,
            fused_ns: 1500,
            threaded_ns: 1000,
            adaptive_ns: 1040,
            adaptive_bg_ns: 1020,
            promotions: 3,
            warm_decode_ns: 400,
            warm_fused_ns: 120,
            warm_threaded_ns: 100,
            warm_adaptive_ns: 103,
            warm_adaptive_bg_ns: 104,
            run_max_adaptive_ns: p99_sync * 2,
            run_p99_adaptive_ns: p99_sync,
            run_max_adaptive_bg_ns: p99_bg * 2,
            run_p99_adaptive_bg_ns: p99_bg,
        }
    }

    #[test]
    fn adaptive_rows_roundtrip_through_the_emitted_json() {
        let rows = vec![tail_row("hash", 4, 800, 250), tail_row("hash", 8, 900, 300)];
        let parsed = parse_adaptive_rows(&adaptive_json(&rows).pretty());
        // The warm_summary block repeats "kernel" but has no reuse key,
        // so only the two sweep rows survive.
        assert_eq!(parsed.len(), 2);
        assert_eq!((parsed[0].kernel.as_str(), parsed[0].reuse), ("hash", 4));
        assert!((parsed[0].tail_p99_improvement - 3.2).abs() < 1e-9);
        assert_eq!(parsed[1].reuse, 8);
    }

    #[test]
    fn adaptive_tail_gate_passes_within_tolerance_and_fails_beyond() {
        let base = adaptive_json(&[tail_row("hash", 4, 800, 250)]).pretty(); // 3.2x
        let ok = adaptive_json(&[tail_row("hash", 4, 700, 280)]).pretty(); // 2.5x, -22%
        let report = check_adaptive(&base, &ok, DEFAULT_TOLERANCE).expect("within tolerance");
        assert!(report.contains("hash"), "{report}");
        let bad = adaptive_json(&[tail_row("hash", 4, 500, 500)]).pretty(); // 1.0x, -69%
        let err = check_adaptive(&base, &bad, DEFAULT_TOLERANCE).expect_err("regression");
        assert!(err.contains("REGRESSIONS"), "{err}");
        assert!(err.contains("tail_p99_improvement"), "{err}");
    }

    #[test]
    fn adaptive_tail_gate_warns_and_skips_zero_baselines() {
        // A baseline from before the tail columns: both p99 sides are
        // zero, so tail_p99_improvement serializes as 0.0. Even a
        // fresh collapse to 1.0x must pass with a warning.
        let base = adaptive_json(&[tail_row("hash", 4, 0, 0)]).pretty();
        let fresh = adaptive_json(&[tail_row("hash", 4, 500, 500)]).pretty();
        let report = check_adaptive(&base, &fresh, DEFAULT_TOLERANCE).expect("warns, not fails");
        assert!(
            report.contains("warning: baseline has no tail_p99_improvement"),
            "{report}"
        );
    }

    #[test]
    fn adaptive_tail_gate_handles_missing_and_new_rows() {
        let base = adaptive_json(&[tail_row("hash", 4, 800, 250)]).pretty();
        let fresh = adaptive_json(&[tail_row("hash", 8, 800, 250)]).pretty();
        let err = check_adaptive(&base, &fresh, DEFAULT_TOLERANCE).expect_err("missing row");
        assert!(err.contains("missing from fresh run"), "{err}");
        // Fresh-only rows against an empty baseline pass (all new).
        assert!(check_adaptive("{}", &fresh, DEFAULT_TOLERANCE).is_ok());
        // An empty fresh file is always an error.
        assert!(check_adaptive(&base, "{}", DEFAULT_TOLERANCE).is_err());
    }

    #[test]
    fn gate_failure_line_names_every_component() {
        let line = gate_failure_line("serve/4", "throughput_ratio", 0.40, 1.0, 0.50);
        assert_eq!(
            line,
            "  serve/4: throughput_ratio 0.40x regressed below 0.50x \
             (baseline 1.00x - 50% tolerance)\n"
        );
        assert_eq!(
            missing_row_line("hash/4"),
            "  hash/4: present in baseline, missing from fresh run\n"
        );
    }

    /// A serve pool row with throughput, tail, and the structural
    /// columns pinned, serialized through the real emitter.
    fn serve_row(threads: u64, rps: f64, p99: u64, hit: f64, cpu: f64) -> ServeBenchRow {
        ServeBenchRow {
            threads,
            requests: 2000,
            elapsed_ns: 20_000_000,
            throughput_rps: rps,
            p50_ns: p99 / 10,
            p99_ns: p99,
            p999_ns: p99 * 3,
            hit_rate: hit,
            hits: 1900,
            misses: 70,
            waits: 3,
            evictions: 0,
            invalidations: 30,
            unique_fingerprints: 40,
            compiles: 69,
            compiles_per_unique: cpu,
            stale_faults: 2,
            checksum: 0xc840_4492_d610_a568,
        }
    }

    #[test]
    fn serve_rows_roundtrip_through_the_emitted_json() {
        let rows = vec![
            serve_row(1, 80_000.0, 50_000, 0.91, 0.93),
            serve_row(4, 100_000.0, 60_000, 0.96, 0.99),
        ];
        let parsed = parse_serve_rows(&serve_json(&rows).pretty());
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].threads, 1);
        assert_eq!(parsed[1].threads, 4);
        assert!((parsed[1].throughput_rps - 100_000.0).abs() < 1e-6);
        assert!((parsed[1].p99_ns - 60_000.0).abs() < 1e-6);
        assert!((parsed[1].hit_rate - 0.96).abs() < 1e-9);
        assert!((parsed[1].compiles_per_unique - 0.99).abs() < 1e-9);
    }

    #[test]
    fn serve_gate_passes_within_tolerance_and_fails_on_throughput() {
        let base = serve_json(&[serve_row(4, 100_000.0, 60_000, 0.96, 0.99)]).pretty();
        // 40% below baseline throughput: inside the 50% tail tolerance.
        let ok = serve_json(&[serve_row(4, 60_000.0, 60_000, 0.96, 0.99)]).pretty();
        let report = check_serve(&base, &ok, TAIL_TOLERANCE).expect("within tolerance");
        assert!(report.contains("serve"), "{report}");
        // 60% below: past the tolerance.
        let bad = serve_json(&[serve_row(4, 40_000.0, 60_000, 0.96, 0.99)]).pretty();
        let err = check_serve(&base, &bad, TAIL_TOLERANCE).expect_err("regression");
        assert!(err.contains("REGRESSIONS"), "{err}");
        assert!(err.contains("throughput_ratio"), "{err}");
    }

    #[test]
    fn serve_gate_fails_when_the_tail_blows_up() {
        let base = serve_json(&[serve_row(4, 100_000.0, 60_000, 0.96, 0.99)]).pretty();
        // p99 tripled: base/fresh = 0.33 — bimodal-tail noise the serve
        // gate's own wider tolerance absorbs.
        let noisy = serve_json(&[serve_row(4, 100_000.0, 180_000, 0.96, 0.99)]).pretty();
        check_serve(&base, &noisy, TAIL_TOLERANCE).expect("within SERVE_TAIL_TOLERANCE");
        // p99 6x: base/fresh = 0.17, below 1 - SERVE_TAIL_TOLERANCE.
        let bad = serve_json(&[serve_row(4, 100_000.0, 360_000, 0.96, 0.99)]).pretty();
        let err = check_serve(&base, &bad, TAIL_TOLERANCE).expect_err("tail regression");
        assert!(err.contains("tail_p99_ratio"), "{err}");
        assert!(err.contains("75% tolerance"), "{err}");
    }

    #[test]
    fn serve_gate_holds_the_largest_pool_to_absolute_bounds() {
        let base = serve_json(&[
            serve_row(1, 80_000.0, 50_000, 0.50, 0.93),
            serve_row(4, 100_000.0, 60_000, 0.96, 0.99),
        ])
        .pretty();
        // A cold small pool is fine; the 4-thread pool falling under
        // the hit-rate floor is not, even with healthy throughput.
        let bad_hit = serve_json(&[
            serve_row(1, 80_000.0, 50_000, 0.50, 0.93),
            serve_row(4, 100_000.0, 60_000, 0.80, 0.99),
        ])
        .pretty();
        let err = check_serve(&base, &bad_hit, TAIL_TOLERANCE).expect_err("hit-rate floor");
        assert!(err.contains("hit_rate"), "{err}");
        // Duplicated compiles (c/u above 1) on the largest pool fail.
        let dup = serve_json(&[serve_row(4, 100_000.0, 60_000, 0.96, 1.40)]).pretty();
        let err = check_serve(&base, &dup, TAIL_TOLERANCE).expect_err("duplicate compiles");
        assert!(err.contains("compiles_per_unique"), "{err}");
        assert!(err.contains("duplicated a compile"), "{err}");
    }

    #[test]
    fn serve_gate_warns_on_zero_baselines_and_handles_missing_rows() {
        let fresh = serve_json(&[serve_row(4, 100_000.0, 60_000, 0.96, 0.99)]).pretty();
        // Baseline with zeroed throughput/p99: warn and skip, not fail.
        let zeroed = serve_json(&[serve_row(4, 0.0, 0, 0.96, 0.99)]).pretty();
        let report = check_serve(&zeroed, &fresh, TAIL_TOLERANCE).expect("warns, not fails");
        assert!(
            report.contains("warning: baseline has no throughput_rps"),
            "{report}"
        );
        assert!(
            report.contains("warning: baseline has no p99_ns"),
            "{report}"
        );
        // A baseline pool size the fresh run dropped is a failure.
        let base = serve_json(&[
            serve_row(2, 90_000.0, 55_000, 0.95, 0.98),
            serve_row(4, 100_000.0, 60_000, 0.96, 0.99),
        ])
        .pretty();
        let err = check_serve(&base, &fresh, TAIL_TOLERANCE).expect_err("missing pool");
        assert!(
            err.contains("serve/2: present in baseline, missing"),
            "{err}"
        );
        // Fresh-only pools against an empty baseline pass (all new),
        // as long as the absolute bounds hold; empty fresh errors.
        assert!(check_serve("{}", &fresh, TAIL_TOLERANCE).is_ok());
        assert!(check_serve(&base, "{}", TAIL_TOLERANCE).is_err());
    }

    /// A persist kernel row serialized through the real emitter.
    fn persist_row(kernel: &str, cold_ns: u64, warm_ns: u64, disk_hits: u64) -> PersistBenchRow {
        PersistBenchRow {
            kernel: kernel.to_string(),
            cells: 6,
            cold_ns,
            warm_ns,
            disk_hits,
            load_ns: warm_ns / 3,
        }
    }

    #[test]
    fn persist_rows_roundtrip_through_the_emitted_json() {
        let rows = vec![
            persist_row("pk_pow", 120_000, 6_000, 6),
            persist_row("pk_dot", 90_000, 9_000, 6),
        ];
        let parsed = parse_persist_rows(&persist_json(&rows).pretty());
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].kernel, "pk_pow");
        assert!((parsed[0].warm_speedup - 20.0).abs() < 1e-9);
        assert!((parsed[0].cells - 6.0).abs() < 1e-9);
        assert!((parsed[1].disk_hits - 6.0).abs() < 1e-9);
    }

    #[test]
    fn persist_gate_passes_within_tolerance_and_fails_beyond() {
        let base = persist_json(&[persist_row("pk_pow", 120_000, 6_000, 6)]).pretty(); // 20x
                                                                                       // 12x: 40% below baseline, inside the 50% tail tolerance and
                                                                                       // above the absolute floor.
        let ok = persist_json(&[persist_row("pk_pow", 120_000, 10_000, 6)]).pretty();
        let report = check_persist(&base, &ok, TAIL_TOLERANCE).expect("within tolerance");
        assert!(report.contains("pk_pow"), "{report}");
        // 8x: still over the absolute 5x floor but 60% below baseline.
        let bad = persist_json(&[persist_row("pk_pow", 120_000, 15_000, 6)]).pretty();
        let err = check_persist(&base, &bad, TAIL_TOLERANCE).expect_err("regression");
        assert!(err.contains("REGRESSIONS"), "{err}");
        assert!(err.contains("warm_speedup"), "{err}");
    }

    #[test]
    fn persist_gate_holds_the_absolute_speedup_floor() {
        // 3x warm speedup: within any relative tolerance of its own
        // baseline, but below PERSIST_MIN_SPEEDUP — fails regardless.
        let row = persist_json(&[persist_row("pk_pow", 30_000, 10_000, 6)]).pretty();
        let err = check_persist(&row, &row, TAIL_TOLERANCE).expect_err("absolute floor");
        assert!(err.contains("warm_speedup"), "{err}");
        assert!(err.contains("5.00x"), "{err}");
        // And a warm process that missed disk fails structurally.
        let base = persist_json(&[persist_row("pk_pow", 120_000, 6_000, 6)]).pretty();
        let cold_hits = persist_json(&[persist_row("pk_pow", 120_000, 6_000, 4)]).pretty();
        let err = check_persist(&base, &cold_hits, TAIL_TOLERANCE).expect_err("missed disk");
        assert!(err.contains("failed to answer"), "{err}");
    }

    #[test]
    fn persist_gate_warns_on_zero_baselines_and_handles_missing_rows() {
        let fresh = persist_json(&[persist_row("pk_pow", 120_000, 6_000, 6)]).pretty();
        let zeroed = persist_json(&[persist_row("pk_pow", 0, 6_000, 6)]).pretty();
        let report = check_persist(&zeroed, &fresh, TAIL_TOLERANCE).expect("warns, not fails");
        assert!(
            report.contains("warning: baseline has no warm_speedup"),
            "{report}"
        );
        let base = persist_json(&[
            persist_row("pk_pow", 120_000, 6_000, 6),
            persist_row("pk_dot", 90_000, 9_000, 6),
        ])
        .pretty();
        let err = check_persist(&base, &fresh, TAIL_TOLERANCE).expect_err("missing kernel");
        assert!(
            err.contains("persist/pk_dot: present in baseline, missing"),
            "{err}"
        );
        // Fresh-only kernels against an empty baseline pass (all new),
        // as long as the absolute floor holds; empty fresh errors.
        assert!(check_persist("{}", &fresh, TAIL_TOLERANCE).is_ok());
        assert!(check_persist(&base, "{}", TAIL_TOLERANCE).is_err());
    }
}
