//! Benchmark regression gate: compare a freshly generated
//! `BENCH_exec.json` against the committed baseline in `baselines/`.
//!
//! The gate reads only the files this suite itself writes
//! ([`crate::exec_json`] serialized with `Json::pretty`), so a tiny
//! line-oriented scanner suffices — one `"key": value` pair per line,
//! rows delimited by their `"name"` keys. No general JSON parser is
//! needed (and the workspace deliberately has no serde dependency).
//!
//! Wall-clock nanoseconds are machine- and load-dependent, so the gate
//! compares *speedups* (ratios of engines run back-to-back on the same
//! machine), which are stable. The CI contract: a fresh
//! `speedup_fused` may not regress more than [`DEFAULT_TOLERANCE`]
//! below the committed baseline for any kernel.

use std::collections::BTreeMap;

/// Maximum tolerated relative drop in `speedup_fused` (0.30 = fresh
/// may be at worst 30% below baseline).
pub const DEFAULT_TOLERANCE: f64 = 0.30;

/// The per-kernel fields the gate reads from `BENCH_exec.json`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CheckRow {
    /// Kernel name.
    pub name: String,
    /// Predecoded+fused speedup over decode-per-step (the gated value).
    pub speedup_fused: f64,
    /// Direct-threaded speedup over decode-per-step (reported).
    pub speedup_threaded: f64,
    /// Threaded-over-fused ratio (reported).
    pub speedup_threaded_vs_fused: f64,
    /// ICODE fusion-aware scheduler pair gain (reported).
    pub fused_pairs_icode_delta: i64,
}

/// Extracts one `"key": value` pair from a pretty-printed JSON line.
/// Returns `None` for structural lines (braces, brackets).
fn key_value(line: &str) -> Option<(&str, &str)> {
    let line = line.trim().trim_end_matches(',');
    let rest = line.strip_prefix('"')?;
    let (key, rest) = rest.split_once('"')?;
    let value = rest.strip_prefix(':')?.trim();
    Some((key, value))
}

/// Scans the text of a `BENCH_exec.json` for its per-kernel rows.
/// Unknown keys are ignored; a new row starts at each `"name"`.
pub fn parse_exec_rows(text: &str) -> Vec<CheckRow> {
    let mut rows: Vec<CheckRow> = Vec::new();
    for line in text.lines() {
        let Some((key, value)) = key_value(line) else {
            continue;
        };
        if key == "name" {
            let name = value.trim_matches('"').to_string();
            // The top-level "experiment"/"description" strings never
            // use the key "name", so every hit opens a kernel row.
            rows.push(CheckRow {
                name,
                ..CheckRow::default()
            });
            continue;
        }
        let Some(row) = rows.last_mut() else { continue };
        match key {
            "speedup_fused" => row.speedup_fused = value.parse().unwrap_or(0.0),
            "speedup_threaded" => row.speedup_threaded = value.parse().unwrap_or(0.0),
            "speedup_threaded_vs_fused" => {
                row.speedup_threaded_vs_fused = value.parse().unwrap_or(0.0);
            }
            "fused_pairs_icode_delta" => {
                row.fused_pairs_icode_delta = value.parse().unwrap_or(0);
            }
            _ => {}
        }
    }
    rows
}

/// Compares fresh exec-bench results against a baseline. Returns a
/// human-readable report on success, or a description of every
/// violated bound on failure. A kernel fails when its fresh
/// `speedup_fused` drops more than `tolerance` (relative) below the
/// baseline value; kernels present in the baseline but missing from
/// the fresh run also fail. Fresh kernels without a baseline pass
/// (they are new) and are noted in the report.
///
/// # Errors
///
/// A multi-line description of every regression found.
pub fn check_exec(baseline: &str, fresh: &str, tolerance: f64) -> Result<String, String> {
    let base: BTreeMap<String, CheckRow> = parse_exec_rows(baseline)
        .into_iter()
        .map(|r| (r.name.clone(), r))
        .collect();
    let fresh_rows = parse_exec_rows(fresh);
    if fresh_rows.is_empty() {
        return Err("fresh BENCH_exec.json has no kernel rows".into());
    }
    let fresh_names: Vec<&str> = fresh_rows.iter().map(|r| r.name.as_str()).collect();
    let mut report = String::from(
        "exec-check: fresh speedups vs committed baseline\n\
         \n  bench     fused(base)  fused(fresh)   thread(fresh)  t/f     icodeD\n",
    );
    let mut failures = String::new();
    for f in &fresh_rows {
        let b = base.get(&f.name);
        let base_fused = b.map_or(0.0, |b| b.speedup_fused);
        report.push_str(&format!(
            "  {:7}   {:9.2}x   {:10.2}x   {:11.2}x  {:5.2}x   {:+5}{}\n",
            f.name,
            base_fused,
            f.speedup_fused,
            f.speedup_threaded,
            f.speedup_threaded_vs_fused,
            f.fused_pairs_icode_delta,
            if b.is_none() { "   (no baseline)" } else { "" },
        ));
        if let Some(b) = b {
            let floor = b.speedup_fused * (1.0 - tolerance);
            if f.speedup_fused < floor {
                failures.push_str(&format!(
                    "  {}: speedup_fused {:.2}x regressed below {:.2}x \
                     (baseline {:.2}x - {:.0}% tolerance)\n",
                    f.name,
                    f.speedup_fused,
                    floor,
                    b.speedup_fused,
                    tolerance * 100.0,
                ));
            }
        }
    }
    for name in base.keys() {
        if !fresh_names.contains(&name.as_str()) {
            failures.push_str(&format!(
                "  {name}: present in baseline, missing from fresh run\n"
            ));
        }
    }
    if failures.is_empty() {
        Ok(report)
    } else {
        Err(format!("{report}\nREGRESSIONS:\n{failures}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec_bench::ExecBenchRow;
    use crate::exec_json;

    fn sample_row(name: &'static str, decode_ns: u64, fused_ns: u64) -> ExecBenchRow {
        ExecBenchRow {
            name,
            reps: 10,
            decode_ns,
            predecoded_ns: fused_ns + 100,
            fused_ns,
            threaded_ns: fused_ns / 2,
            cycles: 1000,
            insns: 900,
            fused_pairs: 12,
            hit_rate: 1.0,
            batched_blocks: 40,
            fused_pairs_icode: 9,
            fused_pairs_icode_unsched: 7,
        }
    }

    #[test]
    fn roundtrips_through_the_emitted_json() {
        let rows = vec![sample_row("hash", 4000, 1000), sample_row("ms", 9000, 2000)];
        let text = exec_json(&rows).pretty();
        let parsed = parse_exec_rows(&text);
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].name, "hash");
        assert!((parsed[0].speedup_fused - 4.0).abs() < 1e-9);
        assert!((parsed[1].speedup_threaded - 9.0).abs() < 1e-9);
        assert!((parsed[0].speedup_threaded_vs_fused - 2.0).abs() < 1e-9);
        assert_eq!(parsed[0].fused_pairs_icode_delta, 2);
    }

    #[test]
    fn passes_within_tolerance_and_reports() {
        let base = exec_json(&[sample_row("hash", 4000, 1000)]).pretty();
        // 4.0x baseline; fresh 3.2x is a 20% drop — inside 30%.
        let fresh = exec_json(&[sample_row("hash", 3200, 1000)]).pretty();
        let report = check_exec(&base, &fresh, DEFAULT_TOLERANCE).expect("within tolerance");
        assert!(report.contains("hash"));
    }

    #[test]
    fn fails_beyond_tolerance() {
        let base = exec_json(&[sample_row("hash", 4000, 1000)]).pretty();
        // Fresh 2.0x vs baseline 4.0x: a 50% drop.
        let fresh = exec_json(&[sample_row("hash", 2000, 1000)]).pretty();
        let err = check_exec(&base, &fresh, DEFAULT_TOLERANCE).expect_err("regression");
        assert!(err.contains("REGRESSIONS"), "{err}");
        assert!(err.contains("hash"), "{err}");
    }

    #[test]
    fn fails_on_missing_kernel_and_tolerates_new_ones() {
        let base = exec_json(&[sample_row("hash", 4000, 1000)]).pretty();
        let fresh = exec_json(&[sample_row("ms", 4000, 1000)]).pretty();
        let err = check_exec(&base, &fresh, DEFAULT_TOLERANCE).expect_err("missing kernel");
        assert!(err.contains("missing from fresh run"), "{err}");
        // A fresh-only kernel alone is fine when the baseline is empty.
        let empty = exec_json(&[]).pretty();
        assert!(check_exec(&empty, &fresh, DEFAULT_TOLERANCE).is_ok());
    }

    #[test]
    fn empty_fresh_is_an_error() {
        let base = exec_json(&[sample_row("hash", 4000, 1000)]).pretty();
        assert!(check_exec(&base, "{}", DEFAULT_TOLERANCE).is_err());
    }
}
