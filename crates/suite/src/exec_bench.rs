//! Execution-engine benchmark: decode-per-step vs predecoded vs
//! predecoded+fused vs direct-threaded.
//!
//! The paper's premise — pay translation cost once per code body, not
//! per execution — applies to the VM itself: the reference interpreter
//! re-fetches, bounds/liveness-checks, decodes, and cost-looks-up every
//! executed instruction, while the predecoded engine does all of that
//! once per sealed function, and the direct-threaded engine further
//! replaces the per-slot `match` with a handler-pointer jump and
//! charges fuel per basic block. This experiment drives the loop-heavy
//! suite kernels through all four engines, asserts they are
//! observationally identical (result checksum, modeled cycles, retired
//! instructions — the differential contract), and reports wall-clock
//! speedups. It also measures the ICODE fusion-aware scheduler's
//! effect: superinstruction pairs found in ICODE-generated code with
//! the scheduler on vs off. Emitted as `BENCH_exec.json` by the suite
//! binary.

use std::time::Instant;

use crate::programs::{benchmarks, BenchDef, BLUR_SMALL};
use tcc::{Backend, Config, ExecEngine, Session, Strategy};
use tcc_obs::json::Json;

/// The loop-heavy kernels measured (dispatch-bound inner loops).
pub const EXEC_BENCHES: [&str; 7] = ["hash", "ms", "cmp", "query", "binary", "dp", "blur"];

/// Wall-clock target for each engine's timed region, full mode.
const TARGET_NS: u64 = 80_000_000;

/// Engine variants compared.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Variant {
    Decode,
    Predecoded,
    Fused,
    Threaded,
}

impl Variant {
    fn engine(self) -> ExecEngine {
        match self {
            Variant::Decode => ExecEngine::DecodePerStep,
            Variant::Predecoded => ExecEngine::Predecoded { fuse: false },
            Variant::Fused => ExecEngine::Predecoded { fuse: true },
            Variant::Threaded => ExecEngine::Threaded,
        }
    }
}

/// One benchmark's engine comparison.
#[derive(Clone, Copy, Debug)]
pub struct ExecBenchRow {
    /// Benchmark name.
    pub name: &'static str,
    /// Timed repetitions of the dynamic function per engine.
    pub reps: u64,
    /// Wall-clock ns for the reference (decode-per-step) engine.
    pub decode_ns: u64,
    /// Wall-clock ns for the predecoded engine, fusion off.
    pub predecoded_ns: u64,
    /// Wall-clock ns for the predecoded engine, fusion on.
    pub fused_ns: u64,
    /// Wall-clock ns for the direct-threaded engine.
    pub threaded_ns: u64,
    /// Modeled cycles over the timed reps — identical across engines by
    /// the equivalence contract (asserted).
    pub cycles: u64,
    /// Instructions retired over the timed reps (identical, asserted).
    pub insns: u64,
    /// Superinstruction pairs in the fused engine's translations.
    pub fused_pairs: u64,
    /// Fused engine's dispatch hit rate (fast-path fraction).
    pub hit_rate: f64,
    /// Basic blocks whose fuel was charged in one batch by the threaded
    /// engine over the timed reps.
    pub batched_blocks: u64,
    /// Superinstruction pairs found in ICODE-backend translations with
    /// the fusion-aware scheduler ON.
    pub fused_pairs_icode: u64,
    /// Same measurement with the scheduler OFF (the delta is the
    /// scheduler's gain).
    pub fused_pairs_icode_unsched: u64,
}

impl ExecBenchRow {
    /// Wall-clock speedup of predecoding alone over decode-per-step.
    pub fn speedup_predecoded(&self) -> f64 {
        self.decode_ns as f64 / self.predecoded_ns.max(1) as f64
    }

    /// Wall-clock speedup of predecoding + fusion over decode-per-step.
    pub fn speedup_fused(&self) -> f64 {
        self.decode_ns as f64 / self.fused_ns.max(1) as f64
    }

    /// Wall-clock speedup of direct-threading over decode-per-step.
    pub fn speedup_threaded(&self) -> f64 {
        self.decode_ns as f64 / self.threaded_ns.max(1) as f64
    }

    /// Wall-clock speedup of direct-threading over the fused engine —
    /// the tentpole claim (>= 1.2x on most kernels).
    pub fn speedup_threaded_vs_fused(&self) -> f64 {
        self.fused_ns as f64 / self.threaded_ns.max(1) as f64
    }

    /// Extra superinstruction pairs the ICODE fusion-aware scheduler
    /// exposed (scheduler on minus off).
    pub fn fused_pairs_icode_delta(&self) -> i64 {
        self.fused_pairs_icode as i64 - self.fused_pairs_icode_unsched as i64
    }
}

struct Timed {
    ns: u64,
    cycles: u64,
    insns: u64,
    checksum: u64,
    fused_pairs: u64,
    hit_rate: f64,
    batched_blocks: u64,
}

fn make_session(b: &BenchDef, variant: Variant) -> Session {
    let mut s = Session::new(b.src, Config::default()).expect("benchmark source compiles");
    s.vm.set_engine(variant.engine());
    s
}

/// Sets up the workload, compiles the dynamic function, and times
/// `reps` executions of it (after one warm-up run that also populates
/// the translation cache, so the timed region measures steady state).
fn drive(b: &BenchDef, variant: Variant, reps: u64) -> Timed {
    let mut s = make_session(b, variant);
    (b.setup)(&mut s);
    let fp = (b.compile_dyn)(&mut s);
    let mut checksum = (b.run_dyn)(&mut s, fp);
    s.reset_counters();
    let t = Instant::now();
    for _ in 0..reps {
        checksum = checksum.wrapping_add((b.run_dyn)(&mut s, fp));
    }
    let ns = t.elapsed().as_nanos() as u64;
    checksum = checksum.wrapping_add((b.check)(&mut s));
    let exec = s.metrics().exec;
    Timed {
        ns,
        cycles: s.cycles(),
        insns: s.insns(),
        checksum,
        fused_pairs: exec.fused_pairs,
        hit_rate: exec.hit_rate(),
        batched_blocks: exec.batched_blocks,
    }
}

/// Superinstruction pairs found when the kernel's dynamic code comes
/// from the ICODE back end, with the fusion-aware scheduler on or off.
/// Run under the fused engine (the pairer) for one execution — pair
/// counts are a translation-time property, independent of rep count.
fn icode_fused_pairs(b: &BenchDef, schedule: bool) -> u64 {
    let config = Config {
        backend: Backend::Icode {
            strategy: Strategy::LinearScan,
        },
        icode_schedule: schedule,
        ..Config::default()
    };
    let mut s = Session::new(b.src, config).expect("benchmark source compiles");
    s.vm.set_engine(ExecEngine::Predecoded { fuse: true });
    (b.setup)(&mut s);
    let fp = (b.compile_dyn)(&mut s);
    (b.run_dyn)(&mut s, fp);
    s.metrics().exec.fused_pairs
}

/// Picks a rep count so the reference engine's timed region lands near
/// `target_ns` (doubling probe on a throwaway session). Deterministic
/// behavior across engines only needs the *same* rep count, which this
/// guarantees by being computed once per benchmark.
fn pick_reps(b: &BenchDef, target_ns: u64) -> u64 {
    let mut s = make_session(b, Variant::Decode);
    (b.setup)(&mut s);
    let fp = (b.compile_dyn)(&mut s);
    let mut n: u64 = 1;
    loop {
        let t = Instant::now();
        for _ in 0..n {
            (b.run_dyn)(&mut s, fp);
        }
        let el = t.elapsed().as_nanos() as u64;
        if el >= target_ns / 8 || n >= 1 << 20 {
            let per = (el / n).max(1);
            return (target_ns / per).clamp(1, 1 << 20);
        }
        n *= 2;
    }
}

/// Runs one benchmark through all four engines at `reps` repetitions,
/// asserting the observational-equivalence contract.
fn compare(b: &BenchDef, reps: u64) -> ExecBenchRow {
    let decode = drive(b, Variant::Decode, reps);
    let predecoded = drive(b, Variant::Predecoded, reps);
    let fused = drive(b, Variant::Fused, reps);
    let threaded = drive(b, Variant::Threaded, reps);
    for (label, t) in [
        ("predecoded", &predecoded),
        ("fused", &fused),
        ("threaded", &threaded),
    ] {
        assert_eq!(
            (t.checksum, t.cycles, t.insns),
            (decode.checksum, decode.cycles, decode.insns),
            "{}: {label} engine diverges from decode-per-step",
            b.name
        );
    }
    ExecBenchRow {
        name: b.name,
        reps,
        decode_ns: decode.ns,
        predecoded_ns: predecoded.ns,
        fused_ns: fused.ns,
        threaded_ns: threaded.ns,
        cycles: decode.cycles,
        insns: decode.insns,
        fused_pairs: fused.fused_pairs,
        hit_rate: fused.hit_rate,
        batched_blocks: threaded.batched_blocks,
        fused_pairs_icode: icode_fused_pairs(b, true),
        fused_pairs_icode_unsched: icode_fused_pairs(b, false),
    }
}

/// The benchmark definitions measured, in `EXEC_BENCHES` order.
fn defs() -> Vec<BenchDef> {
    let all = benchmarks(BLUR_SMALL);
    EXEC_BENCHES
        .iter()
        .map(|name| {
            all.iter()
                .find(|b| b.name == *name)
                .unwrap_or_else(|| panic!("no bench named {name}"))
                .clone()
        })
        .collect()
}

/// Full run: calibrated rep counts sized for stable wall-clock numbers.
pub fn exec_bench() -> Vec<ExecBenchRow> {
    defs()
        .iter()
        .map(|b| {
            eprintln!("exec: measuring {}...", b.name);
            compare(b, pick_reps(b, TARGET_NS))
        })
        .collect()
}

/// Smoke run: a few reps of every kernel through all four engines with
/// the equivalence asserts live — the CI differential gate. Timing
/// numbers are not meaningful at this size.
pub fn exec_bench_smoke() -> Vec<ExecBenchRow> {
    defs().iter().map(|b| compare(b, 3)).collect()
}

/// The comparison as JSON (`BENCH_exec.json`).
pub fn exec_json(rows: &[ExecBenchRow]) -> Json {
    let rows: Vec<Json> = rows
        .iter()
        .map(|r| {
            Json::obj(vec![
                ("name", Json::from(r.name)),
                ("reps", Json::from(r.reps)),
                ("decode_ns", Json::from(r.decode_ns)),
                ("predecoded_ns", Json::from(r.predecoded_ns)),
                ("fused_ns", Json::from(r.fused_ns)),
                ("threaded_ns", Json::from(r.threaded_ns)),
                ("cycles", Json::from(r.cycles)),
                ("insns", Json::from(r.insns)),
                ("fused_pairs", Json::from(r.fused_pairs)),
                ("batched_blocks", Json::from(r.batched_blocks)),
                ("fused_pairs_icode", Json::from(r.fused_pairs_icode)),
                (
                    "fused_pairs_icode_unsched",
                    Json::from(r.fused_pairs_icode_unsched),
                ),
                (
                    "fused_pairs_icode_delta",
                    Json::from(r.fused_pairs_icode_delta()),
                ),
                ("dispatch_hit_rate", Json::from(r.hit_rate)),
                ("speedup_predecoded", Json::from(r.speedup_predecoded())),
                ("speedup_fused", Json::from(r.speedup_fused())),
                ("speedup_threaded", Json::from(r.speedup_threaded())),
                (
                    "speedup_threaded_vs_fused",
                    Json::from(r.speedup_threaded_vs_fused()),
                ),
            ])
        })
        .collect();
    Json::obj(vec![
        ("experiment", Json::from("exec")),
        (
            "description",
            Json::from(
                "execution wall-clock: decode-per-step vs predecoded vs predecoded+fused \
                 vs direct-threaded (identical modeled cycles/insns asserted); \
                 fused_pairs_icode_* measure the ICODE fusion-aware scheduler",
            ),
        ),
        ("rows", Json::Arr(rows)),
    ])
}

/// Human-readable comparison table.
pub fn exec_report(rows: &[ExecBenchRow]) -> String {
    let mut out = String::new();
    out.push_str("Execution engines: wall-clock per kernel (identical modeled cycles)\n\n");
    out.push_str(
        "  bench     reps   decode (ns)    fused (ns)   threaded (ns)   predec   fused   thread   t/f     pairs   icodeD   hit\n",
    );
    for r in rows {
        out.push_str(&format!(
            "  {:7} {:6}   {:11}   {:11}   {:13}   {:5.2}x  {:5.2}x  {:5.2}x  {:5.2}x   {:5}   {:+6}   {:4.2}\n",
            r.name,
            r.reps,
            r.decode_ns,
            r.fused_ns,
            r.threaded_ns,
            r.speedup_predecoded(),
            r.speedup_fused(),
            r.speedup_threaded(),
            r.speedup_threaded_vs_fused(),
            r.fused_pairs,
            r.fused_pairs_icode_delta(),
            r.hit_rate,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engines_agree_on_a_kernel() {
        // One kernel end-to-end: compare() panics on any divergence in
        // checksum, cycles, or instruction count.
        let all = benchmarks(BLUR_SMALL);
        let b = all.iter().find(|b| b.name == "binary").unwrap();
        let row = compare(b, 3);
        assert_eq!(row.reps, 3);
        assert!(row.fused_pairs > 0, "fusion found no pairs: {row:?}");
        assert!(row.hit_rate > 0.9, "dispatch mostly fast: {row:?}");
        assert!(row.batched_blocks > 0, "threaded engine batched no blocks");
        assert!(
            row.fused_pairs_icode >= row.fused_pairs_icode_unsched,
            "scheduler must never lose pairs: {row:?}"
        );
    }

    #[test]
    fn json_has_rows_and_speedups() {
        let rows = vec![ExecBenchRow {
            name: "hash",
            reps: 10,
            decode_ns: 4000,
            predecoded_ns: 1500,
            fused_ns: 1000,
            threaded_ns: 500,
            cycles: 77,
            insns: 42,
            fused_pairs: 5,
            hit_rate: 0.99,
            batched_blocks: 12,
            fused_pairs_icode: 9,
            fused_pairs_icode_unsched: 7,
        }];
        let text = exec_json(&rows).to_string();
        for key in [
            "experiment",
            "decode_ns",
            "threaded_ns",
            "batched_blocks",
            "fused_pairs_icode",
            "fused_pairs_icode_delta",
            "speedup_predecoded",
            "speedup_fused",
            "speedup_threaded",
            "speedup_threaded_vs_fused",
            "dispatch_hit_rate",
        ] {
            assert!(text.contains(&format!("\"{key}\"")), "missing {key}");
        }
        assert!((rows[0].speedup_fused() - 4.0).abs() < 1e-12);
        assert!((rows[0].speedup_threaded() - 8.0).abs() < 1e-12);
        assert!((rows[0].speedup_threaded_vs_fused() - 2.0).abs() < 1e-12);
        assert_eq!(rows[0].fused_pairs_icode_delta(), 2);
    }
}
