//! Execution-engine benchmark: decode-per-step vs predecoded vs
//! predecoded+fused vs direct-threaded vs adaptive tiering.
//!
//! The paper's premise — pay translation cost once per code body, not
//! per execution — applies to the VM itself: the reference interpreter
//! re-fetches, bounds/liveness-checks, decodes, and cost-looks-up every
//! executed instruction, while the predecoded engine does all of that
//! once per sealed function, and the direct-threaded engine further
//! replaces the per-slot `match` with a handler-pointer jump and
//! charges fuel per basic block; the adaptive engine starts every
//! function on decode-per-step and climbs those tiers per function as
//! run counts cross its thresholds. This experiment drives the
//! loop-heavy suite kernels through all five engines, asserts they are
//! observationally identical (result checksum, modeled cycles, retired
//! instructions — the differential contract), and reports wall-clock
//! speedups. It also measures the ICODE fusion-aware scheduler's
//! effect: superinstruction pairs found in ICODE-generated code with
//! the scheduler on vs off. Emitted as `BENCH_exec.json` by the suite
//! binary.

use std::time::Instant;

use crate::programs::{benchmarks, BenchDef, BLUR_SMALL};
use tcc::{Backend, Config, ExecEngine, Session, Strategy};
use tcc_obs::json::Json;

/// The loop-heavy kernels measured (dispatch-bound inner loops). The
/// original seven come first; `heap`, `filter`, and `demux` joined when
/// the fusion-aware scheduler became measurable — their composed loops
/// carry assignments between a condition's producer and its branch,
/// which is exactly the adjacency the DAG scheduler recovers.
pub const EXEC_BENCHES: [&str; 10] = [
    "hash", "ms", "cmp", "query", "binary", "dp", "blur", "heap", "filter", "demux",
];

/// Wall-clock target for each engine's timed region, full mode.
const TARGET_NS: u64 = 80_000_000;

/// Engine variants compared.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Variant {
    Decode,
    Predecoded,
    Fused,
    Threaded,
    Adaptive,
}

impl Variant {
    fn engine(self) -> ExecEngine {
        match self {
            Variant::Decode => ExecEngine::DecodePerStep,
            Variant::Predecoded => ExecEngine::Predecoded { fuse: false },
            Variant::Fused => ExecEngine::Predecoded { fuse: true },
            Variant::Threaded => ExecEngine::Threaded,
            // Shipping defaults (Config::default's engine).
            Variant::Adaptive => ExecEngine::default(),
        }
    }
}

/// One benchmark's engine comparison.
#[derive(Clone, Debug)]
pub struct ExecBenchRow {
    /// Benchmark name.
    pub name: &'static str,
    /// Timed repetitions of the dynamic function per engine.
    pub reps: u64,
    /// Wall-clock ns for the reference (decode-per-step) engine.
    pub decode_ns: u64,
    /// Wall-clock ns for the predecoded engine, fusion off.
    pub predecoded_ns: u64,
    /// Wall-clock ns for the predecoded engine, fusion on.
    pub fused_ns: u64,
    /// Wall-clock ns for the direct-threaded engine.
    pub threaded_ns: u64,
    /// Wall-clock ns for the adaptive tiering engine (default
    /// thresholds; the timed region replays the cold-to-hot climb once
    /// per session, then steady state).
    pub adaptive_ns: u64,
    /// Tier levels gained by the adaptive engine over the whole
    /// session (warm-up plus timed reps).
    pub promotions: u64,
    /// Modeled cycles over the timed reps — identical across engines by
    /// the equivalence contract (asserted).
    pub cycles: u64,
    /// Instructions retired over the timed reps (identical, asserted).
    pub insns: u64,
    /// Superinstruction pairs in the fused engine's translations.
    pub fused_pairs: u64,
    /// Fused engine's dispatch hit rate (fast-path fraction).
    pub hit_rate: f64,
    /// Basic blocks whose fuel was charged in one batch by the threaded
    /// engine over the timed reps.
    pub batched_blocks: u64,
    /// Superinstruction pairs found in ICODE-backend translations with
    /// the fusion-aware scheduler ON.
    pub fused_pairs_icode: u64,
    /// Same measurement with the scheduler OFF (the delta is the
    /// scheduler's gain).
    pub fused_pairs_icode_unsched: u64,
    /// Superinstruction groups compiled by the threaded translator
    /// (run+jump, run+branch, pair, triple).
    pub superinstructions: u64,
    /// Fraction of the threaded engine's dispatches that entered a
    /// fused (superinstruction) handler — the superinstruction hit
    /// rate.
    pub fused_dispatch_rate: f64,
    /// Threaded dispatch-loop iterations per retired instruction
    /// (1.0 = one dispatch per instruction; lower is better; gated
    /// against the baseline by `exec-check`).
    pub dispatches_per_insn: f64,
    /// Top fused shapes (mnemonic groups like `"addiw+bne"`) and their
    /// translation-time counts from the threaded session, capped at
    /// [`PAIR_HISTOGRAM_TOP`].
    pub pair_histogram: Vec<(String, u64)>,
}

/// Shapes kept in each row's `pair_histogram`.
pub const PAIR_HISTOGRAM_TOP: usize = 16;

impl ExecBenchRow {
    /// Wall-clock speedup of predecoding alone over decode-per-step.
    pub fn speedup_predecoded(&self) -> f64 {
        self.decode_ns as f64 / self.predecoded_ns.max(1) as f64
    }

    /// Wall-clock speedup of predecoding + fusion over decode-per-step.
    pub fn speedup_fused(&self) -> f64 {
        self.decode_ns as f64 / self.fused_ns.max(1) as f64
    }

    /// Wall-clock speedup of direct-threading over decode-per-step.
    pub fn speedup_threaded(&self) -> f64 {
        self.decode_ns as f64 / self.threaded_ns.max(1) as f64
    }

    /// Wall-clock speedup of adaptive tiering over decode-per-step.
    pub fn speedup_adaptive(&self) -> f64 {
        self.decode_ns as f64 / self.adaptive_ns.max(1) as f64
    }

    /// Wall-clock speedup of direct-threading over the fused engine —
    /// the tentpole claim (>= 1.2x on most kernels).
    pub fn speedup_threaded_vs_fused(&self) -> f64 {
        self.fused_ns as f64 / self.threaded_ns.max(1) as f64
    }

    /// Extra superinstruction pairs the ICODE fusion-aware scheduler
    /// exposed (scheduler on minus off).
    pub fn fused_pairs_icode_delta(&self) -> i64 {
        self.fused_pairs_icode as i64 - self.fused_pairs_icode_unsched as i64
    }
}

struct Timed {
    ns: u64,
    cycles: u64,
    insns: u64,
    checksum: u64,
    fused_pairs: u64,
    hit_rate: f64,
    batched_blocks: u64,
    promotions: u64,
    superinstructions: u64,
    fused_dispatch_rate: f64,
    dispatches_per_insn: f64,
    shapes: Vec<(String, u64)>,
}

fn make_session(b: &BenchDef, variant: Variant) -> Session {
    let mut s = Session::new(b.src, Config::default()).expect("benchmark source compiles");
    s.vm.set_engine(variant.engine());
    s
}

/// Timing chunks per engine: the reported total is the fastest
/// observed per-rep cost scaled by the rep count, so a scheduler stall
/// has to span every chunk (not just land somewhere in one monolithic
/// region) to poison the cell. The min is the standard estimator for a
/// fixed-work microbenchmark — noise only ever adds time. Chunks are
/// interleaved round-robin across the engines (see [`compare`]) so a
/// stall long enough to span several chunks lands on every engine's
/// measurement instead of wiping out one engine's whole cell; at
/// multi-millisecond chunk sizes the cache disturbance from switching
/// sessions at chunk boundaries is noise-level.
const TIMING_CHUNKS: u64 = 16;

/// One engine's in-flight measurement: its warmed session and the
/// best per-rep cost observed so far.
struct Prepared {
    s: Session,
    fp: u64,
    checksum: u64,
    done: u64,
    best_per_rep: f64,
}

/// Sets up the workload, compiles the dynamic function, and runs it
/// once untimed (populating the translation cache, so the timed chunks
/// measure steady state).
fn prepare(b: &BenchDef, variant: Variant) -> Prepared {
    let mut s = make_session(b, variant);
    (b.setup)(&mut s);
    let fp = (b.compile_dyn)(&mut s);
    let checksum = (b.run_dyn)(&mut s, fp);
    s.reset_counters();
    Prepared {
        s,
        fp,
        checksum,
        done: 0,
        best_per_rep: f64::INFINITY,
    }
}

/// Times one chunk: the reps from `p.done` up to `until`.
fn run_chunk(b: &BenchDef, p: &mut Prepared, until: u64) {
    let n = until - p.done;
    p.done = until;
    let t = Instant::now();
    for _ in 0..n {
        p.checksum = p.checksum.wrapping_add((b.run_dyn)(&mut p.s, p.fp));
    }
    let per_rep = t.elapsed().as_nanos() as f64 / n.max(1) as f64;
    p.best_per_rep = p.best_per_rep.min(per_rep);
}

/// Closes out one engine's measurement after every chunk has run.
fn finish(b: &BenchDef, mut p: Prepared, reps: u64) -> Timed {
    let ns = (p.best_per_rep * reps as f64) as u64;
    let checksum = p.checksum.wrapping_add((b.check)(&mut p.s));
    let m = p.s.metrics();
    Timed {
        ns,
        cycles: p.s.cycles(),
        insns: p.s.insns(),
        checksum,
        fused_pairs: m.exec.fused_pairs,
        hit_rate: m.exec.hit_rate(),
        batched_blocks: m.exec.batched_blocks,
        promotions: m.adaptive.promotions,
        superinstructions: m.exec.superinstructions,
        fused_dispatch_rate: m.exec.fused_dispatch_rate(),
        dispatches_per_insn: m.exec.dispatches_per_insn(),
        shapes: p.s.fused_shape_histogram(),
    }
}

/// Superinstruction pairs found when the kernel's dynamic code comes
/// from the ICODE back end, with the fusion-aware scheduler on or off.
/// Run under the fused engine (the pairer) for one execution — pair
/// counts are a translation-time property, independent of rep count.
fn icode_fused_pairs(b: &BenchDef, schedule: bool) -> u64 {
    let config = Config {
        backend: Backend::Icode {
            strategy: Strategy::LinearScan,
        },
        icode_schedule: schedule,
        ..Config::default()
    };
    let mut s = Session::new(b.src, config).expect("benchmark source compiles");
    s.vm.set_engine(ExecEngine::Predecoded { fuse: true });
    (b.setup)(&mut s);
    let fp = (b.compile_dyn)(&mut s);
    (b.run_dyn)(&mut s, fp);
    s.metrics().exec.fused_pairs
}

/// Picks a rep count so the reference engine's timed region lands near
/// `target_ns` (doubling probe on a throwaway session). Deterministic
/// behavior across engines only needs the *same* rep count, which this
/// guarantees by being computed once per benchmark.
fn pick_reps(b: &BenchDef, target_ns: u64) -> u64 {
    let mut s = make_session(b, Variant::Decode);
    (b.setup)(&mut s);
    let fp = (b.compile_dyn)(&mut s);
    let mut n: u64 = 1;
    loop {
        let t = Instant::now();
        for _ in 0..n {
            (b.run_dyn)(&mut s, fp);
        }
        let el = t.elapsed().as_nanos() as u64;
        if el >= target_ns / 8 || n >= 1 << 20 {
            let per = (el / n).max(1);
            return (target_ns / per).clamp(1, 1 << 20);
        }
        n *= 2;
    }
}

/// Runs one benchmark through all five engines at `reps` repetitions,
/// asserting the observational-equivalence contract.
fn compare(b: &BenchDef, reps: u64) -> ExecBenchRow {
    const VARIANTS: [Variant; 5] = [
        Variant::Decode,
        Variant::Predecoded,
        Variant::Fused,
        Variant::Threaded,
        Variant::Adaptive,
    ];
    let mut prepared: Vec<Prepared> = VARIANTS.iter().map(|&v| prepare(b, v)).collect();
    let chunks = reps.clamp(1, TIMING_CHUNKS);
    for c in 0..chunks {
        // Spread `reps` exactly across the chunks (sizes differ by at
        // most one), so modeled counters stay identical across engines.
        let until = reps * (c + 1) / chunks;
        for p in prepared.iter_mut() {
            run_chunk(b, p, until);
        }
    }
    let mut timed = prepared.into_iter().map(|p| finish(b, p, reps));
    let decode = timed.next().unwrap();
    let predecoded = timed.next().unwrap();
    let fused = timed.next().unwrap();
    let threaded = timed.next().unwrap();
    let adaptive = timed.next().unwrap();
    for (label, t) in [
        ("predecoded", &predecoded),
        ("fused", &fused),
        ("threaded", &threaded),
        ("adaptive", &adaptive),
    ] {
        assert_eq!(
            (t.checksum, t.cycles, t.insns),
            (decode.checksum, decode.cycles, decode.insns),
            "{}: {label} engine diverges from decode-per-step",
            b.name
        );
    }
    ExecBenchRow {
        name: b.name,
        reps,
        decode_ns: decode.ns,
        predecoded_ns: predecoded.ns,
        fused_ns: fused.ns,
        threaded_ns: threaded.ns,
        adaptive_ns: adaptive.ns,
        promotions: adaptive.promotions,
        cycles: decode.cycles,
        insns: decode.insns,
        fused_pairs: fused.fused_pairs,
        hit_rate: fused.hit_rate,
        batched_blocks: threaded.batched_blocks,
        fused_pairs_icode: icode_fused_pairs(b, true),
        fused_pairs_icode_unsched: icode_fused_pairs(b, false),
        superinstructions: threaded.superinstructions,
        fused_dispatch_rate: threaded.fused_dispatch_rate,
        dispatches_per_insn: threaded.dispatches_per_insn,
        pair_histogram: {
            let mut shapes = threaded.shapes;
            shapes.truncate(PAIR_HISTOGRAM_TOP);
            shapes
        },
    }
}

/// The benchmark definitions measured, in `EXEC_BENCHES` order.
fn defs() -> Vec<BenchDef> {
    let all = benchmarks(BLUR_SMALL);
    EXEC_BENCHES
        .iter()
        .map(|name| {
            all.iter()
                .find(|b| b.name == *name)
                .unwrap_or_else(|| panic!("no bench named {name}"))
                .clone()
        })
        .collect()
}

/// Full run: calibrated rep counts sized for stable wall-clock numbers.
pub fn exec_bench() -> Vec<ExecBenchRow> {
    defs()
        .iter()
        .map(|b| {
            eprintln!("exec: measuring {}...", b.name);
            compare(b, pick_reps(b, TARGET_NS))
        })
        .collect()
}

/// Smoke run: a few reps of every kernel through all five engines with
/// the equivalence asserts live — the CI differential gate. Timing
/// numbers are not meaningful at this size. Additionally asserts the
/// superinstruction compiler is alive on every loop kernel: at least
/// one group compiled and at least one fused dispatch executed.
pub fn exec_bench_smoke() -> Vec<ExecBenchRow> {
    defs()
        .iter()
        .map(|b| {
            let row = compare(b, 3);
            assert!(
                row.superinstructions >= 1,
                "{}: threaded translator compiled no superinstructions",
                b.name
            );
            assert!(
                row.fused_dispatch_rate > 0.0,
                "{}: no dispatch entered a fused handler",
                b.name
            );
            assert!(
                row.dispatches_per_insn > 0.0 && row.dispatches_per_insn < 1.0,
                "{}: dispatch-per-insn ratio not reduced ({})",
                b.name,
                row.dispatches_per_insn
            );
            assert!(
                !row.pair_histogram.is_empty(),
                "{}: empty superinstruction shape histogram",
                b.name
            );
            row
        })
        .collect()
}

/// The comparison as JSON (`BENCH_exec.json`).
pub fn exec_json(rows: &[ExecBenchRow]) -> Json {
    let rows: Vec<Json> = rows
        .iter()
        .map(|r| {
            Json::obj(vec![
                ("name", Json::from(r.name)),
                ("reps", Json::from(r.reps)),
                ("decode_ns", Json::from(r.decode_ns)),
                ("predecoded_ns", Json::from(r.predecoded_ns)),
                ("fused_ns", Json::from(r.fused_ns)),
                ("threaded_ns", Json::from(r.threaded_ns)),
                ("adaptive_ns", Json::from(r.adaptive_ns)),
                ("promotions", Json::from(r.promotions)),
                ("cycles", Json::from(r.cycles)),
                ("insns", Json::from(r.insns)),
                ("fused_pairs", Json::from(r.fused_pairs)),
                ("batched_blocks", Json::from(r.batched_blocks)),
                ("fused_pairs_icode", Json::from(r.fused_pairs_icode)),
                (
                    "fused_pairs_icode_unsched",
                    Json::from(r.fused_pairs_icode_unsched),
                ),
                (
                    "fused_pairs_icode_delta",
                    Json::from(r.fused_pairs_icode_delta()),
                ),
                ("superinstructions", Json::from(r.superinstructions)),
                ("fused_dispatch_rate", Json::from(r.fused_dispatch_rate)),
                ("dispatches_per_insn", Json::from(r.dispatches_per_insn)),
                (
                    "pair_histogram",
                    Json::Arr(
                        r.pair_histogram
                            .iter()
                            .map(|(shape, count)| {
                                Json::obj(vec![
                                    ("shape", Json::from(shape.as_str())),
                                    ("count", Json::from(*count)),
                                ])
                            })
                            .collect(),
                    ),
                ),
                ("dispatch_hit_rate", Json::from(r.hit_rate)),
                ("speedup_predecoded", Json::from(r.speedup_predecoded())),
                ("speedup_fused", Json::from(r.speedup_fused())),
                ("speedup_threaded", Json::from(r.speedup_threaded())),
                ("speedup_adaptive", Json::from(r.speedup_adaptive())),
                (
                    "speedup_threaded_vs_fused",
                    Json::from(r.speedup_threaded_vs_fused()),
                ),
            ])
        })
        .collect();
    Json::obj(vec![
        ("experiment", Json::from("exec")),
        (
            "description",
            Json::from(
                "execution wall-clock: decode-per-step vs predecoded vs predecoded+fused \
                 vs direct-threaded vs adaptive tiering (identical modeled cycles/insns \
                 asserted); fused_pairs_icode_* measure the ICODE fusion-aware scheduler",
            ),
        ),
        ("rows", Json::Arr(rows)),
    ])
}

/// Human-readable comparison table.
pub fn exec_report(rows: &[ExecBenchRow]) -> String {
    let mut out = String::new();
    out.push_str("Execution engines: wall-clock per kernel (identical modeled cycles)\n\n");
    out.push_str(
        "  bench     reps   decode (ns)    fused (ns)   threaded (ns)   predec   fused   thread   adapt   t/f     promo   pairs   icodeD   hit    super   srate   d/i\n",
    );
    for r in rows {
        out.push_str(&format!(
            "  {:7} {:6}   {:11}   {:11}   {:13}   {:5.2}x  {:5.2}x  {:5.2}x  {:5.2}x  {:5.2}x   {:5}   {:5}   {:+6}   {:4.2}   {:5}   {:5.2}   {:5.2}\n",
            r.name,
            r.reps,
            r.decode_ns,
            r.fused_ns,
            r.threaded_ns,
            r.speedup_predecoded(),
            r.speedup_fused(),
            r.speedup_threaded(),
            r.speedup_adaptive(),
            r.speedup_threaded_vs_fused(),
            r.promotions,
            r.fused_pairs,
            r.fused_pairs_icode_delta(),
            r.hit_rate,
            r.superinstructions,
            r.fused_dispatch_rate,
            r.dispatches_per_insn,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engines_agree_on_a_kernel() {
        // One kernel end-to-end: compare() panics on any divergence in
        // checksum, cycles, or instruction count.
        let all = benchmarks(BLUR_SMALL);
        let b = all.iter().find(|b| b.name == "binary").unwrap();
        let row = compare(b, 3);
        assert_eq!(row.reps, 3);
        assert!(
            row.promotions > 0,
            "adaptive engine promoted nothing: {row:?}"
        );
        assert!(row.fused_pairs > 0, "fusion found no pairs: {row:?}");
        assert!(row.hit_rate > 0.9, "dispatch mostly fast: {row:?}");
        assert!(row.batched_blocks > 0, "threaded engine batched no blocks");
        assert!(
            row.fused_pairs_icode >= row.fused_pairs_icode_unsched,
            "scheduler must never lose pairs: {row:?}"
        );
        assert!(
            row.superinstructions > 0,
            "threaded translator compiled no superinstructions: {row:?}"
        );
        assert!(
            row.fused_dispatch_rate > 0.0 && row.fused_dispatch_rate <= 1.0,
            "fused dispatch rate out of range: {row:?}"
        );
        assert!(
            row.dispatches_per_insn > 0.0 && row.dispatches_per_insn < 1.0,
            "superinstructions must cut dispatches below one per insn: {row:?}"
        );
        assert!(!row.pair_histogram.is_empty(), "empty histogram: {row:?}");
    }

    #[test]
    fn json_has_rows_and_speedups() {
        let rows = vec![ExecBenchRow {
            name: "hash",
            reps: 10,
            decode_ns: 4000,
            predecoded_ns: 1500,
            fused_ns: 1000,
            threaded_ns: 500,
            adaptive_ns: 800,
            promotions: 4,
            cycles: 77,
            insns: 42,
            fused_pairs: 5,
            hit_rate: 0.99,
            batched_blocks: 12,
            fused_pairs_icode: 9,
            fused_pairs_icode_unsched: 7,
            superinstructions: 6,
            fused_dispatch_rate: 0.4,
            dispatches_per_insn: 0.6,
            pair_histogram: vec![("addiw+bne".into(), 30), ("addw+j".into(), 10)],
        }];
        let text = exec_json(&rows).to_string();
        for key in [
            "experiment",
            "decode_ns",
            "threaded_ns",
            "adaptive_ns",
            "promotions",
            "speedup_adaptive",
            "batched_blocks",
            "fused_pairs_icode",
            "fused_pairs_icode_delta",
            "speedup_predecoded",
            "speedup_fused",
            "speedup_threaded",
            "speedup_threaded_vs_fused",
            "dispatch_hit_rate",
            "superinstructions",
            "fused_dispatch_rate",
            "dispatches_per_insn",
            "pair_histogram",
            "shape",
        ] {
            assert!(text.contains(&format!("\"{key}\"")), "missing {key}");
        }
        assert!(text.contains("addiw+bne"), "histogram shapes serialized");
        assert!((rows[0].speedup_fused() - 4.0).abs() < 1e-12);
        assert!((rows[0].speedup_threaded() - 8.0).abs() < 1e-12);
        assert!((rows[0].speedup_adaptive() - 5.0).abs() < 1e-12);
        assert!((rows[0].speedup_threaded_vs_fused() - 2.0).abs() < 1e-12);
        assert_eq!(rows[0].fused_pairs_icode_delta(), 2);
    }
}
