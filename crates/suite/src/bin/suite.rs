//! Command-line harness: regenerates every table and figure.
//!
//! Usage:
//!
//! ```text
//! suite [all|table1|figure4|figure5|figure6|figure7|blur|sensitivity|smoke|cache|exec|adaptive|serve|persist|exec-check] [--small] [--smoke] [--json]
//! ```
//!
//! With `--json`, each measured experiment also writes a machine-readable
//! `BENCH_<experiment>.json` file into the current directory (see
//! DESIGN.md for the schema). `smoke` runs one small benchmark through
//! all five compilation paths (two static, three dynamic) and exits
//! non-zero if any path disagrees — the CI gate. `exec` compares the
//! four execution engines (decode-per-step, predecoded, predecoded +
//! fused, direct-threaded) on the loop-heavy kernels; `exec --smoke`
//! runs the same comparison at a few reps with the equivalence asserts
//! live. `adaptive` sweeps reuse counts through the fixed engines and
//! the adaptive tiering engine — both synchronous and with the
//! background translation worker — each timed region starting from a
//! cold translation cache (`BENCH_adaptive.json`, including per-run
//! cold max/p99 tail columns); `adaptive --smoke` runs a tiny sweep
//! with the equivalence asserts live. `serve` replays a seeded Zipfian
//! compile/execute stream over pools of 1, 2, and 4 worker sessions
//! sharing one artifact cache, reporting throughput, p50/p99/p999
//! latency, hit rate, and compiles-per-unique (`BENCH_serve.json`);
//! the cross-pool replay digest is asserted bit-identical, and `serve
//! --smoke` runs a short replay with the same asserts — the CI
//! concurrency gate. `persist` measures the warm-start economics of
//! the persistent on-disk code cache: per kernel, a cold process
//! compiles a cell sweep against a fresh store and exits, then a warm
//! process on the same store path answers the identical sweep from
//! disk (`BENCH_persist.json`); the bench asserts the warm process
//! recompiled nothing and produced bit-identical results, and
//! `persist --smoke` runs a two-cell sweep with the same asserts — the
//! CI durability gate. `exec-check [fresh [baseline]]`
//! compares a freshly written `BENCH_exec.json` (default
//! `./BENCH_exec.json`) against a committed baseline (default
//! `baselines/BENCH_exec.json`) and exits non-zero when any gated
//! speedup column (fused, threaded, adaptive) regresses more than 30%
//! on any kernel; when the sibling `BENCH_adaptive.json` files exist
//! on both sides it also gates the tiering pipeline's
//! `tail_p99_improvement` column, at the looser 50% tail tolerance
//! (p99 ratios carry tail noise on both sides; missing files or a
//! pre-tail baseline warn and skip), and when the sibling
//! `BENCH_serve.json` files exist it gates serve throughput the same
//! way, serve p99 at its own wider 75% tolerance (the replay tail is
//! bimodal — see `SERVE_TAIL_TOLERANCE`), plus the service's absolute
//! bounds (largest-pool hit rate and compiles-per-unique); and when
//! the sibling `BENCH_persist.json` files exist it gates each
//! kernel's warm-start speedup, relatively at the 50% tail tolerance
//! and absolutely against the 5x floor (`PERSIST_MIN_SPEEDUP`). If any
//! `--json` output file
//! cannot be written the remaining files are still written and the
//! run exits non-zero naming every failure.

use tcc_obs::json::Json;
use tcc_suite::{
    adaptive_bench, adaptive_bench_smoke, adaptive_json, adaptive_report, benchmarks, cache_bench,
    cache_json, cache_report, check_adaptive, check_exec, check_persist, check_serve, exec_bench,
    exec_bench_smoke, exec_json, exec_report, json_report, measure, ns_per_cycle, persist_bench,
    persist_json, persist_report, report, serve_bench, serve_bench_smoke, serve_json, serve_report,
    DynBackend, Measurement, PersistBenchOptions, BLUR_FULL, BLUR_SMALL, DEFAULT_TOLERANCE,
    TAIL_TOLERANCE,
};

/// Writes one `BENCH_<name>.json`. An unwritable path (read-only cwd,
/// ENOSPC, …) is not a panic: the failure is recorded so the caller
/// can finish writing the remaining files and exit non-zero naming
/// everything that failed — measured results that *did* serialize are
/// never thrown away because a sibling file could not be.
fn write_json(name: &str, j: &Json, failed: &mut Vec<String>) {
    let path = format!("BENCH_{name}.json");
    match std::fs::write(&path, j.pretty()) {
        Ok(()) => eprintln!("wrote {path}"),
        Err(e) => {
            eprintln!("error: cannot write {path}: {e}");
            failed.push(path);
        }
    }
}

/// Exits non-zero listing every output file that failed to write; a
/// no-op when all writes succeeded.
fn exit_on_write_failures(failed: &[String]) {
    if !failed.is_empty() {
        eprintln!("error: failed to write: {}", failed.join(", "));
        std::process::exit(1);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let what = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(String::as_str)
        .unwrap_or("all");
    let small = args.iter().any(|a| a == "--small");
    let json = args.iter().any(|a| a == "--json");
    let smoke = args.iter().any(|a| a == "--smoke");
    let known = [
        "all",
        "table1",
        "figure4",
        "figure5",
        "figure6",
        "figure7",
        "blur",
        "sensitivity",
        "smoke",
        "cache",
        "exec",
        "adaptive",
        "serve",
        "persist",
        "exec-check",
    ];
    if !known.contains(&what) {
        eprintln!("unknown experiment {what}; try {}", known.join("|"));
        std::process::exit(2);
    }
    let blur_dims = if small { BLUR_SMALL } else { BLUR_FULL };
    let mut failed_writes: Vec<String> = Vec::new();

    if what == "smoke" {
        // One small benchmark, every compilation path; measure() panics
        // if the two static and three dynamic paths disagree.
        let b = benchmarks(BLUR_SMALL)
            .into_iter()
            .find(|b| b.name == "pow")
            .expect("pow bench");
        let m = measure(&b);
        println!(
            "smoke ok: {} — static(lcc)={}cyc static(gcc)={}cyc vcode={}cyc icode-ls={}cyc icode-gc={}cyc",
            m.name,
            m.static_naive_cycles,
            m.static_opt_cycles,
            m.dynamic[DynBackend::Vcode as usize].run_cycles,
            m.dynamic[DynBackend::IcodeLinear as usize].run_cycles,
            m.dynamic[DynBackend::IcodeColor as usize].run_cycles,
        );
        return;
    }

    if what == "exec-check" {
        // Regression gate over the speedup ratios (wall-clock ns are
        // machine-dependent; the ratios are not).
        let positional: Vec<&String> = args
            .iter()
            .filter(|a| !a.starts_with("--") && a.as_str() != "exec-check")
            .collect();
        let fresh_path = positional
            .first()
            .map(|s| s.as_str())
            .unwrap_or("BENCH_exec.json");
        let base_path = positional
            .get(1)
            .map(|s| s.as_str())
            .unwrap_or("baselines/BENCH_exec.json");
        let read = |p: &str| {
            std::fs::read_to_string(p).unwrap_or_else(|e| {
                eprintln!("exec-check: cannot read {p}: {e}");
                std::process::exit(2);
            })
        };
        let (fresh, base) = (read(fresh_path), read(base_path));
        let mut failed = false;
        match check_exec(&base, &fresh, DEFAULT_TOLERANCE) {
            Ok(report) => print!("{report}"),
            Err(report) => {
                eprint!("{report}");
                failed = true;
            }
        }
        // Tail-latency gate over the tiering pipeline's sweep. The
        // adaptive files live next to the exec ones under the same
        // naming scheme; when either side is missing (a checkout
        // predating the background worker, or a run that only
        // regenerated BENCH_exec.json) the gate warns and skips
        // rather than failing.
        let fresh_adaptive = fresh_path.replace("exec", "adaptive");
        let base_adaptive = base_path.replace("exec", "adaptive");
        match (
            std::fs::read_to_string(&fresh_adaptive),
            std::fs::read_to_string(&base_adaptive),
        ) {
            (Ok(fresh), Ok(base)) => match check_adaptive(&base, &fresh, TAIL_TOLERANCE) {
                Ok(report) => print!("\n{report}"),
                Err(report) => {
                    eprint!("\n{report}");
                    failed = true;
                }
            },
            (fresh, base) => {
                for (path, r) in [(&fresh_adaptive, &fresh), (&base_adaptive, &base)] {
                    if let Err(e) = r {
                        eprintln!(
                            "warning: exec-check: cannot read {path}: {e} — tail gate skipped"
                        );
                    }
                }
            }
        }
        // Serve-pool gate: same sibling naming scheme as the adaptive
        // files; missing on either side (a checkout predating the
        // serve subsystem) warns and skips.
        let fresh_serve = fresh_path.replace("exec", "serve");
        let base_serve = base_path.replace("exec", "serve");
        match (
            std::fs::read_to_string(&fresh_serve),
            std::fs::read_to_string(&base_serve),
        ) {
            (Ok(fresh), Ok(base)) => match check_serve(&base, &fresh, TAIL_TOLERANCE) {
                Ok(report) => print!("\n{report}"),
                Err(report) => {
                    eprint!("\n{report}");
                    failed = true;
                }
            },
            (fresh, base) => {
                for (path, r) in [(&fresh_serve, &fresh), (&base_serve, &base)] {
                    if let Err(e) = r {
                        eprintln!(
                            "warning: exec-check: cannot read {path}: {e} — serve gate skipped"
                        );
                    }
                }
            }
        }
        // Persist gate: same sibling naming scheme; missing on either
        // side (a checkout predating the persistent store) warns and
        // skips.
        let fresh_persist = fresh_path.replace("exec", "persist");
        let base_persist = base_path.replace("exec", "persist");
        match (
            std::fs::read_to_string(&fresh_persist),
            std::fs::read_to_string(&base_persist),
        ) {
            (Ok(fresh), Ok(base)) => match check_persist(&base, &fresh, TAIL_TOLERANCE) {
                Ok(report) => print!("\n{report}"),
                Err(report) => {
                    eprint!("\n{report}");
                    failed = true;
                }
            },
            (fresh, base) => {
                for (path, r) in [(&fresh_persist, &fresh), (&base_persist, &base)] {
                    if let Err(e) = r {
                        eprintln!(
                            "warning: exec-check: cannot read {path}: {e} — persist gate skipped"
                        );
                    }
                }
            }
        }
        if failed {
            std::process::exit(1);
        }
        return;
    }

    if what == "persist" {
        // Cold-vs-warm restart economics of the on-disk store. The
        // warm process's structural asserts (all disk hits, zero
        // recompiles, bit-identical results) are live at both sizes;
        // --smoke keeps the sweep to two cells per kernel for CI.
        let opts = if smoke {
            PersistBenchOptions::smoke()
        } else {
            PersistBenchOptions::full()
        };
        let rows = persist_bench(&opts);
        if json {
            write_json("persist", &persist_json(&rows), &mut failed_writes);
        }
        print!("{}", persist_report(&rows));
        exit_on_write_failures(&failed_writes);
        return;
    }

    if what == "serve" {
        // Multi-tenant pool replay. The cross-pool differential (same
        // replay digest at every pool size) asserts inside the bench;
        // --smoke keeps the stream short for CI.
        let rows = if smoke {
            serve_bench_smoke()
        } else {
            serve_bench()
        };
        if json {
            write_json("serve", &serve_json(&rows), &mut failed_writes);
        }
        print!("{}", serve_report(&rows));
        exit_on_write_failures(&failed_writes);
        return;
    }

    if what == "adaptive" {
        // Reuse-count sweep: cold-start translate+run cost per engine,
        // with the cross-engine equivalence asserts always live.
        let rows = if smoke {
            adaptive_bench_smoke()
        } else {
            adaptive_bench()
        };
        if json {
            write_json("adaptive", &adaptive_json(&rows), &mut failed_writes);
        }
        print!("{}", adaptive_report(&rows));
        exit_on_write_failures(&failed_writes);
        return;
    }

    if what == "exec" {
        // Engine differential + wall-clock comparison. The equivalence
        // asserts (checksum/cycles/insns across engines) are always
        // live; --smoke keeps rep counts tiny for CI.
        let rows = if smoke {
            exec_bench_smoke()
        } else {
            exec_bench()
        };
        if json {
            write_json("exec", &exec_json(&rows), &mut failed_writes);
        }
        print!("{}", exec_report(&rows));
        exit_on_write_failures(&failed_writes);
        return;
    }

    eprintln!("calibrating interpreter...");
    let nspc = ns_per_cycle();
    eprintln!("calibration: {nspc:.2} ns per VM cycle");

    let need_bench = matches!(what, "all" | "figure4" | "figure5" | "figure6" | "figure7");
    let ms: Vec<Measurement> = if need_bench {
        benchmarks(blur_dims)
            .iter()
            .map(|b| {
                eprintln!("measuring {} ({})...", b.name, b.style);
                measure(b)
            })
            .collect()
    } else {
        Vec::new()
    };

    match what {
        "table1" => {
            if json {
                write_json(
                    "table1",
                    &json_report::table1_json(nspc, 250, 100),
                    &mut failed_writes,
                );
            }
            print!("{}", report::table1(nspc, 250, 100));
        }
        "figure4" => {
            if json {
                write_json(
                    "figure4",
                    &json_report::figure4_json(&ms),
                    &mut failed_writes,
                );
            }
            print!("{}", report::figure4(&ms));
        }
        "figure5" => {
            if json {
                write_json(
                    "figure5",
                    &json_report::figure5_json(&ms, nspc),
                    &mut failed_writes,
                );
            }
            print!("{}", report::figure5(&ms, nspc));
        }
        "figure6" => {
            if json {
                write_json(
                    "figure6",
                    &json_report::figure6_json(&ms, nspc),
                    &mut failed_writes,
                );
            }
            print!("{}", report::figure6(&ms, nspc));
        }
        "figure7" => {
            if json {
                write_json(
                    "figure7",
                    &json_report::figure7_json(&ms, nspc),
                    &mut failed_writes,
                );
            }
            print!("{}", report::figure7(&ms, nspc));
        }
        "sensitivity" => {
            print!("{}", report::sensitivity(&benchmarks(blur_dims)));
        }
        "cache" => {
            let rows = cache_bench();
            if json {
                write_json("cache", &cache_json(&rows), &mut failed_writes);
            }
            print!("{}", cache_report(&rows));
        }
        "blur" => {
            let b = benchmarks(blur_dims)
                .into_iter()
                .find(|b| b.name == "blur")
                .expect("blur");
            eprintln!("measuring blur...");
            let m = measure(&b);
            print!("{}", report::blur_report(&m, nspc));
        }
        "all" => {
            if json {
                write_json(
                    "table1",
                    &json_report::table1_json(nspc, 250, 100),
                    &mut failed_writes,
                );
                write_json(
                    "figure4",
                    &json_report::figure4_json(&ms),
                    &mut failed_writes,
                );
                write_json(
                    "figure5",
                    &json_report::figure5_json(&ms, nspc),
                    &mut failed_writes,
                );
                write_json(
                    "figure6",
                    &json_report::figure6_json(&ms, nspc),
                    &mut failed_writes,
                );
                write_json(
                    "figure7",
                    &json_report::figure7_json(&ms, nspc),
                    &mut failed_writes,
                );
            }
            println!("{}", report::table1(nspc, 250, 100));
            println!("{}", report::figure4(&ms));
            println!("{}", report::figure5(&ms, nspc));
            println!("{}", report::figure6(&ms, nspc));
            println!("{}", report::figure7(&ms, nspc));
            if let Some(m) = ms.iter().find(|m| m.name == "blur") {
                println!("{}", report::blur_report(m, nspc));
            }
            println!();
            println!("{}", report::sensitivity(&benchmarks(blur_dims)));
        }
        _ => unreachable!("validated above"),
    }
    exit_on_write_failures(&failed_writes);
}
