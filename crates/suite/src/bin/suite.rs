//! Command-line harness: regenerates every table and figure.
//!
//! Usage: `suite [all|table1|figure4|figure5|figure6|figure7|blur] [--small]`

use tcc_suite::{benchmarks, measure, ns_per_cycle, report, Measurement, BLUR_FULL, BLUR_SMALL};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let what = args.first().map(String::as_str).unwrap_or("all");
    let small = args.iter().any(|a| a == "--small");
    let blur_dims = if small { BLUR_SMALL } else { BLUR_FULL };

    eprintln!("calibrating interpreter...");
    let nspc = ns_per_cycle();
    eprintln!("calibration: {nspc:.2} ns per VM cycle");

    let need_bench = matches!(what, "all" | "figure4" | "figure5" | "figure6" | "figure7");
    let ms: Vec<Measurement> = if need_bench {
        benchmarks(blur_dims)
            .iter()
            .map(|b| {
                eprintln!("measuring {} ({})...", b.name, b.style);
                measure(b)
            })
            .collect()
    } else {
        Vec::new()
    };

    match what {
        "table1" => print!("{}", report::table1(nspc, 250, 100)),
        "figure4" => print!("{}", report::figure4(&ms)),
        "figure5" => print!("{}", report::figure5(&ms, nspc)),
        "figure6" => print!("{}", report::figure6(&ms, nspc)),
        "figure7" => print!("{}", report::figure7(&ms, nspc)),
        "sensitivity" => {
            print!("{}", report::sensitivity(&benchmarks(blur_dims)));
        }
        "blur" => {
            let b = benchmarks(blur_dims).into_iter().find(|b| b.name == "blur").expect("blur");
            eprintln!("measuring blur...");
            let m = measure(&b);
            print!("{}", report::blur_report(&m, nspc));
        }
        "all" => {
            println!("{}", report::table1(nspc, 250, 100));
            println!("{}", report::figure4(&ms));
            println!("{}", report::figure5(&ms, nspc));
            println!("{}", report::figure6(&ms, nspc));
            println!("{}", report::figure7(&ms, nspc));
            if let Some(m) = ms.iter().find(|m| m.name == "blur") {
                println!("{}", report::blur_report(m, nspc));
            }
            println!();
            println!("{}", report::sensitivity(&benchmarks(blur_dims)));
        }
        other => {
            eprintln!("unknown experiment {other}; try all|table1|figure4|figure5|figure6|figure7|blur|sensitivity");
            std::process::exit(2);
        }
    }
}
