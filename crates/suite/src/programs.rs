//! The benchmark programs (paper §6.2), each written twice: in `C
//! (dynamic code generation) and in static C, inside one translation
//! unit. The static versions follow the paper's descriptions — e.g.
//! `heap` and `cmp` parameterize with *function pointers* where the `C
//! versions compose cspecs; `query` interprets with switch statements
//! where the `C version compiles the query; `mshl` interprets its format
//! string per call where the `C version compiles it once.

use tcc::Session;

/// A benchmark: source plus drivers.
#[derive(Clone)]
pub struct BenchDef {
    /// Short name (paper's).
    pub name: &'static str,
    /// What the benchmark demonstrates.
    pub style: &'static str,
    /// The `C translation unit.
    pub src: &'static str,
    /// One-time workload setup.
    pub setup: fn(&mut Session),
    /// Runs the static version once; returns its result value.
    pub run_static: fn(&mut Session) -> u64,
    /// Runs the `C compile path once; returns the function pointer.
    pub compile_dyn: fn(&mut Session) -> u64,
    /// Runs the dynamic version once; returns its result value.
    pub run_dyn: fn(&mut Session, u64) -> u64,
    /// Post-run checksum over side effects (0 when the result value is
    /// the whole story).
    pub check: fn(&mut Session) -> u64,
}

fn no_setup(_s: &mut Session) {}

fn no_check(_s: &mut Session) -> u64 {
    0
}

fn call(s: &mut Session, name: &str, args: &[u64]) -> u64 {
    s.call(name, args)
        .unwrap_or_else(|e| panic!("{name} failed: {e}"))
}

// ---------------------------------------------------------------------------
// hash — run-time constant table size and multiplier
// ---------------------------------------------------------------------------

const HASH_SRC: &str = r#"
int htab[1024];
int hsize = 1024;
int hmult = 40503;

void hash_insert(int key) {
    unsigned h = ((unsigned)(key * hmult)) % (unsigned)hsize;
    while (htab[h] != 0) h = (h + 1) % (unsigned)hsize;
    htab[h] = key;
}

void hash_setup(void) {
    int i;
    for (i = 0; i < hsize; i++) htab[i] = 0;
    for (i = 1; i <= 512; i++) hash_insert(i * 7 + 1);
}

int hash_lookup_static(int key) {
    unsigned h = ((unsigned)(key * hmult)) % (unsigned)hsize;
    int probes = 0;
    while (htab[h] != 0) {
        if (htab[h] == key) return 1;
        h = (h + 1) % (unsigned)hsize;
        probes = probes + 1;
        if (probes > hsize) return 0;
    }
    return 0;
}

int hash_static(int k1, int k2) {
    return hash_lookup_static(k1) * 10 + hash_lookup_static(k2);
}

long hash_compile(void) {
    int vspec key = param(int, 0);
    void cspec c = `{
        unsigned h;
        int probes;
        h = ((unsigned)(key * $hmult)) % (unsigned)$hsize;
        probes = 0;
        while (htab[h] != 0) {
            if (htab[h] == key) return 1;
            h = (h + 1) % (unsigned)$hsize;
            probes = probes + 1;
            if (probes > $hsize) return 0;
        }
        return 0;
    };
    return (long)compile(c, int);
}

int hash_dyn(long fp, int k1, int k2) {
    int (*f)(void) = (int (*)(void))fp;
    return (*f)(k1) * 10 + (*f)(k2);
}
"#;

/// Present and absent keys: 8 (=1*7+1) is in the table; 6 is not.
const HASH_HIT: u64 = 7 + 1;
const HASH_MISS: u64 = 6;

// ---------------------------------------------------------------------------
// ms — matrix scale by a run-time constant
// ---------------------------------------------------------------------------

const MS_SRC: &str = r#"
int msmat[10000];
int msn = 10000;

void ms_setup(void) {
    int i;
    for (i = 0; i < msn; i++) msmat[i] = i & 1023;
}

void ms_static(int s) {
    int i;
    for (i = 0; i < msn; i++) msmat[i] = msmat[i] * s;
}

long ms_compile(int s) {
    int vspec i = local(int);
    void cspec c = `{
        for (i = 0; i < $msn; i++) msmat[i] = msmat[i] * $s;
    };
    return (long)compile(c, void);
}

long ms_check(void) {
    long sum = 0;
    int i;
    for (i = 0; i < msn; i++) sum += msmat[i];
    return sum;
}
"#;

const MS_SCALE: u64 = 3;

// ---------------------------------------------------------------------------
// heap — heapsort parameterized by a swap code fragment
// ---------------------------------------------------------------------------

const HEAP_SRC: &str = r#"
struct hrec { int key; int v1; int v2; };
struct hrec harr[501];
int hn = 500;
void (*hswap)(char *, char *, int);

void heap_setup(void) {
    int i;
    int seed = 12345;
    for (i = 1; i <= hn; i++) {
        seed = seed * 1103515245 + 12345;
        harr[i].key = (seed >> 16) & 32767;
        harr[i].v1 = i;
        harr[i].v2 = i + i;
    }
}

void swap_generic(char *x, char *y, int size) {
    int i;
    for (i = 0; i < size; i++) {
        char t = x[i];
        x[i] = y[i];
        y[i] = t;
    }
}

void heap_sift_static(int n, int i) {
    while (1) {
        int l = 2 * i;
        int m = i;
        if (l <= n && harr[l].key > harr[m].key) m = l;
        if (l + 1 <= n && harr[l + 1].key > harr[m].key) m = l + 1;
        if (m == i) break;
        hswap((char *)&harr[i], (char *)&harr[m], sizeof(struct hrec));
        i = m;
    }
}

void heap_static(void) {
    int i;
    hswap = swap_generic;
    for (i = hn / 2; i >= 1; i--) heap_sift_static(hn, i);
    for (i = hn; i > 1; i--) {
        hswap((char *)&harr[1], (char *)&harr[i], sizeof(struct hrec));
        heap_sift_static(i - 1, 1);
    }
}

long heap_compile(void) {
    long vspec px = local(long);
    long vspec py = local(long);
    void cspec swp = `{
        int t;
        t = *(int *)px; *(int *)px = *(int *)py; *(int *)py = t;
        t = *(int *)(px + 4); *(int *)(px + 4) = *(int *)(py + 4); *(int *)(py + 4) = t;
        t = *(int *)(px + 8); *(int *)(px + 8) = *(int *)(py + 8); *(int *)(py + 8) = t;
    };
    int vspec n = local(int);
    int vspec i = local(int);
    int vspec l = local(int);
    int vspec m = local(int);
    void cspec sift = `{
        while (1) {
            l = 2 * i; m = i;
            if (l <= n && harr[l].key > harr[m].key) m = l;
            if (l + 1 <= n && harr[l + 1].key > harr[m].key) m = l + 1;
            if (m == i) break;
            px = (long)&harr[i]; py = (long)&harr[m];
            swp;
            i = m;
        }
    };
    int vspec j = local(int);
    void cspec c = `{
        j = $hn / 2;
        while (j >= 1) { n = $hn; i = j; sift; j = j - 1; }
        j = $hn;
        while (j > 1) {
            px = (long)&harr[1]; py = (long)&harr[j];
            swp;
            n = j - 1; i = 1; sift;
            j = j - 1;
        }
    };
    return (long)compile(c, void);
}

long heap_check(void) {
    long sum = 0;
    int i;
    int sorted = 1;
    for (i = 1; i <= hn; i++) {
        sum += (long)i * harr[i].key;
        if (i > 1 && harr[i - 1].key > harr[i].key) sorted = 0;
    }
    return sum * 10 + sorted;
}
"#;

// ---------------------------------------------------------------------------
// ntn — Newton's method with composed f and f'
// ---------------------------------------------------------------------------

const NTN_SRC: &str = r#"
double ntn_tol = 0.000000000001;
double (*ntn_f)(double);
double (*ntn_fp)(double);

double f_static(double x) { return (x + 1.0) * (x + 1.0) * (x + 1.0) - 2.0; }
double fp_static(double x) { return 3.0 * (x + 1.0) * (x + 1.0); }

double ntn_static(double x0) {
    double x = x0;
    double fx;
    int it = 0;
    ntn_f = f_static;
    ntn_fp = fp_static;
    fx = ntn_f(x);
    while (fx * fx > ntn_tol && it < 100) {
        x = x - fx / ntn_fp(x);
        fx = ntn_f(x);
        it = it + 1;
    }
    return x;
}

long ntn_compile(void) {
    double vspec x = local(double);
    double cspec fc = `((x + 1.0) * (x + 1.0) * (x + 1.0) - 2.0);
    double cspec fd = `(3.0 * (x + 1.0) * (x + 1.0));
    double vspec x0 = param(double, 0);
    double vspec fx = local(double);
    int vspec it = local(int);
    void cspec c = `{
        x = x0;
        it = 0;
        fx = fc;
        while (fx * fx > $ntn_tol && it < 100) {
            x = x - fx / fd;
            fx = fc;
            it = it + 1;
        }
        return x;
    };
    return (long)compile(c, double);
}

double ntn_dyn(long fp, double x0) {
    double (*g)(double) = (double (*)(double))fp;
    return g(x0);
}
"#;

// ---------------------------------------------------------------------------
// cmp — composed message pipeline: copy + byteswap + checksum
// ---------------------------------------------------------------------------

const CMP_SRC: &str = r#"
int cmp_in[1024];
int cmp_out[1024];
int cmp_n = 1024;
int cmp_sum;
int (*cmp_bswap)(int);
int (*cmp_csum)(int, int);

int bswap_fn(int w) {
    return ((w & 255) << 24) | (((w >> 8) & 255) << 16)
         | (((w >> 16) & 255) << 8) | ((w >> 24) & 255);
}
int csum_fn(int s, int w) { return s + (w ^ (s << 1)); }

void cmp_setup(void) {
    int i;
    for (i = 0; i < cmp_n; i++) cmp_in[i] = i * 2654435 + 7;
}

int cmp_static(void) {
    int i;
    int s = 0;
    int w;
    cmp_bswap = bswap_fn;
    cmp_csum = csum_fn;
    for (i = 0; i < cmp_n; i++) {
        w = cmp_bswap(cmp_in[i]);
        s = cmp_csum(s, w);
        cmp_out[i] = w;
    }
    cmp_sum = s;
    return s;
}

long cmp_compile(void) {
    int vspec w = local(int);
    int vspec s = local(int);
    int cspec bsw = `(((w & 255) << 24) | (((w >> 8) & 255) << 16)
                    | (((w >> 16) & 255) << 8) | ((w >> 24) & 255));
    int cspec csm = `(s + (w ^ (s << 1)));
    int vspec i = local(int);
    void cspec c = `{
        s = 0;
        for (i = 0; i < $cmp_n; i++) {
            w = cmp_in[i];
            w = bsw;
            s = csm;
            cmp_out[i] = w;
        }
        cmp_sum = s;
        return s;
    };
    return (long)compile(c, int);
}

long cmp_check(void) {
    long sum = 0;
    int i;
    for (i = 0; i < cmp_n; i++) sum += cmp_out[i];
    return sum + cmp_sum;
}
"#;

// ---------------------------------------------------------------------------
// query — small query language: interpreter vs dynamic compiler
// ---------------------------------------------------------------------------

const QUERY_SRC: &str = r#"
struct qrec { int f0; int f1; int f2; int f3; int f4; int f5; };
struct qrec qdb[2000];
int qn = 2000;
int qfield[5] = {0, 2, 4, 1, 3};
int qop[5] = {0, 1, 3, 3, 4};
int qconst[5] = {4000, 30000, 777, 5, 250};

void query_setup(void) {
    int i;
    int seed = 999;
    for (i = 0; i < qn; i++) {
        seed = seed * 1103515245 + 12345; qdb[i].f0 = (seed >> 16) & 32767;
        seed = seed * 1103515245 + 12345; qdb[i].f1 = (seed >> 16) & 32767;
        seed = seed * 1103515245 + 12345; qdb[i].f2 = (seed >> 16) & 32767;
        seed = seed * 1103515245 + 12345; qdb[i].f3 = (seed >> 16) & 32767;
        seed = seed * 1103515245 + 12345; qdb[i].f4 = (seed >> 16) & 32767;
        seed = seed * 1103515245 + 12345; qdb[i].f5 = (seed >> 16) & 32767;
    }
}

int qfetch(struct qrec *r, int f) {
    switch (f) {
        case 0: return r->f0;
        case 1: return r->f1;
        case 2: return r->f2;
        case 3: return r->f3;
        case 4: return r->f4;
        default: return r->f5;
    }
}

int query_static(void) {
    int i;
    int count = 0;
    for (i = 0; i < qn; i++) {
        int ok = 1;
        int p;
        for (p = 0; p < 5; p++) {
            int v = qfetch(&qdb[i], qfield[p]);
            int cst = qconst[p];
            int r;
            switch (qop[p]) {
                case 0: r = v > cst; break;
                case 1: r = v < cst; break;
                case 2: r = v == cst; break;
                case 3: r = v != cst; break;
                default: r = v >= cst;
            }
            if (!r) { ok = 0; break; }
        }
        count = count + ok;
    }
    return count;
}

long query_compile(void) {
    long vspec rec = local(long);
    int cspec pred = `1;
    int p;
    for (p = 0; p < 5; p++) {
        int f = qfield[p];
        int cst = qconst[p];
        int op = qop[p];
        int cspec fld = `(*(int *)(rec + $f * 4));
        if (op == 0) pred = `(pred && fld > $cst);
        else if (op == 1) pred = `(pred && fld < $cst);
        else if (op == 2) pred = `(pred && fld == $cst);
        else if (op == 3) pred = `(pred && fld != $cst);
        else pred = `(pred && fld >= $cst);
    }
    int vspec i = local(int);
    int vspec count = local(int);
    void cspec c = `{
        count = 0;
        for (i = 0; i < $qn; i++) {
            rec = (long)&qdb[i];
            if (pred) count = count + 1;
        }
        return count;
    };
    return (long)compile(c, int);
}
"#;

// ---------------------------------------------------------------------------
// mshl — marshal five arguments driven by a format string
// ---------------------------------------------------------------------------

const MSHL_SRC: &str = r#"
int msh_out[8];
char msh_fmt[6] = "iiiii";

int marshal_interp(char *fmt, int a0, int a1, int a2, int a3, int a4) {
    int args[5];
    int i;
    int n = 0;
    args[0] = a0; args[1] = a1; args[2] = a2; args[3] = a3; args[4] = a4;
    for (i = 0; fmt[i] != 0; i++) {
        if (fmt[i] == 'i') {
            msh_out[n] = args[n];
            n = n + 1;
        }
    }
    return n;
}

int mshl_static(void) { return marshal_interp(msh_fmt, 11, 22, 33, 44, 55); }

long mshl_compile(void) {
    void cspec body = `{};
    int i;
    int n = 0;
    for (i = 0; msh_fmt[i] != 0; i++) {
        if (msh_fmt[i] == 'i') {
            int vspec p = param(int, n);
            body = `{ @body; msh_out[$n] = p; };
            n = n + 1;
        }
    }
    void cspec all = `{ body; return $n; };
    return (long)compile(all, int);
}

int mshl_dyn(long fp) {
    int (*g)(void) = (int (*)(void))fp;
    return (*g)(11, 22, 33, 44, 55);
}

long mshl_check(void) {
    long s = 0;
    int i;
    for (i = 0; i < 5; i++) s = s * 131 + msh_out[i];
    return s;
}
"#;

// ---------------------------------------------------------------------------
// umshl — unmarshal a byte vector and call a five-argument function
// ---------------------------------------------------------------------------

const UMSHL_SRC: &str = r#"
int umsh_buf[5];
int usink(int a, int b, int c, int d, int e) {
    return a + b * 2 + c * 3 + d * 4 + e * 5;
}

void umshl_setup(void) {
    int i;
    for (i = 0; i < 5; i++) umsh_buf[i] = (i + 1) * 9;
}

/* The paper's static comparator is hand-tuned for exactly five args. */
int umshl_static(void) {
    return usink(umsh_buf[0], umsh_buf[1], umsh_buf[2], umsh_buf[3], umsh_buf[4]);
}

char umsh_fmt[6] = "iiiii";

/* True dynamic call construction: the argument count comes from the
   format string at run time (impossible in ANSI C). */
long umshl_compile(void) {
    void cspec args = push_init();
    int i;
    for (i = 0; umsh_fmt[i] != 0; i++)
        if (umsh_fmt[i] == 'i')
            push(args, `umsh_buf[$i]);
    void cspec c = `{ return apply(usink, args); };
    return (long)compile(c, int);
}

int umshl_dyn(long fp) {
    int (*g)(void) = (int (*)(void))fp;
    return (*g)();
}
"#;

// ---------------------------------------------------------------------------
// pow — exponentiation specialized to a run-time exponent
// ---------------------------------------------------------------------------

const POW_SRC: &str = r#"
int pow_exp = 13;

int pow_static(int x, int n) {
    int r = 1;
    while (n) {
        if (n & 1) r = r * x;
        x = x * x;
        n = n >> 1;
    }
    return r;
}

int pow_run_static(int x) { return pow_static(x, pow_exp); }

long pow_compile(void) {
    int vspec x = param(int, 0);
    int vspec t = local(int);
    int vspec r = local(int);
    void cspec body = `{ t = x; r = 1; };
    int e = pow_exp;
    while (e) {
        if (e & 1) body = `{ @body; r = r * t; };
        e = e >> 1;
        if (e) body = `{ @body; t = t * t; };
    }
    void cspec all = `{ body; return r; };
    return (long)compile(all, int);
}

int pow_dyn(long fp, int x) {
    int (*g)(void) = (int (*)(void))fp;
    return (*g)(x);
}
"#;

// ---------------------------------------------------------------------------
// binary — executable data structure: binary search as nested ifs
// ---------------------------------------------------------------------------

const BINARY_SRC: &str = r#"
int barr[16];
int vspec bkey;

void binary_setup(void) {
    int i;
    for (i = 0; i < 16; i++) barr[i] = i * 10 + 3;
}

int binary_static(int key) {
    int lo = 0;
    int hi = 15;
    while (lo <= hi) {
        int mid = (lo + hi) / 2;
        if (barr[mid] == key) return mid;
        if (barr[mid] < key) lo = mid + 1;
        else hi = mid - 1;
    }
    return -1;
}

int cspec binary_build(int lo, int hi) {
    int mid;
    int v;
    int cspec l;
    int cspec r;
    if (lo > hi) return `(-1);
    mid = (lo + hi) / 2;
    v = barr[mid];
    l = binary_build(lo, mid - 1);
    r = binary_build(mid + 1, hi);
    return `(bkey == $v ? $mid : (bkey < $v ? l : r));
}

long binary_compile(void) {
    bkey = param(int, 0);
    int cspec t = binary_build(0, 15);
    void cspec c = `{ return t; };
    return (long)compile(c, int);
}

int binary_static2(int k1, int k2) {
    return binary_static(k1) * 100 + binary_static(k2) + 10;
}

int binary_dyn(long fp, int k1, int k2) {
    int (*g)(void) = (int (*)(void))fp;
    return (*g)(k1) * 100 + (*g)(k2) + 10;
}
"#;

// ---------------------------------------------------------------------------
// dp — dot product against a run-time constant sparse vector (§4.4)
// ---------------------------------------------------------------------------

const DP_SRC: &str = r#"
int dp_row[40];
int dp_col[40];
int dp_n = 40;

void dp_setup(void) {
    int i;
    int seed = 4242;
    for (i = 0; i < dp_n; i++) {
        seed = seed * 1103515245 + 12345;
        if ((seed >> 16) & 1) dp_row[i] = ((seed >> 18) & 31) + 1;
        else dp_row[i] = 0;
        dp_col[i] = i * 3 + 1;
    }
}

int dp_static(void) {
    int k;
    int s = 0;
    for (k = 0; k < dp_n; k++)
        if (dp_row[k]) s = s + dp_col[k] * dp_row[k];
    return s;
}

long dp_compile(void) {
    void cspec c = `{
        int k;
        int sum;
        sum = 0;
        for (k = 0; k < $dp_n; k++)
            if ($dp_row[k])
                sum = sum + dp_col[k] * $dp_row[k];
        return sum;
    };
    return (long)compile(c, int);
}
"#;

// ---------------------------------------------------------------------------
// blur — the xv Blur experiment (convolution by an all-ones kernel)
// ---------------------------------------------------------------------------

const BLUR_SRC: &str = r#"
unsigned char bimg_in[307200];
unsigned char bimg_out[307200];
int blur_w = 640;
int blur_h = 480;

void blur_setup(int w, int h) {
    int i;
    int seed = 77;
    blur_w = w;
    blur_h = h;
    for (i = 0; i < w * h; i++) {
        seed = seed * 1103515245 + 12345;
        bimg_in[i] = (seed >> 16) & 255;
    }
}

void blur_static(void) {
    int x;
    int y;
    int dx;
    int dy;
    for (y = 0; y < blur_h; y++) {
        for (x = 0; x < blur_w; x++) {
            int sum = 0;
            int cnt = 0;
            for (dy = -1; dy <= 1; dy++) {
                for (dx = -1; dx <= 1; dx++) {
                    if (x + dx >= 0 && x + dx < blur_w && y + dy >= 0 && y + dy < blur_h) {
                        sum = sum + bimg_in[(y + dy) * blur_w + (x + dx)];
                        cnt = cnt + 1;
                    }
                }
            }
            bimg_out[y * blur_w + x] = sum / cnt;
        }
    }
}

long blur_compile(void) {
    int vspec x = local(int);
    int vspec y = local(int);
    int vspec sum = local(int);
    int vspec cnt = local(int);
    void cspec c = `{
        for (y = 0; y < $blur_h; y++) {
            for (x = 0; x < $blur_w; x++) {
                int dy;
                int dx;
                sum = 0;
                cnt = 0;
                for (dy = -1; dy <= 1; dy++) {
                    for (dx = -1; dx <= 1; dx++) {
                        if (x + dx >= 0 && x + dx < $blur_w && y + dy >= 0 && y + dy < $blur_h) {
                            sum = sum + bimg_in[(y + dy) * $blur_w + (x + dx)];
                            cnt = cnt + 1;
                        }
                    }
                }
                bimg_out[y * $blur_w + x] = sum / cnt;
            }
        }
    };
    return (long)compile(c, void);
}

long blur_check(void) {
    long s = 0;
    int i;
    for (i = 0; i < blur_w * blur_h; i++) s += bimg_out[i];
    return s;
}
"#;

// ---------------------------------------------------------------------------
// filter — BPF-style packet filter: compile a rule set, scan a stream
// ---------------------------------------------------------------------------

// The static version interprets the rule table per packet (the classic
// in-kernel BPF interpreter); the `C version compiles the rule set
// into branchless xor-or match masks (the DPF idiom: a field matches
// when `field ^ value` is zero, a rule matches when the OR of its
// field residues is zero), binds each rule's residue, advances the
// stream cursor, then dispatches first-match-wins.
const FILTER_SRC: &str = r#"
int fpkt[2048];
int fnp = 2048;
int fproto[3];
int fport[3];
int fcnt[3];

void filter_setup(void) {
    int i;
    int seed = 424242;
    for (i = 0; i < fnp; i++) {
        seed = seed * 1103515245 + 12345;
        fpkt[i] = (seed >> 15) & 63;
    }
    fproto[0] = 1; fport[0] = 5;
    fproto[1] = 2; fport[1] = 9;
    fproto[2] = 3; fport[2] = 12;
    for (i = 0; i < 3; i++) fcnt[i] = 0;
}

int filter_static(void) {
    int i;
    int acc = 0;
    for (i = 0; i < fnp; i++) {
        int w = fpkt[i];
        int proto = (w >> 4) & 3;
        int port = w & 15;
        int r;
        for (r = 0; r < 3; r++) {
            if (fproto[r] == proto && fport[r] == port) {
                fcnt[r] = fcnt[r] + 1;
                acc = acc + 1;
                break;
            }
        }
    }
    return acc;
}

long filter_compile(void) {
    int p0 = fproto[0]; int q0 = fport[0];
    int p1 = fproto[1]; int q1 = fport[1];
    int p2 = fproto[2]; int q2 = fport[2];
    int vspec w = local(int);
    int vspec proto = local(int);
    int vspec port = local(int);
    int vspec t0 = local(int);
    int vspec t1 = local(int);
    int vspec t2 = local(int);
    int vspec i = local(int);
    int vspec acc = local(int);
    int cspec m0 = `((proto ^ $p0) | (port ^ $q0));
    int cspec m1 = `((proto ^ $p1) | (port ^ $q1));
    int cspec m2 = `((proto ^ $p2) | (port ^ $q2));
    void cspec c = `{
        acc = 0;
        i = 0;
        while (i < $fnp) {
            w = fpkt[i];
            proto = (w >> 4) & 3;
            port = w & 15;
            t0 = m0;
            t1 = m1;
            t2 = m2;
            i = i + 1;
            if (t0 == 0) { fcnt[0] = fcnt[0] + 1; acc = acc + 1; }
            else if (t1 == 0) { fcnt[1] = fcnt[1] + 1; acc = acc + 1; }
            else if (t2 == 0) { fcnt[2] = fcnt[2] + 1; acc = acc + 1; }
        }
        return acc;
    };
    return (long)compile(c, int);
}

int filter_dyn(long fp) {
    int (*f)(void) = (int (*)(void))fp;
    return (*f)();
}

long filter_check(void) {
    return (long)fcnt[0] * 1000000 + fcnt[1] * 1000 + fcnt[2];
}
"#;

// ---------------------------------------------------------------------------
// demux — packet demultiplexer: four compiled rules feed ring queues
// ---------------------------------------------------------------------------

// Extends filter to the demultiplexing scenario: each rule may wildcard
// part of the port via a mask (`(port & mask) ^ value`), and a match
// appends the packet to that rule's ring queue instead of just
// counting. The static version interprets the (proto, mask, value)
// table per packet.
const DEMUX_SRC: &str = r#"
int dpkt[2048];
int dnp = 2048;
int dproto[4];
int dmask[4];
int dval[4];
int dq[1024];
int dqn[4];
int ddrop;

void demux_setup(void) {
    int i;
    int seed = 77777;
    for (i = 0; i < dnp; i++) {
        seed = seed * 1103515245 + 12345;
        dpkt[i] = (seed >> 12) & 63;
    }
    dproto[0] = 0; dmask[0] = 12; dval[0] = 4;
    dproto[1] = 1; dmask[1] = 8;  dval[1] = 8;
    dproto[2] = 2; dmask[2] = 15; dval[2] = 3;
    dproto[3] = 3; dmask[3] = 0;  dval[3] = 0;
    for (i = 0; i < 1024; i++) dq[i] = 0;
    for (i = 0; i < 4; i++) dqn[i] = 0;
    ddrop = 0;
}

int demux_static(void) {
    int i;
    for (i = 0; i < dnp; i++) {
        int w = dpkt[i];
        int proto = (w >> 4) & 3;
        int port = w & 15;
        int r;
        int hit = 0;
        for (r = 0; r < 4; r++) {
            if (dproto[r] == proto && (port & dmask[r]) == dval[r]) {
                dq[r * 256 + (dqn[r] & 255)] = w;
                dqn[r] = dqn[r] + 1;
                hit = 1;
                break;
            }
        }
        if (hit == 0) ddrop = ddrop + 1;
    }
    return ddrop;
}

long demux_compile(void) {
    int p0 = dproto[0]; int k0 = dmask[0]; int v0 = dval[0];
    int p1 = dproto[1]; int k1 = dmask[1]; int v1 = dval[1];
    int p2 = dproto[2]; int k2 = dmask[2]; int v2 = dval[2];
    int p3 = dproto[3]; int k3 = dmask[3]; int v3 = dval[3];
    int vspec w = local(int);
    int vspec proto = local(int);
    int vspec port = local(int);
    int vspec t0 = local(int);
    int vspec t1 = local(int);
    int vspec t2 = local(int);
    int vspec t3 = local(int);
    int vspec i = local(int);
    int cspec m0 = `((proto ^ $p0) | ((port & $k0) ^ $v0));
    int cspec m1 = `((proto ^ $p1) | ((port & $k1) ^ $v1));
    int cspec m2 = `((proto ^ $p2) | ((port & $k2) ^ $v2));
    int cspec m3 = `((proto ^ $p3) | ((port & $k3) ^ $v3));
    void cspec c = `{
        i = 0;
        while (i < $dnp) {
            w = dpkt[i];
            proto = (w >> 4) & 3;
            port = w & 15;
            t0 = m0;
            t1 = m1;
            t2 = m2;
            t3 = m3;
            i = i + 1;
            if (t0 == 0) { dq[dqn[0] & 255] = w; dqn[0] = dqn[0] + 1; }
            else if (t1 == 0) { dq[256 + (dqn[1] & 255)] = w; dqn[1] = dqn[1] + 1; }
            else if (t2 == 0) { dq[512 + (dqn[2] & 255)] = w; dqn[2] = dqn[2] + 1; }
            else if (t3 == 0) { dq[768 + (dqn[3] & 255)] = w; dqn[3] = dqn[3] + 1; }
            else ddrop = ddrop + 1;
        }
        return ddrop;
    };
    return (long)compile(c, int);
}

int demux_dyn(long fp) {
    int (*f)(void) = (int (*)(void))fp;
    return (*f)();
}

long demux_check(void) {
    long s = 0;
    int i;
    for (i = 0; i < 1024; i++) s = s * 131 + dq[i];
    for (i = 0; i < 4; i++) s = s * 131 + dqn[i];
    return s * 131 + ddrop;
}
"#;

/// Blur dimensions used by the full benchmark (the paper's 640×480).
pub const BLUR_FULL: (u64, u64) = (640, 480);
/// Reduced dimensions for fast test runs.
pub const BLUR_SMALL: (u64, u64) = (64, 48);

/// Builds the registry of benchmarks (blur at `blur_dims`).
pub fn benchmarks(blur_dims: (u64, u64)) -> Vec<BenchDef> {
    vec![
        BenchDef {
            name: "hash",
            style: "run-time constants",
            src: HASH_SRC,
            setup: |s| {
                call(s, "hash_setup", &[]);
            },
            run_static: |s| call(s, "hash_static", &[HASH_HIT, HASH_MISS]),
            compile_dyn: |s| call(s, "hash_compile", &[]),
            run_dyn: |s, fp| call(s, "hash_dyn", &[fp, HASH_HIT, HASH_MISS]),
            check: no_check,
        },
        BenchDef {
            name: "ms",
            style: "run-time constants",
            src: MS_SRC,
            setup: |s| {
                call(s, "ms_setup", &[]);
            },
            run_static: |s| {
                call(s, "ms_static", &[MS_SCALE]);
                0
            },
            compile_dyn: |s| call(s, "ms_compile", &[MS_SCALE]),
            run_dyn: |s, fp| {
                s.call_addr(fp, &[]).expect("dyn ms runs");
                0
            },
            check: |s| call(s, "ms_check", &[]),
        },
        BenchDef {
            name: "heap",
            style: "parameterized functions",
            src: HEAP_SRC,
            setup: |s| {
                call(s, "heap_setup", &[]);
            },
            run_static: |s| {
                call(s, "heap_static", &[]);
                0
            },
            compile_dyn: |s| call(s, "heap_compile", &[]),
            run_dyn: |s, fp| {
                s.call_addr(fp, &[]).expect("dyn heap runs");
                0
            },
            check: |s| call(s, "heap_check", &[]),
        },
        BenchDef {
            name: "ntn",
            style: "function composition",
            src: NTN_SRC,
            setup: no_setup,
            run_static: |s| {
                let x = s.call_f("ntn_static", &[], &[5.0]).expect("static ntn");
                (x * 1e9).round() as i64 as u64
            },
            compile_dyn: |s| call(s, "ntn_compile", &[]),
            run_dyn: |s, fp| {
                let x = s.call_f("ntn_dyn", &[fp], &[5.0]).expect("dyn ntn");
                (x * 1e9).round() as i64 as u64
            },
            check: no_check,
        },
        BenchDef {
            name: "cmp",
            style: "function composition",
            src: CMP_SRC,
            setup: |s| {
                call(s, "cmp_setup", &[]);
            },
            run_static: |s| call(s, "cmp_static", &[]),
            compile_dyn: |s| call(s, "cmp_compile", &[]),
            run_dyn: |s, fp| s.call_addr(fp, &[]).expect("dyn cmp runs"),
            check: |s| call(s, "cmp_check", &[]),
        },
        BenchDef {
            name: "query",
            style: "small language compilation",
            src: QUERY_SRC,
            setup: |s| {
                call(s, "query_setup", &[]);
            },
            run_static: |s| call(s, "query_static", &[]),
            compile_dyn: |s| call(s, "query_compile", &[]),
            run_dyn: |s, fp| s.call_addr(fp, &[]).expect("dyn query runs"),
            check: no_check,
        },
        BenchDef {
            name: "mshl",
            style: "dynamic call construction",
            src: MSHL_SRC,
            setup: no_setup,
            run_static: |s| call(s, "mshl_static", &[]),
            compile_dyn: |s| call(s, "mshl_compile", &[]),
            run_dyn: |s, fp| call(s, "mshl_dyn", &[fp]),
            check: |s| call(s, "mshl_check", &[]),
        },
        BenchDef {
            name: "umshl",
            style: "dynamic call construction",
            src: UMSHL_SRC,
            setup: |s| {
                call(s, "umshl_setup", &[]);
            },
            run_static: |s| call(s, "umshl_static", &[]),
            compile_dyn: |s| call(s, "umshl_compile", &[]),
            run_dyn: |s, fp| call(s, "umshl_dyn", &[fp]),
            check: no_check,
        },
        BenchDef {
            name: "pow",
            style: "dynamic partial evaluation",
            src: POW_SRC,
            setup: no_setup,
            run_static: |s| call(s, "pow_run_static", &[3]),
            compile_dyn: |s| call(s, "pow_compile", &[]),
            run_dyn: |s, fp| call(s, "pow_dyn", &[fp, 3]),
            check: no_check,
        },
        BenchDef {
            name: "binary",
            style: "executable data structures",
            src: BINARY_SRC,
            setup: |s| {
                call(s, "binary_setup", &[]);
            },
            run_static: |s| call(s, "binary_static2", &[73, 74]),
            compile_dyn: |s| call(s, "binary_compile", &[]),
            run_dyn: |s, fp| call(s, "binary_dyn", &[fp, 73, 74]),
            check: no_check,
        },
        BenchDef {
            name: "dp",
            style: "dynamic loop unrolling (§4.4)",
            src: DP_SRC,
            setup: |s| {
                call(s, "dp_setup", &[]);
            },
            run_static: |s| call(s, "dp_static", &[]),
            compile_dyn: |s| call(s, "dp_compile", &[]),
            run_dyn: |s, fp| s.call_addr(fp, &[]).expect("dyn dp runs"),
            check: no_check,
        },
        BenchDef {
            name: "blur",
            style: "xv Blur (§6.2)",
            src: BLUR_SRC,
            setup: move |s| {
                // dims smuggled through globals set by the measurement
                // driver before setup; default full size
                let _ = s;
            },
            run_static: |s| {
                call(s, "blur_static", &[]);
                0
            },
            compile_dyn: |s| call(s, "blur_compile", &[]),
            run_dyn: |s, fp| {
                s.call_addr(fp, &[]).expect("dyn blur runs");
                0
            },
            check: |s| call(s, "blur_check", &[]),
        },
        BenchDef {
            name: "filter",
            style: "systems demux (ROADMAP expansion)",
            src: FILTER_SRC,
            setup: |s| {
                call(s, "filter_setup", &[]);
            },
            run_static: |s| call(s, "filter_static", &[]),
            compile_dyn: |s| call(s, "filter_compile", &[]),
            run_dyn: |s, fp| call(s, "filter_dyn", &[fp]),
            check: |s| call(s, "filter_check", &[]),
        },
        BenchDef {
            name: "demux",
            style: "systems demux (ROADMAP expansion)",
            src: DEMUX_SRC,
            setup: |s| {
                call(s, "demux_setup", &[]);
            },
            run_static: |s| call(s, "demux_static", &[]),
            compile_dyn: |s| call(s, "demux_compile", &[]),
            run_dyn: |s, fp| call(s, "demux_dyn", &[fp]),
            check: |s| call(s, "demux_check", &[]),
        },
    ]
    .into_iter()
    .map(move |mut b| {
        if b.name == "blur" {
            b.setup = if blur_dims == BLUR_FULL {
                blur_setup_full
            } else {
                blur_setup_small
            };
        }
        b
    })
    .collect()
}

fn blur_setup_full(s: &mut Session) {
    call(s, "blur_setup", &[BLUR_FULL.0, BLUR_FULL.1]);
}

fn blur_setup_small(s: &mut Session) {
    call(s, "blur_setup", &[BLUR_SMALL.0, BLUR_SMALL.1]);
}
