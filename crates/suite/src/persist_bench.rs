//! Warm-start benchmark for the persistent cross-process code cache.
//!
//! The in-memory caches die with the process; the persistent store
//! (`tcc-cache`'s `PersistentStore`) does not. This benchmark measures
//! the economics that survive a restart: a "cold" process compiles a
//! working set of dynamic closures against a fresh store and exits
//! (flushing the store), then a "warm" process with the same store
//! path replays the identical requests and answers every one from
//! disk. Per kernel it reports total compile-path nanoseconds cold vs
//! warm and the resulting warm-start speedup — the multiple of CGF
//! cost a restart no longer pays. Emitted as `BENCH_persist.json` by
//! the suite binary and gated by `suite exec-check`.
//!
//! Process death is simulated by dropping the session (which flushes
//! the dirty store and releases the writer lock) and opening a new one
//! on the same path — the exact code path a real restart takes, minus
//! the `fork`.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use tcc::{Config, Session};
use tcc_obs::json::Json;

/// The benchmark's code-generating kernels: serve-style entry points
/// `long pk_*(int p)` whose closures are long specialization chains
/// (compile cost dwarfs a disk load + install).
pub const PERSIST_KERNELS: [&str; 3] = ["pk_pow", "pk_hash", "pk_dot"];

/// The combined `C source every benchmark process loads. The `+ 280`
/// floor keeps every cell's closure body long even at small `p`.
pub const PERSIST_SRC: &str = r#"
    long pk_pow(int p) {
        int vspec x = param(int, 0);
        int cspec c = `1;
        int i;
        for (i = 0; i < p + 280; i++) c = `(c * (x + $i * 257) + $p);
        return (long)compile(c, int);
    }
    long pk_hash(int p) {
        int vspec x = param(int, 0);
        int cspec h = `x;
        int i;
        for (i = 0; i < p + 280; i++) h = `((h ^ ($i * 40503)) * 31 + $p);
        return (long)compile(h, int);
    }
    long pk_dot(int p) {
        int vspec x = param(int, 0);
        int cspec c = `0;
        int i;
        for (i = 1; i <= p + 280; i++) c = `(c * 31 + (x >> $i) * ($i * 40503 + $p));
        return (long)compile(c, int);
    }
"#;

/// Knobs for one persist sweep.
#[derive(Clone, Copy, Debug)]
pub struct PersistBenchOptions {
    /// Parameter values per kernel (cells = kernels × this).
    pub params_per_kernel: u64,
    /// Measurement repetitions (min taken; every cold rep gets a fresh
    /// store).
    pub reps: usize,
}

impl PersistBenchOptions {
    /// The benchmark configuration `suite persist` reports on.
    pub fn full() -> PersistBenchOptions {
        PersistBenchOptions {
            params_per_kernel: 6,
            reps: 3,
        }
    }

    /// A seconds-scale variant for CI (`suite persist --smoke`).
    pub fn smoke() -> PersistBenchOptions {
        PersistBenchOptions {
            params_per_kernel: 2,
            reps: 1,
        }
    }
}

/// One row of the sweep (one kernel across its parameter cells).
#[derive(Clone, Debug)]
pub struct PersistBenchRow {
    /// Kernel name.
    pub kernel: String,
    /// Distinct closures compiled (parameter cells).
    pub cells: u64,
    /// Total compile-path nanoseconds in the cold process (fresh
    /// store: every request fingerprints and runs the CGF).
    pub cold_ns: u64,
    /// Total compile-path nanoseconds in the warm process (same store
    /// path: every request fingerprints, loads from disk, installs).
    pub warm_ns: u64,
    /// Disk hits the warm process observed (must equal `cells`).
    pub disk_hits: u64,
    /// Nanoseconds the warm process spent inside store loads.
    pub load_ns: u64,
}

impl PersistBenchRow {
    /// Compile-path cost multiple a warm start avoids.
    pub fn warm_speedup(&self) -> f64 {
        self.cold_ns as f64 / self.warm_ns.max(1) as f64
    }
}

/// Fresh store path per (process-pair, rep): the sweep runs many
/// simulated processes and never wants two sharing a store by
/// accident.
fn store_path(kernel: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "tcc-persist-bench-{kernel}-{}-{n}.tccp",
        std::process::id()
    ))
}

fn cleanup(path: &Path) {
    let _ = std::fs::remove_file(path);
    let mut lock = path.to_path_buf().into_os_string();
    lock.push(".lock");
    let _ = std::fs::remove_file(lock);
}

/// What one simulated process measured.
struct ProcessRun {
    /// The session's compile-path cost: nanoseconds inside the
    /// `compile` intercept — CGF walks (`dynamic.total_ns`) plus hit
    /// answering (`cache.hit_ns`, which for a warm process is the
    /// fingerprint + disk load + install time). The interpretive
    /// closure construction that precedes the intercept is identical
    /// on both sides and deliberately excluded.
    compile_path_ns: u64,
    /// Result of executing each cell (differential record).
    results: Vec<u64>,
    disk_hits: u64,
    dyn_compiles: u64,
    load_ns: u64,
}

/// One simulated process: open a session on `path`, drive every cell
/// of `kernel`, execute each produced function once, exit (drop the
/// session, flushing the store).
fn run_process(path: &Path, kernel: &str, params: u64) -> ProcessRun {
    let mut s = Session::new(
        PERSIST_SRC,
        Config {
            persist_path: Some(path.to_path_buf()),
            mem_size: 8 << 20,
            ..Config::default()
        },
    )
    .expect("benchmark source compiles");
    let mut results = Vec::with_capacity(params as usize);
    for p in 1..=params {
        let addr = s.call(kernel, &[p]).expect("cell compiles");
        let arg = p * 7 % 13 + 1;
        results.push(s.call_addr(addr, &[arg]).expect("cell runs"));
    }
    let m = s.metrics();
    ProcessRun {
        compile_path_ns: m.dynamic.total_ns + m.cache.hit_ns,
        results,
        disk_hits: m.persist.disk_hits,
        dyn_compiles: m.dynamic.compiles,
        load_ns: m.persist.load_ns,
    }
}

/// One (cold process, warm process) pair over a fresh store. Panics on
/// any divergence: a warm request that recompiled, missed disk, or
/// produced a different result than the cold process.
fn run_pair(kernel: &str, params: u64) -> (u64, u64, u64, u64) {
    let path = store_path(kernel);
    let cold = run_process(&path, kernel, params);
    assert_eq!(cold.disk_hits, 0, "{kernel}: cold run hit a stale store");
    assert_eq!(
        cold.dyn_compiles, params,
        "{kernel}: cold run must compile all"
    );
    let warm = run_process(&path, kernel, params);
    assert_eq!(
        warm.disk_hits, params,
        "{kernel}: warm run must answer every cell from disk"
    );
    assert_eq!(warm.dyn_compiles, 0, "{kernel}: warm run recompiled");
    assert_eq!(
        warm.results, cold.results,
        "{kernel}: disk-loaded code diverged from the compile"
    );
    cleanup(&path);
    (
        cold.compile_path_ns,
        warm.compile_path_ns,
        warm.disk_hits,
        warm.load_ns,
    )
}

/// Runs the sweep: per kernel, `reps` (cold, warm) process pairs, min
/// taken per side.
pub fn persist_bench(opts: &PersistBenchOptions) -> Vec<PersistBenchRow> {
    PERSIST_KERNELS
        .iter()
        .map(|&kernel| {
            let mut cold_ns = u64::MAX;
            let mut warm_ns = u64::MAX;
            let mut disk_hits = 0;
            let mut load_ns = u64::MAX;
            for _ in 0..opts.reps.max(1) {
                let (c, w, h, l) = run_pair(kernel, opts.params_per_kernel);
                cold_ns = cold_ns.min(c);
                warm_ns = warm_ns.min(w);
                disk_hits = h;
                load_ns = load_ns.min(l);
            }
            PersistBenchRow {
                kernel: kernel.to_string(),
                cells: opts.params_per_kernel,
                cold_ns,
                warm_ns,
                disk_hits,
                load_ns,
            }
        })
        .collect()
}

/// The sweep as JSON (`BENCH_persist.json`).
pub fn persist_json(rows: &[PersistBenchRow]) -> Json {
    let rows: Vec<Json> = rows
        .iter()
        .map(|r| {
            Json::obj(vec![
                ("kernel", Json::from(r.kernel.as_str())),
                ("cells", Json::from(r.cells)),
                ("cold_ns", Json::from(r.cold_ns)),
                ("warm_ns", Json::from(r.warm_ns)),
                ("disk_hits", Json::from(r.disk_hits)),
                ("load_ns", Json::from(r.load_ns)),
                ("warm_speedup", Json::from(r.warm_speedup())),
            ])
        })
        .collect();
    Json::obj(vec![
        ("experiment", Json::from("persist")),
        (
            "description",
            Json::from(
                "compile-path cost of a cold process vs a warm restart \
                 answering from the persistent store",
            ),
        ),
        ("rows", Json::Arr(rows)),
    ])
}

/// Human-readable sweep table.
pub fn persist_report(rows: &[PersistBenchRow]) -> String {
    let mut out = String::new();
    out.push_str("Persistent store: cold compile vs warm restart from disk\n");
    out.push_str("(process death simulated by session drop + reopen on one store path)\n\n");
    out.push_str("  kernel    cells   cold (ns)      warm (ns)      speedup\n");
    for r in rows {
        out.push_str(&format!(
            "  {:8}  {:5}   {:12}   {:12}   {:6.1}x\n",
            r.kernel,
            r.cells,
            r.cold_ns,
            r.warm_ns,
            r.warm_speedup(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_pair_round_trips_through_the_store() {
        let (cold_ns, warm_ns, disk_hits, _load_ns) = run_pair("pk_pow", 2);
        assert_eq!(disk_hits, 2);
        assert!(cold_ns > 0 && warm_ns > 0);
        // The hard ≥5x floor is gated on release-mode numbers; debug
        // unit tests only require warm to be cheaper at all.
        assert!(
            warm_ns < cold_ns,
            "warm restart not cheaper: {warm_ns} vs {cold_ns}"
        );
    }

    #[test]
    fn json_has_rows_and_speedup() {
        let rows = vec![PersistBenchRow {
            kernel: "pk_pow".into(),
            cells: 6,
            cold_ns: 50_000,
            warm_ns: 5_000,
            disk_hits: 6,
            load_ns: 900,
        }];
        let text = persist_json(&rows).to_string();
        for key in ["experiment", "kernel", "cold_ns", "warm_ns", "warm_speedup"] {
            assert!(text.contains(&format!("\"{key}\"")), "missing {key}");
        }
    }
}
