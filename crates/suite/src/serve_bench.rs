//! Serve-pool benchmark: the multi-tenant codegen service under a
//! seeded Zipfian load, swept across pool sizes.
//!
//! [`tcc_serve::run_serve`] does the heavy lifting (worker threads,
//! shared artifact cache, per-request differential); this module runs
//! it at each pool size in [`SERVE_THREADS`], asserts the cross-pool
//! replay digest is bit-identical (the concurrency differential — a
//! request's result, instruction count, and cycle count may not depend
//! on which thread compiled or executed it), and serializes the
//! results as `BENCH_serve.json` for the regression gate
//! ([`crate::check_serve`]).

use tcc_obs::json::Json;
use tcc_serve::{run_serve, ServeOptions, ServeReport};

/// Pool sizes swept by `suite serve`.
pub const SERVE_THREADS: [usize; 3] = [1, 2, 4];

/// One pool size's measurement, flattened for serialization.
#[derive(Clone, Debug)]
pub struct ServeBenchRow {
    /// Worker threads (= sessions) in the pool.
    pub threads: u64,
    /// Requests served.
    pub requests: u64,
    /// Wall-clock for the whole replay.
    pub elapsed_ns: u64,
    /// Requests per second over the wall clock.
    pub throughput_rps: f64,
    /// Median per-request latency.
    pub p50_ns: u64,
    /// 99th-percentile per-request latency.
    pub p99_ns: u64,
    /// 99.9th-percentile per-request latency.
    pub p999_ns: u64,
    /// Shared-cache hit rate (hits / (hits + misses)).
    pub hit_rate: f64,
    /// Shared-cache hits (installs or memo touches).
    pub hits: u64,
    /// Shared-cache misses (compile claims granted).
    pub misses: u64,
    /// Requests that blocked on another thread's in-flight compile.
    pub waits: u64,
    /// Artifacts evicted by the byte budget.
    pub evictions: u64,
    /// Artifacts invalidated by rule-set churn.
    pub invalidations: u64,
    /// Distinct cells the stream requested.
    pub unique_fingerprints: u64,
    /// Compiles actually performed (shared-cache publishes).
    pub compiles: u64,
    /// Compiles per compile-worthy event; ≈ 1 means no duplicates.
    pub compiles_per_unique: f64,
    /// `StaleCode` faults workers recovered from.
    pub stale_faults: u64,
    /// Order-independent replay digest — identical across pool sizes.
    pub checksum: u64,
}

impl From<&ServeReport> for ServeBenchRow {
    fn from(r: &ServeReport) -> ServeBenchRow {
        ServeBenchRow {
            threads: r.threads as u64,
            requests: r.requests,
            elapsed_ns: r.elapsed_ns,
            throughput_rps: r.throughput_rps,
            p50_ns: r.p50_ns,
            p99_ns: r.p99_ns,
            p999_ns: r.p999_ns,
            hit_rate: r.metrics.hit_rate(),
            hits: r.metrics.hits,
            misses: r.metrics.misses,
            waits: r.metrics.waits,
            evictions: r.metrics.evictions,
            invalidations: r.metrics.invalidations,
            unique_fingerprints: r.unique_fingerprints,
            compiles: r.compiles,
            compiles_per_unique: r.compiles_per_unique,
            stale_faults: r.stale_faults,
            checksum: r.checksum,
        }
    }
}

/// Replays one workload at every pool size and asserts the cross-pool
/// differential: same checksum, same working set, regardless of N.
fn run_pools(opts: &ServeOptions) -> Vec<ServeBenchRow> {
    let rows: Vec<ServeBenchRow> = SERVE_THREADS
        .iter()
        .map(|&n| {
            eprintln!(
                "serve: replaying {} requests over {n} worker(s)...",
                opts.requests
            );
            ServeBenchRow::from(&run_serve(n, opts))
        })
        .collect();
    for r in &rows[1..] {
        assert_eq!(
            r.checksum, rows[0].checksum,
            "pool size {} diverged from the single-thread replay",
            r.threads
        );
        assert_eq!(r.unique_fingerprints, rows[0].unique_fingerprints);
    }
    rows
}

/// Full run: the benchmark configuration behind `BENCH_serve.json`.
pub fn serve_bench() -> Vec<ServeBenchRow> {
    run_pools(&ServeOptions::full())
}

/// Smoke run: a short replay with every differential assert live — the
/// CI concurrency gate. Timing numbers are not meaningful at this size.
pub fn serve_bench_smoke() -> Vec<ServeBenchRow> {
    run_pools(&ServeOptions::smoke())
}

/// The sweep as JSON (`BENCH_serve.json`). Rows open on their
/// `"threads"` key (the scanner contract in [`crate::check`]); the
/// checksum is a 16-digit hex string so the full 64 bits survive
/// consumers that read JSON numbers as doubles.
pub fn serve_json(rows: &[ServeBenchRow]) -> Json {
    let rows: Vec<Json> = rows
        .iter()
        .map(|r| {
            Json::obj(vec![
                ("threads", Json::from(r.threads)),
                ("requests", Json::from(r.requests)),
                ("elapsed_ns", Json::from(r.elapsed_ns)),
                ("throughput_rps", Json::from(r.throughput_rps)),
                ("p50_ns", Json::from(r.p50_ns)),
                ("p99_ns", Json::from(r.p99_ns)),
                ("p999_ns", Json::from(r.p999_ns)),
                ("hit_rate", Json::from(r.hit_rate)),
                ("hits", Json::from(r.hits)),
                ("misses", Json::from(r.misses)),
                ("waits", Json::from(r.waits)),
                ("evictions", Json::from(r.evictions)),
                ("invalidations", Json::from(r.invalidations)),
                ("unique_fingerprints", Json::from(r.unique_fingerprints)),
                ("compiles", Json::from(r.compiles)),
                ("compiles_per_unique", Json::from(r.compiles_per_unique)),
                ("stale_faults", Json::from(r.stale_faults)),
                ("checksum", Json::from(format!("{:016x}", r.checksum))),
            ])
        })
        .collect();
    Json::obj(vec![
        ("experiment", Json::from("serve")),
        (
            "description",
            Json::from(
                "multi-tenant serve pool: seeded Zipfian compile/execute replay across \
                 worker threads sharing one artifact cache; checksum is the \
                 order-independent replay digest (bit-identical across pool sizes)",
            ),
        ),
        ("rows", Json::Arr(rows)),
    ])
}

/// Human-readable sweep table.
pub fn serve_report(rows: &[ServeBenchRow]) -> String {
    let mut out = String::new();
    out.push_str("Serve pool: Zipfian replay over the shared artifact cache\n\n");
    out.push_str(
        "  threads   req      rps        p50(ns)    p99(ns)    p999(ns)   hit    c/u    compiles  waits  stale  evict  inval  checksum\n",
    );
    for r in rows {
        out.push_str(&format!(
            "  {:7} {:5}   {:9.0}   {:8} {:10} {:10}    {:4.2}   {:4.2}   {:7} {:6} {:6} {:6} {:6}   {:016x}\n",
            r.threads,
            r.requests,
            r.throughput_rps,
            r.p50_ns,
            r.p99_ns,
            r.p999_ns,
            r.hit_rate,
            r.compiles_per_unique,
            r.compiles,
            r.waits,
            r.stale_faults,
            r.evictions,
            r.invalidations,
            r.checksum,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(threads: u64, rps: f64, p99: u64) -> ServeBenchRow {
        ServeBenchRow {
            threads,
            requests: 2000,
            elapsed_ns: 20_000_000,
            throughput_rps: rps,
            p50_ns: 4_000,
            p99_ns: p99,
            p999_ns: p99 * 3,
            hit_rate: 0.96,
            hits: 1900,
            misses: 70,
            waits: 3,
            evictions: 0,
            invalidations: 30,
            unique_fingerprints: 40,
            compiles: 69,
            compiles_per_unique: 0.99,
            stale_faults: 2,
            checksum: 0xf7d1_7d56_bf35_cfd4,
        }
    }

    #[test]
    fn json_has_rows_keys_and_hex_checksum() {
        let text = serve_json(&[sample(4, 100_000.0, 60_000)]).pretty();
        for key in [
            "experiment",
            "threads",
            "throughput_rps",
            "p50_ns",
            "p99_ns",
            "p999_ns",
            "hit_rate",
            "compiles_per_unique",
            "stale_faults",
            "unique_fingerprints",
            "checksum",
        ] {
            assert!(text.contains(&format!("\"{key}\"")), "missing {key}");
        }
        // The digest survives as a quoted hex string, not a lossy f64.
        assert!(text.contains("\"f7d17d56bf35cfd4\""), "{text}");
    }

    #[test]
    fn report_lists_every_pool_size() {
        let rows = vec![sample(1, 50_000.0, 40_000), sample(4, 100_000.0, 60_000)];
        let text = serve_report(&rows);
        assert!(text.contains("threads"));
        assert!(text.lines().count() >= 4);
    }
}
