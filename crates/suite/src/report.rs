//! Table/figure printers: each reproduces the rows/series of one table
//! or figure from the paper's evaluation section.

use crate::measure::{measure_with, DynBackend, Measurement};
use crate::micro::{measure_micro, table1_cases, MicroResult};
use tcc_vm::CostModel;

/// Prints Table 1: code generation overhead, cycles per generated
/// instruction, for the four extreme cases × {VCODE, ICODE}.
pub fn table1(ns_per_cycle: f64, large_stmts: usize, compositions: usize) -> String {
    let mut out = String::new();
    out.push_str("Table 1: code generation overhead (per generated instruction)\n");
    out.push_str(&format!("calibration: {ns_per_cycle:.2} ns/cycle\n"));
    out.push_str(&format!(
        "{:<42} {:>14} {:>14} {:>12} {:>12}\n",
        "Benchmark", "VCODE cyc/in", "ICODE cyc/in", "VCODE ns/in", "ICODE ns/in"
    ));
    for case in table1_cases(large_stmts, compositions) {
        let v: MicroResult = measure_micro(&case, DynBackend::Vcode, ns_per_cycle);
        let i: MicroResult = measure_micro(&case, DynBackend::IcodeLinear, ns_per_cycle);
        out.push_str(&format!(
            "{:<42} {:>14.1} {:>14.1} {:>12.1} {:>12.1}\n",
            case.label, v.cycles_per_insn, i.cycles_per_insn, v.ns_per_insn, i.ns_per_insn
        ));
    }
    out
}

/// Prints Figure 4: ratio of static to dynamic run time, four series.
pub fn figure4(ms: &[Measurement]) -> String {
    let mut out = String::new();
    out.push_str("Figure 4: speedup of dynamic code (ratio static/dynamic run time)\n");
    out.push_str(&format!(
        "{:<10} {:>11} {:>11} {:>11} {:>11}\n",
        "benchmark", "vcode-lcc", "icode-lcc", "vcode-gcc", "icode-gcc"
    ));
    for m in ms {
        out.push_str(&format!(
            "{:<10} {:>11.2} {:>11.2} {:>11.2} {:>11.2}\n",
            m.name,
            m.ratio_vs_naive(DynBackend::Vcode),
            m.ratio_vs_naive(DynBackend::IcodeLinear),
            m.ratio_vs_opt(DynBackend::Vcode),
            m.ratio_vs_opt(DynBackend::IcodeLinear),
        ));
    }
    out
}

/// Prints Figure 5: cross-over points (runs to amortize codegen).
pub fn figure5(ms: &[Measurement], ns_per_cycle: f64) -> String {
    let fmt = |x: Option<f64>| match x {
        Some(v) => format!("{:.1}", v.max(0.1)),
        None => "—".to_string(),
    };
    let mut out = String::new();
    out.push_str("Figure 5: cross-over point (number of runs; — = never pays off)\n");
    out.push_str(&format!("calibration: {ns_per_cycle:.2} ns/cycle\n"));
    out.push_str(&format!(
        "{:<10} {:>11} {:>11} {:>11} {:>11}\n",
        "benchmark", "vcode-lcc", "icode-lcc", "vcode-gcc", "icode-gcc"
    ));
    for m in ms {
        out.push_str(&format!(
            "{:<10} {:>11} {:>11} {:>11} {:>11}\n",
            m.name,
            fmt(m.crossover(DynBackend::Vcode, false, ns_per_cycle)),
            fmt(m.crossover(DynBackend::IcodeLinear, false, ns_per_cycle)),
            fmt(m.crossover(DynBackend::Vcode, true, ns_per_cycle)),
            fmt(m.crossover(DynBackend::IcodeLinear, true, ns_per_cycle)),
        ));
    }
    out
}

/// Prints Figure 6: VCODE code generation cost per benchmark.
pub fn figure6(ms: &[Measurement], ns_per_cycle: f64) -> String {
    let mut out = String::new();
    out.push_str("Figure 6: VCODE dynamic compilation cost (per generated instruction)\n");
    out.push_str(&format!(
        "{:<10} {:>10} {:>12} {:>12}\n",
        "benchmark", "insns", "ns/insn", "cycles/insn"
    ));
    for m in ms {
        let d = &m.dynamic[DynBackend::Vcode as usize];
        let per = d.codegen_ns / d.insns.max(1.0);
        out.push_str(&format!(
            "{:<10} {:>10.0} {:>12.1} {:>12.1}\n",
            m.name,
            d.insns,
            per,
            per / ns_per_cycle
        ));
    }
    out
}

/// Prints Figure 7: ICODE cost breakdown, linear scan vs graph coloring.
pub fn figure7(ms: &[Measurement], ns_per_cycle: f64) -> String {
    let mut out = String::new();
    out.push_str(
        "Figure 7: ICODE dynamic compilation cost breakdown (cycles per generated instruction)\n",
    );
    out.push_str("two rows per benchmark: linear scan (ls) and graph coloring (gc)\n");
    out.push_str(&format!(
        "{:<14} {:>9} {:>9} {:>9} {:>9} {:>9} {:>10} {:>8}\n",
        "benchmark", "walk+IR", "flow", "liveness", "alloc", "emit", "total", "alloc%"
    ));
    for m in ms {
        for (b, tag) in [
            (DynBackend::IcodeLinear, "ls"),
            (DynBackend::IcodeColor, "gc"),
        ] {
            let d = &m.dynamic[b as usize];
            let per = |ns: f64| ns / d.insns.max(1.0) / ns_per_cycle;
            let compiles = crate::measure::COMPILE_REPS as f64;
            let ph = &d.phases;
            let flow = ph.flow_ns as f64 / compiles;
            let live = (ph.liveness_ns + ph.intervals_ns) as f64 / compiles;
            let alloc = ph.alloc_ns as f64 / compiles;
            let emit = (ph.emit_ns + ph.peephole_ns) as f64 / compiles;
            let total = d.codegen_ns;
            let allocfrac = (live + alloc) / total.max(1.0) * 100.0;
            out.push_str(&format!(
                "{:<14} {:>9.1} {:>9.1} {:>9.1} {:>9.1} {:>9.1} {:>10.1} {:>7.0}%\n",
                format!("{} ({tag})", m.name),
                per(d.walk_ns),
                per(flow),
                per(live),
                per(alloc),
                per(emit),
                per(total),
                allocfrac,
            ));
        }
    }
    out
}

/// Prints the xv Blur experiment (§6.2) summary.
pub fn blur_report(m: &Measurement, ns_per_cycle: f64) -> String {
    let d = &m.dynamic[DynBackend::IcodeLinear as usize];
    let codegen_cycles = d.codegen_ns / ns_per_cycle;
    format!(
        "xv Blur (§6.2)\n\
         static (lcc-like):  {} cycles\n\
         static (gcc-like):  {} cycles\n\
         dynamic (icode):    {} cycles  (vs lcc {:.2}x, vs gcc {:.2}x)\n\
         dynamic (vcode):    {} cycles\n\
         codegen (icode):    {:.0} equivalent cycles = {:.1}% of one dynamic run\n",
        m.static_naive_cycles,
        m.static_opt_cycles,
        d.run_cycles,
        m.ratio_vs_naive(DynBackend::IcodeLinear),
        m.ratio_vs_opt(DynBackend::IcodeLinear),
        m.dynamic[DynBackend::Vcode as usize].run_cycles,
        codegen_cycles,
        codegen_cycles / d.run_cycles.max(1) as f64 * 100.0,
    )
}

/// Cost-model sensitivity: do the paper's conclusions survive a uniform
/// (1 cycle/instruction) machine model? Re-measures a representative
/// subset of benchmarks under both models and prints the Figure 4 ratios
/// side by side.
pub fn sensitivity(benches: &[crate::programs::BenchDef]) -> String {
    let subset = ["hash", "ms", "query", "dp", "binary", "umshl"];
    let mut out = String::new();
    out.push_str("Cost-model sensitivity: icode-lcc speedup under two machine models\n");
    out.push_str(&format!(
        "{:<10} {:>16} {:>16}\n",
        "benchmark", "sparcstation5", "uniform(1cyc)"
    ));
    for b in benches.iter().filter(|b| subset.contains(&b.name)) {
        let m1 = measure_with(b, &CostModel::sparcstation5());
        let m2 = measure_with(b, &CostModel::uniform());
        out.push_str(&format!(
            "{:<10} {:>16.2} {:>16.2}\n",
            b.name,
            m1.ratio_vs_naive(DynBackend::IcodeLinear),
            m2.ratio_vs_naive(DynBackend::IcodeLinear),
        ));
    }
    out.push_str("(speedups shrink under the uniform model — part of the win is\n");
    out.push_str("strength-reducing expensive multiplies/divides — but stay > 1,\n");
    out.push_str("so the paper's conclusions are not artifacts of the cost model)\n");
    out
}
