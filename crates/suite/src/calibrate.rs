//! Interpreter calibration: host nanoseconds per VM cycle.
//!
//! Run time is measured in deterministic VM cycles; code generation runs
//! natively on the host and is measured in nanoseconds. The paper's
//! cross-over points (Figure 5) need both on one axis, so the harness
//! measures how many nanoseconds the interpreter takes per modeled cycle
//! and converts codegen time into "equivalent cycles" — i.e. it answers
//! the paper's question: how many runs of the generated code amortize
//! the generation cost *on the same machine*.

use std::time::Instant;
use tcc::Session;

const CALIB_SRC: &str = r#"
int calib(int n) {
    int s = 0;
    int i;
    for (i = 0; i < n; i++) s = s + (i ^ (s << 1)) + s / 3;
    return s;
}
"#;

/// Measures host nanoseconds per VM cycle (median of several trials).
pub fn ns_per_cycle() -> f64 {
    let mut s = Session::with_defaults(CALIB_SRC).expect("calibration source compiles");
    // Warm up.
    s.call("calib", &[10_000]).expect("calibration runs");
    let mut samples = Vec::new();
    for _ in 0..5 {
        s.reset_counters();
        let t = Instant::now();
        s.call("calib", &[200_000]).expect("calibration runs");
        let ns = t.elapsed().as_nanos() as f64;
        samples.push(ns / s.cycles().max(1) as f64);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    samples[samples.len() / 2]
}

#[cfg(test)]
mod tests {
    #[test]
    fn calibration_is_positive_and_sane() {
        let c = super::ns_per_cycle();
        assert!(c > 0.001 && c < 10_000.0, "ns/cycle = {c}");
    }
}
