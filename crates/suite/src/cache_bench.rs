//! Repeat-compile benchmark for the `tcc-cache` memoization layer.
//!
//! The paper's Figures 6-7 express dynamic compilation as an investment
//! amortized over N runs of the generated code. Memoizing `compile`
//! changes that economics for workloads that *re-specialize to the same
//! values*: the CGF cost is paid once and every further `compile` is a
//! fingerprint walk plus a table lookup. This benchmark sweeps the
//! reuse count — how many times an identical closure is compiled — and
//! reports total codegen cost with the cache off versus on, from which
//! the shifted break-even points follow. Emitted as `BENCH_cache.json`
//! by the suite binary.

use tcc::{Config, Session};
use tcc_obs::json::Json;

/// Reuse counts swept (compiles of the same closure per session).
pub const REUSE_SWEEP: [u64; 6] = [1, 2, 5, 10, 25, 50];

/// Statement count for the benchmark closure body (big enough that a
/// real compile dwarfs a fingerprint walk).
const BODY_STMTS: usize = 120;

/// One row of the sweep.
#[derive(Clone, Copy, Debug)]
pub struct CacheBenchRow {
    /// Compiles of the identical closure in one session.
    pub reuse: u64,
    /// Total dynamic-compilation nanoseconds with the cache disabled
    /// (every `compile` re-runs the CGF).
    pub cold_ns: u64,
    /// Total dynamic-compilation nanoseconds with the cache enabled
    /// (one real compile + `reuse − 1` hits), *including* the hit-path
    /// fingerprinting cost.
    pub cached_ns: u64,
    /// Cache hits observed (should be `reuse − 1`).
    pub hits: u64,
    /// Compile nanoseconds avoided by hits.
    pub ns_saved: u64,
    /// Nanoseconds spent answering hits (fingerprint + lookup).
    pub hit_ns: u64,
}

impl CacheBenchRow {
    /// Codegen-cost speedup from memoization at this reuse count.
    pub fn speedup(&self) -> f64 {
        self.cold_ns as f64 / self.cached_ns.max(1) as f64
    }

    /// Mean cost of one cache hit, in nanoseconds.
    pub fn ns_per_hit(&self) -> f64 {
        self.hit_ns as f64 / self.hits.max(1) as f64
    }
}

/// The benchmark program: `mk()` builds and compiles a closure whose
/// body is a long statement chain seeded by a `$`-bound run-time
/// constant — structurally identical on every call, so every compile
/// after the first is answerable from cache.
fn src() -> String {
    let mut body = String::new();
    for i in 0..BODY_STMTS {
        let (d, s) = if i % 2 == 0 { ("a", "b") } else { ("b", "a") };
        body.push_str(&format!("        {d} = {d} * 3 + {s} + {};\n", i % 7 + 1));
    }
    format!(
        r#"
int seed = 5;
long mk(void) {{
    void cspec c = `{{
        int a;
        int b;
        a = $seed;
        b = 2;
{body}        return a + b;
    }};
    return (long)compile(c, int);
}}
"#
    )
}

/// Drives `reuse` compiles of the identical closure in one session and
/// returns (total codegen ns incl. hit path, hits, ns_saved, hit_ns).
fn drive(reuse: u64, cache: bool) -> (u64, u64, u64, u64) {
    let mut s = Session::new(
        &src(),
        Config {
            cache,
            ..Config::default()
        },
    )
    .expect("benchmark source compiles");
    let mut addr = None;
    for _ in 0..reuse {
        let fp = s.call("mk", &[]).expect("dynamic compile succeeds");
        // All compiles of the identical closure must agree on the code.
        if let Some(prev) = addr {
            if cache {
                assert_eq!(prev, fp, "cache hit must return the same pointer");
            }
        }
        addr = Some(fp);
    }
    let m = s.metrics();
    (
        m.dynamic.total_ns + m.cache.hit_ns,
        m.cache.hits,
        m.cache.ns_saved,
        m.cache.hit_ns,
    )
}

/// Runs the sweep.
pub fn cache_bench() -> Vec<CacheBenchRow> {
    REUSE_SWEEP
        .iter()
        .map(|&reuse| {
            let (cold_ns, ..) = drive(reuse, false);
            let (cached_ns, hits, ns_saved, hit_ns) = drive(reuse, true);
            CacheBenchRow {
                reuse,
                cold_ns,
                cached_ns,
                hits,
                ns_saved,
                hit_ns,
            }
        })
        .collect()
}

/// The sweep as JSON (`BENCH_cache.json`).
pub fn cache_json(rows: &[CacheBenchRow]) -> Json {
    let rows: Vec<Json> = rows
        .iter()
        .map(|r| {
            Json::obj(vec![
                ("reuse", Json::from(r.reuse)),
                ("cold_ns", Json::from(r.cold_ns)),
                ("cached_ns", Json::from(r.cached_ns)),
                ("hits", Json::from(r.hits)),
                ("ns_saved", Json::from(r.ns_saved)),
                ("hit_ns", Json::from(r.hit_ns)),
                ("ns_per_hit", Json::from(r.ns_per_hit())),
                ("speedup", Json::from(r.speedup())),
            ])
        })
        .collect();
    Json::obj(vec![
        ("experiment", Json::from("cache")),
        (
            "description",
            Json::from("total codegen cost vs reuse count, compile memoization off/on"),
        ),
        ("body_stmts", Json::from(BODY_STMTS as u64)),
        ("rows", Json::Arr(rows)),
    ])
}

/// Human-readable sweep table.
pub fn cache_report(rows: &[CacheBenchRow]) -> String {
    let mut out = String::new();
    out.push_str("Compile memoization: total codegen cost vs reuse count\n");
    out.push_str("(identical closure recompiled N times per session)\n\n");
    out.push_str("  reuse   cache-off (ns)   cache-on (ns)   speedup   ns/hit\n");
    for r in rows {
        out.push_str(&format!(
            "  {:5}   {:14}   {:13}   {:6.1}x   {:6.0}\n",
            r.reuse,
            r.cold_ns,
            r.cached_ns,
            r.speedup(),
            r.ns_per_hit(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_shows_memoization_wins_at_high_reuse() {
        // One small point, full pipeline: at reuse 8 the cache answers 7
        // compiles for (roughly) the price of 1.
        let (cold_ns, ..) = drive(8, false);
        let (cached_ns, hits, ns_saved, hit_ns) = drive(8, true);
        assert_eq!(hits, 7);
        assert!(ns_saved > 0);
        assert!(
            cached_ns < cold_ns,
            "memoized sweep must be cheaper: {cached_ns} vs {cold_ns}"
        );
        let _ = hit_ns;
    }

    #[test]
    fn json_has_rows_and_speedup() {
        let rows = vec![CacheBenchRow {
            reuse: 4,
            cold_ns: 4000,
            cached_ns: 1100,
            hits: 3,
            ns_saved: 3000,
            hit_ns: 90,
        }];
        let text = cache_json(&rows).to_string();
        for key in ["experiment", "reuse", "speedup", "ns_per_hit"] {
            assert!(text.contains(&format!("\"{key}\"")), "missing {key}");
        }
    }
}
