//! Adaptive-tiering calibration: total (translate + run) wall-clock as
//! a function of reuse count.
//!
//! The fixed engines bake in a bet: decode-per-step pays nothing up
//! front and the most per instruction; the threaded engine pays a full
//! translation before the first instruction retires. Which bet wins
//! depends on how often the function runs — exactly the paper's
//! break-even economics, applied to the VM's own translation layer.
//! The adaptive engine is supposed to get (close to) the best of both
//! by starting cold and climbing tiers per function as run counts
//! cross its thresholds. This experiment sweeps the reuse count like
//! `cache_bench` does: each timed region starts from a cold
//! translation cache (`set_engine` drops translations and tier state)
//! and executes the kernel `reuse` times, so the row captures the full
//! cold-to-hot trajectory rather than steady state. Each cell also
//! records the **warm** marginal ns/run per engine (translations and
//! tier climbs long paid); the per-kernel [`warm_summary`] — the
//! fastest warm observation per engine across the sweep — is the
//! steady-state number the adaptive engine is accepted against
//! (`warm_adaptive_vs_best`), while the cold columns price the climb
//! itself. Emitted as `BENCH_adaptive.json` by the suite binary; the
//! committed baseline under `baselines/` pins the calibration used to
//! pick the default thresholds.

use std::sync::OnceLock;
use std::time::Instant;

use crate::programs::{benchmarks, BenchDef, BLUR_SMALL};
use tcc::{Config, ExecEngine, Session};
use tcc_obs::json::Json;

/// Reuse counts swept (runs of the compiled kernel per cold start).
pub const ADAPTIVE_REUSE_SWEEP: [u64; 5] = [1, 2, 4, 8, 32];

/// Suite kernels included in the sweep (loop-heavy, dispatch-bound).
const SUITE_KERNELS: [&str; 3] = ["hash", "binary", "dp"];

/// Statement count of the synthetic straight-line kernel — long enough
/// that translating it is real work compared to executing it once,
/// which is where an up-front translation loses at reuse 1.
const STRAIGHT_STMTS: usize = 400;

/// Wall-clock target per (kernel, reuse, engine) cell, full mode.
const TARGET_NS: u64 = 40_000_000;

/// The engines compared per cell. The adaptive engine runs with its
/// shipping defaults (`ExecEngine::default()`); `adaptive-bg` is the
/// same thresholds with translation handed to the background worker,
/// so its per-run tail (`run_p99_*`) prices what moving translation
/// off the critical path buys at the promotion points.
const ENGINES: [(&str, ExecEngine); 5] = [
    ("decode", ExecEngine::DecodePerStep),
    ("fused", ExecEngine::Predecoded { fuse: true }),
    ("threaded", ExecEngine::Threaded),
    (
        "adaptive",
        ExecEngine::Adaptive {
            fuse_after: tcc::DEFAULT_FUSE_AFTER,
            thread_after: tcc::DEFAULT_THREAD_AFTER,
            background: false,
        },
    ),
    (
        "adaptive-bg",
        ExecEngine::Adaptive {
            fuse_after: tcc::DEFAULT_FUSE_AFTER,
            thread_after: tcc::DEFAULT_THREAD_AFTER,
            background: true,
        },
    ),
];

/// One (kernel, reuse) cell: fastest observed cold-start wall-clock
/// per engine (min over reps — the noise-robust estimator).
#[derive(Clone, Copy, Debug)]
pub struct AdaptiveBenchRow {
    /// Kernel name.
    pub kernel: &'static str,
    /// Runs of the compiled kernel per cold start.
    pub reuse: u64,
    /// Cold-start repetitions measured (the fastest is kept).
    pub reps: u64,
    /// Fastest cold start, ns: decode-per-step.
    pub decode_ns: u64,
    /// Fastest cold start, ns: predecoded + fused.
    pub fused_ns: u64,
    /// Fastest cold start, ns: direct-threaded.
    pub threaded_ns: u64,
    /// Fastest cold start, ns: adaptive tiering, default thresholds.
    pub adaptive_ns: u64,
    /// Fastest cold start, ns: adaptive with the background worker.
    pub adaptive_bg_ns: u64,
    /// Tier levels gained by the adaptive engine across all its reps.
    pub promotions: u64,
    /// Warm marginal ns per run (translations long paid): decode.
    pub warm_decode_ns: u64,
    /// Warm marginal ns per run: predecoded + fused.
    pub warm_fused_ns: u64,
    /// Warm marginal ns per run: direct-threaded.
    pub warm_threaded_ns: u64,
    /// Warm marginal ns per run: adaptive at its steady-state tier.
    pub warm_adaptive_ns: u64,
    /// Warm marginal ns per run: adaptive with the background worker.
    pub warm_adaptive_bg_ns: u64,
    /// Slowest single cold run across all reps: synchronous adaptive.
    /// The worst run eats a full translation at a promotion boundary.
    pub run_max_adaptive_ns: u64,
    /// 99th-percentile single cold run: synchronous adaptive.
    pub run_p99_adaptive_ns: u64,
    /// Slowest single cold run: adaptive with the background worker.
    pub run_max_adaptive_bg_ns: u64,
    /// 99th-percentile single cold run: background-worker adaptive —
    /// the tail-latency number the tiering pipeline is accepted on.
    pub run_p99_adaptive_bg_ns: u64,
}

impl AdaptiveBenchRow {
    /// The cheapest fixed engine for this cell.
    pub fn best_fixed_ns(&self) -> u64 {
        self.decode_ns.min(self.fused_ns).min(self.threaded_ns)
    }

    /// Adaptive cost relative to the best fixed engine (1.0 = matched
    /// it; the calibration target is <= 1.05 at reuse >= 8).
    pub fn adaptive_vs_best(&self) -> f64 {
        self.adaptive_ns as f64 / self.best_fixed_ns().max(1) as f64
    }

    /// Adaptive speedup over always-threaded (> 1.0 means the lazy
    /// start won; expected at reuse 1 on straight-line code).
    pub fn speedup_vs_threaded(&self) -> f64 {
        self.threaded_ns as f64 / self.adaptive_ns.max(1) as f64
    }

    /// The cheapest fixed engine once everything is warm.
    pub fn warm_best_fixed_ns(&self) -> u64 {
        self.warm_decode_ns
            .min(self.warm_fused_ns)
            .min(self.warm_threaded_ns)
    }

    /// Warm marginal cost of the adaptive engine relative to the best
    /// warm fixed engine for this cell. Per-cell this is noisy (two
    /// independent measurements divided); the acceptance number is the
    /// per-kernel [`warm_summary`] version.
    pub fn warm_adaptive_vs_best(&self) -> f64 {
        self.warm_adaptive_ns as f64 / self.warm_best_fixed_ns().max(1) as f64
    }

    /// Cold per-run p99 of the synchronous adaptive engine over the
    /// background worker's (> 1.0 means the worker shortened the tail).
    /// A ratio of back-to-back runs on the same machine, so it is
    /// stable across machines the way the speedup columns are — this is
    /// the number `exec-check` gates. 0.0 when either side has no
    /// samples (a row predating the tail columns), which the gate
    /// treats as warn-and-skip.
    ///
    /// Which side of 1.0 the ratio lands on is host-dependent: moving
    /// translation off-thread only buys tail latency when translation
    /// cost is a large fraction of a run (the `straight` kernel at low
    /// reuse) or when a spare hardware thread can absorb the build. On
    /// a single-CPU host the worker time-shares the core with the VM
    /// and short loop kernels pay wakeup latency instead, pushing the
    /// ratio below 1. The gate therefore checks the ratio against the
    /// same-machine baseline rather than against 1.0.
    pub fn tail_p99_improvement(&self) -> f64 {
        if self.run_p99_adaptive_ns == 0 || self.run_p99_adaptive_bg_ns == 0 {
            return 0.0;
        }
        self.run_p99_adaptive_ns as f64 / self.run_p99_adaptive_bg_ns as f64
    }
}

/// Per-kernel steady-state summary: the fastest warm observation of
/// each engine across the whole sweep. Warm marginal cost does not
/// depend on the reuse count, so a kernel's five rows are five
/// independent measurements of the same quantity — the min across
/// them survives a scheduler stall poisoning any single cell, which
/// no per-cell estimator can. `warm_adaptive_vs_best` here is the
/// steady-state acceptance number (target <= 1.05).
#[derive(Clone, Copy, Debug)]
pub struct WarmSummary {
    /// Kernel name.
    pub kernel: &'static str,
    /// Fastest warm ns/run observed: decode-per-step.
    pub warm_decode_ns: u64,
    /// Fastest warm ns/run observed: predecoded + fused.
    pub warm_fused_ns: u64,
    /// Fastest warm ns/run observed: direct-threaded.
    pub warm_threaded_ns: u64,
    /// Fastest warm ns/run observed: adaptive at its steady-state tier.
    pub warm_adaptive_ns: u64,
}

impl WarmSummary {
    /// The cheapest warm fixed engine for this kernel.
    pub fn warm_best_fixed_ns(&self) -> u64 {
        self.warm_decode_ns
            .min(self.warm_fused_ns)
            .min(self.warm_threaded_ns)
    }

    /// Steady-state cost of the adaptive engine over the best fixed
    /// engine — the acceptance number (<= 1.05).
    pub fn warm_adaptive_vs_best(&self) -> f64 {
        self.warm_adaptive_ns as f64 / self.warm_best_fixed_ns().max(1) as f64
    }
}

/// Folds the sweep into one [`WarmSummary`] per kernel, in order of
/// first appearance.
pub fn warm_summary(rows: &[AdaptiveBenchRow]) -> Vec<WarmSummary> {
    let mut out: Vec<WarmSummary> = Vec::new();
    for r in rows {
        match out.iter_mut().find(|s| s.kernel == r.kernel) {
            Some(s) => {
                s.warm_decode_ns = s.warm_decode_ns.min(r.warm_decode_ns);
                s.warm_fused_ns = s.warm_fused_ns.min(r.warm_fused_ns);
                s.warm_threaded_ns = s.warm_threaded_ns.min(r.warm_threaded_ns);
                s.warm_adaptive_ns = s.warm_adaptive_ns.min(r.warm_adaptive_ns);
            }
            None => out.push(WarmSummary {
                kernel: r.kernel,
                warm_decode_ns: r.warm_decode_ns,
                warm_fused_ns: r.warm_fused_ns,
                warm_threaded_ns: r.warm_threaded_ns,
                warm_adaptive_ns: r.warm_adaptive_ns,
            }),
        }
    }
    out
}

fn straight_src() -> String {
    let mut body = String::new();
    for i in 0..STRAIGHT_STMTS {
        let (d, s) = if i % 2 == 0 { ("a", "b") } else { ("b", "a") };
        body.push_str(&format!("        {d} = {d} * 3 + {s} + {};\n", i % 7 + 1));
    }
    format!(
        r#"
int seed = 5;
long mk(void) {{
    void cspec c = `{{
        int a;
        int b;
        a = $seed;
        b = 2;
{body}        return a + b;
    }};
    return (long)compile(c, int);
}}
int runit(long fp) {{
    int (*g)(void) = (int (*)(void))fp;
    return (*g)();
}}
"#
    )
}

fn straight_setup(_s: &mut Session) {}

fn straight_static(_s: &mut Session) -> u64 {
    0
}

fn straight_compile(s: &mut Session) -> u64 {
    s.call("mk", &[]).expect("straight kernel compiles")
}

fn straight_run(s: &mut Session, fp: u64) -> u64 {
    s.call("runit", &[fp]).expect("straight kernel runs")
}

/// The synthetic straight-line kernel as a [`BenchDef`], so the drive
/// loop treats it exactly like the suite kernels.
fn straight_def() -> BenchDef {
    static SRC: OnceLock<String> = OnceLock::new();
    BenchDef {
        name: "straight",
        style: "synthetic straight-line chain (no loops)",
        src: SRC.get_or_init(straight_src),
        setup: straight_setup,
        run_static: straight_static,
        compile_dyn: straight_compile,
        run_dyn: straight_run,
        check: straight_static,
    }
}

/// The kernels measured: three loop-heavy suite benchmarks plus the
/// straight-line synthetic.
fn defs() -> Vec<BenchDef> {
    let all = benchmarks(BLUR_SMALL);
    let mut out: Vec<BenchDef> = SUITE_KERNELS
        .iter()
        .map(|name| {
            all.iter()
                .find(|b| b.name == *name)
                .unwrap_or_else(|| panic!("no bench named {name}"))
                .clone()
        })
        .collect();
    out.push(straight_def());
    out
}

struct Timed {
    ns: u64,
    warm_ns: u64,
    /// Slowest single run across every cold rep.
    run_max_ns: u64,
    /// 99th-percentile single run across every cold rep.
    run_p99_ns: u64,
    checksum: u64,
    cycles: u64,
    insns: u64,
    promotions: u64,
}

/// Max and p99 of a sample set (ns). p99 is the nearest-rank
/// estimator: the sample at index `ceil(0.99 * n) - 1` after sorting,
/// so small sample sets degrade toward the max rather than
/// interpolating values that were never observed.
fn tail(samples: &mut [u64]) -> (u64, u64) {
    if samples.is_empty() {
        return (0, 0);
    }
    samples.sort_unstable();
    let n = samples.len();
    let p99 = samples[(n * 99).div_ceil(100).max(1) - 1];
    (samples[n - 1], p99)
}

/// Untimed runs after the cold reps that carry every function to its
/// steady-state tier before the warm measurement.
const WARM_WARMUP_RUNS: u64 = 16;

/// Runs averaged per warm timing batch.
const WARM_TIMED_RUNS: u64 = 64;

/// Warm batches measured; the cell keeps the fastest batch. The min is
/// the standard estimator for a fixed-work microbenchmark — every
/// source of noise (preemption, interrupts, frequency steps) only adds
/// time, so the fastest batch is the closest observation of the true
/// marginal cost. Cold starts use the same estimator (fastest rep).
const WARM_BATCHES: u64 = 32;

/// Times `reps` cold starts of `reuse` runs each. `set_engine` before
/// every timed region drops the translation cache *and* the adaptive
/// tier state, so each rep pays the engine's full translate+run cost
/// from scratch — the quantity the tiering thresholds trade off.
fn drive(b: &BenchDef, engine: ExecEngine, reuse: u64, reps: u64) -> Timed {
    let mut s = Session::new(b.src, Config::default()).expect("benchmark source compiles");
    s.vm.set_engine(engine);
    (b.setup)(&mut s);
    let fp = (b.compile_dyn)(&mut s);
    s.reset_counters();
    let mut checksum = 0u64;
    let mut best = u64::MAX;
    let mut samples: Vec<u64> = Vec::with_capacity((reps * reuse) as usize);
    for _ in 0..reps {
        s.vm.set_engine(engine);
        let t = Instant::now();
        for _ in 0..reuse {
            let r = Instant::now();
            checksum = checksum.wrapping_add((b.run_dyn)(&mut s, fp));
            samples.push(r.elapsed().as_nanos() as u64);
        }
        best = best.min(t.elapsed().as_nanos() as u64);
    }
    let (run_max_ns, run_p99_ns) = tail(&mut samples);
    // Warm marginal cost: no reset, translations and tiers long paid.
    // Min over batches; a scheduler stall long enough to span every
    // batch still poisons the cell, which is why the derived
    // acceptance number is the per-kernel min across the sweep
    // ([`warm_summary`]) rather than any single cell.
    for _ in 0..WARM_WARMUP_RUNS {
        checksum = checksum.wrapping_add((b.run_dyn)(&mut s, fp));
    }
    // Settle any in-flight background translations so the warm batches
    // measure the steady-state tier, not a straggling swap (no-op for
    // the synchronous engines: nothing is ever pending).
    s.vm.drain_background_translations();
    let mut warm_ns = u64::MAX;
    for _ in 0..WARM_BATCHES {
        let t = Instant::now();
        for _ in 0..WARM_TIMED_RUNS {
            checksum = checksum.wrapping_add((b.run_dyn)(&mut s, fp));
        }
        warm_ns = warm_ns.min(t.elapsed().as_nanos() as u64 / WARM_TIMED_RUNS);
    }
    Timed {
        ns: best,
        warm_ns,
        run_max_ns,
        run_p99_ns,
        checksum,
        cycles: s.cycles(),
        insns: s.insns(),
        promotions: s.metrics().adaptive.promotions,
    }
}

/// Picks a rep count so one cell's timed region lands near `target_ns`
/// (probed on the decode engine, shared by every engine in the cell).
fn pick_reps(b: &BenchDef, reuse: u64, target_ns: u64) -> u64 {
    let probe = drive(b, ExecEngine::DecodePerStep, reuse, 1);
    (target_ns / probe.ns.max(1)).clamp(3, 1 << 14)
}

/// Runs one (kernel, reuse) cell through all engines, asserting the
/// observational-equivalence contract (checksums and modeled counters
/// identical across engines).
fn compare(b: &BenchDef, reuse: u64, reps: u64) -> AdaptiveBenchRow {
    let cells: Vec<Timed> = ENGINES
        .iter()
        .map(|&(_, e)| drive(b, e, reuse, reps))
        .collect();
    let reference = &cells[0];
    for ((label, _), t) in ENGINES.iter().zip(&cells).skip(1) {
        assert_eq!(
            (t.checksum, t.cycles, t.insns),
            (reference.checksum, reference.cycles, reference.insns),
            "{}: {label} engine diverges from decode-per-step at reuse {reuse}",
            b.name
        );
    }
    AdaptiveBenchRow {
        kernel: b.name,
        reuse,
        reps,
        decode_ns: cells[0].ns,
        fused_ns: cells[1].ns,
        threaded_ns: cells[2].ns,
        adaptive_ns: cells[3].ns,
        adaptive_bg_ns: cells[4].ns,
        promotions: cells[3].promotions,
        warm_decode_ns: cells[0].warm_ns,
        warm_fused_ns: cells[1].warm_ns,
        warm_threaded_ns: cells[2].warm_ns,
        warm_adaptive_ns: cells[3].warm_ns,
        warm_adaptive_bg_ns: cells[4].warm_ns,
        run_max_adaptive_ns: cells[3].run_max_ns,
        run_p99_adaptive_ns: cells[3].run_p99_ns,
        run_max_adaptive_bg_ns: cells[4].run_max_ns,
        run_p99_adaptive_bg_ns: cells[4].run_p99_ns,
    }
}

/// Full run: the whole sweep at calibrated rep counts.
pub fn adaptive_bench() -> Vec<AdaptiveBenchRow> {
    let mut rows = Vec::new();
    for b in defs() {
        eprintln!("adaptive: measuring {}...", b.name);
        for &reuse in &ADAPTIVE_REUSE_SWEEP {
            let reps = pick_reps(&b, reuse, TARGET_NS);
            rows.push(compare(&b, reuse, reps));
        }
    }
    rows
}

/// Smoke run: every cell at a few reps with the equivalence asserts
/// live — the CI gate. Timing numbers are not meaningful at this size.
pub fn adaptive_bench_smoke() -> Vec<AdaptiveBenchRow> {
    let mut rows = Vec::new();
    for b in defs() {
        for &reuse in &[1u64, 4] {
            rows.push(compare(&b, reuse, 2));
        }
    }
    rows
}

/// The sweep as JSON (`BENCH_adaptive.json`).
pub fn adaptive_json(rows: &[AdaptiveBenchRow]) -> Json {
    let summary: Vec<Json> = warm_summary(rows)
        .iter()
        .map(|s| {
            Json::obj(vec![
                ("kernel", Json::from(s.kernel)),
                ("warm_decode_ns", Json::from(s.warm_decode_ns)),
                ("warm_fused_ns", Json::from(s.warm_fused_ns)),
                ("warm_threaded_ns", Json::from(s.warm_threaded_ns)),
                ("warm_adaptive_ns", Json::from(s.warm_adaptive_ns)),
                (
                    "warm_adaptive_vs_best",
                    Json::from(s.warm_adaptive_vs_best()),
                ),
            ])
        })
        .collect();
    let rows: Vec<Json> = rows
        .iter()
        .map(|r| {
            Json::obj(vec![
                ("kernel", Json::from(r.kernel)),
                ("reuse", Json::from(r.reuse)),
                ("reps", Json::from(r.reps)),
                ("decode_ns", Json::from(r.decode_ns)),
                ("fused_ns", Json::from(r.fused_ns)),
                ("threaded_ns", Json::from(r.threaded_ns)),
                ("adaptive_ns", Json::from(r.adaptive_ns)),
                ("adaptive_bg_ns", Json::from(r.adaptive_bg_ns)),
                ("promotions", Json::from(r.promotions)),
                ("best_fixed_ns", Json::from(r.best_fixed_ns())),
                ("adaptive_vs_best", Json::from(r.adaptive_vs_best())),
                ("speedup_vs_threaded", Json::from(r.speedup_vs_threaded())),
                ("warm_decode_ns", Json::from(r.warm_decode_ns)),
                ("warm_fused_ns", Json::from(r.warm_fused_ns)),
                ("warm_threaded_ns", Json::from(r.warm_threaded_ns)),
                ("warm_adaptive_ns", Json::from(r.warm_adaptive_ns)),
                ("warm_adaptive_bg_ns", Json::from(r.warm_adaptive_bg_ns)),
                ("run_max_adaptive_ns", Json::from(r.run_max_adaptive_ns)),
                ("run_p99_adaptive_ns", Json::from(r.run_p99_adaptive_ns)),
                (
                    "run_max_adaptive_bg_ns",
                    Json::from(r.run_max_adaptive_bg_ns),
                ),
                (
                    "run_p99_adaptive_bg_ns",
                    Json::from(r.run_p99_adaptive_bg_ns),
                ),
                ("tail_p99_improvement", Json::from(r.tail_p99_improvement())),
                (
                    "warm_adaptive_vs_best",
                    Json::from(r.warm_adaptive_vs_best()),
                ),
            ])
        })
        .collect();
    Json::obj(vec![
        ("experiment", Json::from("adaptive")),
        (
            "description",
            Json::from(
                "cold-start (translate + run) wall-clock vs reuse count per engine; \
                 adaptive_vs_best is the adaptive engine's cost over the cheapest \
                 fixed engine for that cell; run_max/run_p99 are per-run cold tail \
                 latencies, with adaptive_bg moving translation to the background \
                 worker",
            ),
        ),
        ("straight_stmts", Json::from(STRAIGHT_STMTS as u64)),
        ("rows", Json::Arr(rows)),
        ("warm_summary", Json::Arr(summary)),
    ])
}

/// Human-readable sweep table.
pub fn adaptive_report(rows: &[AdaptiveBenchRow]) -> String {
    let mut out = String::new();
    out.push_str("Adaptive tiering: cold-start translate+run cost vs reuse count\n");
    out.push_str("(every timed region starts with an empty translation cache)\n\n");
    out.push_str(
        "  kernel    reuse   decode (ns)    fused (ns)   threaded (ns)   adaptive (ns)   adapt-bg (ns)   vs-best   vs-thread   warm-adapt   warm-vs-best   p99-run   p99-run-bg   promo\n",
    );
    for r in rows {
        out.push_str(&format!(
            "  {:8} {:6}   {:11}   {:11}   {:13}   {:13}   {:13}   {:6.2}x   {:8.2}x   {:10}   {:11.2}x   {:7}   {:10}   {:5}\n",
            r.kernel,
            r.reuse,
            r.decode_ns,
            r.fused_ns,
            r.threaded_ns,
            r.adaptive_ns,
            r.adaptive_bg_ns,
            r.adaptive_vs_best(),
            r.speedup_vs_threaded(),
            r.warm_adaptive_ns,
            r.warm_adaptive_vs_best(),
            r.run_p99_adaptive_ns,
            r.run_p99_adaptive_bg_ns,
            r.promotions,
        ));
    }
    out.push_str(
        "\nSteady state per kernel (fastest warm ns/run across the sweep):\n\n\
         \x20 kernel      decode    fused   threaded   adaptive   adaptive-vs-best\n",
    );
    for s in warm_summary(rows) {
        out.push_str(&format!(
            "  {:8}  {:8} {:8}   {:8}   {:8}   {:15.2}x\n",
            s.kernel,
            s.warm_decode_ns,
            s.warm_fused_ns,
            s.warm_threaded_ns,
            s.warm_adaptive_ns,
            s.warm_adaptive_vs_best(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engines_agree_and_adaptive_promotes_within_a_cell() {
        // One cell end-to-end: compare() panics on any checksum or
        // counter divergence. Four runs with default thresholds cross
        // the fuse boundary, so the adaptive engine must promote.
        let b = straight_def();
        let row = compare(&b, 4, 2);
        assert_eq!((row.kernel, row.reuse, row.reps), ("straight", 4, 2));
        assert!(row.promotions > 0, "no promotions at reuse 4: {row:?}");
    }

    #[test]
    fn suite_kernels_resolve_and_agree_at_reuse_one() {
        let all = benchmarks(BLUR_SMALL);
        let b = all.iter().find(|b| b.name == "binary").unwrap();
        let row = compare(b, 1, 2);
        assert_eq!(row.reuse, 1);
    }

    #[test]
    fn json_has_rows_and_derived_columns() {
        let rows = vec![AdaptiveBenchRow {
            kernel: "straight",
            reuse: 8,
            reps: 10,
            decode_ns: 4000,
            fused_ns: 1500,
            threaded_ns: 1000,
            adaptive_ns: 1040,
            adaptive_bg_ns: 1020,
            promotions: 3,
            warm_decode_ns: 400,
            warm_fused_ns: 120,
            warm_threaded_ns: 100,
            warm_adaptive_ns: 103,
            warm_adaptive_bg_ns: 104,
            run_max_adaptive_ns: 900,
            run_p99_adaptive_ns: 800,
            run_max_adaptive_bg_ns: 300,
            run_p99_adaptive_bg_ns: 250,
        }];
        let text = adaptive_json(&rows).to_string();
        for key in [
            "experiment",
            "kernel",
            "reuse",
            "adaptive_ns",
            "adaptive_bg_ns",
            "promotions",
            "best_fixed_ns",
            "adaptive_vs_best",
            "speedup_vs_threaded",
            "warm_adaptive_ns",
            "warm_adaptive_bg_ns",
            "run_max_adaptive_ns",
            "run_p99_adaptive_ns",
            "run_max_adaptive_bg_ns",
            "run_p99_adaptive_bg_ns",
            "tail_p99_improvement",
            "warm_adaptive_vs_best",
        ] {
            assert!(text.contains(&format!("\"{key}\"")), "missing {key}");
        }
        assert_eq!(rows[0].best_fixed_ns(), 1000);
        assert!((rows[0].adaptive_vs_best() - 1.04).abs() < 1e-12);
        assert_eq!(rows[0].warm_best_fixed_ns(), 100);
        assert!((rows[0].warm_adaptive_vs_best() - 1.03).abs() < 1e-12);
        assert!((rows[0].tail_p99_improvement() - 3.2).abs() < 1e-12);
        // Either tail side at 0 (a row predating the columns) yields
        // 0.0, the gate's warn-and-skip sentinel — never NaN or inf.
        let mut old = rows[0];
        old.run_p99_adaptive_bg_ns = 0;
        assert_eq!(old.tail_p99_improvement(), 0.0);
        old.run_p99_adaptive_bg_ns = 250;
        old.run_p99_adaptive_ns = 0;
        assert_eq!(old.tail_p99_improvement(), 0.0);
        assert!(text.contains("\"warm_summary\""));
    }

    #[test]
    fn tail_uses_nearest_rank_p99_and_true_max() {
        let (max, p99) = tail(&mut []);
        assert_eq!((max, p99), (0, 0));
        // One sample: p99 degrades to the max, never to zero.
        let (max, p99) = tail(&mut [7]);
        assert_eq!((max, p99), (7, 7));
        // 100 samples 1..=100: nearest-rank p99 is the 99th value.
        let mut v: Vec<u64> = (1..=100).rev().collect();
        let (max, p99) = tail(&mut v);
        assert_eq!((max, p99), (100, 99));
        // 200 samples: rank ceil(0.99 * 200) = 198.
        let mut v: Vec<u64> = (1..=200).collect();
        let (max, p99) = tail(&mut v);
        assert_eq!((max, p99), (200, 198));
    }

    #[test]
    fn warm_summary_takes_per_kernel_mins_across_the_sweep() {
        let a = AdaptiveBenchRow {
            kernel: "k",
            reuse: 1,
            reps: 1,
            decode_ns: 1,
            fused_ns: 1,
            threaded_ns: 1,
            adaptive_ns: 1,
            adaptive_bg_ns: 1,
            promotions: 0,
            warm_decode_ns: 400,
            warm_fused_ns: 120,
            warm_threaded_ns: 900, // this cell's threaded hit a stall
            warm_adaptive_ns: 103,
            warm_adaptive_bg_ns: 105,
            run_max_adaptive_ns: 0,
            run_p99_adaptive_ns: 0,
            run_max_adaptive_bg_ns: 0,
            run_p99_adaptive_bg_ns: 0,
        };
        let mut b = a;
        b.reuse = 8;
        b.warm_threaded_ns = 100;
        b.warm_adaptive_ns = 950; // and this cell's adaptive did
        let mut other = a;
        other.kernel = "other";
        let s = warm_summary(&[a, b, other]);
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].kernel, "k");
        assert_eq!(s[0].warm_threaded_ns, 100);
        assert_eq!(s[0].warm_adaptive_ns, 103);
        assert!((s[0].warm_adaptive_vs_best() - 1.03).abs() < 1e-12);
        assert_eq!(s[1].kernel, "other");
    }
}
