//! # tcc-suite — the paper's evaluation (§6) as a reusable harness
//!
//! The eleven benchmarks of §6.2 (plus `dp` from §4.4 and the xv Blur
//! experiment), each written as a real `C program with its static C
//! counterpart; the measurement machinery that runs every compilation
//! path, verifies they agree, and produces the numbers behind Table 1
//! and Figures 4-7; and printers that emit the same rows/series the
//! paper reports.
//!
//! Regenerate everything with the `suite` binary:
//!
//! ```text
//! cargo run -p tcc-suite --bin suite --release -- all
//! ```
//!
//! or per experiment: `table1`, `figure4`, `figure5`, `figure6`,
//! `figure7`, `blur`.

pub mod adaptive_bench;
pub mod cache_bench;
pub mod calibrate;
pub mod check;
pub mod exec_bench;
pub mod json_report;
pub mod measure;
pub mod micro;
pub mod persist_bench;
pub mod programs;
pub mod report;
pub mod serve_bench;

pub use adaptive_bench::{
    adaptive_bench, adaptive_bench_smoke, adaptive_json, adaptive_report, warm_summary,
    AdaptiveBenchRow, WarmSummary, ADAPTIVE_REUSE_SWEEP,
};
pub use cache_bench::{cache_bench, cache_json, cache_report};
pub use calibrate::ns_per_cycle;
pub use check::{
    check_adaptive, check_exec, check_persist, check_serve, gate_failure_line, missing_row_line,
    parse_adaptive_rows, parse_exec_rows, parse_persist_rows, parse_serve_rows, AdaptiveCheckRow,
    CheckRow, PersistCheckRow, ServeCheckRow, DEFAULT_TOLERANCE, GATED_COLUMNS,
    PERSIST_MIN_SPEEDUP, SERVE_MIN_HIT_RATE, SERVE_TAIL_TOLERANCE, TAIL_TOLERANCE,
};
pub use exec_bench::{exec_bench, exec_bench_smoke, exec_json, exec_report, ExecBenchRow};
pub use measure::{measure, measure_with, DynBackend, Measurement};
pub use persist_bench::{
    persist_bench, persist_json, persist_report, PersistBenchOptions, PersistBenchRow,
    PERSIST_KERNELS,
};
pub use programs::{benchmarks, BenchDef, BLUR_FULL, BLUR_SMALL};
pub use serve_bench::{
    serve_bench, serve_bench_smoke, serve_json, serve_report, ServeBenchRow, SERVE_THREADS,
};

#[cfg(test)]
mod tests {
    use super::*;

    /// Every benchmark's five compilation paths must agree — this is the
    /// correctness backbone of the whole evaluation (measure() panics on
    /// any mismatch).
    #[test]
    fn all_benchmarks_agree_across_paths() {
        for bench in benchmarks(BLUR_SMALL) {
            let m = measure(&bench);
            assert!(m.static_naive_cycles > 0, "{}", bench.name);
            assert!(m.static_opt_cycles > 0, "{}", bench.name);
            for d in &m.dynamic {
                assert!(d.run_cycles > 0, "{}", bench.name);
                assert!(d.insns > 0.0, "{}", bench.name);
            }
        }
    }

    #[test]
    fn optimizing_static_is_faster_than_naive() {
        for bench in benchmarks(BLUR_SMALL) {
            let m = measure(&bench);
            assert!(
                m.static_opt_cycles <= m.static_naive_cycles,
                "{}: gcc-like ({}) should not lose to lcc-like ({})",
                bench.name,
                m.static_opt_cycles,
                m.static_naive_cycles
            );
        }
    }

    #[test]
    fn headline_speedups_have_the_papers_shape() {
        let by_name: std::collections::HashMap<_, _> = benchmarks(BLUR_SMALL)
            .into_iter()
            .map(|b| (b.name, b))
            .collect();
        // binary: executable data structure should crush the static
        // search (paper: "an order of magnitude").
        let m = measure(&by_name["binary"]);
        assert!(
            m.ratio_vs_naive(DynBackend::Vcode) > 2.0,
            "binary speedup vs lcc too small: {:.2}",
            m.ratio_vs_naive(DynBackend::Vcode)
        );
        // query: compiled queries beat the interpreter.
        let m = measure(&by_name["query"]);
        assert!(
            m.ratio_vs_naive(DynBackend::IcodeLinear) > 1.5,
            "query speedup too small: {:.2}",
            m.ratio_vs_naive(DynBackend::IcodeLinear)
        );
        // umshl: the hand-tuned static comparator does not lose (ratio
        // stays around 1, the paper's no-payoff case).
        let m = measure(&by_name["umshl"]);
        assert!(
            m.ratio_vs_opt(DynBackend::Vcode) < 1.6,
            "umshl unexpectedly profitable: {:.2}",
            m.ratio_vs_opt(DynBackend::Vcode)
        );
        // dp: unrolling + dead code elimination beats the static loop.
        let m = measure(&by_name["dp"]);
        assert!(
            m.ratio_vs_naive(DynBackend::IcodeLinear) > 1.5,
            "dp speedup too small: {:.2}",
            m.ratio_vs_naive(DynBackend::IcodeLinear)
        );
    }

    #[test]
    fn icode_codegen_costs_more_than_vcode() {
        let by_name: std::collections::HashMap<_, _> = benchmarks(BLUR_SMALL)
            .into_iter()
            .map(|b| (b.name, b))
            .collect();
        for name in ["query", "cmp", "pow"] {
            // Min over a few attempts on both sides: codegen time is a
            // cost measurement, so scheduler noise only ever inflates
            // it, and one preempted vcode sample must not flip the
            // comparison on a loaded box.
            let (mut v_per, mut i_per) = (f64::INFINITY, f64::INFINITY);
            for _ in 0..3 {
                let m = measure(&by_name[name]);
                let v = &m.dynamic[DynBackend::Vcode as usize];
                let i = &m.dynamic[DynBackend::IcodeLinear as usize];
                v_per = v_per.min(v.codegen_ns / v.insns.max(1.0));
                i_per = i_per.min(i.codegen_ns / i.insns.max(1.0));
                if i_per > v_per {
                    break;
                }
            }
            assert!(
                i_per > v_per,
                "{name}: icode ({i_per:.0} ns/insn) should cost more than vcode ({v_per:.0})"
            );
        }
    }
}
