//! Host call numbers shared between code generators and the runtime.
//!
//! The static back ends emit `hcall n` instructions for these services;
//! the `tcc` crate installs the handler that implements them. Keeping the
//! numbering here means the emitting and handling sides cannot drift.

/// Terminate the program (`exit(a0)`).
pub const HC_EXIT: u32 = 0;
/// Print the integer in `a0` followed by a newline.
pub const HC_PUTINT: u32 = 1;
/// Print the NUL-terminated string at address `a0`.
pub const HC_PUTS: u32 = 2;
/// Print the double in `fa0` followed by a newline.
pub const HC_PUTF: u32 = 3;
/// `a0 = malloc(a0)` — bump allocation from VM memory.
pub const HC_MALLOC: u32 = 4;
/// `a0 = alloc_closure(a0 = bytes)` — arena allocation for a closure.
pub const HC_ALLOC_CLOSURE: u32 = 5;
/// `a0 = compile(a0 = closure ptr)` — run the CGF machinery; returns the
/// address of the generated function.
pub const HC_COMPILE: u32 = 6;
/// `a0 = local(a0 = ValKind code)` — create a vspec object for a dynamic
/// local.
pub const HC_LOCAL: u32 = 7;
/// `a0 = param(a0 = ValKind code, a1 = index)` — create a vspec object
/// for a dynamic parameter.
pub const HC_PARAM: u32 = 8;
/// Abort with the diagnostic string at address `a0`.
pub const HC_ABORT: u32 = 9;
/// Print the character in `a0`.
pub const HC_PUTCHAR: u32 = 10;
/// `printf(a0 = fmt, a1..a5 = args)` — `%d %ld %u %x %c %s` conversions.
pub const HC_PRINTF: u32 = 11;
/// `a0 = label()` — create a dynamic label object.
pub const HC_LABEL_OBJ: u32 = 12;
/// `a0 = push_init()` — create a dynamic argument list.
pub const HC_ARGLIST_NEW: u32 = 13;
/// `push(a0 = list, a1 = cspec)` — append an argument cspec.
pub const HC_ARGLIST_PUSH: u32 = 14;
/// First number available to embedding applications.
pub const HC_USER_BASE: u32 = 64;

#[cfg(test)]
mod tests {
    #[test]
    fn numbers_are_distinct() {
        let all = [
            super::HC_EXIT,
            super::HC_PUTINT,
            super::HC_PUTS,
            super::HC_PUTF,
            super::HC_MALLOC,
            super::HC_ALLOC_CLOSURE,
            super::HC_COMPILE,
            super::HC_LOCAL,
            super::HC_PARAM,
            super::HC_ABORT,
            super::HC_PUTCHAR,
            super::HC_PRINTF,
            super::HC_LABEL_OBJ,
            super::HC_ARGLIST_NEW,
            super::HC_ARGLIST_PUSH,
        ];
        let set: std::collections::HashSet<_> = all.iter().collect();
        assert_eq!(set.len(), all.len());
        assert!(all.iter().all(|&n| n < super::HC_USER_BASE));
    }
}
