//! Machine-level value kinds.

use std::fmt;

/// The four value kinds the machine distinguishes. Front-end types (signed
/// and unsigned chars, shorts, ints, longs, pointers, doubles) all lower
/// to one of these; signedness is encoded in the *operations* chosen, not
/// the locations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ValKind {
    /// 32-bit integer (C `char`/`short`/`int`, kept sign-extended).
    W,
    /// 64-bit integer (C `long`).
    D,
    /// Pointer (64-bit, but all valid addresses fit in 32 bits).
    P,
    /// Double-precision float (C `float` and `double`).
    F,
}

impl ValKind {
    /// Size in bytes of a value of this kind in memory.
    pub fn size(self) -> u64 {
        match self {
            ValKind::W => 4,
            ValKind::D | ValKind::P | ValKind::F => 8,
        }
    }

    /// True for [`ValKind::F`].
    pub fn is_float(self) -> bool {
        self == ValKind::F
    }

    /// Stable small integer code, used in vspec objects and closure
    /// metadata stored in VM memory.
    pub fn code(self) -> u8 {
        match self {
            ValKind::W => 0,
            ValKind::D => 1,
            ValKind::P => 2,
            ValKind::F => 3,
        }
    }

    /// Inverse of [`ValKind::code`]. Returns `None` for invalid codes.
    pub fn from_code(c: u8) -> Option<ValKind> {
        match c {
            0 => Some(ValKind::W),
            1 => Some(ValKind::D),
            2 => Some(ValKind::P),
            3 => Some(ValKind::F),
            _ => None,
        }
    }
}

impl fmt::Display for ValKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ValKind::W => "w",
            ValKind::D => "d",
            ValKind::P => "p",
            ValKind::F => "f",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip() {
        for k in [ValKind::W, ValKind::D, ValKind::P, ValKind::F] {
            assert_eq!(ValKind::from_code(k.code()), Some(k));
        }
        assert_eq!(ValKind::from_code(9), None);
    }

    #[test]
    fn sizes() {
        assert_eq!(ValKind::W.size(), 4);
        assert_eq!(ValKind::D.size(), 8);
        assert_eq!(ValKind::P.size(), 8);
        assert_eq!(ValKind::F.size(), 8);
        assert!(ValKind::F.is_float());
        assert!(!ValKind::P.is_float());
    }
}
