//! # tcc-rt — run-time support shared by the compilers
//!
//! This crate holds the pieces of the `C run-time system that sit *under*
//! the dynamic compiler (paper §4.2-4.4):
//!
//! * [`ValKind`] — the four machine-level value kinds every layer agrees
//!   on (32-bit int, 64-bit int, pointer, double).
//! * [`VmArena`] — arena allocation inside VM data memory. The paper
//!   reduces closure allocation "down to a pointer increment, in the
//!   normal case, by using arenas"; `VmArena` is that allocator, with a
//!   non-arena fallback path kept around for the ablation benchmark.
//! * [`closure`] — the layout of closures and vspec objects in VM memory,
//!   mirroring the paper's §4.2 lowering (`cgf` pointer first, then
//!   run-time constants, free-variable addresses and nested cspecs).
//! * [`hcalls`] — the host-call numbering shared by the static back ends
//!   (which emit `hcall`) and the `tcc` runtime (which handles them).

pub mod arena;
pub mod closure;
pub mod hcalls;
pub mod kind;

pub use arena::VmArena;
pub use closure::{ClosureRef, VspecObj, VspecTag, ARGLIST_MARKER, ARGLIST_MAX, LABEL_MARKER};
pub use kind::ValKind;
