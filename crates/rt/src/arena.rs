//! Arena allocation inside VM data memory.
//!
//! Closures are created at *specification time*, which sits on the
//! critical path of dynamic code generation; the paper (§4.2) notes their
//! "allocation cost is greatly reduced (down to a pointer increment, in
//! the normal case) by using arenas". `VmArena` reserves a block of VM
//! memory once and then serves allocations by bumping a cursor; `reset`
//! recycles the whole block at zero cost.
//!
//! The non-arena path ([`VmArena::alloc_slow`]) allocates from the
//! machine's general allocator instead, and both paths count their
//! allocations, so the ablation bench can quantify the design choice.

use tcc_vm::{Memory, VmError};

/// A bump allocator over a reserved block of VM memory.
#[derive(Clone, Debug)]
pub struct VmArena {
    base: u64,
    size: u64,
    cursor: u64,
    /// Number of fast-path (bump) allocations served.
    pub fast_allocs: u64,
    /// Number of slow-path (general allocator) allocations served.
    pub slow_allocs: u64,
}

impl VmArena {
    /// Reserves `size` bytes of VM memory for the arena.
    ///
    /// # Errors
    ///
    /// Fails if the reservation does not fit in `mem`.
    pub fn new(mem: &mut Memory, size: u64) -> Result<VmArena, VmError> {
        let base = mem.alloc(size, 16)?;
        Ok(VmArena {
            base,
            size,
            cursor: base,
            fast_allocs: 0,
            slow_allocs: 0,
        })
    }

    /// Allocates `size` bytes, 8-byte aligned, by bumping the cursor.
    /// Falls back to the general allocator when the arena is full.
    ///
    /// # Errors
    ///
    /// Fails only if the fallback allocation fails too.
    pub fn alloc(&mut self, mem: &mut Memory, size: u64) -> Result<u64, VmError> {
        let base = (self.cursor + 7) & !7;
        let end = base + size;
        if end <= self.base + self.size {
            self.cursor = end;
            self.fast_allocs += 1;
            Ok(base)
        } else {
            self.alloc_slow(mem, size)
        }
    }

    /// Allocates from the machine's general allocator, bypassing the
    /// arena (the ablation baseline).
    ///
    /// # Errors
    ///
    /// Fails if the memory is exhausted.
    pub fn alloc_slow(&mut self, mem: &mut Memory, size: u64) -> Result<u64, VmError> {
        self.slow_allocs += 1;
        mem.alloc(size, 8)
    }

    /// Releases everything allocated from the arena (pointer reset; the
    /// fallback allocations are not reclaimed, matching arena semantics).
    pub fn reset(&mut self) {
        self.cursor = self.base;
    }

    /// Bytes currently in use on the fast path.
    pub fn used(&self) -> u64 {
        self.cursor - self.base
    }

    /// Total bytes reserved for the fast path.
    pub fn capacity(&self) -> u64 {
        self.size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_allocations_are_aligned_and_disjoint() {
        let mut mem = Memory::new(1 << 20);
        let mut a = VmArena::new(&mut mem, 4096).unwrap();
        let x = a.alloc(&mut mem, 12).unwrap();
        let y = a.alloc(&mut mem, 24).unwrap();
        assert_eq!(x % 8, 0);
        assert_eq!(y % 8, 0);
        assert!(y >= x + 12);
        assert_eq!(a.fast_allocs, 2);
        assert_eq!(a.slow_allocs, 0);
    }

    #[test]
    fn reset_recycles_space() {
        let mut mem = Memory::new(1 << 20);
        let mut a = VmArena::new(&mut mem, 64).unwrap();
        let x = a.alloc(&mut mem, 32).unwrap();
        a.reset();
        let y = a.alloc(&mut mem, 32).unwrap();
        assert_eq!(x, y);
        assert_eq!(a.used(), 32);
    }

    #[test]
    fn overflow_falls_back_to_general_allocator() {
        let mut mem = Memory::new(1 << 20);
        let mut a = VmArena::new(&mut mem, 16).unwrap();
        a.alloc(&mut mem, 16).unwrap();
        let z = a.alloc(&mut mem, 64).unwrap();
        assert!(z >= a.base + a.size || z < a.base);
        assert_eq!(a.slow_allocs, 1);
    }
}
