//! Closure and vspec object layout in VM memory.
//!
//! The paper (§4.2) lowers each tick-expression to a statically generated
//! code-generating function (CGF) plus inline code that allocates and
//! fills a *closure*. The closure captures everything the CGF needs at
//! dynamic compile time:
//!
//! 1. the CGF itself (here: an index into the compiled module's CGF
//!    table),
//! 2. values of `$`-bound run-time constants,
//! 3. addresses of free variables,
//! 4. pointers to nested cspec/vspec objects composed inside the body.
//!
//! The layout is a header word (CGF id) followed by one 8-byte word per
//! captured field, in the order the static compiler assigned. The static
//! compiler and the dynamic compiler share that order through the CGF's
//! field table, so this module only needs untyped word accessors.
//!
//! Vspec objects represent dynamically created lvalues (`local` and
//! `param` special forms). They carry a tag, a [`ValKind`] code, and an
//! identifying index; the dynamic compiler maps each distinct object to a
//! register or stack slot at instantiation time.

use crate::kind::ValKind;
use tcc_vm::{Memory, VmError};

/// Header value marking a *dynamic label object* rather than a real
/// closure: label objects are `void cspec`s created by the `label()`
/// special form; splicing one binds a position, `jump(l)` targets it.
pub const LABEL_MARKER: u64 = u64::MAX - 1;

/// Header value marking a *dynamic argument list* built by the
/// `push_init`/`push` special forms; `apply(f, args)` in a tick body
/// emits a call whose arguments are the list's composed cspecs.
pub const ARGLIST_MARKER: u64 = u64::MAX - 2;

/// Maximum arguments in a dynamic argument list (the machine ABI).
pub const ARGLIST_MAX: u64 = 6;

/// A view of a closure at a VM address.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ClosureRef {
    /// VM address of the closure header.
    pub addr: u64,
}

impl ClosureRef {
    /// Bytes needed for a closure with `nfields` captured words.
    pub fn size_for(nfields: usize) -> u64 {
        8 * (1 + nfields as u64)
    }

    /// Reads the CGF id from the header word.
    ///
    /// # Errors
    ///
    /// Faults if the address is unmapped.
    pub fn cgf_id(&self, mem: &Memory) -> Result<u64, VmError> {
        mem.load_u64(self.addr)
    }

    /// Writes the CGF id header word.
    ///
    /// # Errors
    ///
    /// Faults if the address is unmapped.
    pub fn set_cgf_id(&self, mem: &mut Memory, id: u64) -> Result<(), VmError> {
        mem.store_u64(self.addr, id)
    }

    /// Reads captured field `i`.
    ///
    /// # Errors
    ///
    /// Faults if the address is unmapped.
    pub fn field(&self, mem: &Memory, i: usize) -> Result<u64, VmError> {
        mem.load_u64(self.addr + 8 * (1 + i as u64))
    }

    /// Writes captured field `i`.
    ///
    /// # Errors
    ///
    /// Faults if the address is unmapped.
    pub fn set_field(&self, mem: &mut Memory, i: usize, v: u64) -> Result<(), VmError> {
        mem.store_u64(self.addr + 8 * (1 + i as u64), v)
    }

    /// VM address of captured field `i` (what the static code's store
    /// instructions target).
    pub fn field_addr(&self, i: usize) -> u64 {
        self.addr + 8 * (1 + i as u64)
    }
}

/// What a vspec object denotes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum VspecTag {
    /// A dynamic local created by the `local` special form.
    Local,
    /// A parameter of the dynamic function, created by `param`.
    Param,
}

impl VspecTag {
    fn code(self) -> u64 {
        match self {
            VspecTag::Local => 0,
            VspecTag::Param => 1,
        }
    }

    fn from_code(c: u64) -> Option<VspecTag> {
        match c {
            0 => Some(VspecTag::Local),
            1 => Some(VspecTag::Param),
            _ => None,
        }
    }
}

/// A decoded vspec object (three words in VM memory).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct VspecObj {
    /// Local or parameter.
    pub tag: VspecTag,
    /// Machine kind of the lvalue.
    pub kind: ValKind,
    /// Unique id for locals; argument position for parameters.
    pub index: u64,
}

impl VspecObj {
    /// Size of a vspec object in VM memory.
    pub const SIZE: u64 = 24;

    /// Writes the object at `addr`.
    ///
    /// # Errors
    ///
    /// Faults if the range is unmapped.
    pub fn write(&self, mem: &mut Memory, addr: u64) -> Result<(), VmError> {
        mem.store_u64(addr, self.tag.code())?;
        mem.store_u64(addr + 8, self.kind.code() as u64)?;
        mem.store_u64(addr + 16, self.index)
    }

    /// Reads the object at `addr`.
    ///
    /// # Errors
    ///
    /// Faults if the range is unmapped, or returns [`VmError::Host`] if
    /// the bytes are not a valid vspec object.
    pub fn read(mem: &Memory, addr: u64) -> Result<VspecObj, VmError> {
        let tag = VspecTag::from_code(mem.load_u64(addr)?)
            .ok_or_else(|| VmError::Host(format!("bad vspec tag at {addr:#x}")))?;
        let kind = ValKind::from_code(mem.load_u64(addr + 8)? as u8)
            .ok_or_else(|| VmError::Host(format!("bad vspec kind at {addr:#x}")))?;
        let index = mem.load_u64(addr + 16)?;
        Ok(VspecObj { tag, kind, index })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closure_fields_round_trip() {
        let mut mem = Memory::new(1 << 20);
        let addr = mem.alloc(ClosureRef::size_for(3), 8).unwrap();
        let c = ClosureRef { addr };
        c.set_cgf_id(&mut mem, 42).unwrap();
        c.set_field(&mut mem, 0, 7).unwrap();
        c.set_field(&mut mem, 2, 0xdead).unwrap();
        assert_eq!(c.cgf_id(&mem).unwrap(), 42);
        assert_eq!(c.field(&mem, 0).unwrap(), 7);
        assert_eq!(c.field(&mem, 2).unwrap(), 0xdead);
        assert_eq!(c.field_addr(0), addr + 8);
    }

    #[test]
    fn vspec_round_trip() {
        let mut mem = Memory::new(1 << 20);
        let addr = mem.alloc(VspecObj::SIZE, 8).unwrap();
        let v = VspecObj {
            tag: VspecTag::Param,
            kind: ValKind::F,
            index: 3,
        };
        v.write(&mut mem, addr).unwrap();
        assert_eq!(VspecObj::read(&mem, addr).unwrap(), v);
    }

    #[test]
    fn vspec_rejects_garbage() {
        let mut mem = Memory::new(1 << 20);
        let addr = mem.alloc(VspecObj::SIZE, 8).unwrap();
        mem.store_u64(addr, 99).unwrap();
        assert!(matches!(VspecObj::read(&mem, addr), Err(VmError::Host(_))));
    }
}
