//! Small re-exports from the static lowering shared by the dynamic
//! compiler (operator selection must agree between the two halves).

pub use tcc_mir::lower::machine_binop;
