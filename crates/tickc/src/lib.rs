//! # tcc — the `C dynamic compilation system (the paper's core contribution)
//!
//! This crate glues the whole pipeline together into the system the paper
//! describes:
//!
//! * **Static compilation** (paper Figure 1): the front end
//!   ([`tcc_front`]) type-checks `C and hoists tick expressions with
//!   their capture lists; the static back ends ([`tcc_mir`]) compile the
//!   non-dynamic code to VM binary, lowering each tick expression to
//!   closure-construction code.
//! * **Dynamic specification time** (§4.3): the running program builds
//!   closures — CGF index, `$`-bound run-time constants, free-variable
//!   addresses, nested cspec/vspec pointers — via arena-allocating host
//!   calls ([`runtime`]).
//! * **Dynamic compilation** (§4.4, §5): `compile` invokes the CGF
//!   machinery ([`dyncomp`]) against the selected back end — one-pass
//!   VCODE or optimizing ICODE with linear-scan/graph-coloring register
//!   allocation — with automatic dynamic partial evaluation: run-time
//!   constant folding, strength reduction, dynamic loop unrolling, and
//!   dead code elimination.
//!
//! The high-level entry point is [`Session`]:
//!
//! ```rust
//! use tcc::Session;
//!
//! // The paper's §3 example: compose two cspecs, compile, run.
//! let mut s = Session::with_defaults(r#"
//!     int nine(void) {
//!         int cspec c1 = `4, cspec c2 = `5;
//!         int cspec c = `(c1 + c2);
//!         int (*f)(void) = compile(c, int);
//!         return (*f)();
//!     }
//! "#).expect("compiles");
//! assert_eq!(s.call("nine", &[]).unwrap(), 9);
//! ```

pub mod api;
pub mod dyncomp;
pub mod fingerprint;
pub mod lower_shim;
pub mod runtime;

pub use api::{persist_abi_salt, Config, Error, Session};
pub use dyncomp::{DynCompiler, DynInput, WalkStats};
pub use runtime::{Backend, DynStats, TccRuntime};
pub use tcc_cache::SharedArtifacts;
pub use tcc_icode::Strategy;
pub use tcc_mir::OptLevel;
pub use tcc_obs::SharedCacheMetrics;
pub use tcc_obs::{
    CodegenPhases, DynMetrics, ExecMetrics, FrontendMetrics, PersistMetrics, SessionMetrics,
    StaticMetrics, VmMetrics,
};
pub use tcc_vm::{
    AdaptiveStats, ExecEngine, ExecStats, Tier, TransHub, VmError, DEFAULT_FUSE_AFTER,
    DEFAULT_THREAD_AFTER,
};

#[cfg(test)]
mod tests {
    use super::*;

    fn session(src: &str, backend: &Backend) -> Session {
        let config = Config {
            backend: backend.clone(),
            ..Config::default()
        };
        Session::new(src, config).expect("compiles")
    }

    fn all_backends() -> Vec<Backend> {
        vec![
            Backend::Vcode { unchecked: false },
            Backend::Icode {
                strategy: Strategy::LinearScan,
            },
            Backend::Icode {
                strategy: Strategy::GraphColor,
            },
        ]
    }

    #[test]
    fn hello_world_from_the_paper() {
        for b in &all_backends() {
            let mut s = session(
                r#"
                void f(void) {
                    void cspec hello = `{ printf("hello world\n"); };
                    void (*fp)(void) = compile(hello, void);
                    (*fp)();
                }
            "#,
                b,
            );
            s.call("f", &[]).unwrap();
            assert_eq!(s.output(), "hello world\n");
        }
    }

    #[test]
    fn dollar_binding_semantics_from_the_paper() {
        // $x is bound at specification time (1); plain x reads 14 at run
        // time — the exact example from §3.
        for b in &all_backends() {
            let mut s = session(
                r#"
                void f(void) {
                    void (*fp)(void);
                    int x = 1;
                    fp = compile(`{ printf("$x = %d, x = %d\n", $x, x); }, void);
                    x = 14;
                    (*fp)();
                }
            "#,
                b,
            );
            s.call("f", &[]).unwrap();
            assert_eq!(s.output(), "$x = 1, x = 14\n", "{b:?}");
        }
    }

    #[test]
    fn composition_4_plus_5() {
        for b in &all_backends() {
            let mut s = session(
                r#"
                int f(void) {
                    int cspec c1 = `4, cspec c2 = `5;
                    int cspec c = `(c1 + c2);
                    int (*g)(void) = compile(c, int);
                    return (*g)();
                }
            "#,
                b,
            );
            assert_eq!(s.call("f", &[]).unwrap(), 9, "{b:?}");
        }
    }

    #[test]
    fn closure_example_i_plus_j_times_k() {
        // §4.2: int cspec i = `5; c = `{ return i + $j * k; }
        for b in &all_backends() {
            let mut s = session(
                r#"
                int f(int j, int k) {
                    int cspec i = `5;
                    void cspec c = `{ return i + $j * k; };
                    int (*g)(void) = compile(c, int);
                    k = k * 10;
                    return (*g)();
                }
            "#,
                b,
            );
            // i=5, $j bound at spec time, k read at run time (k*10)
            assert_eq!(s.call("f", &[3, 7]).unwrap(), 5 + 3 * 70, "{b:?}");
        }
    }

    #[test]
    fn free_variables_are_addresses() {
        for b in &all_backends() {
            let mut s = session(
                r#"
                int f(void) {
                    int x = 10;
                    int cspec c = `(x * 2);
                    int (*g)(void) = compile(c, int);
                    x = 21;
                    return (*g)();
                }
            "#,
                b,
            );
            assert_eq!(s.call("f", &[]).unwrap(), 42, "{b:?}");
        }
    }

    #[test]
    fn vspec_locals_and_params() {
        for b in &all_backends() {
            let mut s = session(
                r#"
                int f(void) {
                    int vspec a = param(int, 0);
                    int vspec b = param(int, 1);
                    int vspec t = local(int);
                    void cspec c = `{ t = a * 10; return t + b; };
                    int (*g)(void) = compile(c, int);
                    return (*g)(4, 2);
                }
            "#,
                b,
            );
            assert_eq!(s.call("f", &[]).unwrap(), 42, "{b:?}");
        }
    }

    #[test]
    fn dynamic_locals_in_tick_bodies() {
        for b in &all_backends() {
            let mut s = session(
                r#"
                int f(int n) {
                    void cspec c = `{ int acc; acc = $n; acc = acc * 3; return acc; };
                    int (*g)(void) = compile(c, int);
                    return (*g)();
                }
            "#,
                b,
            );
            assert_eq!(s.call("f", &[14]).unwrap(), 42, "{b:?}");
        }
    }

    #[test]
    fn dynamic_loop_unrolling_dot_product() {
        // The §4.4 dp example: the loop disappears; row values are
        // hardwired; zero entries generate no code.
        for b in &all_backends() {
            let mut s = session(
                r#"
                int row[8] = {1, 0, 2, 0, 3, 0, 4, 5};
                int col[8] = {10, 20, 30, 40, 50, 60, 70, 80};
                int n = 8;
                int f(void) {
                    void cspec c = `{
                        int k;
                        int sum;
                        sum = 0;
                        for (k = 0; k < $n; k++)
                            if ($row[k])
                                sum = sum + col[k] * $row[k];
                        return sum;
                    };
                    int (*g)(void) = compile(c, int);
                    return (*g)();
                }
            "#,
                b,
            );
            let expect = 10 + 2 * 30 + 3 * 50 + 4 * 70 + 5 * 80;
            assert_eq!(s.call("f", &[]).unwrap() as i64, expect as i64, "{b:?}");
            // The generated code must contain no branches (fully
            // unrolled, dead entries eliminated).
            assert!(s.dyn_stats().unrolled_iters >= 8, "{b:?}");
        }
    }

    #[test]
    fn statement_cspec_composition() {
        // Build a statement chain: body = `{ @body; x += i; }
        for b in &all_backends() {
            let mut s = session(
                r#"
                int f(int n) {
                    int x = 0;
                    void cspec body = `{};
                    int i;
                    for (i = 1; i <= n; i++)
                        body = `{ @body; x += $i; };
                    void (*g)(void) = compile(body, void);
                    (*g)();
                    return x;
                }
            "#,
                b,
            );
            assert_eq!(s.call("f", &[10]).unwrap(), 55, "{b:?}");
        }
    }

    #[test]
    fn strength_reduction_on_runtime_constants() {
        {
            let b = &Backend::Vcode { unchecked: false };
            let mut s = session(
                r#"
                int f(int m, int x) {
                    int cspec c = `(x * $m + x / $m + x % $m);
                    int (*g)(void) = compile(c, int);
                    return (*g)();
                }
            "#,
                b,
            );
            // power-of-two multiplier: shifts, no mul/div emitted
            assert_eq!(s.call("f", &[16, 100]).unwrap() as i64, 1600 + 6 + 4);
            assert_eq!(s.call("f", &[7, 100]).unwrap() as i64, 700 + 14 + 2);
        }
    }

    #[test]
    fn dynamic_code_calls_static_functions_directly() {
        for b in &all_backends() {
            let mut s = session(
                r#"
                int helper(int x) { return x * 2; }
                int f(int n) {
                    int cspec c = `(helper($n) + 1);
                    int (*g)(void) = compile(c, int);
                    return (*g)();
                }
            "#,
                b,
            );
            assert_eq!(s.call("f", &[20]).unwrap(), 41, "{b:?}");
        }
    }

    #[test]
    fn double_dynamic_code() {
        for b in &all_backends() {
            let mut s = session(
                r#"
                double f(double x) {
                    double cspec c = `($x * 2.5 + 1.0);
                    double (*g)(void) = compile(c, double);
                    return (*g)();
                }
            "#,
                b,
            );
            assert_eq!(s.call_f("f", &[], &[4.0]).unwrap(), 11.0, "{b:?}");
        }
    }

    #[test]
    fn dynamic_if_dead_code_elimination() {
        for b in &all_backends() {
            let mut s = session(
                r#"
                int f(int flag) {
                    void cspec c = `{
                        if ($flag) return 111;
                        else return 222;
                    };
                    int (*g)(void) = compile(c, int);
                    return (*g)();
                }
            "#,
                b,
            );
            assert_eq!(s.call("f", &[1]).unwrap(), 111, "{b:?}");
            assert_eq!(s.call("f", &[0]).unwrap(), 222, "{b:?}");
        }
    }

    #[test]
    fn dynamic_control_flow_loops() {
        // A genuinely dynamic loop in generated code.
        for b in &all_backends() {
            let mut s = session(
                r#"
                int f(void) {
                    int vspec n = param(int, 0);
                    int vspec s = local(int);
                    int vspec i = local(int);
                    void cspec c = `{
                        s = 0;
                        for (i = 1; i <= n; i++) s += i;
                        return s;
                    };
                    int (*g)(void) = compile(c, int);
                    return (*g)(100);
                }
            "#,
                b,
            );
            assert_eq!(s.call("f", &[]).unwrap(), 5050, "{b:?}");
        }
    }

    #[test]
    fn compose_same_cspec_twice_duplicates_code() {
        for b in &all_backends() {
            let mut s = session(
                r#"
                int calls = 0;
                int effect(void) { calls += 1; return 10; }
                int f(void) {
                    int cspec e = `effect();
                    int cspec c = `(e + e);
                    int (*g)(void) = compile(c, int);
                    return (*g)() * 100 + calls;
                }
            "#,
                b,
            );
            assert_eq!(s.call("f", &[]).unwrap(), 20 * 100 + 2, "{b:?}");
        }
    }

    #[test]
    fn many_compiles_accumulate_stats() {
        let mut s = session(
            r#"
            int f(int n) {
                int i;
                int total = 0;
                for (i = 0; i < n; i++) {
                    int cspec c = `($i * 2);
                    int (*g)(void) = compile(c, int);
                    total += (*g)();
                }
                return total;
            }
        "#,
            &Backend::Vcode { unchecked: false },
        );
        assert_eq!(s.call("f", &[10]).unwrap(), 90);
        let st = s.dyn_stats();
        assert_eq!(st.compiles, 10);
        assert!(st.generated_insns > 0);
        assert!(st.total_ns > 0);
    }

    #[test]
    fn icode_stats_have_phases() {
        let mut s = session(
            r#"
            int f(int n) {
                int cspec c = `($n * 3);
                int (*g)(void) = compile(c, int);
                return (*g)();
            }
        "#,
            &Backend::Icode {
                strategy: Strategy::LinearScan,
            },
        );
        assert_eq!(s.call("f", &[5]).unwrap(), 15);
        let st = s.dyn_stats();
        assert!(st.phases.total_ns() > 0);
        assert!(st.ir_insns > 0);
    }

    #[test]
    fn goto_inside_dynamic_code() {
        for b in &all_backends() {
            let mut s = session(
                r#"
                int f(void) {
                    void cspec c = `{
                        int i;
                        int s;
                        i = 0; s = 0;
                        again:
                        s += i;
                        i += 1;
                        if (i < 5) goto again;
                        return s;
                    };
                    int (*g)(void) = compile(c, int);
                    return (*g)();
                }
            "#,
                b,
            );
            assert_eq!(s.call("f", &[]).unwrap(), 10, "{b:?}");
        }
    }

    #[test]
    fn currying_with_hidden_state() {
        // §6.2 "other uses": a wrapper that binds state invisible to the
        // caller.
        for b in &all_backends() {
            let mut s = session(
                r#"
                int add(int a, int b) { return a + b; }
                long curry_add(int bound) {
                    int cspec c = `add($bound, 7);
                    return (long)compile(c, int);
                }
                int f(void) {
                    long g = curry_add(35);
                    int (*fp)(void) = (int (*)(void))g;
                    return (*fp)();
                }
            "#,
                b,
            );
            assert_eq!(s.call("f", &[]).unwrap(), 42, "{b:?}");
        }
    }
}
