//! The dynamic compiler: code-generating-function execution.
//!
//! At dynamic compile time, tcc "invokes the code-generating function for
//! the cspec on the cspec's closure, and the CGF performs most of the
//! actual code generation" (§4.4). Here the CGF machinery is one generic
//! walker over the tick expression's typed AST, parameterized by a
//! [`CodeSink`] — VCODE (immediate one-pass emission) or ICODE (IR
//! recording).
//!
//! The walker implements the paper's **automatic dynamic partial
//! evaluation**:
//!
//! * *Run-time constant folding* — any subexpression composed of `$`-bound
//!   values and derived run-time constants is evaluated at instantiation
//!   time and emitted as an immediate.
//! * *Strength reduction* — a run-time-constant operand of `*`, `/`, `%`
//!   selects a cheaper instruction sequence at instantiation time (the
//!   `bin_imm` emission macros).
//! * *Dynamic loop unrolling* — a `for` loop bounded by run-time constants
//!   whose induction variable is not otherwise assigned executes at
//!   instantiation time; its induction variable becomes a *derived*
//!   run-time constant inside the body (propagating down loop nests).
//! * *Dead code elimination* — `if`/`switch` over run-time constants emit
//!   only the reachable arm.
//!
//! Composition (paper §4.4) is CGF invocation: a reference to a nested
//! cspec recursively walks that cspec's closure, splicing its code
//! inline; its result value is a temporary whose register the nested walk
//! allocated (the §5.1 convention).

use std::collections::HashMap;
use tcc_front::ast::*;
use tcc_front::types::Type;
use tcc_front::Program;
use tcc_rt::{ClosureRef, ValKind, VspecObj, VspecTag, ARGLIST_MARKER, LABEL_MARKER};
use tcc_vcode::ops::{BinOp, LoadKind, StoreKind, UnOp};
use tcc_vcode::CodeSink;
use tcc_vm::{Memory, VmError};

/// Trip count above which a statically-bounded loop is kept as a loop
/// instead of unrolled (code-bloat guard).
const UNROLL_TRIP_LIMIT: u64 = 1024;
/// Hard limit on unrolled iterations (backstop; pre-simulation should
/// keep unrolling far below this).
const UNROLL_LIMIT: u64 = 1 << 20;

/// How a static `for` loop's step updates the induction variable.
enum StepKind {
    IncDec(bool),
    AssignOp(BinaryOp, Expr),
    Reassign(Expr),
}
/// Limit on closure-composition nesting depth. Composition is compiled
/// by recursive walk (one CGF invoking another, as in tcc), so the limit
/// also bounds host stack use; 300 is far beyond any published use of
/// composition while staying comfortably within a 2 MiB test stack.
const COMPOSE_DEPTH_LIMIT: u32 = 300;

/// Computes the closure-composition nesting depth reachable from
/// `entry` — iteratively, so arbitrarily deep (or cyclic) compositions
/// cannot overflow the host stack before `COMPOSE_DEPTH_LIMIT` is
/// enforced. The runtime probes before compiling and moves deep (but
/// legal) compilations onto a thread with a proportionally sized stack.
///
/// Mirrors the traversal of `prebind_params`: a node is a closure;
/// its children are the closures reachable through cspec captures
/// (directly, or via argument lists — label objects are leaves).
///
/// # Errors
///
/// `"closure composition too deep"` when the nesting exceeds
/// `COMPOSE_DEPTH_LIMIT` or the graph is cyclic (which the recursive
/// walk would also reject, by running into the same limit), and
/// `"bad cgf id ..."` on malformed closures, matching the errors the
/// compile walk itself raises.
pub fn probe_compose_depth(mem: &Memory, prog: &Program, entry: u64) -> Result<u32, VmError> {
    fn too_deep() -> VmError {
        VmError::Host("closure composition too deep".into())
    }
    // Closure children reachable from `addr`, per prebind_params.
    fn kids(mem: &Memory, prog: &Program, addr: u64) -> Result<Vec<u64>, VmError> {
        let c = ClosureRef { addr };
        let id = c.cgf_id(mem)? as usize;
        let tick = prog
            .ticks
            .get(id)
            .ok_or_else(|| VmError::Host(format!("bad cgf id {id}")))?;
        let mut out = Vec::new();
        for (i, cap) in tick.captures.iter().enumerate() {
            if let CaptureKind::Cspec(_) = &cap.kind {
                let field = c.field(mem, i)?;
                match mem.load_u64(field)? {
                    LABEL_MARKER => {}
                    ARGLIST_MARKER => {
                        let n = mem.load_u64(field + 8)?;
                        for j in 0..n {
                            out.push(mem.load_u64(field + 16 + 8 * j)?);
                        }
                    }
                    _ => out.push(field),
                }
            }
        }
        Ok(out)
    }

    struct Node {
        addr: u64,
        kids: Vec<u64>,
        next: usize,
        /// Tallest subtree seen among visited children.
        best: u32,
    }
    // addr → height of its subtree (≥ 1), for DAG-shaped sharing.
    let mut memo: HashMap<u64, u32> = HashMap::new();
    let mut on_path: std::collections::HashSet<u64> = std::collections::HashSet::new();
    let mut stack = vec![Node {
        addr: entry,
        kids: kids(mem, prog, entry)?,
        next: 0,
        best: 0,
    }];
    on_path.insert(entry);
    let mut height = 0u32;
    while let Some(top) = stack.last_mut() {
        if top.next < top.kids.len() {
            let k = top.kids[top.next];
            top.next += 1;
            if let Some(&h) = memo.get(&k) {
                top.best = top.best.max(h);
            } else if on_path.contains(&k) {
                return Err(too_deep());
            } else {
                let grandkids = kids(mem, prog, k)?;
                on_path.insert(k);
                stack.push(Node {
                    addr: k,
                    kids: grandkids,
                    next: 0,
                    best: 0,
                });
                // prebind_params errors at depth > LIMIT with the entry
                // at depth 0; the path length here is depth + 1.
                if stack.len() as u32 > COMPOSE_DEPTH_LIMIT + 1 {
                    return Err(too_deep());
                }
            }
        } else {
            let h = top.best + 1;
            memo.insert(top.addr, h);
            on_path.remove(&top.addr);
            height = h;
            let done = top.addr;
            stack.pop();
            if let Some(parent) = stack.last_mut() {
                debug_assert_ne!(parent.addr, done);
                parent.best = parent.best.max(h);
            }
        }
    }
    Ok(height.saturating_sub(1))
}

/// Static-program facts the dynamic compiler needs.
#[derive(Clone, Copy)]
pub struct DynInput<'p> {
    /// The analyzed program (tick table).
    pub prog: &'p Program,
    /// Compiled static function addresses (direct calls from dynamic
    /// code).
    pub func_addrs: &'p [u64],
    /// Global addresses (by index).
    pub global_addrs: &'p [u64],
}

/// A codegen-time constant (run-time constant in paper terms).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Cv {
    /// Integer (canonical i64; W values sign-extended).
    I(i64),
    /// Double.
    F(f64),
}

impl Cv {
    fn as_i(self) -> i64 {
        match self {
            Cv::I(v) => v,
            Cv::F(v) => v as i64,
        }
    }

    fn as_f(self) -> f64 {
        match self {
            Cv::I(v) => v as f64,
            Cv::F(v) => v,
        }
    }

    fn truthy(self) -> bool {
        match self {
            Cv::I(v) => v != 0,
            Cv::F(v) => v != 0.0,
        }
    }
}

/// A value produced by expression emission, with temp ownership (owned
/// values are released back to the register pool after consumption —
/// the `putreg` half of the VCODE discipline).
struct V<S: CodeSink> {
    val: S::Val,
    owned: bool,
}

impl<S: CodeSink> Clone for V<S> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<S: CodeSink> Copy for V<S> {}

impl<S: CodeSink> std::fmt::Debug for V<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "V({:?}, owned={})", self.val, self.owned)
    }
}

/// Statistics from one dynamic compilation walk.
#[derive(Clone, Copy, Debug, Default)]
pub struct WalkStats {
    /// Closures read (composition events).
    pub closures: u64,
    /// Run-time constant evaluations performed.
    pub rtc_evals: u64,
    /// Loop iterations unrolled at compile time.
    pub unrolled_iters: u64,
}

struct Frame<'p, S: CodeSink> {
    tick: &'p TickDef,
    fields: Vec<u64>,
    /// Derived run-time constants (static dyn locals).
    rtc: HashMap<usize, Cv>,
    /// Materialized (dynamic) locals.
    vals: HashMap<usize, S::Val>,
    labels: HashMap<String, S::Lbl>,
}

/// The CGF walker. Create one per `compile` invocation.
pub struct DynCompiler<'a, 'p, S: CodeSink> {
    input: DynInput<'p>,
    mem: &'a mut Memory,
    sink: &'a mut S,
    /// vspec object address → bound location.
    vspecs: HashMap<u64, S::Val>,
    /// Dynamic label object address → sink label (+ whether bound).
    dyn_labels: HashMap<u64, (S::Lbl, bool)>,
    break_stack: Vec<S::Lbl>,
    continue_stack: Vec<S::Lbl>,
    /// Return kind expected by `compile(c, T)` (None = void).
    ret_kind: Option<ValKind>,
    depth: u32,
    /// Walk statistics.
    pub stats: WalkStats,
    /// Evaluate cspec operands before non-cspec operands (§5.1 register
    /// pressure heuristic); on by default.
    pub cspec_first: bool,
    /// Dynamic loop unrolling (§4.4); on by default. The ablation knob
    /// quantifies the optimization's contribution.
    pub enable_unroll: bool,
}

impl<'a, 'p, S: CodeSink> DynCompiler<'a, 'p, S> {
    /// Creates a walker. `ret_kind` is the declared return kind of the
    /// function being compiled (`None` for void).
    pub fn new(
        input: DynInput<'p>,
        mem: &'a mut Memory,
        sink: &'a mut S,
        ret_kind: Option<ValKind>,
    ) -> Self {
        DynCompiler {
            input,
            mem,
            sink,
            vspecs: HashMap::new(),
            dyn_labels: HashMap::new(),
            break_stack: Vec::new(),
            continue_stack: Vec::new(),
            ret_kind,
            depth: 0,
            stats: WalkStats::default(),
            cspec_first: true,
            enable_unroll: true,
        }
    }

    fn err(&self, msg: impl Into<String>) -> VmError {
        VmError::Host(msg.into())
    }

    /// Compiles the closure at `closure_addr` as a complete function
    /// body (prologue/epilogue are the sink's business).
    ///
    /// # Errors
    ///
    /// Fails on malformed closures or unrepresentable dynamic code.
    pub fn compile_entry(&mut self, closure_addr: u64) -> Result<(), VmError> {
        self.prebind_params(closure_addr, 0)?;
        let ret = self.compile_closure(closure_addr)?;
        if let Some((&addr, _)) = self.dyn_labels.iter().find(|(_, (_, bound))| !bound) {
            return Err(self.err(format!(
                "dynamic label object at {addr:#x} is jumped to but never spliced"
            )));
        }
        match (ret, self.ret_kind) {
            (Some(v), Some(k)) => {
                self.sink.ret_val(k, v.val);
            }
            (Some(_), None) | (None, None) => self.sink.ret_void(),
            (None, Some(_)) => {
                // A statement cspec whose returns (if any) were emitted
                // inline; fall-through returns void-ish garbage, matching
                // C's behaviour for missing returns.
                self.sink.ret_void();
            }
        }
        Ok(())
    }

    /// Binds every `param` vspec reachable through the closure tree
    /// before any code is emitted (argument registers must be captured
    /// at entry, before calls clobber them).
    fn prebind_params(&mut self, closure_addr: u64, depth: u32) -> Result<(), VmError> {
        if depth > COMPOSE_DEPTH_LIMIT {
            return Err(self.err("closure composition too deep"));
        }
        let c = ClosureRef { addr: closure_addr };
        let id = c.cgf_id(self.mem)? as usize;
        let tick = self
            .input
            .prog
            .ticks
            .get(id)
            .ok_or_else(|| self.err(format!("bad cgf id {id}")))?;
        for (i, cap) in tick.captures.iter().enumerate() {
            let field = c.field(self.mem, i)?;
            match &cap.kind {
                CaptureKind::Vspec(_) => {
                    let obj = VspecObj::read(self.mem, field)?;
                    if obj.tag == VspecTag::Param && !self.vspecs.contains_key(&field) {
                        let v = self.sink.param(obj.index as usize, obj.kind);
                        self.vspecs.insert(field, v);
                    }
                }
                CaptureKind::Cspec(_) => {
                    // Label objects are not closures; argument lists hold
                    // closures to recurse into.
                    match self.mem.load_u64(field)? {
                        LABEL_MARKER => {}
                        ARGLIST_MARKER => {
                            let n = self.mem.load_u64(field + 8)?;
                            for j in 0..n {
                                let c = self.mem.load_u64(field + 16 + 8 * j)?;
                                self.prebind_params(c, depth + 1)?;
                            }
                        }
                        _ => self.prebind_params(field, depth + 1)?,
                    }
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// Compiles the body of the closure at `closure_addr`; returns its
    /// value (None for void cspecs).
    fn compile_closure(&mut self, closure_addr: u64) -> Result<Option<V<S>>, VmError> {
        self.depth += 1;
        if self.depth > COMPOSE_DEPTH_LIMIT {
            return Err(self.err("closure composition too deep"));
        }
        self.stats.closures += 1;
        let c = ClosureRef { addr: closure_addr };
        if c.cgf_id(self.mem)? == ARGLIST_MARKER {
            self.depth -= 1;
            return Err(self.err("argument lists can only be used with apply()"));
        }
        // A dynamic label object spliced as a statement binds a position.
        if c.cgf_id(self.mem)? == LABEL_MARKER {
            let (l, bound) = self.dyn_label(closure_addr);
            if bound {
                self.depth -= 1;
                return Err(self.err("dynamic label spliced twice"));
            }
            self.sink.bind(l);
            self.dyn_labels.insert(closure_addr, (l, true));
            self.depth -= 1;
            return Ok(None);
        }
        let id = c.cgf_id(self.mem)? as usize;
        let tick = self
            .input
            .prog
            .ticks
            .get(id)
            .ok_or_else(|| self.err(format!("bad cgf id {id}")))?;
        let mut fields = Vec::with_capacity(tick.captures.len());
        for i in 0..tick.captures.len() {
            fields.push(c.field(self.mem, i)?);
        }
        let mut frame = Frame {
            tick,
            fields,
            rtc: HashMap::new(),
            vals: HashMap::new(),
            labels: HashMap::new(),
        };
        let out = match &tick.body {
            TickBody::Expr(e) => Some(self.expr(e, &mut frame)?),
            TickBody::Block(stmts) => {
                for s in stmts {
                    self.stmt(s, &mut frame)?;
                }
                None
            }
        };
        self.depth -= 1;
        Ok(out)
    }

    // ---- run-time constant evaluation -------------------------------------

    /// Evaluates `e` at dynamic compile time if it is a run-time
    /// constant. `in_dollar` permits memory loads (the `$row[k]` case).
    fn eval_static(
        &mut self,
        e: &Expr,
        frame: &Frame<'p, S>,
        in_dollar: bool,
    ) -> Result<Option<Cv>, VmError> {
        self.stats.rtc_evals += 1;
        let r = match &e.kind {
            ExprKind::IntLit(v) => Some(Cv::I(*v)),
            ExprKind::FloatLit(v) => Some(Cv::F(*v)),
            ExprKind::Dollar(inner) => self.eval_static(inner, frame, true)?,
            ExprKind::Var(VarRef::TickRtc(i)) => {
                let raw = frame.fields[*i];
                let ty = &frame.tick.captures[*i].ty;
                Some(if ty.kind() == ValKind::F {
                    Cv::F(f64::from_bits(raw))
                } else {
                    Cv::I(raw as i64)
                })
            }
            ExprKind::Var(VarRef::TickLocal(i)) => frame.rtc.get(i).copied(),
            ExprKind::Var(VarRef::Global(g)) if in_dollar => {
                let ty = &e.ty;
                match ty {
                    Type::Array(..) | Type::Struct(_) => {
                        Some(Cv::I(self.input.global_addrs[*g] as i64))
                    }
                    _ => {
                        let addr = self.input.global_addrs[*g];
                        Some(self.load_const(addr, ty)?)
                    }
                }
            }
            ExprKind::Var(VarRef::Func(f)) => Some(Cv::I(self.input.func_addrs[*f] as i64)),
            ExprKind::Bin(op, a, b) => {
                let (Some(ca), Some(cb)) = (
                    self.eval_static(a, frame, in_dollar)?,
                    self.eval_static(b, frame, in_dollar)?,
                ) else {
                    return Ok(None);
                };
                self.eval_bin(*op, ca, cb, &a.ty, &b.ty)
            }
            ExprKind::Un(op, a) => {
                let Some(cv) = self.eval_static(a, frame, in_dollar)? else {
                    return Ok(None);
                };
                match op {
                    UnaryOp::Neg => Some(match cv {
                        Cv::I(v) => {
                            if e.ty.kind() == ValKind::W {
                                Cv::I((v as i32).wrapping_neg() as i64)
                            } else {
                                Cv::I(v.wrapping_neg())
                            }
                        }
                        Cv::F(v) => Cv::F(-v),
                    }),
                    UnaryOp::BitNot => Some(Cv::I(!cv.as_i())),
                    UnaryOp::LogNot => Some(Cv::I(i64::from(!cv.truthy()))),
                    _ => None,
                }
            }
            ExprKind::Cast(ty, a) => {
                let Some(cv) = self.eval_static(a, frame, in_dollar)? else {
                    return Ok(None);
                };
                Some(cast_const(cv, &a.ty, ty))
            }
            ExprKind::Cond(c, t, f) => {
                let Some(cc) = self.eval_static(c, frame, in_dollar)? else {
                    return Ok(None);
                };
                let arm = if cc.truthy() { t } else { f };
                self.eval_static(arm, frame, in_dollar)?
            }
            ExprKind::Index(base, idx) if in_dollar => {
                let (Some(ba), Some(iv)) = (
                    self.eval_static(base, frame, true)?,
                    self.eval_static(idx, frame, true)?,
                ) else {
                    return Ok(None);
                };
                let elem = match base.ty.decay() {
                    Type::Ptr(t) => *t,
                    _ => return Ok(None),
                };
                let size = elem.size(&self.input.prog.structs) as i64;
                let addr = (ba.as_i() + iv.as_i() * size) as u64;
                Some(self.load_const(addr, &elem)?)
            }
            _ => None,
        };
        Ok(r)
    }

    fn load_const(&self, addr: u64, ty: &Type) -> Result<Cv, VmError> {
        Ok(match load_kind(ty) {
            LoadKind::I8 => Cv::I(self.mem.load_u8(addr)? as i8 as i64),
            LoadKind::U8 => Cv::I(self.mem.load_u8(addr)? as i64),
            LoadKind::I16 => Cv::I(self.mem.load_u16(addr)? as i16 as i64),
            LoadKind::U16 => Cv::I(self.mem.load_u16(addr)? as i64),
            LoadKind::I32 => Cv::I(self.mem.load_u32(addr)? as i32 as i64),
            LoadKind::U32 => Cv::I(self.mem.load_u32(addr)? as i64),
            LoadKind::I64 => Cv::I(self.mem.load_u64(addr)? as i64),
            LoadKind::F64 => Cv::F(self.mem.load_f64(addr)?),
        })
    }

    fn eval_bin(&self, op: BinaryOp, a: Cv, b: Cv, ta: &Type, tb: &Type) -> Option<Cv> {
        use BinaryOp::*;
        if matches!(op, LogAnd) {
            return Some(Cv::I(i64::from(a.truthy() && b.truthy())));
        }
        if matches!(op, LogOr) {
            return Some(Cv::I(i64::from(a.truthy() || b.truthy())));
        }
        let common = if ta.decay().is_arith() && tb.decay().is_arith() {
            ta.usual_arith(tb)
        } else {
            ta.decay()
        };
        if common == Type::Double {
            let (x, y) = (a.as_f(), b.as_f());
            return Some(match op {
                Add => Cv::F(x + y),
                Sub => Cv::F(x - y),
                Mul => Cv::F(x * y),
                Div => Cv::F(x / y),
                Lt => Cv::I(i64::from(x < y)),
                Gt => Cv::I(i64::from(x > y)),
                Le => Cv::I(i64::from(x <= y)),
                Ge => Cv::I(i64::from(x >= y)),
                Eq => Cv::I(i64::from(x == y)),
                Ne => Cv::I(i64::from(x != y)),
                _ => return None,
            });
        }
        // Pointer arithmetic at compile time (e.g. `$p + k` inside $).
        if common.is_ptr() && matches!(op, Add | Sub) {
            let elem = match &common {
                Type::Ptr(t) => t.size(&self.input.prog.structs) as i64,
                _ => unreachable!(),
            };
            let base = a.as_i();
            let off = b.as_i() * elem;
            return Some(Cv::I(if op == Add { base + off } else { base - off }));
        }
        let mop = crate::lower_shim::machine_binop(op, &common);
        let k = common.kind();
        mop.eval_int(k, a.as_i(), b.as_i()).map(Cv::I)
    }

    /// Materializes a constant into a fresh temp.
    fn materialize(&mut self, cv: Cv, ty: &Type) -> V<S> {
        let k = ty.decay().kind();
        let t = self.sink.temp(k);
        match (k, cv) {
            (ValKind::F, cv) => self.sink.lif(t, cv.as_f()),
            (_, Cv::I(v)) => self.sink.li(t, v),
            (_, Cv::F(v)) => self.sink.li(t, v as i64),
        }
        V {
            val: t,
            owned: true,
        }
    }

    fn release(&mut self, v: V<S>) {
        if v.owned {
            self.sink.release(v.val);
        }
    }

    // ---- places ------------------------------------------------------------

    fn vspec_val(&mut self, addr: u64) -> Result<S::Val, VmError> {
        if let Some(v) = self.vspecs.get(&addr) {
            return Ok(*v);
        }
        let obj = VspecObj::read(self.mem, addr)?;
        let v = match obj.tag {
            VspecTag::Local => self.sink.temp_saved(obj.kind),
            VspecTag::Param => self.sink.param(obj.index as usize, obj.kind),
        };
        self.vspecs.insert(addr, v);
        Ok(v)
    }

    /// Gets (or creates) the sink label for a dynamic label object.
    fn dyn_label(&mut self, addr: u64) -> (S::Lbl, bool) {
        if let Some(&(l, bound)) = self.dyn_labels.get(&addr) {
            return (l, bound);
        }
        let l = self.sink.label();
        self.dyn_labels.insert(addr, (l, false));
        (l, false)
    }

    fn local_val(&mut self, frame: &mut Frame<'p, S>, i: usize) -> S::Val {
        if let Some(v) = frame.vals.get(&i) {
            return *v;
        }
        let k = frame.tick.dyn_locals[i].ty.kind();
        let v = self.sink.temp_saved(k);
        frame.vals.insert(i, v);
        v
    }

    /// A place in dynamic code: a register-like value or memory.
    fn place(&mut self, e: &Expr, frame: &mut Frame<'p, S>) -> Result<DynPlace<S>, VmError> {
        match &e.kind {
            ExprKind::Var(VarRef::TickLocal(i)) => {
                // Writing to a derived run-time constant demotes it to a
                // dynamic local (materialize its current value first).
                if let Some(cv) = frame.rtc.remove(i) {
                    let ty = frame.tick.dyn_locals[*i].ty.clone();
                    let m = self.materialize(cv, &ty);
                    // Transfer into a persistent local home.
                    let k = ty.kind();
                    let home = self.sink.temp_saved(k);
                    self.sink.un(UnOp::Mov, k, home, m.val);
                    self.release(m);
                    frame.vals.insert(*i, home);
                }
                Ok(DynPlace::Val(self.local_val(frame, *i), e.ty.clone()))
            }
            ExprKind::Var(VarRef::TickVspec(i)) => {
                let addr = frame.fields[*i];
                Ok(DynPlace::Val(self.vspec_val(addr)?, e.ty.clone()))
            }
            ExprKind::Var(VarRef::TickFv(i)) => {
                let addr = frame.fields[*i];
                let t = self.sink.temp(ValKind::P);
                self.sink.li(t, addr as i64);
                Ok(DynPlace::Mem {
                    addr: V {
                        val: t,
                        owned: true,
                    },
                    off: 0,
                    ty: e.ty.clone(),
                })
            }
            ExprKind::Var(VarRef::Global(g)) => {
                let t = self.sink.temp(ValKind::P);
                self.sink.li(t, self.input.global_addrs[*g] as i64);
                Ok(DynPlace::Mem {
                    addr: V {
                        val: t,
                        owned: true,
                    },
                    off: 0,
                    ty: e.ty.clone(),
                })
            }
            ExprKind::Un(UnaryOp::Deref, inner) => {
                let a = self.expr(inner, frame)?;
                Ok(DynPlace::Mem {
                    addr: a,
                    off: 0,
                    ty: e.ty.clone(),
                })
            }
            ExprKind::Index(base, idx) => {
                let elem_size = e.ty.size(&self.input.prog.structs) as i64;
                let bv = self.expr(base, frame)?;
                if let Some(civ) = self.eval_static(idx, frame, false)? {
                    return Ok(DynPlace::Mem {
                        addr: bv,
                        off: civ.as_i() * elem_size,
                        ty: e.ty.clone(),
                    });
                }
                let iv = self.expr(idx, frame)?;
                let ivc = self.coerce(iv, &idx.ty, &Type::Long);
                let scaled = self.sink.temp(ValKind::D);
                self.sink
                    .bin_imm(BinOp::Mul, ValKind::D, scaled, ivc.val, elem_size);
                self.release(ivc);
                let addr = self.sink.temp(ValKind::P);
                self.sink.bin(BinOp::Add, ValKind::P, addr, bv.val, scaled);
                self.sink.release(scaled);
                self.release(bv);
                Ok(DynPlace::Mem {
                    addr: V {
                        val: addr,
                        owned: true,
                    },
                    off: 0,
                    ty: e.ty.clone(),
                })
            }
            ExprKind::Member(base, _, arrow, offset) => {
                if *arrow {
                    let bv = self.expr(base, frame)?;
                    Ok(DynPlace::Mem {
                        addr: bv,
                        off: *offset as i64,
                        ty: e.ty.clone(),
                    })
                } else {
                    match self.place(base, frame)? {
                        DynPlace::Mem { addr, off, .. } => Ok(DynPlace::Mem {
                            addr,
                            off: off + *offset as i64,
                            ty: e.ty.clone(),
                        }),
                        DynPlace::Val(..) => Err(self.err("struct member of register value")),
                    }
                }
            }
            other => Err(self.err(format!("not an lvalue in dynamic code: {other:?}"))),
        }
    }

    fn load_dyn_place(&mut self, p: &DynPlace<S>) -> V<S> {
        match p {
            DynPlace::Val(v, _) => V {
                val: *v,
                owned: false,
            },
            DynPlace::Mem { addr, off, ty } => {
                if matches!(ty, Type::Array(..) | Type::Struct(_)) {
                    if *off == 0 {
                        return V {
                            val: addr.val,
                            owned: false,
                        };
                    }
                    let t = self.sink.temp(ValKind::P);
                    self.sink.bin_imm(BinOp::Add, ValKind::P, t, addr.val, *off);
                    return V {
                        val: t,
                        owned: true,
                    };
                }
                let t = self.sink.temp(ty.kind());
                self.sink.load(load_kind(ty), t, addr.val, *off);
                V {
                    val: t,
                    owned: true,
                }
            }
        }
    }

    fn store_dyn_place(&mut self, p: &DynPlace<S>, v: S::Val) {
        match p {
            DynPlace::Val(dst, ty) => {
                self.sink.un(UnOp::Mov, ty.kind(), *dst, v);
                self.narrow(*dst, ty);
            }
            DynPlace::Mem { addr, off, ty } => {
                self.sink.store(store_kind(ty), v, addr.val, *off);
            }
        }
    }

    fn release_place(&mut self, p: DynPlace<S>) {
        if let DynPlace::Mem { addr, .. } = p {
            self.release(addr);
        }
    }

    fn narrow(&mut self, v: S::Val, ty: &Type) {
        match ty {
            Type::Char => {
                self.sink.bin_imm(BinOp::Shl, ValKind::W, v, v, 24);
                self.sink.bin_imm(BinOp::Shr, ValKind::W, v, v, 24);
            }
            Type::UChar => self.sink.bin_imm(BinOp::And, ValKind::W, v, v, 0xff),
            Type::Short => {
                self.sink.bin_imm(BinOp::Shl, ValKind::W, v, v, 16);
                self.sink.bin_imm(BinOp::Shr, ValKind::W, v, v, 16);
            }
            Type::UShort => self.sink.bin_imm(BinOp::And, ValKind::W, v, v, 0xffff),
            _ => {}
        }
    }

    fn coerce(&mut self, v: V<S>, from: &Type, to: &Type) -> V<S> {
        let from = from.decay();
        let to = to.decay();
        if from == to {
            return v;
        }
        let (fk, tk) = (from.kind(), to.kind());
        let structs = &self.input.prog.structs;
        match (fk, tk) {
            (ValKind::F, ValKind::F) => v,
            (ValKind::F, ValKind::W) => {
                let d = self.sink.temp(ValKind::W);
                self.sink.un(UnOp::CvtFtoW, ValKind::W, d, v.val);
                self.release(v);
                V {
                    val: d,
                    owned: true,
                }
            }
            (ValKind::F, _) => {
                let d = self.sink.temp(tk);
                self.sink.un(UnOp::CvtFtoL, tk, d, v.val);
                self.release(v);
                V {
                    val: d,
                    owned: true,
                }
            }
            (ValKind::W, ValKind::F) => {
                let d = self.sink.temp(ValKind::F);
                if from.is_unsigned() {
                    let z = self.sink.temp(ValKind::D);
                    self.sink
                        .bin_imm(BinOp::And, ValKind::D, z, v.val, 0xffff_ffff);
                    self.sink.un(UnOp::CvtLtoF, ValKind::F, d, z);
                    self.sink.release(z);
                } else {
                    self.sink.un(UnOp::CvtWtoF, ValKind::F, d, v.val);
                }
                self.release(v);
                V {
                    val: d,
                    owned: true,
                }
            }
            (_, ValKind::F) => {
                let d = self.sink.temp(ValKind::F);
                self.sink.un(UnOp::CvtLtoF, ValKind::F, d, v.val);
                self.release(v);
                V {
                    val: d,
                    owned: true,
                }
            }
            (ValKind::W, ValKind::D | ValKind::P) => {
                if from.is_unsigned() {
                    let d = self.sink.temp(tk);
                    self.sink
                        .bin_imm(BinOp::And, ValKind::D, d, v.val, 0xffff_ffff);
                    self.release(v);
                    V {
                        val: d,
                        owned: true,
                    }
                } else {
                    v
                }
            }
            (ValKind::D | ValKind::P, ValKind::W) => {
                let d = self.sink.temp(ValKind::W);
                self.sink.un(UnOp::Mov, ValKind::W, d, v.val);
                self.narrow(d, &to);
                self.release(v);
                V {
                    val: d,
                    owned: true,
                }
            }
            (ValKind::W, ValKind::W) => {
                let shrink = to.size(structs) < from.size(structs)
                    || (to.size(structs) == from.size(structs)
                        && to.is_unsigned() != from.is_unsigned()
                        && to.size(structs) < 4);
                if shrink {
                    let d = self.sink.temp(ValKind::W);
                    self.sink.un(UnOp::Mov, ValKind::W, d, v.val);
                    self.narrow(d, &to);
                    self.release(v);
                    V {
                        val: d,
                        owned: true,
                    }
                } else {
                    v
                }
            }
            (ValKind::D | ValKind::P, ValKind::D | ValKind::P) => v,
        }
    }

    // ---- expressions -------------------------------------------------------

    fn expr(&mut self, e: &Expr, frame: &mut Frame<'p, S>) -> Result<V<S>, VmError> {
        // Run-time constant folding: a fully static expression becomes an
        // immediate.
        if let Some(cv) = self.eval_static(e, frame, false)? {
            return Ok(self.materialize(cv, &e.ty));
        }
        match &e.kind {
            ExprKind::StrLit(bytes) => {
                let addr = self.intern(bytes)?;
                let t = self.sink.temp(ValKind::P);
                self.sink.li(t, addr as i64);
                Ok(V {
                    val: t,
                    owned: true,
                })
            }
            ExprKind::Var(VarRef::TickCspec(i)) => {
                let closure = frame.fields[*i];
                match self.compile_closure(closure)? {
                    Some(v) => Ok(v),
                    None => Err(self.err("void cspec used as a value")),
                }
            }
            ExprKind::Var(VarRef::TickVspec(_))
            | ExprKind::Var(VarRef::TickLocal(_))
            | ExprKind::Var(VarRef::TickFv(_))
            | ExprKind::Var(VarRef::Global(_))
            | ExprKind::Index(..)
            | ExprKind::Member(..) => {
                let p = self.place(e, frame)?;
                let v = self.load_dyn_place(&p);
                // keep ownership of the loaded temp, release the address
                let out = V {
                    val: v.val,
                    owned: v.owned,
                };
                if let DynPlace::Mem { addr, .. } = p {
                    if addr.val != out.val {
                        self.release(addr);
                    }
                }
                Ok(out)
            }
            ExprKind::Un(UnaryOp::Deref, _) => {
                if matches!(e.ty, Type::Func(_)) {
                    let ExprKind::Un(_, inner) = &e.kind else {
                        unreachable!()
                    };
                    return self.expr(inner, frame);
                }
                let p = self.place(e, frame)?;
                let v = self.load_dyn_place(&p);
                let out = V {
                    val: v.val,
                    owned: v.owned,
                };
                if let DynPlace::Mem { addr, .. } = p {
                    if addr.val != out.val {
                        self.release(addr);
                    }
                }
                Ok(out)
            }
            ExprKind::Un(UnaryOp::Addr, inner) => {
                let p = self.place(inner, frame)?;
                match p {
                    DynPlace::Mem { addr, off: 0, .. } => Ok(addr),
                    DynPlace::Mem { addr, off, .. } => {
                        let t = self.sink.temp(ValKind::P);
                        self.sink.bin_imm(BinOp::Add, ValKind::P, t, addr.val, off);
                        self.release(addr);
                        Ok(V {
                            val: t,
                            owned: true,
                        })
                    }
                    DynPlace::Val(..) => Err(self.err("cannot take the address of a register")),
                }
            }
            ExprKind::Un(op, inner) => {
                let v = self.expr(inner, frame)?;
                let v = self.coerce(v, &inner.ty, &e.ty);
                let d = self.sink.temp(e.ty.kind());
                let uop = match op {
                    UnaryOp::Neg => UnOp::Neg,
                    UnaryOp::BitNot => UnOp::Not,
                    UnaryOp::LogNot => {
                        // !x == (x == 0)
                        let k = inner.ty.decay().kind();
                        self.sink.bin_imm(BinOp::Eq, k, d, v.val, 0);
                        self.release(v);
                        return Ok(V {
                            val: d,
                            owned: true,
                        });
                    }
                    _ => unreachable!("deref/addr handled above"),
                };
                self.sink.un(uop, e.ty.kind(), d, v.val);
                self.release(v);
                Ok(V {
                    val: d,
                    owned: true,
                })
            }
            ExprKind::PreIncDec(inner, inc) => self.incdec(inner, *inc, false, frame),
            ExprKind::PostIncDec(inner, inc) => self.incdec(inner, *inc, true, frame),
            ExprKind::Bin(op, a, b) => self.binary(*op, a, b, e, frame),
            ExprKind::Assign(op, lhs, rhs) => self.assign(op, lhs, rhs, frame),
            ExprKind::Call(callee, args) => self.call(callee, args, e, frame),
            ExprKind::Cast(ty, inner) => {
                let v = self.expr(inner, frame)?;
                Ok(self.coerce(v, &inner.ty, ty))
            }
            ExprKind::Cond(c, t, f) => {
                // (static conditions were folded by eval_static above)
                let k = e.ty.kind();
                let d = self.sink.temp_saved(k);
                let lf = self.sink.label();
                let lend = self.sink.label();
                self.cond_branch(c, None, Some(lf), frame)?;
                let tv = self.expr(t, frame)?;
                let tv = self.coerce(tv, &t.ty, &e.ty);
                self.sink.un(UnOp::Mov, k, d, tv.val);
                self.release(tv);
                self.sink.jmp(lend);
                self.sink.bind(lf);
                let fv = self.expr(f, frame)?;
                let fv = self.coerce(fv, &f.ty, &e.ty);
                self.sink.un(UnOp::Mov, k, d, fv.val);
                self.release(fv);
                self.sink.bind(lend);
                Ok(V {
                    val: d,
                    owned: true,
                })
            }
            ExprKind::Comma(a, b) => {
                let v = self.expr(a, frame)?;
                self.release(v);
                self.expr(b, frame)
            }
            ExprKind::Apply(f, l) => self.apply(f, l, frame),
            ExprKind::JumpForm(_) => Err(self.err("jump() cannot be used as a value")),
            ExprKind::Dollar(_) => Err(self.err("$ operand was not a run-time constant")),
            ExprKind::Var(VarRef::TickRtc(_)) => {
                unreachable!("run-time constants fold in eval_static")
            }
            other => Err(self.err(format!("unsupported in dynamic code: {other:?}"))),
        }
    }

    fn intern(&mut self, bytes: &[u8]) -> Result<u64, VmError> {
        let a = self.mem.alloc(bytes.len() as u64 + 1, 1)?;
        self.mem.write_bytes(a, bytes)?;
        self.mem.store_u8(a + bytes.len() as u64, 0)?;
        Ok(a)
    }

    fn incdec(
        &mut self,
        inner: &Expr,
        inc: bool,
        post: bool,
        frame: &mut Frame<'p, S>,
    ) -> Result<V<S>, VmError> {
        let ty = inner.ty.decay();
        let k = ty.kind();
        let delta: i64 = match &ty {
            Type::Ptr(t) => t.size(&self.input.prog.structs) as i64,
            _ => 1,
        };
        let delta = if inc { delta } else { -delta };
        let p = self.place(inner, frame)?;
        let old = self.load_dyn_place(&p);
        let keep = if post {
            let c = self.sink.temp(k);
            self.sink.un(UnOp::Mov, k, c, old.val);
            Some(c)
        } else {
            None
        };
        let newv = self.sink.temp(k);
        if ty == Type::Double {
            let dv = self.sink.temp(ValKind::F);
            self.sink.lif(dv, delta as f64);
            self.sink.bin(BinOp::Add, ValKind::F, newv, old.val, dv);
            self.sink.release(dv);
        } else {
            self.sink.bin_imm(BinOp::Add, k, newv, old.val, delta);
        }
        self.release(old);
        self.store_dyn_place(&p, newv);
        let result = if post {
            self.sink.release(newv);
            V {
                val: keep.expect("post"),
                owned: true,
            }
        } else {
            V {
                val: newv,
                owned: true,
            }
        };
        self.release_place(p);
        Ok(result)
    }

    fn binary(
        &mut self,
        op: BinaryOp,
        a: &Expr,
        b: &Expr,
        e: &Expr,
        frame: &mut Frame<'p, S>,
    ) -> Result<V<S>, VmError> {
        use BinaryOp::*;
        if matches!(op, LogAnd | LogOr) {
            let d = self.sink.temp_saved(ValKind::W);
            let ltrue = self.sink.label();
            let lfalse = self.sink.label();
            let lend = self.sink.label();
            self.cond_branch(e, Some(ltrue), Some(lfalse), frame)?;
            self.sink.bind(ltrue);
            self.sink.li(d, 1);
            self.sink.jmp(lend);
            self.sink.bind(lfalse);
            self.sink.li(d, 0);
            self.sink.bind(lend);
            return Ok(V {
                val: d,
                owned: true,
            });
        }
        let ta = a.ty.decay();
        let tb = b.ty.decay();
        // Pointer arithmetic.
        if (op == Add || op == Sub) && ta.is_ptr() && tb.is_integer() {
            let elem = match &ta {
                Type::Ptr(t) => t.size(&self.input.prog.structs) as i64,
                _ => unreachable!(),
            };
            let pv = self.expr(a, frame)?;
            if let Some(ci) = self.eval_static(b, frame, false)? {
                let d = self.sink.temp(ValKind::P);
                let off = ci.as_i() * elem * if op == Add { 1 } else { -1 };
                self.sink.bin_imm(BinOp::Add, ValKind::P, d, pv.val, off);
                self.release(pv);
                return Ok(V {
                    val: d,
                    owned: true,
                });
            }
            let iv = self.expr(b, frame)?;
            let iv = self.coerce(iv, &tb, &Type::Long);
            let scaled = self.sink.temp(ValKind::D);
            self.sink
                .bin_imm(BinOp::Mul, ValKind::D, scaled, iv.val, elem);
            self.release(iv);
            let d = self.sink.temp(ValKind::P);
            let mop = if op == Add { BinOp::Add } else { BinOp::Sub };
            self.sink.bin(mop, ValKind::P, d, pv.val, scaled);
            self.sink.release(scaled);
            self.release(pv);
            return Ok(V {
                val: d,
                owned: true,
            });
        }
        if op == Add && ta.is_integer() && tb.is_ptr() {
            return self.binary(Add, b, a, e, frame);
        }
        if op == Sub && ta.is_ptr() && tb.is_ptr() {
            let elem = match &ta {
                Type::Ptr(t) => t.size(&self.input.prog.structs) as i64,
                _ => unreachable!(),
            };
            let av = self.expr(a, frame)?;
            let bv = self.expr(b, frame)?;
            let diff = self.sink.temp(ValKind::D);
            self.sink.bin(BinOp::Sub, ValKind::D, diff, av.val, bv.val);
            self.release(av);
            self.release(bv);
            let d = self.sink.temp(ValKind::D);
            self.sink.bin_imm(BinOp::Div, ValKind::D, d, diff, elem);
            self.sink.release(diff);
            return Ok(V {
                val: d,
                owned: true,
            });
        }
        let cmp = matches!(op, Lt | Gt | Le | Ge | Eq | Ne);
        let common = if cmp {
            if ta.is_arith() && tb.is_arith() {
                ta.usual_arith(&tb)
            } else {
                ta.clone()
            }
        } else {
            e.ty.clone()
        };
        let k = common.kind();
        let mop = crate::lower_shim::machine_binop(op, &common);

        // §5.1 heuristic: evaluate cspec operands before non-cspec
        // operands to shorten temp live ranges across composition.
        let a_has = contains_cspec(a);
        let b_has = contains_cspec(b);
        // Run-time-constant operands select strength-reduced immediates.
        let static_b = if k == ValKind::F {
            None
        } else {
            self.eval_static(b, frame, false)?
        };
        if let Some(cb) = static_b {
            if !cmp {
                let va = self.expr(a, frame)?;
                let va = self.coerce(va, &ta, &common);
                let d = self.sink.temp(k);
                self.sink.bin_imm(mop, k, d, va.val, cb.as_i());
                self.release(va);
                return Ok(V {
                    val: d,
                    owned: true,
                });
            }
        }
        let static_a = if k == ValKind::F {
            None
        } else {
            self.eval_static(a, frame, false)?
        };
        if let (Some(ca), Some(sw)) = (static_a, mop.swapped()) {
            if !cmp {
                let vb = self.expr(b, frame)?;
                let vb = self.coerce(vb, &tb, &common);
                let d = self.sink.temp(k);
                self.sink.bin_imm(sw, k, d, vb.val, ca.as_i());
                self.release(vb);
                return Ok(V {
                    val: d,
                    owned: true,
                });
            }
        }
        let (va, vb) = if self.cspec_first && b_has && !a_has {
            let vb = self.expr(b, frame)?;
            let va = self.expr(a, frame)?;
            (va, vb)
        } else {
            let va = self.expr(a, frame)?;
            let vb = self.expr(b, frame)?;
            (va, vb)
        };
        let va = self.coerce(va, &ta, &common);
        let vb = self.coerce(vb, &tb, &common);
        let d = self.sink.temp(if cmp { ValKind::W } else { k });
        self.sink.bin(
            mop,
            if cmp && k == ValKind::F {
                ValKind::F
            } else {
                k
            },
            d,
            va.val,
            vb.val,
        );
        self.release(va);
        self.release(vb);
        Ok(V {
            val: d,
            owned: true,
        })
    }

    fn assign(
        &mut self,
        op: &Option<BinaryOp>,
        lhs: &Expr,
        rhs: &Expr,
        frame: &mut Frame<'p, S>,
    ) -> Result<V<S>, VmError> {
        let p = self.place(lhs, frame)?;
        let stored = match op {
            None => {
                let v = self.expr(rhs, frame)?;
                self.coerce(v, &rhs.ty, &lhs.ty)
            }
            Some(op) => {
                let cur = self.load_dyn_place(&p);
                let ta = lhs.ty.decay();
                let tb = rhs.ty.decay();
                if ta.is_ptr() {
                    let elem = match &ta {
                        Type::Ptr(t) => t.size(&self.input.prog.structs) as i64,
                        _ => unreachable!(),
                    };
                    let iv = self.expr(rhs, frame)?;
                    let iv = self.coerce(iv, &tb, &Type::Long);
                    let scaled = self.sink.temp(ValKind::D);
                    self.sink
                        .bin_imm(BinOp::Mul, ValKind::D, scaled, iv.val, elem);
                    self.release(iv);
                    let d = self.sink.temp(ValKind::P);
                    let mop = if *op == BinaryOp::Add {
                        BinOp::Add
                    } else {
                        BinOp::Sub
                    };
                    self.sink.bin(mop, ValKind::P, d, cur.val, scaled);
                    self.sink.release(scaled);
                    self.release(cur);
                    V {
                        val: d,
                        owned: true,
                    }
                } else {
                    let common = if ta.is_arith() && tb.is_arith() {
                        ta.usual_arith(&tb)
                    } else {
                        ta.clone()
                    };
                    let k = common.kind();
                    let mop = crate::lower_shim::machine_binop(*op, &common);
                    let cv = self.coerce(cur, &ta, &common);
                    let d = self.sink.temp(k);
                    let static_rhs = if k == ValKind::F {
                        None
                    } else {
                        self.eval_static(rhs, frame, false)?
                    };
                    if let Some(cb) = static_rhs {
                        self.sink.bin_imm(mop, k, d, cv.val, cb.as_i());
                    } else {
                        let rv = self.expr(rhs, frame)?;
                        let rv = self.coerce(rv, &tb, &common);
                        self.sink.bin(mop, k, d, cv.val, rv.val);
                        self.release(rv);
                    }
                    self.release(cv);

                    self.coerce(
                        V {
                            val: d,
                            owned: true,
                        },
                        &common,
                        &lhs.ty,
                    )
                }
            }
        };
        self.store_dyn_place(&p, stored.val);
        // Result of the assignment: re-read from the place (narrowed).
        let result = self.load_dyn_place(&p);
        let result = if result.owned {
            result
        } else {
            // register-resident place: hand back a borrowed value
            result
        };
        self.release(stored);
        self.release_place(p);
        Ok(result)
    }

    fn call(
        &mut self,
        callee: &Expr,
        args: &[Expr],
        e: &Expr,
        frame: &mut Frame<'p, S>,
    ) -> Result<V<S>, VmError> {
        // Evaluate arguments.
        let param_tys: Vec<Option<Type>> = match callee.ty.decay() {
            Type::Ptr(inner) => match *inner {
                Type::Func(sig) if sig.params.len() == args.len() => {
                    sig.params.iter().cloned().map(Some).collect()
                }
                _ => vec![None; args.len()],
            },
            _ => vec![None; args.len()],
        };
        let mut vs = Vec::new();
        for (a, pt) in args.iter().zip(&param_tys) {
            let v = self.expr(a, frame)?;
            let ty = pt.clone().unwrap_or_else(|| a.ty.decay());
            let v = self.coerce(v, &a.ty, &ty);
            vs.push((ty.kind(), v));
        }
        let arg_list: Vec<(ValKind, S::Val)> = vs.iter().map(|(k, v)| (*k, v.val)).collect();
        let ret = if e.ty == Type::Void {
            None
        } else {
            let d = self.sink.temp_saved(e.ty.kind());
            Some((e.ty.kind(), d))
        };
        if let ExprKind::Var(VarRef::Builtin(b)) = &callee.kind {
            let num = match b {
                Builtin::Puts => tcc_rt::hcalls::HC_PUTS,
                Builtin::Puti => tcc_rt::hcalls::HC_PUTINT,
                Builtin::Putd => tcc_rt::hcalls::HC_PUTF,
                Builtin::Putchar => tcc_rt::hcalls::HC_PUTCHAR,
                Builtin::Printf => tcc_rt::hcalls::HC_PRINTF,
                Builtin::Malloc => tcc_rt::hcalls::HC_MALLOC,
                Builtin::Abort => tcc_rt::hcalls::HC_ABORT,
            };
            self.sink.hcall(num, &arg_list, ret);
        } else if let ExprKind::Var(VarRef::Func(fi)) = &callee.kind {
            // Dynamic code calls static functions *directly* — the
            // address is a run-time constant at instantiation time.
            self.sink
                .call_addr(self.input.func_addrs[*fi], &arg_list, ret);
        } else {
            let target = self.expr(callee, frame)?;
            // An argument-register-resident target would be clobbered by
            // the moves; targets are temps here, which is safe.
            self.sink.call_ind(target.val, &arg_list, ret);
            self.release(target);
        }
        for (_, v) in vs {
            self.release(v);
        }
        Ok(match ret {
            Some((_, d)) => V {
                val: d,
                owned: true,
            },
            None => {
                // A void value; give callers a dummy.
                let d = self.sink.temp(ValKind::W);
                V {
                    val: d,
                    owned: true,
                }
            }
        })
    }

    /// `apply(f, args)` — dynamic call construction (§6.2 mshl/umshl):
    /// the argument count and the code computing each argument are
    /// determined at specification time.
    fn apply(&mut self, f: &Expr, l: &Expr, frame: &mut Frame<'p, S>) -> Result<V<S>, VmError> {
        let ExprKind::Var(VarRef::TickCspec(i)) = &l.kind else {
            return Err(self.err("apply() argument list must be captured"));
        };
        let list = frame.fields[*i];
        if self.mem.load_u64(list)? != ARGLIST_MARKER {
            return Err(self.err("apply() target is not an argument list"));
        }
        let n = self.mem.load_u64(list + 8)?;
        let mut vals = Vec::new();
        let mut kinds = Vec::new();
        for j in 0..n {
            let closure = self.mem.load_u64(list + 16 + 8 * j)?;
            // The argument's kind comes from its cspec's evaluation type.
            let id = self.mem.load_u64(closure)? as usize;
            let tick = self
                .input
                .prog
                .ticks
                .get(id)
                .ok_or_else(|| self.err(format!("bad cgf id {id} in argument list")))?;
            if tick.eval_ty == Type::Void {
                return Err(self.err("void cspec in an argument list"));
            }
            kinds.push(tick.eval_ty.kind());
            let v = self
                .compile_closure(closure)?
                .ok_or_else(|| self.err("argument cspec produced no value"))?;
            vals.push(v);
        }
        let arg_list: Vec<(ValKind, S::Val)> =
            kinds.iter().zip(&vals).map(|(k, v)| (*k, v.val)).collect();
        let ret = self.sink.temp_saved(ValKind::W);
        if let ExprKind::Var(VarRef::Func(fi)) = &f.kind {
            self.sink.call_addr(
                self.input.func_addrs[*fi],
                &arg_list,
                Some((ValKind::W, ret)),
            );
        } else {
            let target = self.expr(f, frame)?;
            self.sink
                .call_ind(target.val, &arg_list, Some((ValKind::W, ret)));
            self.release(target);
        }
        for v in vals {
            self.release(v);
        }
        Ok(V {
            val: ret,
            owned: true,
        })
    }

    fn cond_branch(
        &mut self,
        e: &Expr,
        ltrue: Option<S::Lbl>,
        lfalse: Option<S::Lbl>,
        frame: &mut Frame<'p, S>,
    ) -> Result<(), VmError> {
        // Run-time constant condition: emit an unconditional edge (or
        // nothing) — dynamic dead code elimination.
        if let Some(cv) = self.eval_static(e, frame, false)? {
            match (cv.truthy(), ltrue, lfalse) {
                (true, Some(lt), _) => self.sink.jmp(lt),
                (false, _, Some(lf)) => self.sink.jmp(lf),
                _ => {}
            }
            return Ok(());
        }
        match &e.kind {
            ExprKind::Bin(op, a, b)
                if matches!(
                    op,
                    BinaryOp::Lt
                        | BinaryOp::Gt
                        | BinaryOp::Le
                        | BinaryOp::Ge
                        | BinaryOp::Eq
                        | BinaryOp::Ne
                ) =>
            {
                let ta = a.ty.decay();
                let tb = b.ty.decay();
                let common = if ta.is_arith() && tb.is_arith() {
                    ta.usual_arith(&tb)
                } else {
                    ta.clone()
                };
                // `x == 0` / `x != 0` folds to a truthiness branch on
                // `x` alone (BrTrue/BrFalse compare against the
                // hardwired zero register): the static back end never
                // materializes a zero operand and the dynamic path
                // shouldn't either. Floats keep the generic compare
                // (0.0 is not a bit-pattern test: -0.0 == 0.0).
                let zero_lit = |e: &Expr| matches!(e.kind, ExprKind::IntLit(0));
                if matches!(op, BinaryOp::Eq | BinaryOp::Ne)
                    && common.kind() != ValKind::F
                    && (zero_lit(a) || zero_lit(b))
                {
                    let (nz, tnz) = if zero_lit(b) { (a, &ta) } else { (b, &tb) };
                    let v = self.expr(nz, frame)?;
                    let v = self.coerce(v, tnz, &common);
                    let on_eq = matches!(op, BinaryOp::Eq);
                    match (ltrue, lfalse) {
                        (Some(lt), None) => {
                            if on_eq {
                                self.sink.br_false(v.val, lt);
                            } else {
                                self.sink.br_true(v.val, lt);
                            }
                        }
                        (None, Some(lf)) => {
                            if on_eq {
                                self.sink.br_true(v.val, lf);
                            } else {
                                self.sink.br_false(v.val, lf);
                            }
                        }
                        (Some(lt), Some(lf)) => {
                            if on_eq {
                                self.sink.br_false(v.val, lt);
                            } else {
                                self.sink.br_true(v.val, lt);
                            }
                            self.sink.jmp(lf);
                        }
                        (None, None) => {}
                    }
                    self.release(v);
                    return Ok(());
                }
                let va = self.expr(a, frame)?;
                let va = self.coerce(va, &ta, &common);
                let vb = self.expr(b, frame)?;
                let vb = self.coerce(vb, &tb, &common);
                let mop = crate::lower_shim::machine_binop(*op, &common);
                let k = common.kind();
                match (ltrue, lfalse) {
                    (Some(lt), None) => self.sink.br_cmp(mop, k, va.val, vb.val, lt),
                    (None, Some(lf)) => {
                        let neg = mop.negated().expect("cmp");
                        self.sink.br_cmp(neg, k, va.val, vb.val, lf);
                    }
                    (Some(lt), Some(lf)) => {
                        self.sink.br_cmp(mop, k, va.val, vb.val, lt);
                        self.sink.jmp(lf);
                    }
                    (None, None) => {}
                }
                self.release(va);
                self.release(vb);
                Ok(())
            }
            ExprKind::Un(UnaryOp::LogNot, inner) => self.cond_branch(inner, lfalse, ltrue, frame),
            ExprKind::Bin(BinaryOp::LogAnd, a, b) => {
                let lskip = self.sink.label();
                self.cond_branch(a, None, Some(lfalse.unwrap_or(lskip)), frame)?;
                self.cond_branch(b, ltrue, lfalse, frame)?;
                self.sink.bind(lskip);
                Ok(())
            }
            ExprKind::Bin(BinaryOp::LogOr, a, b) => {
                let lskip = self.sink.label();
                self.cond_branch(a, Some(ltrue.unwrap_or(lskip)), None, frame)?;
                self.cond_branch(b, ltrue, lfalse, frame)?;
                self.sink.bind(lskip);
                Ok(())
            }
            _ => {
                let v = self.expr(e, frame)?;
                match (ltrue, lfalse) {
                    (Some(lt), None) => self.sink.br_true(v.val, lt),
                    (None, Some(lf)) => self.sink.br_false(v.val, lf),
                    (Some(lt), Some(lf)) => {
                        self.sink.br_true(v.val, lt);
                        self.sink.jmp(lf);
                    }
                    (None, None) => {}
                }
                self.release(v);
                Ok(())
            }
        }
    }

    // ---- statements --------------------------------------------------------

    fn stmt(&mut self, s: &Stmt, frame: &mut Frame<'p, S>) -> Result<(), VmError> {
        match s {
            Stmt::Expr(e) => {
                // jump(l): emit a jump to a dynamic label.
                if let ExprKind::JumpForm(l) = &e.kind {
                    let ExprKind::Var(VarRef::TickCspec(i)) = &l.kind else {
                        return Err(self.err("jump() target must be a captured label"));
                    };
                    let addr = frame.fields[*i];
                    if self.mem.load_u64(addr)? != LABEL_MARKER {
                        return Err(self.err("jump() target is not a dynamic label object"));
                    }
                    let (lbl, _) = self.dyn_label(addr);
                    self.sink.jmp(lbl);
                    return Ok(());
                }
                // A void cspec mentioned as a statement splices its code.
                if let ExprKind::Var(VarRef::TickCspec(i)) = &e.kind {
                    if frame.tick.captures[*i].ty == Type::Void {
                        let closure = frame.fields[*i];
                        self.compile_closure(closure)?;
                        return Ok(());
                    }
                }
                let v = self.expr(e, frame)?;
                self.release(v);
                Ok(())
            }
            Stmt::Decl(items) => {
                for item in items {
                    if let Some(Init::Expr(init)) = &item.init {
                        // A static initializer keeps the local a derived
                        // run-time constant until a dynamic write demotes
                        // it.
                        if let Some(cv) = self.eval_static(init, frame, false)? {
                            frame.rtc.insert(item.local_id, cv);
                            continue;
                        }
                        let v = self.expr(init, frame)?;
                        let v = self.coerce(v, &init.ty, &item.ty);
                        let home = self.local_val(frame, item.local_id);
                        self.sink.un(UnOp::Mov, item.ty.kind(), home, v.val);
                        self.narrow(home, &item.ty);
                        self.release(v);
                    }
                }
                Ok(())
            }
            Stmt::If(c, t, els) => {
                // Dynamic dead code elimination on run-time constants.
                if let Some(cv) = self.eval_static(c, frame, false)? {
                    return if cv.truthy() {
                        self.stmt(t, frame)
                    } else if let Some(els) = els {
                        self.stmt(els, frame)
                    } else {
                        Ok(())
                    };
                }
                let lelse = self.sink.label();
                let lend = self.sink.label();
                self.cond_branch(c, None, Some(lelse), frame)?;
                self.stmt(t, frame)?;
                if els.is_some() {
                    self.sink.jmp(lend);
                }
                self.sink.bind(lelse);
                if let Some(els) = els {
                    self.stmt(els, frame)?;
                }
                self.sink.bind(lend);
                Ok(())
            }
            Stmt::For(init, cond, step, body) => self.lower_for(init, cond, step, body, frame),
            Stmt::While(c, body) => {
                let ltop = self.sink.label();
                let lcond = self.sink.label();
                let lend = self.sink.label();
                self.sink.jmp(lcond);
                self.sink.loop_begin();
                self.sink.bind(ltop);
                self.break_stack.push(lend);
                self.continue_stack.push(lcond);
                self.stmt(body, frame)?;
                self.break_stack.pop();
                self.continue_stack.pop();
                self.sink.bind(lcond);
                self.cond_branch(c, Some(ltop), None, frame)?;
                self.sink.loop_end();
                self.sink.bind(lend);
                Ok(())
            }
            Stmt::DoWhile(body, c) => {
                let ltop = self.sink.label();
                let lcond = self.sink.label();
                let lend = self.sink.label();
                self.sink.loop_begin();
                self.sink.bind(ltop);
                self.break_stack.push(lend);
                self.continue_stack.push(lcond);
                self.stmt(body, frame)?;
                self.break_stack.pop();
                self.continue_stack.pop();
                self.sink.bind(lcond);
                self.cond_branch(c, Some(ltop), None, frame)?;
                self.sink.loop_end();
                self.sink.bind(lend);
                Ok(())
            }
            Stmt::Return(e) => {
                match (e, self.ret_kind) {
                    (Some(e), Some(k)) => {
                        let v = self.expr(e, frame)?;
                        // Coerce to the kind compile() declared.
                        let target = kind_type(k);
                        let v = self.coerce(v, &e.ty, &target);
                        self.sink.ret_val(k, v.val);
                        self.release(v);
                    }
                    (Some(e), None) => {
                        let v = self.expr(e, frame)?;
                        self.release(v);
                        self.sink.ret_void();
                    }
                    (None, _) => self.sink.ret_void(),
                }
                Ok(())
            }
            Stmt::Break => {
                let l = *self
                    .break_stack
                    .last()
                    .ok_or_else(|| self.err("break outside loop in dynamic code"))?;
                self.sink.jmp(l);
                Ok(())
            }
            Stmt::Continue => {
                let l = *self
                    .continue_stack
                    .last()
                    .ok_or_else(|| self.err("continue outside loop in dynamic code"))?;
                self.sink.jmp(l);
                Ok(())
            }
            Stmt::Block(stmts) => {
                for s in stmts {
                    self.stmt(s, frame)?;
                }
                Ok(())
            }
            Stmt::Switch(scrut, items) => {
                // Run-time constant scrutinee: emit only the chosen arm.
                if let Some(cv) = self.eval_static(scrut, frame, false)? {
                    return self.static_switch(cv.as_i(), items, frame);
                }
                let sv = self.expr(scrut, frame)?;
                let lend = self.sink.label();
                let mut case_labels = Vec::new();
                let mut default_label = None;
                for item in items {
                    match item {
                        SwitchItem::Case(v) => {
                            let l = self.sink.label();
                            case_labels.push((*v, l));
                        }
                        SwitchItem::Default => default_label = Some(self.sink.label()),
                        SwitchItem::Stmt(_) => {}
                    }
                }
                let k = scrut.ty.kind();
                for (v, l) in &case_labels {
                    let c = self.sink.temp(k);
                    self.sink.li(c, *v);
                    self.sink.br_cmp(BinOp::Eq, k, sv.val, c, *l);
                    self.sink.release(c);
                }
                self.release(sv);
                self.sink.jmp(default_label.unwrap_or(lend));
                self.break_stack.push(lend);
                let mut ci = 0;
                for item in items {
                    match item {
                        SwitchItem::Case(_) => {
                            self.sink.bind(case_labels[ci].1);
                            ci += 1;
                        }
                        SwitchItem::Default => self.sink.bind(default_label.expect("seen")),
                        SwitchItem::Stmt(s) => self.stmt(s, frame)?,
                    }
                }
                self.break_stack.pop();
                self.sink.bind(lend);
                Ok(())
            }
            Stmt::Goto(name) => {
                let l = *frame
                    .labels
                    .entry(name.clone())
                    .or_insert_with(|| self.sink.label());
                self.sink.jmp(l);
                Ok(())
            }
            Stmt::Labeled(name, inner) => {
                let l = *frame
                    .labels
                    .entry(name.clone())
                    .or_insert_with(|| self.sink.label());
                self.sink.bind(l);
                self.stmt(inner, frame)
            }
            Stmt::Empty => Ok(()),
        }
    }

    /// Emits only the statically selected arm of a switch over a run-time
    /// constant, honoring fallthrough and `break`.
    fn static_switch(
        &mut self,
        v: i64,
        items: &[SwitchItem],
        frame: &mut Frame<'p, S>,
    ) -> Result<(), VmError> {
        let lend = self.sink.label();
        // Find the entry point: matching case, else default.
        let mut start = items
            .iter()
            .position(|i| matches!(i, SwitchItem::Case(c) if *c == v));
        if start.is_none() {
            start = items.iter().position(|i| matches!(i, SwitchItem::Default));
        }
        if let Some(mut idx) = start {
            self.break_stack.push(lend);
            while idx < items.len() {
                if let SwitchItem::Stmt(s) = &items[idx] {
                    self.stmt(s, frame)?;
                }
                idx += 1;
            }
            self.break_stack.pop();
        }
        self.sink.bind(lend);
        Ok(())
    }

    /// `for` lowering with the paper's dynamic loop unrolling.
    fn lower_for(
        &mut self,
        init: &Option<Box<Stmt>>,
        cond: &Option<Expr>,
        step: &Option<Expr>,
        body: &Stmt,
        frame: &mut Frame<'p, S>,
    ) -> Result<(), VmError> {
        // Try the static (unrollable) pattern first.
        if let Some(()) = self.try_unroll(init, cond, step, body, frame)? {
            return Ok(());
        }
        if let Some(i) = init {
            self.stmt(i, frame)?;
        }
        let ltop = self.sink.label();
        let lcond = self.sink.label();
        let lstep = self.sink.label();
        let lend = self.sink.label();
        self.sink.jmp(lcond);
        self.sink.loop_begin();
        self.sink.bind(ltop);
        self.break_stack.push(lend);
        self.continue_stack.push(lstep);
        self.stmt(body, frame)?;
        self.break_stack.pop();
        self.continue_stack.pop();
        self.sink.bind(lstep);
        if let Some(st) = step {
            let v = self.expr(st, frame)?;
            self.release(v);
        }
        self.sink.bind(lcond);
        match cond {
            Some(c) => self.cond_branch(c, Some(ltop), None, frame)?,
            None => self.sink.jmp(ltop),
        }
        self.sink.loop_end();
        self.sink.bind(lend);
        Ok(())
    }

    /// Attempts dynamic loop unrolling; returns `Some(())` if the loop
    /// was fully executed at compile time.
    fn try_unroll(
        &mut self,
        init: &Option<Box<Stmt>>,
        cond: &Option<Expr>,
        step: &Option<Expr>,
        body: &Stmt,
        frame: &mut Frame<'p, S>,
    ) -> Result<Option<()>, VmError> {
        if !self.enable_unroll {
            return Ok(None);
        }
        let (Some(init), Some(cond), Some(step)) = (init, cond, step) else {
            return Ok(None);
        };
        // init must bind a tick local to a static value.
        let (k, init_expr) = match &**init {
            Stmt::Expr(Expr {
                kind: ExprKind::Assign(None, lhs, rhs),
                ..
            }) => match &lhs.kind {
                ExprKind::Var(VarRef::TickLocal(i)) => (*i, (**rhs).clone()),
                _ => return Ok(None),
            },
            Stmt::Decl(items) if items.len() == 1 => match &items[0].init {
                Some(Init::Expr(e)) => (items[0].local_id, e.clone()),
                _ => return Ok(None),
            },
            _ => return Ok(None),
        };
        // The induction variable must not already be dynamic.
        if frame.vals.contains_key(&k) {
            return Ok(None);
        }
        let Some(init_cv) = self.eval_static(&init_expr, frame, false)? else {
            return Ok(None);
        };
        // step must be an update of k by a static amount.
        let step_kind = match &step.kind {
            ExprKind::PreIncDec(t, inc) | ExprKind::PostIncDec(t, inc) if matches!(t.kind, ExprKind::Var(VarRef::TickLocal(i)) if i == k) => {
                StepKind::IncDec(*inc)
            }
            ExprKind::Assign(Some(op), lhs, rhs) if matches!(lhs.kind, ExprKind::Var(VarRef::TickLocal(i)) if i == k) => {
                StepKind::AssignOp(*op, (**rhs).clone())
            }
            ExprKind::Assign(None, lhs, rhs) if matches!(lhs.kind, ExprKind::Var(VarRef::TickLocal(i)) if i == k) => {
                StepKind::Reassign((**rhs).clone())
            }
            _ => return Ok(None),
        };
        // The body must not assign the induction variable, use labels, or
        // break/continue this loop.
        if assigns_local(body, k) || has_labels(body) || has_loop_escape(body, 0) {
            return Ok(None);
        }
        // Check the condition is statically evaluable at the start.
        frame.rtc.insert(k, init_cv);
        if self.eval_static(cond, frame, false)?.is_none() {
            frame.rtc.remove(&k);
            return Ok(None);
        }

        let ty = frame.tick.dyn_locals[k].ty.clone();

        // Pre-simulate the trip count (header only — the body cannot
        // touch the header per the checks above). Over-large loops stay
        // loops: "unless it is made too large, and hence acquires poor
        // memory locality and incurs a high code generation cost" (§4.4).
        let mut trips: u64 = 0;
        loop {
            let Some(c) = self.eval_static(cond, frame, false)? else {
                frame.rtc.remove(&k);
                return Ok(None);
            };
            if !c.truthy() {
                break;
            }
            trips += 1;
            if trips > UNROLL_TRIP_LIMIT {
                frame.rtc.remove(&k);
                return Ok(None);
            }
            let cur = *frame.rtc.get(&k).expect("induction var is static");
            match self.apply_step(&step_kind, cur, &ty, frame)? {
                Some(next) => frame.rtc.insert(k, next),
                None => {
                    frame.rtc.remove(&k);
                    return Ok(None);
                }
            };
        }
        frame.rtc.insert(k, init_cv);

        // Unroll.
        let mut iters: u64 = 0;
        loop {
            let Some(c) = self.eval_static(cond, frame, false)? else {
                // The body demoted something the condition needs; this is
                // not recoverable mid-unroll.
                return Err(self.err(
                    "loop condition became dynamic during unrolling; \
                     restructure the dynamic code",
                ));
            };
            if !c.truthy() {
                break;
            }
            self.stmt(body, frame)?;
            let cur = *frame.rtc.get(&k).expect("induction var is static");
            let next = self
                .apply_step(&step_kind, cur, &ty, frame)?
                .ok_or_else(|| self.err("loop step became dynamic during unrolling"))?;
            frame.rtc.insert(k, next);
            iters += 1;
            self.stats.unrolled_iters += 1;
            if iters > UNROLL_LIMIT {
                return Err(self.err("dynamic loop unrolling exceeded the iteration limit"));
            }
        }
        Ok(Some(()))
    }

    /// Applies a static loop step to the induction variable's current
    /// value; `None` when the step is not statically evaluable.
    fn apply_step(
        &mut self,
        step: &StepKind,
        cur: Cv,
        ty: &Type,
        frame: &Frame<'p, S>,
    ) -> Result<Option<Cv>, VmError> {
        Ok(match step {
            StepKind::IncDec(inc) => {
                let d: i64 = if *inc { 1 } else { -1 };
                Some(match cur {
                    Cv::I(v) => {
                        if ty.kind() == ValKind::W {
                            Cv::I((v as i32).wrapping_add(d as i32) as i64)
                        } else {
                            Cv::I(v.wrapping_add(d))
                        }
                    }
                    Cv::F(v) => Cv::F(v + d as f64),
                })
            }
            StepKind::AssignOp(op, rhs) => {
                let Some(rv) = self.eval_static(rhs, frame, false)? else {
                    return Ok(None);
                };
                self.eval_bin(*op, cur, rv, ty, &rhs.ty)
            }
            StepKind::Reassign(rhs) => self.eval_static(rhs, frame, false)?,
        })
    }
}

enum DynPlace<S: CodeSink> {
    Val(S::Val, Type),
    Mem { addr: V<S>, off: i64, ty: Type },
}

/// Compile-time constant cast between scalar types.
fn cast_const(cv: Cv, _from: &Type, to: &Type) -> Cv {
    match to {
        Type::Double => Cv::F(cv.as_f()),
        Type::Char => Cv::I(cv.as_i() as i8 as i64),
        Type::UChar => Cv::I(cv.as_i() as u8 as i64),
        Type::Short => Cv::I(cv.as_i() as i16 as i64),
        Type::UShort => Cv::I(cv.as_i() as u16 as i64),
        Type::Int => Cv::I(cv.as_i() as i32 as i64),
        Type::UInt => Cv::I(cv.as_i() as u32 as i32 as i64), // canonical W
        _ => Cv::I(cv.as_i()),
    }
}

fn kind_type(k: ValKind) -> Type {
    match k {
        ValKind::W => Type::Int,
        ValKind::D => Type::Long,
        ValKind::P => Type::Ptr(Box::new(Type::Void)),
        ValKind::F => Type::Double,
    }
}

fn load_kind(ty: &Type) -> LoadKind {
    match ty {
        Type::Char => LoadKind::I8,
        Type::UChar => LoadKind::U8,
        Type::Short => LoadKind::I16,
        Type::UShort => LoadKind::U16,
        Type::Int | Type::UInt => LoadKind::I32,
        Type::Long | Type::ULong => LoadKind::I64,
        Type::Double => LoadKind::F64,
        _ => LoadKind::I64,
    }
}

fn store_kind(ty: &Type) -> StoreKind {
    match ty {
        Type::Char | Type::UChar => StoreKind::I8,
        Type::Short | Type::UShort => StoreKind::I16,
        Type::Int | Type::UInt => StoreKind::I32,
        Type::Double => StoreKind::F64,
        _ => StoreKind::I64,
    }
}

fn contains_cspec(e: &Expr) -> bool {
    match &e.kind {
        ExprKind::Var(VarRef::TickCspec(_)) => true,
        ExprKind::Un(_, a) | ExprKind::Cast(_, a) | ExprKind::Dollar(a) => contains_cspec(a),
        ExprKind::Bin(_, a, b)
        | ExprKind::Assign(_, a, b)
        | ExprKind::Index(a, b)
        | ExprKind::Comma(a, b) => contains_cspec(a) || contains_cspec(b),
        ExprKind::Cond(a, b, c) => contains_cspec(a) || contains_cspec(b) || contains_cspec(c),
        ExprKind::Member(a, ..) => contains_cspec(a),
        ExprKind::Call(f, args) => contains_cspec(f) || args.iter().any(contains_cspec),
        _ => false,
    }
}

fn assigns_local(s: &Stmt, k: usize) -> bool {
    fn expr_assigns(e: &Expr, k: usize) -> bool {
        let target = |t: &Expr| matches!(t.kind, ExprKind::Var(VarRef::TickLocal(i)) if i == k);
        match &e.kind {
            ExprKind::Assign(_, lhs, rhs) => {
                target(lhs) || expr_assigns(lhs, k) || expr_assigns(rhs, k)
            }
            ExprKind::PreIncDec(t, _) | ExprKind::PostIncDec(t, _) => {
                target(t) || expr_assigns(t, k)
            }
            ExprKind::Un(UnaryOp::Addr, t) => target(t) || expr_assigns(t, k),
            ExprKind::Un(_, a) | ExprKind::Cast(_, a) | ExprKind::Dollar(a) => expr_assigns(a, k),
            ExprKind::Bin(_, a, b) | ExprKind::Index(a, b) | ExprKind::Comma(a, b) => {
                expr_assigns(a, k) || expr_assigns(b, k)
            }
            ExprKind::Cond(a, b, c) => {
                expr_assigns(a, k) || expr_assigns(b, k) || expr_assigns(c, k)
            }
            ExprKind::Member(a, ..) => expr_assigns(a, k),
            ExprKind::Call(f, args) => {
                expr_assigns(f, k) || args.iter().any(|a| expr_assigns(a, k))
            }
            _ => false,
        }
    }
    match s {
        Stmt::Expr(e) => expr_assigns(e, k),
        Stmt::Decl(items) => items
            .iter()
            .any(|i| matches!(&i.init, Some(Init::Expr(e)) if expr_assigns(e, k))),
        Stmt::If(c, t, e) => {
            expr_assigns(c, k)
                || assigns_local(t, k)
                || e.as_ref().is_some_and(|e| assigns_local(e, k))
        }
        Stmt::While(c, b) | Stmt::DoWhile(b, c) => expr_assigns(c, k) || assigns_local(b, k),
        Stmt::For(i, c, st, b) => {
            i.as_ref().is_some_and(|i| assigns_local(i, k))
                || c.as_ref().is_some_and(|c| expr_assigns(c, k))
                || st.as_ref().is_some_and(|s| expr_assigns(s, k))
                || assigns_local(b, k)
        }
        Stmt::Return(Some(e)) => expr_assigns(e, k),
        Stmt::Block(ss) => ss.iter().any(|s| assigns_local(s, k)),
        Stmt::Switch(c, items) => {
            expr_assigns(c, k)
                || items
                    .iter()
                    .any(|i| matches!(i, SwitchItem::Stmt(s) if assigns_local(s, k)))
        }
        Stmt::Labeled(_, s) => assigns_local(s, k),
        _ => false,
    }
}

fn has_labels(s: &Stmt) -> bool {
    match s {
        Stmt::Labeled(..) | Stmt::Goto(_) => true,
        Stmt::If(_, t, e) => has_labels(t) || e.as_ref().is_some_and(|e| has_labels(e)),
        Stmt::While(_, b) | Stmt::DoWhile(b, _) => has_labels(b),
        Stmt::For(i, _, _, b) => i.as_ref().is_some_and(|i| has_labels(i)) || has_labels(b),
        Stmt::Block(ss) => ss.iter().any(has_labels),
        Stmt::Switch(_, items) => items
            .iter()
            .any(|i| matches!(i, SwitchItem::Stmt(s) if has_labels(s))),
        _ => false,
    }
}

/// True if the statement contains `break`/`continue` that would escape
/// the loop at nesting `depth`.
fn has_loop_escape(s: &Stmt, depth: u32) -> bool {
    match s {
        Stmt::Break | Stmt::Continue => depth == 0,
        Stmt::If(_, t, e) => {
            has_loop_escape(t, depth) || e.as_ref().is_some_and(|e| has_loop_escape(e, depth))
        }
        Stmt::While(_, b) | Stmt::DoWhile(b, _) => has_loop_escape(b, depth + 1),
        Stmt::For(i, _, _, b) => {
            i.as_ref().is_some_and(|i| has_loop_escape(i, depth)) || has_loop_escape(b, depth + 1)
        }
        Stmt::Block(ss) => ss.iter().any(|s| has_loop_escape(s, depth)),
        Stmt::Switch(_, items) => items
            .iter()
            .any(|i| matches!(i, SwitchItem::Stmt(s) if has_loop_escape(s, depth + 1))),
        Stmt::Labeled(_, s2) => has_loop_escape(s2, depth),
        _ => false,
    }
}
