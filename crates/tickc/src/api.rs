//! The public face of the system: compile a `C source string, pick your
//! back ends, run functions, measure.

use crate::runtime::{Backend, DynStats, TccRuntime};
use std::fmt;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;
use tcc_cache::{PersistentStore, SharedArtifacts};
use tcc_front::{FrontError, Program};
use tcc_mir::{build_image_scheduled, Image, OptLevel};
use tcc_obs::{
    AdaptiveMetrics, ExecMetrics, FrontendMetrics, SessionMetrics, StaticMetrics, VmMetrics,
};
use tcc_vm::{CostModel, ExecEngine, TransHub, Vm, VmError};

/// Any error from source to execution.
#[derive(Debug)]
pub enum Error {
    /// Lex/parse/sema error.
    Front(FrontError),
    /// Machine fault (also carries run-time diagnostics).
    Vm(VmError),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Front(e) => write!(f, "{e}"),
            Error::Vm(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<FrontError> for Error {
    fn from(e: FrontError) -> Self {
        Error::Front(e)
    }
}

impl From<VmError> for Error {
    fn from(e: VmError) -> Self {
        Error::Vm(e)
    }
}

/// Configuration for a [`Session`].
#[derive(Clone, Debug)]
pub struct Config {
    /// Static back end (lcc-like vs gcc-like).
    pub static_opt: OptLevel,
    /// Dynamic back end (VCODE vs ICODE×allocator).
    pub backend: Backend,
    /// Data memory size in bytes.
    pub mem_size: usize,
    /// Cycle cost model.
    pub cost: CostModel,
    /// Echo program output to stdout.
    pub echo: bool,
    /// Memoize `compile` calls on closure fingerprints (`tcc-cache`).
    pub cache: bool,
    /// Byte budget for live cached dynamic code; exceeding it evicts
    /// least-recently-used unpinned entries and reclaims their code
    /// space. `None` = unbounded. Only meaningful with `cache`.
    pub code_budget: Option<u64>,
    /// Seed for random placement of dynamic code (the paper's §4.4
    /// cache-conscious jitter). `None` = deterministic layout.
    pub placement_jitter: Option<u64>,
    /// Execute through a translated engine (per-function translation
    /// cache). Observationally identical to decode-per-step; off = the
    /// reference interpreter. The engine picked is adaptive
    /// per-function tiering ([`ExecEngine::Adaptive`] with the
    /// `adaptive_*` thresholds below) unless `engine` overrides it.
    pub predecode: bool,
    /// Explicit execution-engine override; `None` defers to
    /// `predecode`. Use this to pin a fixed engine (decode-per-step,
    /// predecoded fused/unfused, threaded) for comparisons.
    pub engine: Option<ExecEngine>,
    /// Adaptive tiering: completed runs after which a function is
    /// promoted to the predecoded+fused engine (tier 1). Calibrated by
    /// the `suite adaptive` reuse sweep.
    pub adaptive_fuse_after: u32,
    /// Adaptive tiering: completed runs after which a function is
    /// promoted to the direct-threaded engine (tier 2).
    pub adaptive_thread_after: u32,
    /// Adaptive tiering: build promoted functions' translations on a
    /// background worker thread instead of inline, swapping them in at
    /// a later function entry (and discarding them if an epoch bump
    /// landed first). Takes translation off the promoting run's
    /// critical path; off by default.
    pub adaptive_background: bool,
    /// Run the ICODE fusion-aware scheduler (sinks pure defs next to
    /// branches/consumers so superinstruction pairing finds more
    /// adjacencies). Ablation knob; on by default.
    pub icode_schedule: bool,
    /// Process-wide shared artifact cache (`tcc-serve` multi-tenant
    /// mode). Sessions constructed with clones of one
    /// [`SharedArtifacts`] compile each unique closure once between
    /// them: the first compiler publishes, concurrent requesters block
    /// on the in-flight slot, and later requesters install the
    /// published words into their own code space. Setting this
    /// disables the per-session `cache` memo (the installed-copy memo
    /// plays its role, and keeps the shared hit rate measurable).
    pub shared: Option<Arc<SharedArtifacts>>,
    /// Shared background translation worker: one `tcc-translate`
    /// thread serving every session's adaptive tier promotions instead
    /// of a worker thread per VM. Only meaningful with an adaptive
    /// engine and `adaptive_background`.
    pub translation_hub: Option<TransHub<TccRuntime>>,
    /// On-disk persistent artifact store: compiled closures are
    /// serialized fingerprint-keyed to this path, so a *new process*
    /// compiling the same source warm-starts at hit cost
    /// (`PersistMetrics` reports the disk hits). The store is opened
    /// under an ABI salt derived from the fingerprint scheme version,
    /// opcode table, cost model, and static image layout
    /// ([`persist_abi_salt`]) — a store written by an incompatible
    /// build or a different source program is rejected whole as
    /// `version_rejected`, never served. With `shared` set, the store
    /// attaches to the [`SharedArtifacts`] (first session in the pool
    /// wins; disk fills answer misses before compile-slot claims);
    /// otherwise it backs the private `cache`. `None` = in-memory
    /// caching only.
    pub persist_path: Option<PathBuf>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            static_opt: OptLevel::Optimizing,
            backend: Backend::default(),
            mem_size: 64 << 20,
            cost: CostModel::default(),
            echo: false,
            cache: true,
            code_budget: None,
            placement_jitter: None,
            predecode: true,
            engine: None,
            adaptive_fuse_after: tcc_vm::DEFAULT_FUSE_AFTER,
            adaptive_thread_after: tcc_vm::DEFAULT_THREAD_AFTER,
            adaptive_background: false,
            icode_schedule: true,
            shared: None,
            translation_hub: None,
            persist_path: None,
        }
    }
}

/// The ABI salt persistent stores are opened under: an
/// order-sensitive fold of the fingerprint scheme version, the opcode
/// table signature, the cost model digest, and the static image's
/// function/global layout. Fingerprints deliberately do not cover the
/// static program (it is fixed for a session), but generated code
/// bakes static call addresses in — so a store written for one source
/// program, or by a build with a different ISA, cost model, or
/// fingerprint encoding, must not be served to another. Exposed so
/// tests can open stores the way [`Session::new`] does.
pub fn persist_abi_salt(image: &Image, cost: &CostModel) -> u64 {
    // splitmix64-style mixer: cheap, and every input bit diffuses.
    fn mix(a: u64, b: u64) -> u64 {
        let mut x = a ^ b.wrapping_add(0x9e37_79b9_7f4a_7c15);
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^ (x >> 31)
    }
    let mut h = mix(
        crate::fingerprint::SCHEME_VERSION as u64,
        tcc_vm::isa::op_table_signature(),
    );
    h = mix(h, cost.digest());
    h = mix(h, image.func_addrs.len() as u64);
    for &a in &image.func_addrs {
        h = mix(h, a);
    }
    h = mix(h, image.global_addrs.len() as u64);
    for &a in &image.global_addrs {
        h = mix(h, a);
    }
    h
}

/// A compiled, loaded, runnable `C program.
///
/// ```rust
/// use tcc::Session;
///
/// let mut s = Session::with_defaults(r#"
///     int make(int n) {
///         int cspec c = `($n + 4);
///         int (*f)(void) = compile(c, int);
///         return (*f)();
///     }
/// "#).expect("compiles");
/// assert_eq!(s.call("make", &[38]).unwrap(), 42);
/// ```
pub struct Session {
    /// The virtual machine (host = the `C runtime).
    pub vm: Vm<TccRuntime>,
    /// The loaded image (symbols, addresses).
    pub image: Image,
    /// The analyzed program.
    pub prog: Arc<Program>,
    /// Front-end timing, captured at construction.
    frontend: FrontendMetrics,
    /// Static lowering/linking timing, captured at construction.
    static_compile: StaticMetrics,
}

impl Session {
    /// Compiles and loads `src` with explicit configuration.
    ///
    /// # Errors
    ///
    /// Front-end or layout errors.
    pub fn new(src: &str, config: Config) -> Result<Session, Error> {
        let t0 = Instant::now();
        let prog = Arc::new(tcc_front::compile_unit(src)?);
        let frontend = FrontendMetrics {
            parse_sema_ns: t0.elapsed().as_nanos() as u64,
            source_bytes: src.len() as u64,
        };
        let t1 = Instant::now();
        let image = build_image_scheduled(
            &prog,
            config.static_opt,
            config.mem_size,
            config.icode_schedule,
        )?;
        let static_compile = StaticMetrics {
            lower_ns: t1.elapsed().as_nanos() as u64,
            static_insns: image.code.next_index() as u64,
        };
        let mut rt = TccRuntime::new(
            prog.clone(),
            image.func_addrs.clone(),
            image.global_addrs.clone(),
            config.backend,
        );
        rt.echo = config.echo;
        rt.icode_schedule = config.icode_schedule;
        rt.cache = (config.cache && config.shared.is_none())
            .then(|| tcc_cache::CodeCache::with_budget(config.code_budget));
        if let Some(path) = &config.persist_path {
            let salt = persist_abi_salt(&image, &config.cost);
            match &config.shared {
                // Pool mode: the store serves every session through the
                // shared cache. First attach wins — later pool members
                // open read-only stores that are dropped here.
                Some(shared) if !shared.has_persist() => {
                    shared.attach_persist(PersistentStore::open(path, salt));
                }
                Some(_) => {}
                // Private mode: the store backs this session's cache.
                None if rt.cache.is_some() => {
                    rt.persist = Some(PersistentStore::open(path, salt));
                }
                None => {}
            }
        }
        rt.shared = config.shared;
        rt.shared_cost = config.cost.clone();
        let mut code = image.code.clone();
        if let Some(seed) = config.placement_jitter {
            code.set_placement_jitter(seed);
        }
        let mut vm = Vm::from_parts(code, image.mem.clone(), rt);
        vm.set_cost_model(config.cost);
        vm.set_engine(config.engine.unwrap_or(if config.predecode {
            ExecEngine::Adaptive {
                fuse_after: config.adaptive_fuse_after,
                thread_after: config.adaptive_thread_after,
                background: config.adaptive_background,
            }
        } else {
            ExecEngine::DecodePerStep
        }));
        if let Some(hub) = config.translation_hub {
            vm.set_translation_hub(hub);
        }
        Ok(Session {
            vm,
            image,
            prog,
            frontend,
            static_compile,
        })
    }

    /// Compiles and loads with default configuration (optimizing static
    /// back end, VCODE dynamic back end).
    ///
    /// # Errors
    ///
    /// Front-end or layout errors.
    pub fn with_defaults(src: &str) -> Result<Session, Error> {
        Session::new(src, Config::default())
    }

    /// Reconciles with the shared artifact cache (no-op outside shared
    /// mode): frees local installs of artifacts another session's
    /// churn evicted or invalidated, so their stale addresses fault
    /// `VmError::StaleCode` instead of running dropped code.
    fn sync_shared(&mut self) {
        let stale = self.vm.host_mut().collect_stale_installs();
        for handle in stale {
            // free_function bumps the code space's live epoch; a
            // failure (already freed) is impossible for handles the
            // install memo owned, but harmless to ignore.
            let _ = self.vm.state_mut().code.free_function(handle);
        }
    }

    /// Seeds translations carried by shared artifacts installed during
    /// the last call into the VM's per-function translation cache, so
    /// promoted functions skip the local decode pass.
    fn drain_preseeds(&mut self) {
        let pending = self.vm.host_mut().take_pending_preseeds();
        for (addr, tr) in pending {
            // A refusal (engine/cost mismatch, already translated)
            // just leaves the lazy path in charge.
            self.vm.preseed_translation(addr, &tr);
        }
    }

    /// Calls function `name` with integer arguments.
    ///
    /// # Errors
    ///
    /// Unknown function or machine fault.
    pub fn call(&mut self, name: &str, args: &[u64]) -> Result<u64, Error> {
        let addr = self
            .image
            .addr_of(name)
            .ok_or_else(|| Error::Vm(VmError::Host(format!("no function {name}"))))?;
        self.call_addr(addr, args)
    }

    /// Calls function `name`, returning the floating point result.
    ///
    /// # Errors
    ///
    /// Unknown function or machine fault.
    pub fn call_f(&mut self, name: &str, args: &[u64], fargs: &[f64]) -> Result<f64, Error> {
        let addr = self
            .image
            .addr_of(name)
            .ok_or_else(|| Error::Vm(VmError::Host(format!("no function {name}"))))?;
        self.sync_shared();
        let r = self.vm.call_f(addr, args, fargs);
        self.drain_preseeds();
        Ok(r?)
    }

    /// Calls a function by address (e.g. a pointer returned from `C
    /// code).
    ///
    /// # Errors
    ///
    /// Machine fault.
    pub fn call_addr(&mut self, addr: u64, args: &[u64]) -> Result<u64, Error> {
        self.sync_shared();
        let r = self.vm.call(addr, args);
        self.drain_preseeds();
        Ok(r?)
    }

    /// Cycles consumed since the last [`Session::reset_counters`].
    pub fn cycles(&self) -> u64 {
        self.vm.cycles()
    }

    /// Instructions executed since the last reset.
    pub fn insns(&self) -> u64 {
        self.vm.insns()
    }

    /// Zeroes the cycle/instruction counters.
    pub fn reset_counters(&mut self) {
        self.vm.reset_counters();
    }

    /// Dynamic compilation statistics.
    pub fn dyn_stats(&self) -> &DynStats {
        &self.vm.host().stats
    }

    /// Host-call traps taken since the last reset.
    pub fn hcalls(&self) -> u64 {
        self.vm.hcalls()
    }

    /// Fused superinstruction shapes compiled by the threaded
    /// translator this session (mnemonic groups like `"addiw+bne"` or
    /// `"addw+j"`), sorted by count descending then name. Empty until
    /// the threaded tier has translated something. Cumulative across
    /// translations, like the exec counters.
    pub fn fused_shape_histogram(&self) -> Vec<(String, u64)> {
        self.vm.fused_shape_histogram()
    }

    /// The unified per-phase metrics breakdown for this session:
    /// front-end parse/sema time, static lowering, accumulated dynamic
    /// compilation (walk time, per-phase codegen, instruction counts),
    /// and VM execution counters since the last reset.
    pub fn metrics(&self) -> SessionMetrics {
        SessionMetrics {
            frontend: self.frontend,
            static_compile: self.static_compile,
            dynamic: self.vm.host().stats.clone(),
            vm: VmMetrics {
                insns: self.vm.insns(),
                cycles: self.vm.cycles(),
                hcalls: self.vm.hcalls(),
            },
            exec: {
                let s = self.vm.exec_stats();
                ExecMetrics {
                    translations: s.translations,
                    translated_words: s.translated_words,
                    fused_pairs: s.fused_pairs,
                    fast_insns: s.fast_insns,
                    slow_insns: s.slow_insns,
                    invalidations: s.invalidations,
                    batched_blocks: s.batched_blocks,
                    fuel_reconciliations: s.fuel_reconciliations,
                    handlers: s.handlers,
                    superinstructions: s.superinstructions,
                    dispatches: s.dispatches,
                    fused_dispatches: s.fused_dispatches,
                }
            },
            adaptive: {
                let a = self.vm.adaptive_stats();
                AdaptiveMetrics {
                    total_runs: a.total_runs,
                    runs_tier0: a.runs_tier0,
                    runs_tier1: a.runs_tier1,
                    runs_tier2: a.runs_tier2,
                    promotions: a.promotions,
                    demotions: a.demotions,
                    translation_ns: a.translation_ns,
                    translation_ns_saved: a.translation_ns_saved,
                    async_translations: a.async_translations,
                    discarded_stale: a.discarded_stale,
                    swap_latency_ns: a.swap_latency_ns,
                }
            },
            cache: self
                .vm
                .host()
                .cache
                .as_ref()
                .map(|c| c.metrics(&self.vm.state().code))
                .unwrap_or_default(),
            persist: self
                .vm
                .host()
                .persist
                .as_ref()
                .map(|s| s.metrics())
                .or_else(|| {
                    self.vm
                        .host()
                        .shared
                        .as_ref()
                        .and_then(|s| s.persist_metrics())
                })
                .unwrap_or_default(),
        }
    }

    /// Flushes the persistent artifact store (atomic temp-file +
    /// rename), whether it backs this session's private cache or the
    /// pool's shared cache. A no-op `Ok` without a store; an error
    /// when this process is not the store's writer or the write
    /// fails. Unflushed writer state also flushes on session drop.
    ///
    /// # Errors
    ///
    /// Read-only store (another process holds the writer lock) or I/O
    /// failure writing the file.
    pub fn flush_persist(&mut self) -> std::io::Result<()> {
        if let Some(store) = self.vm.host_mut().persist.as_mut() {
            return store.flush();
        }
        if let Some(shared) = &self.vm.host().shared {
            return shared.flush_persist();
        }
        Ok(())
    }

    /// Pins the cached dynamic function at `addr` so the code budget can
    /// never evict (and so invalidate) it. Returns false when `addr` is
    /// not a cached function. Addresses handed out by `compile` are
    /// otherwise evictable once the budget tightens; calling a
    /// subsequently evicted address faults with `VmError::StaleCode`.
    pub fn pin_code(&mut self, addr: u64) -> bool {
        self.vm
            .host_mut()
            .cache
            .as_mut()
            .is_some_and(|c| c.pin(addr))
    }

    /// Releases one pin taken by [`Session::pin_code`]. Returns false
    /// when `addr` is not a cached function or was not pinned.
    pub fn unpin_code(&mut self, addr: u64) -> bool {
        self.vm
            .host_mut()
            .cache
            .as_mut()
            .is_some_and(|c| c.unpin(addr))
    }

    /// Program output captured so far.
    pub fn output(&self) -> String {
        self.vm.host().output()
    }

    /// Clears captured program output.
    pub fn clear_output(&mut self) {
        self.vm.host_mut().out.clear();
    }

    /// VM address of global `name`.
    pub fn global_addr(&self, name: &str) -> Option<u64> {
        self.image.global_addr_of(&self.prog, name)
    }

    /// Disassembles the function at `addr` — static or dynamically
    /// generated (handy for inspecting what `compile` produced).
    pub fn disassemble_addr(&self, addr: u64) -> Option<String> {
        self.vm.state().code.disassemble_at(addr)
    }

    /// Disassembles the static function `name`.
    pub fn disassemble(&self, name: &str) -> Option<String> {
        self.disassemble_addr(self.image.addr_of(name)?)
    }
}
