//! The `C run-time system: the host-call handler behind generated code.
//!
//! Everything the paper's run-time library does surfaces here: closure
//! arena allocation (§4.2), vspec creation (`local`/`param` special
//! forms), and — centrally — `compile` (§4.4), which runs the CGF
//! machinery against the selected dynamic back end, links the resulting
//! code into the code space, resets per-compilation vspec state, and
//! returns the function pointer. Output and `malloc` host calls round
//! out the tiny libc.

use crate::dyncomp::{probe_compose_depth, DynCompiler, DynInput, WalkStats};
use crate::fingerprint::{fingerprint_closure, tick_reads_memory};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;
use tcc_cache::{
    Acquire, Artifact, CodeCache, Fingerprint, FingerprintBuilder, PersistentStore,
    SharedArtifacts, StoredArtifact,
};
use tcc_front::Program;
use tcc_icode::prune::{key_of, OpKey};
use tcc_icode::{IcodeBuf, IcodeCompiler, Strategy, TranslatorTable};
use tcc_rt::{
    hcalls, ValKind, VmArena, VspecObj, VspecTag, ARGLIST_MARKER, ARGLIST_MAX, LABEL_MARKER,
};
use tcc_vcode::{CodeSink, Vcode};
use tcc_vm::interp::MachineState;
use tcc_vm::{CodeSpace, CostModel, HostCall, Memory, SharedTranslation, VmError};

/// Dynamic back-end selection — the paper's central knob: "tcc allows
/// the user to select the dynamic back end".
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Backend {
    /// One-pass VCODE emission (fast codegen, locally good code).
    Vcode {
        /// Disable per-operand spill checks (§5.1's faster, riskier mode).
        unchecked: bool,
    },
    /// ICODE: IR + flow graph + liveness + register allocation.
    Icode {
        /// Linear scan (Figure 3) or the Chaitin-style baseline.
        strategy: Strategy,
    },
}

impl Default for Backend {
    fn default() -> Self {
        Backend::Vcode { unchecked: false }
    }
}

/// Accumulated dynamic-compilation statistics (the raw material for the
/// paper's Table 1 and Figures 5-7).
///
/// The definition lives in the observability crate (`tcc_obs`) so the
/// suite can consume it without a runtime dependency; this alias keeps
/// the historical name.
pub use tcc_obs::DynMetrics as DynStats;

/// Compositions at or below this depth compile on the caller's stack.
/// Deeper (but still legal — see `COMPOSE_DEPTH_LIMIT` in `dyncomp`)
/// nests move to a dedicated thread whose stack is sized to the probed
/// depth: the recursive CGF walk burns several KiB per level in debug
/// builds, which overflows a 2 MiB test-thread stack near depth 200.
const INLINE_COMPOSE_DEPTH: u32 = 64;
/// Base stack size for deep-compile threads.
const DEEP_STACK_BASE: usize = 4 << 20;
/// Additional stack per probed composition level (generous for debug
/// builds, where walker frames are fattest).
const DEEP_STACK_PER_LEVEL: usize = 32 << 10;

/// What one dynamic compilation produced, before it is folded into the
/// runtime's accumulated [`DynStats`]. Returned by [`run_backend`] so
/// the backend walk can run on another thread and report back whole.
struct CompileOutcome {
    /// Entry address of the generated function.
    addr: u64,
    /// Code-space handle of the generated function (cache lifecycle).
    handle: tcc_vm::FuncHandle,
    /// Machine instructions generated.
    insns: u64,
    /// Walk statistics (closures, unrolled iterations).
    walk: WalkStats,
    /// Nanoseconds in the CGF walk (for ICODE: walk + IR build).
    walk_ns: u64,
    /// ICODE per-phase breakdown (zero for VCODE).
    phases: tcc_obs::CodegenPhases,
    /// ICODE IR instructions recorded (zero for VCODE).
    ir_insns: u64,
    /// Spilled live intervals (zero for VCODE).
    spills: u64,
    /// Translator keys observed (ICODE pruning input).
    keys: Vec<OpKey>,
}

/// Runs the selected dynamic back end on one closure. Free-standing so
/// the caller can choose where it runs: inline for shallow compositions,
/// on a depth-sized stack for deep ones.
#[allow(clippy::too_many_arguments)]
fn run_backend(
    backend: &Backend,
    table: Option<&TranslatorTable>,
    cspec_first: bool,
    enable_unroll: bool,
    icode_schedule: bool,
    input: DynInput<'_>,
    mem: &mut Memory,
    code: &mut CodeSpace,
    name: &str,
    closure: u64,
    ret_kind: Option<ValKind>,
) -> Result<CompileOutcome, VmError> {
    let t0 = Instant::now();
    match backend {
        Backend::Vcode { unchecked } => {
            let mut vc = Vcode::new(code, name);
            vc.set_unchecked(*unchecked);
            let mut dc = DynCompiler::new(input, mem, &mut vc, ret_kind);
            dc.cspec_first = cspec_first;
            dc.enable_unroll = enable_unroll;
            dc.compile_entry(closure)?;
            let walk = dc.stats;
            let f = vc.finish();
            Ok(CompileOutcome {
                addr: f.addr,
                handle: f.handle,
                insns: f.insns,
                walk,
                walk_ns: t0.elapsed().as_nanos() as u64,
                phases: tcc_obs::CodegenPhases::default(),
                ir_insns: 0,
                spills: 0,
                keys: Vec::new(),
            })
        }
        Backend::Icode { strategy } => {
            let mut buf = IcodeBuf::new();
            let mut dc = DynCompiler::new(input, mem, &mut buf, ret_kind);
            dc.cspec_first = cspec_first;
            dc.enable_unroll = enable_unroll;
            dc.compile_entry(closure)?;
            let walk = dc.stats;
            let walk_ns = t0.elapsed().as_nanos() as u64;
            let ir_insns = buf.emitted();
            let keys: Vec<OpKey> = buf.insns.iter().map(key_of).collect();
            let mut compiler = IcodeCompiler::new(*strategy);
            compiler.schedule_fusion = icode_schedule;
            if let Some(table) = table {
                compiler.table = table.clone();
            }
            let r = compiler.compile(code, name, buf);
            Ok(CompileOutcome {
                addr: r.func.addr,
                handle: r.func.handle,
                insns: r.func.insns,
                walk,
                walk_ns,
                phases: r.phases,
                ir_insns,
                spills: r.spills as u64,
                keys,
            })
        }
    }
}

/// This session's locally installed copy of a shared artifact: the
/// address handed back to program code and the handle to free when the
/// shared cache drops the artifact.
struct InstalledShared {
    addr: u64,
    handle: tcc_vm::FuncHandle,
}

/// The runtime: implements [`HostCall`] for a loaded `C program.
pub struct TccRuntime {
    /// The analyzed program (tick table for CGFs).
    pub prog: Arc<Program>,
    /// Static function addresses (by function index).
    pub func_addrs: Vec<u64>,
    /// Global addresses (by global index).
    pub global_addrs: Vec<u64>,
    /// Selected dynamic back end.
    pub backend: Backend,
    /// Use the closure arena (`false` = ablation baseline using the
    /// general allocator).
    pub use_arena: bool,
    /// Optional pruned translator table for the ICODE back end.
    pub table: Option<TranslatorTable>,
    /// Statistics.
    pub stats: DynStats,
    /// Captured program output.
    pub out: Vec<u8>,
    /// Also echo output to stdout.
    pub echo: bool,
    /// Evaluate cspec operands first (§5.1 heuristic; ablation knob).
    pub cspec_first: bool,
    /// Dynamic loop unrolling (§4.4; ablation knob).
    pub enable_unroll: bool,
    /// Run the ICODE fusion-aware scheduler (ablation knob for
    /// measuring the superinstruction fused-pair gain).
    pub icode_schedule: bool,
    /// Translator keys observed across ICODE compiles — feed to
    /// [`TranslatorTable::from_keys`] to build the pruned back end
    /// (the §5.2 "link-time" analysis, observed at run time here).
    pub observed_keys: std::collections::BTreeSet<OpKey>,
    /// Compile memoization + code lifecycle (`None` = caching disabled).
    pub cache: Option<CodeCache>,
    /// On-disk persistent artifact store for the *private* cache path
    /// (`Config::persist_path` without `shared`): disk hits answer
    /// cache misses before a fresh compile, fresh compiles are
    /// recorded for the next process. In shared mode the store
    /// attaches to the `SharedArtifacts` instead and this stays
    /// `None`.
    pub persist: Option<PersistentStore>,
    /// Process-wide shared artifact cache (`tcc-serve` multi-tenant
    /// mode): compile each unique fingerprint once across sessions.
    /// `None` = this session compiles only for itself.
    pub shared: Option<Arc<SharedArtifacts>>,
    /// Fingerprint → this session's installed copy of a shared
    /// artifact (the per-session memo in shared mode).
    installed: HashMap<Fingerprint, InstalledShared>,
    /// Shared-cache generation this session last synced against; a
    /// change means installs may be stale (see
    /// [`TccRuntime::collect_stale_installs`]).
    shared_gen_seen: u64,
    /// Translations carried by installed artifacts, to be pre-seeded
    /// into the VM's per-function translation cache once the current
    /// call unwinds (the host cannot reach the engine from inside a
    /// host call; `Session` drains this after each `call`).
    pub(crate) pending_preseeds: Vec<(u64, SharedTranslation)>,
    /// Cost model shared translations are built against — must match
    /// the executing VM's for `preseed_translation` to accept them.
    pub shared_cost: CostModel,
    /// Per-tick cacheability memo (tick id → body is memory-free).
    tick_cacheable: HashMap<usize, bool>,
    arena: Option<VmArena>,
    vspec_seq: u64,
    dyn_seq: u64,
}

impl TccRuntime {
    /// Creates a runtime for a compiled program.
    pub fn new(
        prog: Arc<Program>,
        func_addrs: Vec<u64>,
        global_addrs: Vec<u64>,
        backend: Backend,
    ) -> TccRuntime {
        TccRuntime {
            prog,
            func_addrs,
            global_addrs,
            backend,
            use_arena: true,
            table: None,
            stats: DynStats::default(),
            out: Vec::new(),
            echo: false,
            cspec_first: true,
            enable_unroll: true,
            icode_schedule: true,
            observed_keys: std::collections::BTreeSet::new(),
            cache: Some(CodeCache::new()),
            persist: None,
            shared: None,
            installed: HashMap::new(),
            shared_gen_seen: 0,
            pending_preseeds: Vec::new(),
            shared_cost: CostModel::default(),
            tick_cacheable: HashMap::new(),
            arena: None,
            vspec_seq: 0,
            dyn_seq: 0,
        }
    }

    /// The captured output as UTF-8 (lossy).
    pub fn output(&self) -> String {
        String::from_utf8_lossy(&self.out).into_owned()
    }

    /// Reconciles this session's installed copies of shared artifacts
    /// with the shared cache after an eviction/invalidation elsewhere:
    /// when the generation stamp moved, drops every install whose
    /// artifact is no longer resident and returns its handle. The
    /// caller must `free_function` each handle in its `CodeSpace` —
    /// that bumps the live epoch, so executing a dropped address faults
    /// `VmError::StaleCode` exactly as in the single-session lifecycle.
    pub fn collect_stale_installs(&mut self) -> Vec<tcc_vm::FuncHandle> {
        let Some(shared) = &self.shared else {
            return Vec::new();
        };
        let generation = shared.generation();
        if generation == self.shared_gen_seen {
            return Vec::new();
        }
        self.shared_gen_seen = generation;
        let mut dropped = Vec::new();
        self.installed.retain(|fp, inst| {
            if shared.contains(fp) {
                true
            } else {
                dropped.push(inst.handle);
                false
            }
        });
        dropped
    }

    /// Takes the translations queued by installed artifacts, to be fed
    /// to `Vm::preseed_translation` between calls.
    pub(crate) fn take_pending_preseeds(&mut self) -> Vec<(u64, SharedTranslation)> {
        std::mem::take(&mut self.pending_preseeds)
    }

    fn compile(&mut self, st: &mut MachineState) -> Result<(), VmError> {
        let closure = st.arg(0);
        let ret_kind = match st.arg(1) as u8 {
            255 => None,
            c => Some(
                ValKind::from_code(c)
                    .ok_or_else(|| VmError::Host(format!("bad return kind code {c}")))?,
            ),
        };
        let t0 = Instant::now();
        let input = DynInput {
            prog: &self.prog,
            func_addrs: &self.func_addrs,
            global_addrs: &self.global_addrs,
        };
        self.dyn_seq += 1;
        let name = format!("dyn{}", self.dyn_seq);
        let MachineState { code, mem, .. } = st;
        // Probe the composition depth first (iteratively, so a runaway
        // nest cannot overflow the host stack before the limit check in
        // the recursive walk fires), then pick where the walk runs.
        let depth = probe_compose_depth(mem, &self.prog, closure)?;
        // Consult the memoization cache: if this exact closure — CGF
        // identities, `$`-constant values, composed structure, same
        // backend options — was compiled before, reuse the generated
        // function instead of walking the CGF again. A pruned translator
        // table changes codegen behind the fingerprint's back, so its
        // (ablation-only) presence bypasses the cache.
        let want_fp = (self.cache.is_some() || self.shared.is_some()) && self.table.is_none();
        let fp = if want_fp {
            let t_fp = Instant::now();
            let mut b = FingerprintBuilder::new();
            match &self.backend {
                Backend::Vcode { unchecked } => {
                    b.push_tag(0);
                    b.push_tag(*unchecked as u8);
                }
                Backend::Icode { strategy } => {
                    b.push_tag(1);
                    b.push_tag(matches!(strategy, Strategy::GraphColor) as u8);
                }
            }
            b.push_tag(self.cspec_first as u8);
            b.push_tag(self.enable_unroll as u8);
            b.push_tag(ret_kind.map_or(255, ValKind::code));
            let prog = &self.prog;
            let memo = &mut self.tick_cacheable;
            let mut cacheable = |id: usize| {
                *memo
                    .entry(id)
                    .or_insert_with(|| !tick_reads_memory(prog, id))
            };
            if fingerprint_closure(mem, prog, closure, &mut cacheable, &mut b)? {
                let fp = b.build();
                if let Some(cache) = &mut self.cache {
                    if let Some(addr) = cache.lookup(&fp) {
                        cache.note_hit_ns(t_fp.elapsed().as_nanos() as u64);
                        st.set_ret(addr);
                        return Ok(());
                    }
                }
                Some(fp)
            } else {
                if let Some(cache) = &mut self.cache {
                    cache.note_uncacheable();
                }
                None
            }
        } else {
            if let Some(cache) = &mut self.cache {
                cache.note_uncacheable();
            }
            None
        };
        // Private persistent store: a cache miss consults disk before
        // compiling — warm-started processes re-install the previous
        // process's sealed words instead of walking the CGF. The hit
        // credits `compile_ns − load_ns` (insert_loaded), so savings
        // are never overstated; a failed install (rebased jump out of
        // range) falls through to a fresh compile.
        if let (Some(fp_ref), Some(store)) = (&fp, self.persist.as_mut()) {
            if let Some((stored, load_ns)) = store.load(fp_ref) {
                if let Ok((addr, handle)) =
                    code.install_function(&stored.name, &stored.words, stored.orig_start)
                {
                    if let Some(cache) = self.cache.as_mut() {
                        cache.insert_loaded(
                            code,
                            fp_ref.clone(),
                            addr,
                            handle,
                            stored.bytes(),
                            stored.compile_ns,
                            load_ns,
                        )?;
                        // The whole intercept (fingerprint + disk load
                        // + install) is this hit's answer cost — the
                        // warm-start side of the persist benchmark.
                        cache.note_hit_ns(t0.elapsed().as_nanos() as u64);
                    }
                    st.set_ret(addr);
                    return Ok(());
                }
            }
        }
        // Shared multi-tenant path: serve from this session's installed
        // copy, then from the shared cache (installing its words into
        // our own code space), and only then compile — holding the
        // in-flight claim so concurrent sessions block on this compile
        // instead of duplicating it.
        let mut claim = None;
        if let (Some(fp_ref), Some(shared)) = (&fp, self.shared.clone()) {
            if let Some(inst) = self.installed.get(fp_ref) {
                shared.touch(fp_ref);
                st.set_ret(inst.addr);
                return Ok(());
            }
            match shared.get_or_begin(fp_ref) {
                Acquire::Hit { artifact, .. } => {
                    // A failed install (e.g. a rebased jump out of
                    // range) falls through to a private compile,
                    // without a claim.
                    if let Ok((addr, handle)) =
                        code.install_function(&artifact.name, &artifact.words, artifact.orig_start)
                    {
                        if let Some(tr) = &artifact.translation {
                            self.pending_preseeds.push((addr, tr.clone()));
                        }
                        self.installed
                            .insert(fp_ref.clone(), InstalledShared { addr, handle });
                        st.set_ret(addr);
                        return Ok(());
                    }
                }
                Acquire::Miss(c) => claim = Some(c),
            }
        }
        let backend = &self.backend;
        let table = self.table.as_ref();
        let (cspec_first, enable_unroll) = (self.cspec_first, self.enable_unroll);
        let icode_schedule = self.icode_schedule;
        let outcome = if depth <= INLINE_COMPOSE_DEPTH {
            run_backend(
                backend,
                table,
                cspec_first,
                enable_unroll,
                icode_schedule,
                input,
                mem,
                code,
                &name,
                closure,
                ret_kind,
            )?
        } else {
            let stack_size = DEEP_STACK_BASE + depth as usize * DEEP_STACK_PER_LEVEL;
            std::thread::scope(|scope| {
                std::thread::Builder::new()
                    .name("tcc-deep-compile".into())
                    .stack_size(stack_size)
                    .spawn_scoped(scope, || {
                        run_backend(
                            backend,
                            table,
                            cspec_first,
                            enable_unroll,
                            icode_schedule,
                            input,
                            mem,
                            code,
                            &name,
                            closure,
                            ret_kind,
                        )
                    })
                    .map_err(|e| VmError::Host(format!("cannot spawn compile thread: {e}")))?
                    .join()
                    .unwrap_or_else(|panic| std::panic::resume_unwind(panic))
            })?
        };
        self.stats.closures += outcome.walk.closures;
        self.stats.unrolled_iters += outcome.walk.unrolled_iters;
        self.stats.walk_ns += outcome.walk_ns;
        self.stats.phases.accumulate(&outcome.phases);
        self.stats.ir_insns += outcome.ir_insns;
        self.stats.spills += outcome.spills;
        self.observed_keys.extend(outcome.keys);
        self.stats.compiles += 1;
        self.stats.total_ns += t0.elapsed().as_nanos() as u64;
        self.stats.generated_insns += outcome.insns;
        if let Some(fp) = fp {
            let compile_ns = t0.elapsed().as_nanos() as u64;
            if let Some(claim) = claim {
                // Publish for other sessions; every waiter wakes with
                // the Arc'd artifact instead of recompiling.
                let (orig_start, words) = code.function_words(outcome.handle)?;
                let bytes = (words.len() * 4) as u64;
                let translation = SharedTranslation::build(&words, &self.shared_cost);
                claim.publish(Artifact {
                    name: name.clone(),
                    orig_start,
                    words,
                    bytes,
                    compile_ns,
                    translation,
                });
                self.installed.insert(
                    fp.clone(),
                    InstalledShared {
                        addr: outcome.addr,
                        handle: outcome.handle,
                    },
                );
            }
            if let Some(store) = self.persist.as_mut() {
                // Record for the next process before `fp` moves into
                // the in-memory insert below.
                let (orig_start, words) = code.function_words(outcome.handle)?;
                store.record(
                    fp.clone(),
                    StoredArtifact {
                        name: name.clone(),
                        orig_start,
                        words,
                        compile_ns,
                    },
                );
            }
            if let Some(cache) = self.cache.as_mut() {
                let bytes = code.size_of(outcome.handle)?;
                cache.insert(code, fp, outcome.addr, outcome.handle, bytes, compile_ns)?;
            }
        }
        st.set_ret(outcome.addr);
        Ok(())
    }

    fn emit_out(&mut self, bytes: &[u8]) {
        self.out.extend_from_slice(bytes);
        if self.echo {
            use std::io::Write;
            let _ = std::io::stdout().write_all(bytes);
        }
    }

    fn printf(&mut self, st: &mut MachineState) -> Result<(), VmError> {
        let fmt = st.mem.read_cstr(st.arg(0))?;
        let mut int_arg = 1usize;
        let mut f_arg = 0usize;
        let mut out = String::new();
        let mut chars = fmt.chars().peekable();
        while let Some(c) = chars.next() {
            if c != '%' {
                out.push(c);
                continue;
            }
            // parse (and ignore) simple width specs like %4d
            let mut spec = String::new();
            while let Some(&d) = chars.peek() {
                if d.is_ascii_digit() {
                    spec.push(d);
                    chars.next();
                } else {
                    break;
                }
            }
            match chars.next() {
                Some('d') => {
                    out.push_str(&format!("{}", st.arg(int_arg) as i64 as i32));
                    int_arg += 1;
                }
                Some('l') => {
                    if chars.peek() == Some(&'d') {
                        chars.next();
                    }
                    out.push_str(&format!("{}", st.arg(int_arg) as i64));
                    int_arg += 1;
                }
                Some('u') => {
                    out.push_str(&format!("{}", st.arg(int_arg) as u32));
                    int_arg += 1;
                }
                Some('x') => {
                    out.push_str(&format!("{:x}", st.arg(int_arg) as u32));
                    int_arg += 1;
                }
                Some('c') => {
                    out.push(st.arg(int_arg) as u8 as char);
                    int_arg += 1;
                }
                Some('s') => {
                    let s = st.mem.read_cstr(st.arg(int_arg))?;
                    out.push_str(&s);
                    int_arg += 1;
                }
                Some('f') | Some('g') => {
                    out.push_str(&format!("{}", st.farg(f_arg)));
                    f_arg += 1;
                }
                Some('%') => out.push('%'),
                other => return Err(VmError::Host(format!("bad printf conversion {other:?}"))),
            }
        }
        self.emit_out(out.as_bytes());
        Ok(())
    }
}

impl HostCall for TccRuntime {
    fn call(&mut self, num: u32, st: &mut MachineState) -> Result<(), VmError> {
        match num {
            hcalls::HC_EXIT => Err(VmError::Host(format!("exit({})", st.arg(0) as i64))),
            hcalls::HC_PUTINT => {
                let s = format!("{}\n", st.arg(0) as i64 as i32);
                self.emit_out(s.as_bytes());
                Ok(())
            }
            hcalls::HC_PUTS => {
                let s = st.mem.read_cstr(st.arg(0))?;
                self.emit_out(s.as_bytes());
                self.emit_out(b"\n");
                Ok(())
            }
            hcalls::HC_PUTF => {
                let s = format!("{}\n", st.farg(0));
                self.emit_out(s.as_bytes());
                Ok(())
            }
            hcalls::HC_PUTCHAR => {
                self.emit_out(&[st.arg(0) as u8]);
                Ok(())
            }
            hcalls::HC_PRINTF => self.printf(st),
            hcalls::HC_MALLOC => {
                let size = st.arg(0).max(1);
                let a = st.mem.alloc(size, 8)?;
                st.set_ret(a);
                Ok(())
            }
            hcalls::HC_ALLOC_CLOSURE => {
                let size = st.arg(0);
                let a = if self.use_arena {
                    if self.arena.is_none() {
                        self.arena = Some(VmArena::new(&mut st.mem, 1 << 16)?);
                    }
                    self.arena
                        .as_mut()
                        .expect("just initialized")
                        .alloc(&mut st.mem, size)?
                } else {
                    st.mem.alloc(size, 8)?
                };
                st.set_ret(a);
                Ok(())
            }
            hcalls::HC_COMPILE => self.compile(st),
            hcalls::HC_LOCAL => {
                let kind = ValKind::from_code(st.arg(0) as u8)
                    .ok_or_else(|| VmError::Host("bad vspec kind".into()))?;
                let addr = st.mem.alloc(VspecObj::SIZE, 8)?;
                self.vspec_seq += 1;
                VspecObj {
                    tag: VspecTag::Local,
                    kind,
                    index: self.vspec_seq,
                }
                .write(&mut st.mem, addr)?;
                st.set_ret(addr);
                Ok(())
            }
            hcalls::HC_PARAM => {
                let kind = ValKind::from_code(st.arg(0) as u8)
                    .ok_or_else(|| VmError::Host("bad vspec kind".into()))?;
                let index = st.arg(1);
                let addr = st.mem.alloc(VspecObj::SIZE, 8)?;
                VspecObj {
                    tag: VspecTag::Param,
                    kind,
                    index,
                }
                .write(&mut st.mem, addr)?;
                st.set_ret(addr);
                Ok(())
            }
            hcalls::HC_LABEL_OBJ => {
                let addr = st.mem.alloc(16, 8)?;
                st.mem.store_u64(addr, LABEL_MARKER)?;
                self.vspec_seq += 1;
                st.mem.store_u64(addr + 8, self.vspec_seq)?;
                st.set_ret(addr);
                Ok(())
            }
            hcalls::HC_ARGLIST_NEW => {
                let addr = st.mem.alloc(16 + 8 * ARGLIST_MAX, 8)?;
                st.mem.store_u64(addr, ARGLIST_MARKER)?;
                st.mem.store_u64(addr + 8, 0)?;
                st.set_ret(addr);
                Ok(())
            }
            hcalls::HC_ARGLIST_PUSH => {
                let list = st.arg(0);
                let cspec = st.arg(1);
                if st.mem.load_u64(list)? != ARGLIST_MARKER {
                    return Err(VmError::Host("push() on a non-argument-list".into()));
                }
                let n = st.mem.load_u64(list + 8)?;
                if n >= ARGLIST_MAX {
                    return Err(VmError::Host(format!(
                        "argument list full ({ARGLIST_MAX} max)"
                    )));
                }
                st.mem.store_u64(list + 16 + 8 * n, cspec)?;
                st.mem.store_u64(list + 8, n + 1)?;
                Ok(())
            }
            hcalls::HC_ABORT => Err(VmError::Host("abort() called".into())),
            n => Err(VmError::BadHostCall(n)),
        }
    }
}
