//! Closure fingerprinting for compile memoization (`tcc-cache`).
//!
//! A dynamic compilation is a pure function of (a) the selected back end
//! and its options, (b) the closure tree — CGF identities, `$`-bound
//! run-time constant values, free-variable addresses, vspec objects, and
//! composed cspec structure — and (c) the static program, which is fixed
//! for a session. [`fingerprint_closure`] encodes (b) into an injective
//! [`Fingerprint`](tcc_cache::Fingerprint) so the runtime can answer a
//! repeated `compile` with the previously generated function address.
//!
//! Two subtleties:
//!
//! * **Memory-reading `$`-expressions are uncacheable.** Sema captures
//!   scalar `$x` by value (rewriting the operand to a `TickRtc`
//!   reference but leaving the `$` wrapper in the body), so most
//!   surviving `$` nodes are pure. An operand like `$arr[i]`, however,
//!   is evaluated against VM memory *at dynamic compile time*
//!   (`eval_static` with `in_dollar`), so the generated code depends on
//!   state the closure does not carry. [`tick_reads_memory`] detects
//!   these bodies; the runtime counts such compiles `uncacheable` and
//!   bypasses the cache.
//! * **Vspec and label identity is α-normalized.** `local()` vspecs and
//!   `label()` objects carry globally unique sequence numbers, but
//!   codegen only distinguishes *which* object is *where* in the tree.
//!   Numbering objects by first occurrence in the capture walk makes two
//!   structurally identical trees (built from different `local()` calls)
//!   fingerprint equal — sound because the compile walk allocates
//!   temporaries in exactly this traversal order.

use std::collections::HashMap;

use tcc_cache::FingerprintBuilder;
use tcc_front::ast::{CaptureKind, Expr, ExprKind, Stmt, SwitchItem, TickBody, VarRef};
use tcc_front::types::Type;
use tcc_front::Program;
use tcc_rt::{ClosureRef, VspecObj, VspecTag, ARGLIST_MARKER, LABEL_MARKER};
use tcc_vm::{Memory, VmError};

/// Version of the fingerprint encoding scheme — folded into the
/// persistent store's ABI salt so a store written under a different
/// encoding (different tags, capture walk, or α-normalization) is
/// rejected whole as `version_rejected` instead of mis-keying loads.
/// Bump on any change to the encoding below or to
/// [`fingerprint_closure`]'s traversal.
pub const SCHEME_VERSION: u32 = 1;

/// Structural tags for the fingerprint encoding (arbitrary but fixed).
mod tag {
    pub const CLOSURE: u8 = 1;
    pub const ARGLIST: u8 = 2;
    pub const DOLLAR: u8 = 3;
    pub const FREEVAR: u8 = 4;
    pub const LABEL: u8 = 5;
    pub const VSPEC_PARAM: u8 = 6;
    pub const VSPEC_LOCAL: u8 = 7;
}

/// True if this expression — already inside a `$` operand — loads from
/// VM memory when evaluated at dynamic compile time. Mirrors
/// `eval_static` (`in_dollar` mode): array indexing and scalar globals
/// load; value captures (`TickRtc`), derived constants (`TickLocal`),
/// array/struct globals (address only), and arithmetic are pure.
fn dollar_reads_memory(e: &Expr) -> bool {
    match &e.kind {
        ExprKind::Index(..) => true,
        ExprKind::Var(VarRef::Global(_)) => !matches!(e.ty, Type::Array(..) | Type::Struct(_)),
        ExprKind::Var(_) | ExprKind::IntLit(_) | ExprKind::FloatLit(_) => false,
        ExprKind::Un(_, a) | ExprKind::Cast(_, a) | ExprKind::Dollar(a) => dollar_reads_memory(a),
        ExprKind::Bin(_, a, b) | ExprKind::Comma(a, b) => {
            dollar_reads_memory(a) || dollar_reads_memory(b)
        }
        ExprKind::Cond(a, b, c) => {
            dollar_reads_memory(a) || dollar_reads_memory(b) || dollar_reads_memory(c)
        }
        // Anything else under `$` is "not a run-time constant" and the
        // compile itself errors; treat it as impure so such bodies are
        // never memoized in the first place.
        _ => true,
    }
}

/// True if `e` contains a `$`-expression whose evaluation reads VM
/// memory at dynamic compile time (sema rewrites value captures to
/// `TickRtc` but leaves the `$` wrapper in the body, so most `$` nodes
/// are pure — only memory-loading operands poison cacheability).
fn expr_has_dollar(e: &Expr) -> bool {
    match &e.kind {
        ExprKind::Dollar(inner) => dollar_reads_memory(inner),
        ExprKind::IntLit(_)
        | ExprKind::FloatLit(_)
        | ExprKind::StrLit(_)
        | ExprKind::Ident(_)
        | ExprKind::Var(_)
        | ExprKind::SizeofT(_)
        | ExprKind::LocalForm(_)
        | ExprKind::LabelForm
        | ExprKind::ArglistNew
        | ExprKind::Tick(_) => false,
        ExprKind::Un(_, a)
        | ExprKind::Cast(_, a)
        | ExprKind::SizeofE(a)
        | ExprKind::PreIncDec(a, _)
        | ExprKind::PostIncDec(a, _)
        | ExprKind::Member(a, ..)
        | ExprKind::ParamForm(_, a)
        | ExprKind::JumpForm(a)
        | ExprKind::CompileExpr(a, _) => expr_has_dollar(a),
        ExprKind::Bin(_, a, b)
        | ExprKind::Assign(_, a, b)
        | ExprKind::Index(a, b)
        | ExprKind::Comma(a, b)
        | ExprKind::ArglistPush(a, b)
        | ExprKind::Apply(a, b) => expr_has_dollar(a) || expr_has_dollar(b),
        ExprKind::Cond(a, b, c) => expr_has_dollar(a) || expr_has_dollar(b) || expr_has_dollar(c),
        ExprKind::Call(f, args) => expr_has_dollar(f) || args.iter().any(expr_has_dollar),
        ExprKind::TickRaw(_) => true, // parser-only; be conservative
    }
}

fn init_has_dollar(i: &tcc_front::ast::Init) -> bool {
    match i {
        tcc_front::ast::Init::Expr(e) => expr_has_dollar(e),
        tcc_front::ast::Init::List(is) => is.iter().any(init_has_dollar),
    }
}

fn stmt_has_dollar(s: &Stmt) -> bool {
    match s {
        Stmt::Expr(e) => expr_has_dollar(e),
        Stmt::Decl(items) => items
            .iter()
            .any(|i| i.init.as_ref().is_some_and(init_has_dollar)),
        Stmt::If(c, t, e) => {
            expr_has_dollar(c)
                || stmt_has_dollar(t)
                || e.as_ref().is_some_and(|e| stmt_has_dollar(e))
        }
        Stmt::While(c, b) | Stmt::DoWhile(b, c) => expr_has_dollar(c) || stmt_has_dollar(b),
        Stmt::For(init, cond, step, body) => {
            init.as_ref().is_some_and(|i| stmt_has_dollar(i))
                || cond.as_ref().is_some_and(expr_has_dollar)
                || step.as_ref().is_some_and(expr_has_dollar)
                || stmt_has_dollar(body)
        }
        Stmt::Return(e) => e.as_ref().is_some_and(expr_has_dollar),
        Stmt::Block(ss) => ss.iter().any(stmt_has_dollar),
        Stmt::Switch(e, items) => {
            expr_has_dollar(e)
                || items.iter().any(|i| match i {
                    SwitchItem::Stmt(s) => stmt_has_dollar(s),
                    SwitchItem::Case(_) | SwitchItem::Default => false,
                })
        }
        Stmt::Labeled(_, s) => stmt_has_dollar(s),
        Stmt::Goto(_) | Stmt::Break | Stmt::Continue | Stmt::Empty => false,
    }
}

/// True if the tick's body evaluates any `$`-expression against VM
/// memory at dynamic compile time — such a compilation is not a pure
/// function of the closure and must bypass the cache.
pub fn tick_reads_memory(prog: &Program, tick_id: usize) -> bool {
    let Some(tick) = prog.ticks.get(tick_id) else {
        return true; // malformed: never cache
    };
    match &tick.body {
        TickBody::Expr(e) => expr_has_dollar(e),
        TickBody::Block(ss) => ss.iter().any(stmt_has_dollar),
    }
}

/// Per-compilation fingerprinting state: α-normalization maps for vspec
/// and label objects (object address → first-occurrence ordinal).
#[derive(Default)]
struct Norm {
    vspecs: HashMap<u64, u64>,
    labels: HashMap<u64, u64>,
}

impl Norm {
    fn vspec_id(&mut self, addr: u64) -> u64 {
        let next = self.vspecs.len() as u64;
        *self.vspecs.entry(addr).or_insert(next)
    }
    fn label_id(&mut self, addr: u64) -> u64 {
        let next = self.labels.len() as u64;
        *self.labels.entry(addr).or_insert(next)
    }
}

/// Encodes the closure tree rooted at `entry` into `fp`. Returns
/// `Ok(false)` — without finishing the encoding — when any reachable
/// tick is uncacheable per `cacheable` (the runtime memoizes
/// [`tick_reads_memory`] behind that callback).
///
/// Call only after `probe_compose_depth` has validated the tree: the
/// walk recurses and relies on the probe's depth/cycle limits.
///
/// # Errors
///
/// Propagates [`VmError`] from closure reads, and reports malformed
/// closures (bad CGF ids) like the compile walk does.
pub fn fingerprint_closure(
    mem: &Memory,
    prog: &Program,
    entry: u64,
    cacheable: &mut dyn FnMut(usize) -> bool,
    fp: &mut FingerprintBuilder,
) -> Result<bool, VmError> {
    let mut norm = Norm::default();
    walk(mem, prog, entry, cacheable, fp, &mut norm)
}

fn walk(
    mem: &Memory,
    prog: &Program,
    addr: u64,
    cacheable: &mut dyn FnMut(usize) -> bool,
    fp: &mut FingerprintBuilder,
    norm: &mut Norm,
) -> Result<bool, VmError> {
    let c = ClosureRef { addr };
    let marker = c.cgf_id(mem)?;
    // A label object spliced directly as a cspec is a leaf.
    if marker == LABEL_MARKER {
        fp.push_tag(tag::LABEL);
        fp.push_u64(norm.label_id(addr));
        return Ok(true);
    }
    let id = marker as usize;
    let tick = prog
        .ticks
        .get(id)
        .ok_or_else(|| VmError::Host(format!("bad cgf id {id}")))?;
    if !cacheable(id) {
        return Ok(false);
    }
    fp.open(tag::CLOSURE);
    fp.push_u64(id as u64);
    for (i, cap) in tick.captures.iter().enumerate() {
        let field = c.field(mem, i)?;
        match &cap.kind {
            CaptureKind::Dollar(_) => {
                // Captured by value at specification time: the raw bits
                // (int or float) are the run-time constant itself.
                fp.push_tag(tag::DOLLAR);
                fp.push_u64(field);
            }
            CaptureKind::FreeVar(_) => {
                // The *address* is the captured datum; generated code
                // loads through it at run time.
                fp.push_tag(tag::FREEVAR);
                fp.push_u64(field);
            }
            CaptureKind::Vspec(_) => {
                let obj = VspecObj::read(mem, field)?;
                match obj.tag {
                    VspecTag::Param => {
                        fp.push_tag(tag::VSPEC_PARAM);
                        fp.push_u64(obj.kind.code() as u64);
                        fp.push_u64(obj.index);
                    }
                    VspecTag::Local => {
                        fp.push_tag(tag::VSPEC_LOCAL);
                        fp.push_u64(obj.kind.code() as u64);
                        fp.push_u64(norm.vspec_id(field));
                    }
                }
            }
            CaptureKind::Cspec(_) => match mem.load_u64(field)? {
                LABEL_MARKER => {
                    fp.push_tag(tag::LABEL);
                    fp.push_u64(norm.label_id(field));
                }
                ARGLIST_MARKER => {
                    fp.open(tag::ARGLIST);
                    let n = mem.load_u64(field + 8)?;
                    fp.push_u64(n);
                    for j in 0..n {
                        let entry = mem.load_u64(field + 16 + 8 * j)?;
                        if !walk(mem, prog, entry, cacheable, fp, norm)? {
                            return Ok(false);
                        }
                    }
                    fp.close();
                }
                _ => {
                    if !walk(mem, prog, field, cacheable, fp, norm)? {
                        return Ok(false);
                    }
                }
            },
        }
    }
    fp.close();
    Ok(true)
}
