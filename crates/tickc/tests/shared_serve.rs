//! Multi-tenant shared-artifact integration: sessions built around one
//! [`SharedArtifacts`] compile each unique closure once, install the
//! published words everywhere else, and observe another thread's churn
//! as `VmError::StaleCode` faults — never as silently stale execution.

use std::sync::Arc;
use tcc::{Config, Error, Session, SharedArtifacts, VmError};

const SRC: &str = r#"
    long mk(int m) {
        int vspec x = param(int, 0);
        int cspec c = `(x * $m + $m);
        return (long)compile(c, int);
    }
"#;

fn shared_session(shared: &Arc<SharedArtifacts>) -> Session {
    Session::new(
        SRC,
        Config {
            shared: Some(Arc::clone(shared)),
            ..Config::default()
        },
    )
    .expect("compiles")
}

#[test]
fn session_and_config_are_send() {
    // The serve pool moves whole sessions onto worker threads; this is
    // the compile-time audit that everything a `Session` owns (VM
    // state, runtime, shared-cache handles, hub channels) crosses.
    fn assert_send<T: Send>() {}
    assert_send::<Session>();
    assert_send::<Config>();
}

#[test]
fn sessions_share_one_compile_across_the_cache() {
    let shared = SharedArtifacts::unbounded();
    let mut a = shared_session(&shared);
    let mut b = shared_session(&shared);

    let fa = a.call("mk", &[9]).expect("compiles");
    assert_eq!(a.call_addr(fa, &[5]).unwrap(), 5 * 9 + 9);
    let m = shared.metrics();
    assert_eq!((m.misses, m.published), (1, 1));
    assert_eq!(a.dyn_stats().compiles, 1);

    // The second session installs the published artifact: a shared
    // hit, zero compiles of its own.
    let fb = b.call("mk", &[9]).expect("installs");
    assert_eq!(b.call_addr(fb, &[5]).unwrap(), 5 * 9 + 9);
    let m = shared.metrics();
    assert_eq!(m.published, 1, "second session must not recompile");
    assert_eq!(m.hits, 1);
    assert_eq!(b.dyn_stats().compiles, 0);

    // Differential: the installed copy is word-identical, so the
    // execution cost is bit-identical to the compiling session's.
    let (i0, c0) = (a.insns(), a.cycles());
    assert_eq!(a.call_addr(fa, &[123]).unwrap(), 123 * 9 + 9);
    let (da_i, da_c) = (a.insns() - i0, a.cycles() - c0);
    let (i0, c0) = (b.insns(), b.cycles());
    assert_eq!(b.call_addr(fb, &[123]).unwrap(), 123 * 9 + 9);
    assert_eq!((b.insns() - i0, b.cycles() - c0), (da_i, da_c));

    // Re-requesting in the compiling session hits its installed memo.
    let fa2 = a.call("mk", &[9]).expect("memo");
    assert_eq!(fa2, fa);
    assert_eq!(shared.metrics().hits, 2);

    // A different `$`-constant is a different fingerprint.
    let f3 = a.call("mk", &[3]).expect("fresh compile");
    assert_eq!(a.call_addr(f3, &[5]).unwrap(), 5 * 3 + 3);
    assert_eq!(shared.metrics().published, 2);
}

#[test]
fn cross_thread_invalidation_faults_stale_code() {
    let shared = SharedArtifacts::unbounded();
    let mut s = shared_session(&shared);
    let addr = s.call("mk", &[9]).expect("compiles");
    assert_eq!(s.call_addr(addr, &[1]).unwrap(), 18);

    // Another thread churns the rule set out from under the executor.
    let churner = Arc::clone(&shared);
    std::thread::spawn(move || {
        let fp = churner.sample_fingerprint(0).expect("one resident");
        assert!(churner.invalidate(&fp));
    })
    .join()
    .unwrap();

    // The executor's next call syncs the generation bump, frees its
    // installed copy, and the stale address faults — never UB.
    match s.call_addr(addr, &[1]) {
        Err(Error::Vm(VmError::StaleCode(at))) => assert_eq!(at, addr),
        other => panic!("expected StaleCode fault, got {other:?}"),
    }

    // Recompiling republishes and the function is callable again.
    let addr2 = s.call("mk", &[9]).expect("recompiles");
    assert_eq!(s.call_addr(addr2, &[1]).unwrap(), 18);
    assert_eq!(shared.metrics().published, 2);
}

#[test]
fn eviction_under_budget_faults_like_invalidation() {
    // A budget small enough that the second artifact evicts the first:
    // the session that installed the first sees StaleCode, not stale
    // bytes.
    let shared = SharedArtifacts::with_budget(64);
    let mut s = shared_session(&shared);
    let a1 = s.call("mk", &[9]).expect("compiles");
    assert_eq!(s.call_addr(a1, &[2]).unwrap(), 2 * 9 + 9);
    let a2 = s.call("mk", &[3]).expect("compiles");
    assert_eq!(s.call_addr(a2, &[2]).unwrap(), 2 * 3 + 3);
    if shared.metrics().evictions > 0 {
        match s.call_addr(a1, &[2]) {
            Err(Error::Vm(VmError::StaleCode(_))) => {}
            other => panic!("expected StaleCode after eviction, got {other:?}"),
        }
    }
}
