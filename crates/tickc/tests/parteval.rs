//! Focused tests of automatic dynamic partial evaluation (§4.4): what
//! code the CGFs emit, not just what it computes.

use tcc::{Backend, Config, Session, Strategy};

fn session(src: &str, backend: Backend) -> Session {
    Session::new(
        src,
        Config {
            backend,
            ..Config::default()
        },
    )
    .expect("compiles")
}

fn vcode() -> Backend {
    Backend::Vcode { unchecked: false }
}

/// Generated instruction count for one compile in a fresh session.
fn gen_insns(src: &str, compile_fn: &str, args: &[u64]) -> (u64, Session) {
    let mut s = session(src, vcode());
    s.call(compile_fn, args).expect("dynamic compile");
    let n = s.dyn_stats().generated_insns;
    (n, s)
}

#[test]
fn unrolling_direction_and_step_variants() {
    // Down-counting, step-by-2, and reassignment-style steps all unroll
    // and agree with a straightforward sum.
    let src = r#"
        int n = 10;
        long down(void) {
            void cspec c = `{
                int k; int s; s = 0;
                for (k = $n; k > 0; k--) s = s + k;
                return s;
            };
            return (long)compile(c, int);
        }
        long by2(void) {
            void cspec c = `{
                int k; int s; s = 0;
                for (k = 0; k < $n; k += 2) s = s + k;
                return s;
            };
            return (long)compile(c, int);
        }
        long reassign(void) {
            void cspec c = `{
                int k; int s; s = 0;
                for (k = 1; k < $n; k = k * 2) s = s + k;
                return s;
            };
            return (long)compile(c, int);
        }
    "#;
    for b in [
        vcode(),
        Backend::Icode {
            strategy: Strategy::LinearScan,
        },
    ] {
        let mut s = session(src, b);
        let fp = s.call("down", &[]).unwrap();
        assert_eq!(s.call_addr(fp, &[]).unwrap(), (1..=10).sum::<u64>());
        let fp = s.call("by2", &[]).unwrap();
        assert_eq!(
            s.call_addr(fp, &[]).unwrap(),
            (0..10).step_by(2).sum::<u64>()
        );
        let fp = s.call("reassign", &[]).unwrap();
        assert_eq!(s.call_addr(fp, &[]).unwrap(), 1 + 2 + 4 + 8);
        assert!(s.dyn_stats().unrolled_iters >= 5 + 5 + 4);
    }
}

#[test]
fn nested_unrolling_propagates_derived_constants() {
    // The paper: "run-time constant information propagates down loop
    // nesting levels" — the inner bound depends on the outer variable.
    let src = r#"
        int n = 4;
        long mk(void) {
            void cspec c = `{
                int i; int j; int s; s = 0;
                for (i = 0; i < $n; i++)
                    for (j = 0; j <= i; j++)
                        s = s + 1;
                return s;
            };
            return (long)compile(c, int);
        }
    "#;
    let (insns, mut s) = gen_insns(src, "mk", &[]);
    let fp = s.call("mk", &[]).unwrap();
    assert_eq!(s.call_addr(fp, &[]).unwrap(), 1 + 2 + 3 + 4);
    // Fully unrolled: no branches at all in the generated function.
    let d = s.disassemble_addr(fp).expect("disassembles");
    assert!(
        !d.contains(" beq ") && !d.contains(" bltw ") && !d.contains(" bgew "),
        "expected straight-line code:\n{d}"
    );
    assert!(insns > 0);
}

#[test]
fn dead_branches_emit_no_code() {
    // `if ($flag)` over a run-time constant: only the live arm exists.
    let src = r#"
        long mk(int flag) {
            void cspec c = `{
                if ($flag) return 1111;
                return 2222;
            };
            return (long)compile(c, int);
        }
    "#;
    let (n_true, mut s1) = gen_insns(src, "mk", &[1]);
    let (n_false, mut s2) = gen_insns(src, "mk", &[0]);
    let fp1 = s1.call("mk", &[1]).unwrap();
    let fp2 = s2.call("mk", &[0]).unwrap();
    assert_eq!(s1.call_addr(fp1, &[]).unwrap(), 1111);
    assert_eq!(s2.call_addr(fp2, &[]).unwrap(), 2222);
    // Both arms are tiny — and neither contains a compare/branch.
    let d = s1.disassemble_addr(fp1).expect("disassembles");
    assert!(!d.contains("beq") && !d.contains("bne"), "{d}");
    assert!(n_true <= 20 && n_false <= 20, "{n_true} / {n_false}");
}

#[test]
fn static_switch_selects_one_arm_with_fallthrough() {
    let src = r#"
        long mk(int sel) {
            void cspec c = `{
                int r;
                r = 0;
                switch ($sel) {
                    case 1: r += 1;
                    case 2: r += 2; break;
                    case 3: r += 3; break;
                    default: r = 99;
                }
                return r;
            };
            return (long)compile(c, int);
        }
    "#;
    for (sel, expect) in [(1u64, 3u64), (2, 2), (3, 3), (7, 99)] {
        let mut s = session(src, vcode());
        let fp = s.call("mk", &[sel]).unwrap();
        assert_eq!(s.call_addr(fp, &[]).unwrap(), expect, "sel={sel}");
        // No dispatch chain survives: switch over an RTC is free.
        let d = s.disassemble_addr(fp).expect("disassembles");
        assert!(!d.contains("beq"), "sel={sel}:\n{d}");
    }
}

#[test]
fn strength_reduction_eliminates_mul_and_div_for_powers_of_two() {
    let src = r#"
        long mk(int m) {
            int vspec x = param(int, 0);
            int cspec c = `(x * $m + x / $m + (int)((unsigned)x % (unsigned)$m));
            return (long)compile(c, int);
        }
    "#;
    let mut s = session(src, vcode());
    let fp = s.call("mk", &[64]).unwrap();
    let x = 1000u64;
    assert_eq!(
        s.call_addr(fp, &[x]).unwrap() as i64,
        (1000 * 64 + 1000 / 64 + 1000 % 64) as i64
    );
    let d = s.disassemble_addr(fp).expect("disassembles");
    assert!(!d.contains("mulw"), "power-of-two multiply survived:\n{d}");
    assert!(
        !d.contains("divw") && !d.contains("divuw"),
        "divide survived:\n{d}"
    );
    assert!(!d.contains("remuw"), "remainder survived:\n{d}");

    // Non-power-of-two keeps the real operations (checked for honesty).
    let mut s = session(src, vcode());
    let fp = s.call("mk", &[7]).unwrap();
    assert_eq!(
        s.call_addr(fp, &[x]).unwrap() as i64,
        (1000 * 7 + 1000 / 7 + 1000 % 7) as i64
    );
}

#[test]
fn mixed_static_dynamic_expressions_fold_static_parts() {
    // (2*$a + $b*3) + x: everything but the x-add happens at compile
    // time, so the code is li + add + ret (+ prologue).
    let src = r#"
        long mk(int a, int b) {
            int vspec x = param(int, 0);
            int cspec c = `(2 * $a + $b * 3 + x);
            return (long)compile(c, int);
        }
    "#;
    let (n, mut s) = gen_insns(src, "mk", &[10, 5]);
    let fp = s.call("mk", &[10, 5]).unwrap();
    assert_eq!(s.call_addr(fp, &[7]).unwrap(), 2 * 10 + 5 * 3 + 7);
    assert!(n <= 20, "expected a folded constant, got {n} instructions");
}

#[test]
fn rtc_local_demotion_is_sound() {
    // sum starts as a run-time constant (static initializer), then a
    // dynamic store demotes it; the static prefix must still be folded
    // into the initial value.
    let src = r#"
        long mk(int p0) {
            int vspec x = param(int, 0);
            void cspec c = `{
                int sum;
                sum = $p0 * 2;      /* static: rtc-resident */
                sum = sum + 10;     /* still static */
                sum = sum + x;      /* demotes to a register */
                sum = sum + 1;      /* dynamic add */
                return sum;
            };
            return (long)compile(c, int);
        }
    "#;
    for b in [
        vcode(),
        Backend::Icode {
            strategy: Strategy::GraphColor,
        },
    ] {
        let mut s = session(src, b);
        let fp = s.call("mk", &[20]).unwrap();
        assert_eq!(s.call_addr(fp, &[5]).unwrap(), 40 + 10 + 5 + 1);
    }
}

#[test]
fn unroll_bails_to_a_loop_past_the_limit() {
    // Trip count 5000 > 1024: stays a loop, still correct, few insns.
    let src = r#"
        int n = 5000;
        long mk(void) {
            void cspec c = `{
                int k; int s; s = 0;
                for (k = 0; k < $n; k++) s = s + 2;
                return s;
            };
            return (long)compile(c, int);
        }
    "#;
    let (insns, mut s) = gen_insns(src, "mk", &[]);
    let fp = s.call("mk", &[]).unwrap();
    assert_eq!(s.call_addr(fp, &[]).unwrap(), 10_000);
    assert!(
        insns < 60,
        "expected a loop, got {insns} instructions (unrolled?)"
    );
    assert_eq!(s.dyn_stats().unrolled_iters, 0);
}

#[test]
fn body_that_writes_the_condition_variable_stays_a_loop() {
    // The bound is a free variable (address capture), so the condition
    // is not a run-time constant at all — must remain a dynamic loop
    // even though init/step look static.
    let src = r#"
        long mk(int n0) {
            int vspec out = local(int);
            void cspec c = `{
                int k;
                int limit;
                limit = $n0;
                out = 0;
                for (k = 0; k < limit; k++) {
                    out = out + k;
                    if (out > 100) limit = 0;   /* assigns a cond dependency */
                }
                return out;
            };
            return (long)compile(c, int);
        }
    "#;
    let mut s = session(src, vcode());
    let fp = s.call("mk", &[50]).unwrap();
    // reference semantics
    let expect = {
        let (mut out, mut limit) = (0i32, 50i32);
        let mut k = 0;
        while k < limit {
            out += k;
            if out > 100 {
                limit = 0;
            }
            k += 1;
        }
        out
    };
    assert_eq!(s.call_addr(fp, &[]).unwrap() as i64, expect as i64);
}

#[test]
fn zero_compare_branches_use_the_zero_register() {
    // `x != 0` / `x == 0` in branch position fold to a truthiness
    // branch on x alone (bne/beq against the hardwired r0), exactly
    // like the static back end — no materialized zero operand.
    let src = r#"
        long mk(void) {
            int vspec x = param(int, 0);
            void cspec c = `{
                int k; int s; k = x; s = 5;
                while (k != 0) { s = s + k; k = k - 1; }
                if (s == 0) return -1;
                return s;
            };
            return (long)compile(c, int);
        }
    "#;
    for b in [
        vcode(),
        Backend::Icode {
            strategy: Strategy::LinearScan,
        },
    ] {
        let mut s = session(src, b);
        let fp = s.call("mk", &[]).unwrap();
        assert_eq!(
            s.call_addr(fp, &[10]).unwrap() as i64,
            5 + (1..=10).sum::<i64>()
        );
        let d = s.disassemble_addr(fp).expect("disassembles");
        assert!(
            d.contains(", r0, "),
            "expected a branch against the zero register:\n{d}"
        );
        assert!(
            !d.contains("addid") || !d.contains(", r0, 0"),
            "zero operand was materialized:\n{d}"
        );
    }
}

#[test]
fn float_zero_compares_keep_the_real_comparison() {
    // The fold is integer-only: -0.0 == 0.0 must stay true, which a
    // bit-pattern test against the zero register would get wrong.
    let src = r#"
        long mk(void) {
            double vspec x = param(double, 0);
            void cspec c = `{
                if (x == 0) return 1;
                return 0;
            };
            return (long)compile(c, int);
        }
        double drive(long fp, double v) {
            int (*g)(double) = (int (*)(double))fp;
            return (double)g(v);
        }
    "#;
    let mut s = session(src, vcode());
    let fp = s.call("mk", &[]).unwrap();
    assert_eq!(s.call_f("drive", &[fp], &[-0.0]).unwrap(), 1.0);
    assert_eq!(s.call_f("drive", &[fp], &[0.0]).unwrap(), 1.0);
    assert_eq!(s.call_f("drive", &[fp], &[1.5]).unwrap(), 0.0);
}
