//! tcc-bench: criterion benches and figure regeneration (see `benches/`).

/// Criterion driver for benchmarks whose routine *allocates VM memory
/// every call* (dynamic compilation allocates closures, vspecs and code):
/// runs `iters` calls in chunks, recreating the state with `fresh`
/// between chunks **outside** the timed region, so unbounded iteration
/// counts never exhaust the machine's data memory.
pub fn iter_chunked<S, F, R>(b: &mut criterion::Bencher<'_>, chunk: u64, mut fresh: F, mut run: R)
where
    F: FnMut() -> S,
    R: FnMut(&mut S),
{
    b.iter_custom(|iters| {
        let mut total = std::time::Duration::ZERO;
        let mut done = 0u64;
        while done < iters {
            let mut s = fresh();
            let n = (iters - done).min(chunk);
            let t = std::time::Instant::now();
            for _ in 0..n {
                run(&mut s);
            }
            total += t.elapsed();
            done += n;
        }
        total
    });
}
