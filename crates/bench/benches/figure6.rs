//! Regenerates the paper's Figure 6 (VCODE dynamic compilation cost per
//! generated instruction, per benchmark).
//!
//! Run with: `cargo bench -p tcc-bench --bench figure6`

use tcc_suite::{benchmarks, measure, ns_per_cycle, report, BLUR_FULL, BLUR_SMALL};

fn main() {
    let small = std::env::args().any(|a| a == "--small");
    let dims = if small { BLUR_SMALL } else { BLUR_FULL };
    let nspc = ns_per_cycle();
    let ms: Vec<_> = benchmarks(dims)
        .iter()
        .map(|b| {
            eprintln!("measuring {}...", b.name);
            measure(b)
        })
        .collect();
    print!("{}", report::figure6(&ms, nspc));
}
