//! Regenerates the paper's Table 1 (code generation overhead per
//! generated instruction for the four extreme cspec shapes).
//!
//! Run with: `cargo bench -p tcc-bench --bench table1`

fn main() {
    let nspc = tcc_suite::ns_per_cycle();
    print!("{}", tcc_suite::report::table1(nspc, 250, 100));
}
