//! Ablations of the design choices DESIGN.md calls out:
//!
//! 1. closure **arena** allocation vs the general allocator (§4.2);
//! 2. the **pruned ICODE translator** vs the full cross-product table
//!    (§5.2 link-time analysis) — size and compile-time effect;
//! 3. VCODE **unchecked mode** (per-operand spill checks disabled, §5.1);
//! 4. the **cspec-first operand order** heuristic (§5.1, Figure 2).
//!
//! Run with: `cargo bench -p tcc-bench --bench ablations`

use criterion::{criterion_group, criterion_main, Criterion};
use tcc::{Backend, Config, Session, Strategy};
use tcc_bench::iter_chunked;
use tcc_icode::TranslatorTable;

const CLOSURE_HEAVY: &str = r#"
long spec_many(int n) {
    int i;
    long last = 0;
    for (i = 0; i < n; i++) {
        int cspec c = `($i + 1);
        last = (long)c;
    }
    return last;
}
"#;

fn bench_arena(c: &mut Criterion) {
    // Specification time in VM cycles is the paper-relevant number
    // (closure allocation is inline VM code + one host call).
    for (name, use_arena) in [("arena", true), ("general_alloc", false)] {
        let mut s = Session::with_defaults(CLOSURE_HEAVY).expect("compiles");
        s.vm.host_mut().use_arena = use_arena;
        s.reset_counters();
        s.call("spec_many", &[200]).expect("runs");
        eprintln!("  {name}: {} VM cycles for 200 closures", s.cycles());
    }
    // Wall-clock comparison with a fresh session per iteration so
    // closures never accumulate past the data memory.
    let mut g = c.benchmark_group("closure_allocation");
    g.sample_size(10);
    for (name, use_arena) in [("arena", true), ("general_alloc", false)] {
        g.bench_function(name, |b| {
            b.iter_batched(
                || {
                    let mut s = Session::with_defaults(CLOSURE_HEAVY).expect("compiles");
                    s.vm.host_mut().use_arena = use_arena;
                    s
                },
                |mut s| s.call("spec_many", &[200]).expect("runs"),
                criterion::BatchSize::PerIteration,
            );
        });
    }
    g.finish();
}

const ICODE_WORK: &str = r#"
int buf[128];
long go(int a) {
    int vspec i = local(int);
    int vspec s = local(int);
    void cspec c = `{
        s = 0;
        for (i = 0; i < 128; i++) s = s + buf[i] * $a;
        return s;
    };
    return (long)compile(c, int);
}
"#;

fn bench_pruned_translator(c: &mut Criterion) {
    let full = TranslatorTable::full();
    // Run the "link-time" analysis: observe the ICODE instructions this
    // program's CGFs emit, then build the customized back end.
    let config = Config {
        backend: Backend::Icode {
            strategy: Strategy::LinearScan,
        },
        ..Config::default()
    };
    let mut probe = Session::new(ICODE_WORK, config.clone()).expect("compiles");
    probe.call("go", &[3]).expect("runs");
    let keys: Vec<_> = probe.vm.host().observed_keys.iter().copied().collect();
    let pruned = TranslatorTable::from_keys(keys);
    eprintln!(
        "  translator size: full {} entries (~{} insns) -> pruned {} entries (~{} insns), {:.1}x smaller",
        full.entries(),
        full.nominal_size(),
        pruned.entries(),
        pruned.nominal_size(),
        full.entries() as f64 / pruned.entries().max(1) as f64
    );
    let mut g = c.benchmark_group("translator_table");
    for (name, table) in [("full", None), ("pruned", Some(pruned))] {
        let config = config.clone();
        g.bench_function(name, |b| {
            iter_chunked(
                b,
                4096,
                || {
                    let mut s = Session::new(ICODE_WORK, config.clone()).expect("compiles");
                    s.vm.host_mut().table = table.clone();
                    s
                },
                |s| {
                    s.call("go", &[3]).expect("runs");
                },
            );
        });
    }
    g.finish();
}

fn bench_unchecked_vcode(c: &mut Criterion) {
    let mut g = c.benchmark_group("vcode_spill_checks");
    for (name, unchecked) in [("checked", false), ("unchecked", true)] {
        let config = Config {
            backend: Backend::Vcode { unchecked },
            ..Config::default()
        };
        g.bench_function(name, |b| {
            iter_chunked(
                b,
                4096,
                || Session::new(ICODE_WORK, config.clone()).expect("compiles"),
                |s| {
                    s.call("go", &[3]).expect("runs");
                },
            );
        });
    }
    g.finish();
}

const PRESSURE: &str = r#"
int gx;
long go(int a) {
    gx = a;
    int cspec c = `(gx + 1);
    int i;
    /* Figure 2: the cspec is the RIGHT operand, so naive left-to-right
       evaluation loads gx into a fresh temporary and holds it across
       every nested CGF call — one extra live register per level. */
    for (i = 0; i < 30; i++) c = `(gx + c);
    void cspec f = `{ return c; };
    return (long)compile(f, int);
}
int run_it(long fp) { int (*g)(void) = (int (*)(void))fp; return (*g)(); }
"#;

fn bench_cspec_first_heuristic(c: &mut Criterion) {
    // Measures generated-code quality (VM cycles), not codegen time:
    // the §5.1 operand-order heuristic exists to reduce spills.
    eprintln!("  cspec-first operand heuristic (generated code quality):");
    for (name, on) in [("cspec_first", true), ("naive_order", false)] {
        let mut s = Session::with_defaults(PRESSURE).expect("compiles");
        s.vm.host_mut().cspec_first = on;
        let fp = s.call("go", &[5]).expect("compiles dynamically");
        s.reset_counters();
        let v = s.call("run_it", &[fp]).expect("runs");
        assert_eq!(v as i64, 5 + 1 + 30 * 5);
        eprintln!(
            "    {name}: {} cycles, {} instructions generated",
            s.cycles(),
            s.dyn_stats().generated_insns
        );
    }
    // Keep criterion happy with a tiny timing group as well.
    let mut g = c.benchmark_group("cspec_first");
    for (name, on) in [("on", true), ("off", false)] {
        g.bench_function(name, |b| {
            iter_chunked(
                b,
                512,
                || {
                    let mut s = Session::with_defaults(PRESSURE).expect("compiles");
                    s.vm.host_mut().cspec_first = on;
                    s
                },
                |s| {
                    s.call("go", &[5]).expect("runs");
                },
            );
        });
    }
    g.finish();
}

const UNROLL_SRC: &str = r#"
int row[32];
int col[32];
int n = 32;
void fill(void) {
    int i;
    int seed = 7;
    for (i = 0; i < n; i++) {
        seed = seed * 1103515245 + 12345;
        row[i] = (seed >> 16) & 1 ? ((seed >> 18) & 15) + 1 : 0;
        col[i] = i + 1;
    }
}
long go(void) {
    /* NOTE: no $-indexing by the loop variable here — `$row[k]` is only
       meaningful when the loop unrolls (k must be a derived run-time
       constant), and this ablation must be valid with unrolling off. */
    void cspec c = `{
        int k;
        int sum;
        sum = 0;
        for (k = 0; k < $n; k++)
            sum = sum + col[k] * row[k];
        return sum;
    };
    return (long)compile(c, int);
}
int run_it(long fp) { int (*g)(void) = (int (*)(void))fp; return (*g)(); }

/* The full §4.4 treatment: unrolling plus $-hardwired row values and
   dead code elimination of zero entries (only legal when unrolled). */
long go_hardwired(void) {
    void cspec c = `{
        int k;
        int sum;
        sum = 0;
        for (k = 0; k < $n; k++)
            if ($row[k])
                sum = sum + col[k] * $row[k];
        return sum;
    };
    return (long)compile(c, int);
}
"#;

fn bench_unrolling(c: &mut Criterion) {
    // §4.4 dynamic loop unrolling: the headline partial evaluation.
    eprintln!("  dynamic loop unrolling ablation (generated code quality):");
    let mut results = Vec::new();
    for (name, on) in [("unrolled", true), ("loop_kept", false)] {
        let mut s = Session::with_defaults(UNROLL_SRC).expect("compiles");
        s.vm.host_mut().enable_unroll = on;
        s.call("fill", &[]).expect("setup");
        let fp = s.call("go", &[]).expect("dynamic compile");
        s.reset_counters();
        let v = s.call("run_it", &[fp]).expect("runs");
        results.push(v);
        eprintln!(
            "    {name}: {} cycles/run, {} instructions generated",
            s.cycles(),
            s.dyn_stats().generated_insns
        );
    }
    assert_eq!(results[0], results[1], "unrolling must not change results");
    // The full partial evaluation: unroll + hardwire + dead-code-eliminate.
    {
        let mut s = Session::with_defaults(UNROLL_SRC).expect("compiles");
        s.call("fill", &[]).expect("setup");
        let fp = s.call("go_hardwired", &[]).expect("dynamic compile");
        s.reset_counters();
        let v = s.call("run_it", &[fp]).expect("runs");
        assert_eq!(v, results[0], "hardwired variant must agree");
        eprintln!(
            "    unrolled+hardwired: {} cycles/run, {} instructions generated \
             (the paper's dp treatment: zero entries eliminated, values immediate)",
            s.cycles(),
            s.dyn_stats().generated_insns
        );
    }
    let mut g = c.benchmark_group("dynamic_unrolling");
    for (name, on) in [("on", true), ("off", false)] {
        g.bench_function(name, |b| {
            iter_chunked(
                b,
                1024,
                || {
                    let mut s = Session::with_defaults(UNROLL_SRC).expect("compiles");
                    s.vm.host_mut().enable_unroll = on;
                    s.call("fill", &[]).expect("setup");
                    s
                },
                |s| {
                    s.call("go", &[]).expect("compiles");
                },
            );
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_arena,
    bench_pruned_translator,
    bench_unchecked_vcode,
    bench_cspec_first_heuristic,
    bench_unrolling
);
criterion_main!(benches);
