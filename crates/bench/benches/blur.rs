//! Regenerates the paper's §6.2 xv Blur experiment on the full 640x480
//! image.
//!
//! Run with: `cargo bench -p tcc-bench --bench blur`

use tcc_suite::{benchmarks, measure, ns_per_cycle, report, BLUR_FULL};

fn main() {
    let nspc = ns_per_cycle();
    let b = benchmarks(BLUR_FULL)
        .into_iter()
        .find(|b| b.name == "blur")
        .expect("blur");
    eprintln!("measuring blur 640x480 (five compilation paths; takes a minute)...");
    let m = measure(&b);
    print!("{}", report::blur_report(&m, nspc));
}
