//! Regenerates the paper's Figure 4 (ratio of static to dynamic run
//! time for all benchmarks, four compiler pairings).
//!
//! Run with: `cargo bench -p tcc-bench --bench figure4`
//! Pass `--small` (after `--`) for a reduced blur image.

use tcc_suite::{benchmarks, measure, report, BLUR_FULL, BLUR_SMALL};

fn main() {
    let small = std::env::args().any(|a| a == "--small");
    let dims = if small { BLUR_SMALL } else { BLUR_FULL };
    let ms: Vec<_> = benchmarks(dims)
        .iter()
        .map(|b| {
            eprintln!("measuring {}...", b.name);
            measure(b)
        })
        .collect();
    print!("{}", report::figure4(&ms));
}
