//! Criterion benches of the two ICODE register allocators in isolation —
//! the Figure 3 linear scan vs the Chaitin-style baseline — across
//! program sizes, plus the O(I·R) scaling claim.
//!
//! Run with: `cargo bench -p tcc-bench --bench regalloc`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tcc_icode::{IcodeBuf, IcodeCompiler, Strategy};
use tcc_rt::ValKind;
use tcc_vcode::ops::BinOp;
use tcc_vcode::CodeSink;
use tcc_vm::CodeSpace;

/// Builds a deterministic random program with `n` operations over a
/// sliding window of live values (register pressure ~window).
fn random_program(n: usize, window: usize, seed: u64) -> IcodeBuf {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = IcodeBuf::new();
    let p0 = b.param(0, ValKind::W);
    let p1 = b.param(1, ValKind::W);
    let mut vals = vec![p0, p1];
    for _ in 0..n {
        let d = b.temp(ValKind::W);
        let i = vals.len() - rng.gen_range(1..=window.min(vals.len()));
        let j = vals.len() - rng.gen_range(1..=window.min(vals.len()));
        let op = [BinOp::Add, BinOp::Sub, BinOp::Xor, BinOp::Mul][rng.gen_range(0..4usize)];
        b.bin(op, ValKind::W, d, vals[i], vals[j]);
        vals.push(d);
    }
    // Keep the last `window` values live to the end.
    let acc = b.temp(ValKind::W);
    b.li(acc, 0);
    for &v in vals.iter().rev().take(window) {
        b.bin(BinOp::Add, ValKind::W, acc, acc, v);
    }
    b.ret_val(ValKind::W, acc);
    b
}

fn bench_allocators(c: &mut Criterion) {
    let mut g = c.benchmark_group("register_allocation");
    for &n in &[50usize, 200, 800] {
        for &window in &[6usize, 24] {
            for (name, strategy) in [
                ("linear_scan", Strategy::LinearScan),
                ("graph_color", Strategy::GraphColor),
            ] {
                let id = BenchmarkId::new(name, format!("n{n}_w{window}"));
                g.bench_with_input(id, &(), |bch, ()| {
                    bch.iter_with_large_drop(|| {
                        let buf = random_program(n, window, 42);
                        let mut code = CodeSpace::new();
                        let mut comp = IcodeCompiler::new(strategy);
                        comp.run_peephole = false;
                        comp.compile(&mut code, "p", buf)
                    });
                });
            }
        }
    }
    g.finish();

    // Print the per-phase story once for the record.
    for (name, strategy) in [
        ("linear_scan", Strategy::LinearScan),
        ("graph_color", Strategy::GraphColor),
    ] {
        let buf = random_program(800, 24, 42);
        let mut code = CodeSpace::new();
        let mut comp = IcodeCompiler::new(strategy);
        comp.run_peephole = false;
        let r = comp.compile(&mut code, "p", buf);
        eprintln!(
            "  {name}: alloc {} ns over {} intervals, {} spills, alloc fraction {:.0}%",
            r.phases.alloc_ns,
            r.intervals,
            r.spills,
            r.phases.alloc_fraction() * 100.0
        );
    }
}

criterion_group!(benches, bench_allocators);
criterion_main!(benches);
