//! Criterion benches over the dynamic compilation path itself: wall
//! clock per `compile` for representative cspec shapes, VCODE vs ICODE
//! (the host-time ground truth behind Table 1 and Figures 6/7).
//!
//! Run with: `cargo bench -p tcc-bench --bench codegen`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tcc::{Backend, Config, Session, Strategy};
use tcc_bench::iter_chunked;

const SHAPES: &[(&str, &str)] = &[
    (
        "small_expr",
        r#"
        long go(int a) {
            int vspec x = param(int, 0);
            int cspec c = `(x * $a + 3);
            return (long)compile(c, int);
        }
        "#,
    ),
    (
        "loop_body",
        r#"
        int buf[256];
        long go(int a) {
            int vspec i = local(int);
            int vspec s = local(int);
            void cspec c = `{
                s = 0;
                for (i = 0; i < 256; i++) s = s + buf[i] * $a;
                return s;
            };
            return (long)compile(c, int);
        }
        "#,
    ),
    (
        "composed_chain",
        r#"
        long go(int a) {
            int vspec x = local(int);
            int cspec c = `(x + 1);
            int i;
            for (i = 0; i < 50; i++) c = `(c + x);
            void cspec f = `{ x = $a; return c; };
            return (long)compile(f, int);
        }
        "#,
    ),
    (
        "unrolled",
        r#"
        int tab[64];
        int n = 64;
        long go(int a) {
            void cspec c = `{
                int k;
                int s;
                s = 0;
                for (k = 0; k < $n; k++) s = s + $tab[k] * k;
                return s;
            };
            return (long)compile(c, int);
        }
        "#,
    ),
];

fn backends() -> Vec<(&'static str, Backend)> {
    vec![
        ("vcode", Backend::Vcode { unchecked: false }),
        (
            "icode_ls",
            Backend::Icode {
                strategy: Strategy::LinearScan,
            },
        ),
        (
            "icode_gc",
            Backend::Icode {
                strategy: Strategy::GraphColor,
            },
        ),
    ]
}

fn bench_codegen(c: &mut Criterion) {
    let mut g = c.benchmark_group("dynamic_compile");
    for (shape, src) in SHAPES {
        for (bname, backend) in backends() {
            let config = Config {
                backend,
                ..Config::default()
            };
            g.bench_with_input(BenchmarkId::new(*shape, bname), &(), |b, ()| {
                iter_chunked(
                    b,
                    2048,
                    || Session::new(src, config.clone()).expect("compiles"),
                    |s| {
                        s.call("go", &[7]).expect("dynamic compile");
                    },
                );
            });
            let mut s = Session::new(src, config).expect("compiles");
            for _ in 0..5 {
                s.call("go", &[7]).expect("dynamic compile");
            }
            let st = s.dyn_stats();
            eprintln!(
                "  {shape}/{bname}: {:.0} ns per generated instruction ({} instrs/compile)",
                st.total_ns as f64 / st.generated_insns.max(1) as f64,
                st.generated_insns / st.compiles.max(1),
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_codegen);
criterion_main!(benches);
