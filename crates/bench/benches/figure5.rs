//! Regenerates the paper's Figure 5 (cross-over points: number of runs
//! of the dynamic code needed to amortize its compilation).
//!
//! Run with: `cargo bench -p tcc-bench --bench figure5`

use tcc_suite::{benchmarks, measure, ns_per_cycle, report, BLUR_FULL, BLUR_SMALL};

fn main() {
    let small = std::env::args().any(|a| a == "--small");
    let dims = if small { BLUR_SMALL } else { BLUR_FULL };
    let nspc = ns_per_cycle();
    let ms: Vec<_> = benchmarks(dims)
        .iter()
        .map(|b| {
            eprintln!("measuring {}...", b.name);
            measure(b)
        })
        .collect();
    print!("{}", report::figure5(&ms, nspc));
}
