//! Pool-level concurrency properties: bit-identical replay across pool
//! sizes, compile-once behavior without churn, and recovery metrics
//! with churn. The per-request differential (same cell → same result,
//! instruction count, cycle count on every thread) asserts inside
//! `run_serve` itself; these tests drive it across configurations.

use tcc_serve::{run_serve, ServeOptions};

#[test]
fn replay_is_bit_identical_across_pool_sizes() {
    let opts = ServeOptions::smoke();
    let reports: Vec<_> = [1, 2, 4].iter().map(|&n| run_serve(n, &opts)).collect();
    for r in &reports {
        assert_eq!(r.requests, opts.requests as u64);
    }
    // Same checksum ⇒ every (cell, result, insns, cycles) tuple agreed
    // no matter which thread compiled or executed it.
    assert_eq!(reports[0].checksum, reports[1].checksum);
    assert_eq!(reports[0].checksum, reports[2].checksum);
    // The workload itself is replayed identically, so the dedup'd
    // working set is too.
    assert_eq!(
        reports[0].unique_fingerprints,
        reports[2].unique_fingerprints
    );
}

#[test]
fn without_churn_each_unique_fingerprint_compiles_exactly_once() {
    let opts = ServeOptions {
        churn_every: None,
        ..ServeOptions::smoke()
    };
    let r = run_serve(4, &opts);
    assert_eq!(
        r.compiles, r.unique_fingerprints,
        "first compiler wins; nobody duplicates"
    );
    assert!((r.compiles_per_unique - 1.0).abs() < 1e-9);
    assert_eq!(r.metrics.evictions + r.metrics.invalidations, 0);
    assert_eq!(r.stale_faults, 0, "nothing went stale without churn");
}

#[test]
fn churning_pool_recovers_and_stays_hot() {
    let r = run_serve(4, &ServeOptions::smoke());
    assert!(
        r.metrics.hit_rate() >= 0.9,
        "hot Zipf set must hit ≥ 0.9, got {:.3}",
        r.metrics.hit_rate()
    );
    assert!(
        r.compiles_per_unique <= 1.0 + 1e-9,
        "churn recompiles never exceed one per invalidation/eviction"
    );
    assert!(
        r.compiles >= r.unique_fingerprints,
        "every unique cell compiled at least once"
    );
    assert!(r.metrics.invalidations > 0, "churn actually invalidated");
}

#[test]
fn byte_budget_evictions_surface_in_the_report() {
    // A budget far below the working set forces evictions; the pool
    // must still replay identically (stale installs fault and retry).
    let tight = ServeOptions {
        budget: Some(256),
        churn_every: None,
        ..ServeOptions::smoke()
    };
    let r = run_serve(2, &tight);
    assert_eq!(run_serve(1, &tight).checksum, r.checksum);
    assert!(
        r.metrics.evictions > 0 || r.metrics.uncacheable > 0,
        "a 256-byte budget cannot hold the working set"
    );
}
