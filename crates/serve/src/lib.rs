//! # tcc-serve — the multi-tenant codegen service harness
//!
//! The paper's system compiles for one program in one thread. This
//! crate turns the stack into a *service*: a pool of worker threads,
//! each owning its own [`Session`] (VM + code space + runtime), all
//! sharing one [`SharedArtifacts`] cache and one background
//! translation hub. A seeded Zipfian request stream — mixed
//! compile/execute with periodic rule-set churn — is replayed across
//! the pool, and the harness reports throughput, tail latency, shared
//! cache hit rate, and compiles-per-unique-fingerprint.
//!
//! The load model: `KERNELS.len()` code-generating kernels, each
//! parameterized by a small integer (`$`-bound at spec time), giving
//! `kernels × params` distinct *cells*. Each request draws a cell from
//! a Zipf distribution (hot working set), asks its session to compile
//! the cell's closure (memo → shared install → fresh compile, in that
//! order), and executes the produced function on a cell-derived
//! argument. Requests are bit-deterministic: the same cell must
//! produce the same result, instruction count, and cycle count on
//! every thread of every pool size — the differential harness inside
//! [`run_serve`] asserts this on every single request.
//!
//! Churn: every `churn_every`-th request invalidates a resident
//! artifact chosen deterministically from the shared cache, forcing
//! recompiles and exercising the cross-thread stale-code path
//! (`VmError::StaleCode`, retried by the worker — never stale bytes).

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use rand::distributions::{Distribution, Zipf};
use rand::{rngs::StdRng, SeedableRng};
use tcc::{Config, Error, Session, SharedArtifacts, TransHub, VmError};
use tcc_obs::SharedCacheMetrics;

/// The service's code-generating kernels: one `C entry point per
/// workload shape, each `long srv_*(int p)` returning the compiled
/// function pointer. Tick bodies are pure (no memory reads), so every
/// (kernel, p) cell fingerprints cacheably.
pub const KERNELS: [&str; 5] = ["srv_pow", "srv_poly", "srv_filter", "srv_hash", "srv_dot"];

/// The combined `C source every worker session loads.
pub const SERVE_SRC: &str = r#"
    long srv_pow(int p) {
        int vspec x = param(int, 0);
        int cspec c = `1;
        int i;
        for (i = 0; i < p; i++) c = `(c * x);
        return (long)compile(c, int);
    }
    long srv_poly(int p) {
        int vspec x = param(int, 0);
        int cspec c = `0;
        int i;
        for (i = 1; i <= p; i++) c = `(c * x + $i);
        return (long)compile(c, int);
    }
    long srv_filter(int p) {
        int vspec x = param(int, 0);
        int cspec c = `(((x >> $p) ^ x) & ((1 << $p) + 7));
        return (long)compile(c, int);
    }
    long srv_hash(int p) {
        int vspec x = param(int, 0);
        int cspec h = `x;
        int i;
        for (i = 0; i < p; i++) h = `((h ^ ($i * 40503)) * 31);
        return (long)compile(h, int);
    }
    long srv_dot(int p) {
        int vspec x = param(int, 0);
        int cspec c = `0;
        int i;
        for (i = 1; i <= p; i++) c = `(c + (x >> $i) * $i);
        return (long)compile(c, int);
    }
"#;

/// Knobs for one serve run.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Total requests replayed across the pool.
    pub requests: usize,
    /// Parameter values per kernel (cells = kernels × this).
    pub params_per_kernel: u64,
    /// Stream seed (Zipf draws).
    pub seed: u64,
    /// Zipf exponent (`s = 0` = uniform; ~1 = classic hot set).
    pub zipf_s: f64,
    /// Invalidate a resident artifact every N requests (`None` = no
    /// churn).
    pub churn_every: Option<usize>,
    /// Shared-cache byte budget (`None` = unbounded).
    pub budget: Option<u64>,
    /// Build promoted translations on the shared background hub.
    pub background: bool,
    /// On-disk persistent artifact store shared by the pool (`None` =
    /// in-memory only). The first session attaches the store to the
    /// pool's [`SharedArtifacts`]; later sessions reuse it.
    pub persist_path: Option<std::path::PathBuf>,
}

impl ServeOptions {
    /// The benchmark configuration `suite serve` reports on.
    pub fn full() -> ServeOptions {
        ServeOptions {
            requests: 2000,
            params_per_kernel: 8,
            seed: 0x5eed_5e12,
            zipf_s: 1.1,
            churn_every: Some(64),
            budget: None,
            background: true,
            persist_path: None,
        }
    }

    /// A seconds-scale variant for CI (`suite serve --smoke`).
    pub fn smoke() -> ServeOptions {
        ServeOptions {
            requests: 150,
            params_per_kernel: 2,
            seed: 0x5eed_5e12,
            zipf_s: 1.1,
            churn_every: Some(32),
            budget: None,
            background: true,
            persist_path: None,
        }
    }

    /// Distinct (kernel, param) cells this configuration can draw.
    pub fn cells(&self) -> u64 {
        KERNELS.len() as u64 * self.params_per_kernel
    }
}

/// What one pool run measured.
#[derive(Clone, Debug)]
pub struct ServeReport {
    /// Worker threads (= sessions) in the pool.
    pub threads: usize,
    /// Requests served.
    pub requests: u64,
    /// Wall-clock for the whole replay.
    pub elapsed_ns: u64,
    /// Requests per second over the wall clock.
    pub throughput_rps: f64,
    /// Median per-request latency.
    pub p50_ns: u64,
    /// 99th-percentile per-request latency.
    pub p99_ns: u64,
    /// 99.9th-percentile per-request latency.
    pub p999_ns: u64,
    /// Shared-cache counters at the end of the run.
    pub metrics: SharedCacheMetrics,
    /// Distinct cells the stream actually requested.
    pub unique_fingerprints: u64,
    /// Compiles actually performed (shared-cache publishes).
    pub compiles: u64,
    /// Compiles per compile-worthy event: `published / (unique +
    /// invalidations + evictions)`. ≈ 1 means concurrent sessions
    /// never duplicated a compile.
    pub compiles_per_unique: f64,
    /// `StaleCode` faults workers recovered from (churn races).
    pub stale_faults: u64,
    /// Order-independent digest over every request's (cell, result,
    /// insns, cycles) — must be identical for every pool size.
    pub checksum: u64,
}

/// One request: a cell index encoding (kernel, param).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
struct Cell(u32);

impl Cell {
    fn kernel(self) -> &'static str {
        KERNELS[self.0 as usize % KERNELS.len()]
    }
    fn param(self) -> u64 {
        self.0 as u64 / KERNELS.len() as u64 + 1
    }
    /// The cell-derived execution argument (thread-independent).
    fn arg(self) -> u64 {
        (self.0 as u64 * 7 + 3) % 97 + 1
    }
}

/// splitmix64-style mixer for the order-independent checksum.
fn mix(a: u64, b: u64) -> u64 {
    let mut z = a
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(b)
        .wrapping_add(0x2545_F491_4F6C_DD1D);
    z ^= z >> 30;
    z = z.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^= z >> 27;
    z.wrapping_mul(0x94D0_49BB_1331_11EB)
}

/// Pre-generates the request stream: the same (seed, cells, s) always
/// yields the same cell sequence, so every pool size replays an
/// identical workload.
fn gen_stream(opts: &ServeOptions) -> Vec<Cell> {
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let zipf = Zipf::new(opts.cells(), opts.zipf_s).expect("valid Zipf parameters");
    (0..opts.requests)
        .map(|_| Cell((zipf.sample(&mut rng) - 1) as u32))
        .collect()
}

/// Nearest-rank percentile over a sorted latency vector.
fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64) * q).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// What each worker records per request, merged after the join.
#[derive(Default)]
struct WorkerOut {
    latencies_ns: Vec<u64>,
    checksum: u64,
    stale_faults: u64,
}

/// Per-cell execution signature for the differential harness.
type Signature = (u64, u64, u64); // (result, insns, cycles)

fn serve_session(
    shared: &Arc<SharedArtifacts>,
    hub: &TransHub<tcc::TccRuntime>,
    opts: &ServeOptions,
) -> Session {
    Session::new(
        SERVE_SRC,
        Config {
            shared: Some(Arc::clone(shared)),
            translation_hub: Some(hub.clone()),
            adaptive_background: opts.background,
            persist_path: opts.persist_path.clone(),
            mem_size: 8 << 20,
            ..Config::default()
        },
    )
    .expect("serve source compiles")
}

/// Compiles and executes one cell in `session`, retrying compile +
/// execute when churn on another thread faulted the address stale.
fn serve_one(session: &mut Session, cell: Cell, out: &mut WorkerOut) -> Signature {
    let mut attempts = 0;
    loop {
        let addr = session
            .call(cell.kernel(), &[cell.param()])
            .expect("kernel compile succeeds");
        let i0 = session.insns();
        let c0 = session.cycles();
        match session.call_addr(addr, &[cell.arg()]) {
            Ok(result) => {
                return (result, session.insns() - i0, session.cycles() - c0);
            }
            Err(Error::Vm(VmError::StaleCode(_))) => {
                // Another session's churn dropped the artifact between
                // our compile step and the execution: recompile.
                out.stale_faults += 1;
                attempts += 1;
                assert!(attempts < 100, "stale-code retry did not converge");
            }
            Err(e) => panic!("serve request failed: {e}"),
        }
    }
}

/// Replays the request stream over a pool of `threads` sessions
/// sharing one artifact cache and one translation hub.
///
/// # Panics
///
/// On any cross-thread divergence: a cell whose result, executed
/// instruction count, or cycle count differs from another thread's
/// execution of the same cell (the differential harness), or any
/// non-stale execution error.
pub fn run_serve(threads: usize, opts: &ServeOptions) -> ServeReport {
    assert!(threads >= 1, "pool needs at least one worker");
    let stream = Arc::new(gen_stream(opts));
    let unique: u64 = {
        let mut cells: Vec<u32> = stream.iter().map(|c| c.0).collect();
        cells.sort_unstable();
        cells.dedup();
        cells.len() as u64
    };
    let shared = SharedArtifacts::new(16, opts.budget);
    let hub = TransHub::spawn();
    // The differential record: every execution of a cell must match
    // the first recorded signature, no matter which thread ran it or
    // which session compiled it.
    let differential: Arc<Mutex<HashMap<Cell, Signature>>> = Arc::new(Mutex::new(HashMap::new()));
    let next = Arc::new(AtomicUsize::new(0));
    // Sessions are built (front end + static codegen) outside the
    // timed window: a service constructs its pool once, then serves.
    let sessions: Vec<Session> = (0..threads)
        .map(|_| serve_session(&shared, &hub, opts))
        .collect();

    let t0 = Instant::now();
    let outs: Vec<WorkerOut> = std::thread::scope(|scope| {
        let mut joins = Vec::new();
        for mut session in sessions {
            let stream = Arc::clone(&stream);
            let next = Arc::clone(&next);
            let shared = Arc::clone(&shared);
            let differential = Arc::clone(&differential);
            let churn_every = opts.churn_every;
            joins.push(scope.spawn(move || {
                let mut out = WorkerOut::default();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= stream.len() {
                        break;
                    }
                    let cell = stream[i];
                    let t = Instant::now();
                    if let Some(every) = churn_every {
                        if i > 0 && i.is_multiple_of(every) {
                            // Deterministic pick; rule-set churn.
                            if let Some(fp) = shared.sample_fingerprint(i as u64) {
                                shared.invalidate(&fp);
                            }
                        }
                    }
                    let sig = serve_one(&mut session, cell, &mut out);
                    out.latencies_ns.push(t.elapsed().as_nanos() as u64);
                    let mut diff = differential.lock().unwrap_or_else(|e| e.into_inner());
                    let first = *diff.entry(cell).or_insert(sig);
                    assert_eq!(
                        first, sig,
                        "cell {cell:?} diverged across threads: {first:?} vs {sig:?}"
                    );
                    drop(diff);
                    out.checksum = out.checksum.wrapping_add(mix(
                        cell.0 as u64,
                        sig.0 ^ sig.1.rotate_left(16) ^ sig.2.rotate_left(32),
                    ));
                }
                out
            }));
        }
        joins
            .into_iter()
            .map(|j| j.join().expect("worker"))
            .collect()
    });
    let elapsed_ns = t0.elapsed().as_nanos() as u64;

    let mut latencies: Vec<u64> = Vec::with_capacity(stream.len());
    let mut checksum = 0u64;
    let mut stale_faults = 0u64;
    for out in outs {
        latencies.extend(out.latencies_ns);
        checksum = checksum.wrapping_add(out.checksum);
        stale_faults += out.stale_faults;
    }
    latencies.sort_unstable();
    let metrics = shared.metrics();
    let compile_worthy = unique + metrics.invalidations + metrics.evictions;
    ServeReport {
        threads,
        requests: latencies.len() as u64,
        elapsed_ns,
        throughput_rps: latencies.len() as f64 / (elapsed_ns.max(1) as f64 / 1e9),
        p50_ns: percentile(&latencies, 0.50),
        p99_ns: percentile(&latencies, 0.99),
        p999_ns: percentile(&latencies, 0.999),
        unique_fingerprints: unique,
        compiles: metrics.published,
        compiles_per_unique: metrics.published as f64 / compile_worthy.max(1) as f64,
        stale_faults,
        checksum,
        metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_deterministic_and_skewed() {
        let opts = ServeOptions::smoke();
        let a = gen_stream(&opts);
        let b = gen_stream(&opts);
        assert_eq!(a, b, "same seed, same stream");
        assert_eq!(a.len(), opts.requests);
        assert!(a.iter().all(|c| (c.0 as u64) < opts.cells()));
        // Zipf: the hottest cell dominates a uniform share.
        let mut counts = vec![0usize; opts.cells() as usize];
        for c in &a {
            counts[c.0 as usize] += 1;
        }
        let max = *counts.iter().max().expect("non-empty");
        assert!(
            max * (opts.cells() as usize) > 2 * opts.requests,
            "hot cell should exceed 2x the uniform share"
        );
    }

    #[test]
    fn cells_cover_every_kernel_and_param() {
        let opts = ServeOptions::full();
        let mut kernels = std::collections::BTreeSet::new();
        let mut params = std::collections::BTreeSet::new();
        for raw in 0..opts.cells() as u32 {
            kernels.insert(Cell(raw).kernel());
            params.insert(Cell(raw).param());
        }
        assert_eq!(kernels.len(), KERNELS.len());
        assert_eq!(params.len(), opts.params_per_kernel as usize);
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let lat: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&lat, 0.50), 50);
        assert_eq!(percentile(&lat, 0.99), 99);
        assert_eq!(percentile(&lat, 0.999), 100);
        assert_eq!(percentile(&[], 0.5), 0);
    }

    #[test]
    fn single_thread_smoke_run_is_consistent() {
        let r = run_serve(1, &ServeOptions::smoke());
        assert_eq!(r.requests, 150);
        assert!(r.compiles >= r.unique_fingerprints);
        assert!(r.metrics.hit_rate() > 0.5, "hot set must mostly hit");
        assert!(r.compiles_per_unique <= 1.0 + 1e-9);
        assert!(r.p50_ns <= r.p99_ns && r.p99_ns <= r.p999_ns);
    }
}
