//! Differential tests: the same ICODE program compiled with linear scan,
//! with graph coloring, and emitted directly through VCODE must agree
//! with a host-side reference evaluation — including under register
//! pressure that forces spills.

use proptest::prelude::*;
use tcc_icode::{IcodeBuf, IcodeCompiler, Pools, Strategy as Alloc};
use tcc_rt::ValKind;
use tcc_vcode::ops::BinOp;
use tcc_vcode::{CodeSink, Vcode};
use tcc_vm::{CodeSpace, Vm};

/// A tiny random straight-line program over two parameters.
#[derive(Clone, Debug)]
enum Step {
    Const(i32),
    Bin(BinOp, usize, usize),
    BinImm(BinOp, usize, i32),
}

fn binop_strategy() -> impl Strategy<Value = BinOp> {
    use BinOp::*;
    prop::sample::select(vec![
        Add, Sub, Mul, And, Or, Xor, Shl, Shr, ShrU, Eq, Ne, Lt, LtU, Le, Gt, Ge,
    ])
}

fn imm_op_strategy() -> impl Strategy<Value = BinOp> {
    use BinOp::*;
    prop::sample::select(vec![Add, Sub, Mul, DivU, RemU])
}

fn steps_strategy() -> impl Strategy<Value = Vec<Step>> {
    prop::collection::vec(
        prop_oneof![
            (-1000i32..1000).prop_map(Step::Const),
            (binop_strategy(), 0usize..64, 0usize..64).prop_map(|(op, a, b)| Step::Bin(op, a, b)),
            (imm_op_strategy(), 0usize..64, 1i32..64).prop_map(|(op, a, i)| Step::BinImm(op, a, i)),
        ],
        4..48,
    )
}

/// Reference semantics on the host.
fn reference(steps: &[Step], p0: i32, p1: i32) -> Option<i32> {
    let mut vals: Vec<i64> = vec![p0 as i64, p1 as i64];
    for s in steps {
        let v = match s {
            Step::Const(c) => *c as i64,
            Step::Bin(op, a, b) => {
                let (x, y) = (vals[a % vals.len()], vals[b % vals.len()]);
                if matches!(op, BinOp::Shl | BinOp::Shr | BinOp::ShrU) && !(0..32).contains(&y) {
                    // normalize shift amounts like the builder below
                    op.eval_int(ValKind::W, x, y.rem_euclid(32))?
                } else {
                    op.eval_int(ValKind::W, x, y)?
                }
            }
            Step::BinImm(op, a, i) => op.eval_int(ValKind::W, vals[a % vals.len()], *i as i64)?,
        };
        vals.push(v);
    }
    // Consume everything so all values stay live to the end (register
    // pressure, forcing spills in every back end).
    let mut acc: i64 = 0;
    for v in &vals {
        acc = BinOp::Add
            .eval_int(ValKind::W, acc, *v)
            .expect("add never fails");
    }
    Some(acc as i32)
}

/// Builds the equivalent program into any sink.
fn build<S: CodeSink>(s: &mut S, steps: &[Step]) {
    let p0 = s.param(0, ValKind::W);
    let p1 = s.param(1, ValKind::W);
    let mut vals = vec![p0, p1];
    for step in steps {
        let d = s.temp_saved(ValKind::W);
        match step {
            Step::Const(c) => s.li(d, *c as i64),
            Step::Bin(op, a, b) => {
                let (x, y) = (vals[a % vals.len()], vals[b % vals.len()]);
                if matches!(op, BinOp::Shl | BinOp::Shr | BinOp::ShrU) {
                    // normalize the shift amount into range with a mask
                    let t = s.temp(ValKind::W);
                    s.bin_imm(BinOp::And, ValKind::W, t, y, 31);
                    s.bin(*op, ValKind::W, d, x, t);
                    s.release(t);
                } else {
                    s.bin(*op, ValKind::W, d, x, y);
                }
            }
            Step::BinImm(op, a, i) => {
                s.bin_imm(*op, ValKind::W, d, vals[a % vals.len()], *i as i64)
            }
        }
        vals.push(d);
    }
    let acc = s.temp(ValKind::W);
    s.li(acc, 0);
    for &v in &vals {
        s.bin(BinOp::Add, ValKind::W, acc, acc, v);
    }
    s.ret_val(ValKind::W, acc);
}

fn run_icode(steps: &[Step], strategy: Alloc, pools: Pools, p0: i32, p1: i32) -> i32 {
    let mut buf = IcodeBuf::new();
    build(&mut buf, steps);
    let mut code = CodeSpace::new();
    let mut c = IcodeCompiler::new(strategy);
    c.pools = pools;
    // DCE would be correct, but keep every value to maximize pressure.
    c.run_peephole = false;
    let r = c.compile(&mut code, "prog", buf);
    let mut vm = Vm::new(code, 1 << 20);
    vm.call(r.func.addr, &[p0 as i64 as u64, p1 as i64 as u64])
        .expect("runs") as i32
}

fn run_vcode(steps: &[Step], p0: i32, p1: i32) -> i32 {
    let mut code = CodeSpace::new();
    let mut vc = Vcode::new(&mut code, "prog");
    build(&mut vc, steps);
    let f = vc.finish();
    let mut vm = Vm::new(code, 1 << 20);
    vm.call(f.addr, &[p0 as i64 as u64, p1 as i64 as u64])
        .expect("runs") as i32
}

/// Shift amounts in reference already normalized; division by zero steps
/// are skipped by returning None from reference — mirror that by
/// filtering.
fn divides_safely(steps: &[Step], p0: i32, p1: i32) -> bool {
    reference(steps, p0, p1).is_some()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn all_backends_agree_with_reference(
        steps in steps_strategy(),
        p0 in -10_000i32..10_000,
        p1 in -10_000i32..10_000,
    ) {
        prop_assume!(divides_safely(&steps, p0, p1));
        let expect = reference(&steps, p0, p1).expect("assumed safe");
        prop_assert_eq!(run_vcode(&steps, p0, p1), expect, "vcode");
        prop_assert_eq!(
            run_icode(&steps, Alloc::LinearScan, Pools::full(), p0, p1),
            expect,
            "linear scan"
        );
        prop_assert_eq!(
            run_icode(&steps, Alloc::GraphColor, Pools::full(), p0, p1),
            expect,
            "graph coloring"
        );
    }

    #[test]
    fn allocators_correct_under_tiny_register_pools(
        steps in steps_strategy(),
        p0 in -100i32..100,
        p1 in -100i32..100,
        nregs in 3usize..8,
    ) {
        prop_assume!(divides_safely(&steps, p0, p1));
        let expect = reference(&steps, p0, p1).expect("assumed safe");
        prop_assert_eq!(
            run_icode(&steps, Alloc::LinearScan, Pools::with_int_limit(nregs), p0, p1),
            expect
        );
        prop_assert_eq!(
            run_icode(&steps, Alloc::GraphColor, Pools::with_int_limit(nregs), p0, p1),
            expect
        );
    }
}

#[test]
fn loop_program_agrees_across_backends() {
    // f(n, step) = sum of (i*step) for i in 1..=n
    fn build_loop<S: CodeSink>(s: &mut S) {
        let n = s.param(0, ValKind::W);
        let stepv = s.param(1, ValKind::W);
        let acc = s.temp_saved(ValKind::W);
        let i = s.temp_saved(ValKind::W);
        s.li(acc, 0);
        s.li(i, 1);
        let top = s.label();
        let done = s.label();
        s.loop_begin();
        s.bind(top);
        s.br_cmp(BinOp::Gt, ValKind::W, i, n, done);
        let t = s.temp(ValKind::W);
        s.bin(BinOp::Mul, ValKind::W, t, i, stepv);
        s.bin(BinOp::Add, ValKind::W, acc, acc, t);
        s.release(t);
        s.bin_imm(BinOp::Add, ValKind::W, i, i, 1);
        s.jmp(top);
        s.loop_end();
        s.bind(done);
        s.ret_val(ValKind::W, acc);
    }

    let expect: i64 = (1..=250i64).map(|i| i * 3).sum();

    let mut code = CodeSpace::new();
    let mut vc = Vcode::new(&mut code, "loop");
    build_loop(&mut vc);
    let f = vc.finish();
    let mut vm = Vm::new(code, 1 << 20);
    assert_eq!(vm.call(f.addr, &[250, 3]).unwrap() as i64, expect);

    for strategy in [Alloc::LinearScan, Alloc::GraphColor] {
        let mut buf = IcodeBuf::new();
        build_loop(&mut buf);
        let mut code = CodeSpace::new();
        let r = IcodeCompiler::new(strategy).compile(&mut code, "loop", buf);
        let mut vm = Vm::new(code, 1 << 20);
        assert_eq!(
            vm.call(r.func.addr, &[250, 3]).unwrap() as i64,
            expect,
            "{strategy:?}"
        );
    }
}

#[test]
fn icode_code_quality_beats_vcode_under_pressure() {
    // The paper's Figure 2 scenario: a long expression chain makes the
    // one-pass VCODE allocator spill, while global allocation does not.
    let steps: Vec<Step> = (0..30).map(|i| Step::BinImm(BinOp::Add, i, 1)).collect();
    let cycles = |build_and_run: &dyn Fn() -> (CodeSpace, u64)| {
        let (code, addr) = build_and_run();
        let mut vm = Vm::new(code, 1 << 20);
        vm.call(addr, &[1, 2]).unwrap();
        vm.cycles()
    };
    let vcode_cycles = cycles(&|| {
        let mut code = CodeSpace::new();
        let mut vc = Vcode::new(&mut code, "p");
        build(&mut vc, &steps);
        let f = vc.finish();
        (code, f.addr)
    });
    let icode_cycles = cycles(&|| {
        let mut buf = IcodeBuf::new();
        build(&mut buf, &steps);
        let mut code = CodeSpace::new();
        let mut c = IcodeCompiler::new(Alloc::LinearScan);
        c.run_peephole = false;
        let r = c.compile(&mut code, "p", buf);
        (code, r.func.addr)
    });
    assert!(
        icode_cycles <= vcode_cycles,
        "icode ({icode_cycles}) should generate code at least as good as vcode ({vcode_cycles})"
    );
}
