//! Fast linear-scan register allocation — the paper's Figure 3.
//!
//! "Given R available registers and a list of live intervals, allocating
//! registers so as to minimize the number of spilled intervals involves
//! removing the smallest number of live intervals so that no more than R
//! live intervals overlap any one instruction. … the algorithm traverses
//! the list of intervals in reverse order, jumping from end point to end
//! point while maintaining a list, *active*, of intervals live at the
//! current point. When the number of these intervals exceeds R, the
//! longest interval (the one with the earliest start point) is spilled.
//! The active list is maintained in order of increasing start point. As a
//! result, spilling the longest interval simply means removing the first
//! element, and expiring intervals that are no longer active just
//! involves a short search backwards from the end of the list."
//!
//! Asymptotic running time: `O(I · R)`.
//!
//! Two machine-imposed adaptations (documented in DESIGN.md): registers
//! come in two classes per bank (caller- and callee-saved), and intervals
//! that cross a call may only take callee-saved registers; and the
//! integer and floating point banks are allocated independently.

use crate::alloc::{AllocLoc, Assignment, Pools};
use crate::intervals::Interval;
use tcc_rt::ValKind;
use tcc_vm::{FReg, Reg};

#[derive(Clone, Copy, Debug)]
enum Phys {
    R(Reg),
    F(FReg),
}

struct Active {
    /// (interval index, register), sorted by increasing start point.
    list: Vec<(usize, Phys)>,
}

/// Runs the Figure 3 allocator over `intervals` (which must be sorted by
/// increasing end point, as produced by
/// [`crate::intervals::build_intervals`]). Returns the assignment for
/// `nv` virtual registers.
pub fn linear_scan(intervals: &[Interval], nv: usize, pools: &Pools) -> Assignment {
    let mut asn = Assignment::new(nv);
    run_bank(intervals, &mut asn, pools, false);
    run_bank(intervals, &mut asn, pools, true);
    asn
}

fn run_bank(intervals: &[Interval], asn: &mut Assignment, pools: &Pools, float: bool) {
    // Indices of this bank's intervals, in increasing-end order.
    let idxs: Vec<usize> = (0..intervals.len())
        .filter(|&i| (intervals[i].kind == ValKind::F) == float)
        .collect();

    let mut free_caller: Vec<Phys> = if float {
        pools.f_caller.iter().rev().map(|&f| Phys::F(f)).collect()
    } else {
        pools.int_caller.iter().rev().map(|&r| Phys::R(r)).collect()
    };
    let mut free_callee: Vec<Phys> = if float {
        pools.f_callee.iter().rev().map(|&f| Phys::F(f)).collect()
    } else {
        pools.int_callee.iter().rev().map(|&r| Phys::R(r)).collect()
    };
    let is_callee = |p: Phys| match p {
        Phys::R(r) => pools.int_callee.contains(&r),
        Phys::F(f) => pools.f_callee.contains(&f),
    };

    let mut active = Active { list: Vec::new() };

    // "foreach live interval i, from last to first"
    for &ii in idxs.iter().rev() {
        let iv = &intervals[ii];

        // EXPIREOLDINTERVALS(i): walk active from the back (largest start
        // point); intervals starting after i ends no longer overlap.
        while let Some(&(j, reg)) = active.list.last() {
            if intervals[j].start <= iv.end {
                break;
            }
            active.list.pop();
            if is_callee(reg) {
                free_callee.push(reg);
            } else {
                free_caller.push(reg);
            }
        }

        // Pick a free register honoring the call-crossing constraint.
        let reg = if iv.crosses_call {
            free_callee.pop()
        } else {
            free_caller.pop().or_else(|| free_callee.pop())
        };

        let reg = match reg {
            Some(r) => Some(r),
            None => spill_longest(intervals, &mut active.list, asn, iv, is_callee),
        };

        match reg {
            Some(r) => {
                asn.set(iv.vreg, to_alloc(r));
                // "add i to active, sorted by start point"
                let pos = active
                    .list
                    .partition_point(|&(j, _)| intervals[j].start <= iv.start);
                active.list.insert(pos, (ii, r));
            }
            None => {
                // "location[i] <- new stack location"
                let slot = if float {
                    asn.new_fslot()
                } else {
                    asn.new_slot()
                };
                asn.set(iv.vreg, slot);
            }
        }
    }
}

/// SPILLLONGESTINTERVAL(i): the longest active interval is the first
/// element (earliest start point). If it starts before `i` — and its
/// register is legal for `i` — spill it and take its register; otherwise
/// spill `i` itself (return `None`).
fn spill_longest(
    intervals: &[Interval],
    active: &mut Vec<(usize, Phys)>,
    asn: &mut Assignment,
    iv: &Interval,
    is_callee: impl Fn(Phys) -> bool,
) -> Option<Phys> {
    // A victim's register is acceptable if it is callee-saved, or if
    // neither interval crosses a call (never hand a caller-saved register
    // taken from a non-crossing interval to one that crosses calls).
    let pos = active.iter().position(|&(j, reg)| {
        intervals[j].start < iv.start
            && (is_callee(reg) || (!iv.crosses_call && !intervals[j].crosses_call))
    })?;
    let (j, reg) = active.remove(pos);
    let victim = &intervals[j];
    let slot = if victim.kind == ValKind::F {
        asn.new_fslot()
    } else {
        asn.new_slot()
    };
    asn.set(victim.vreg, slot);
    Some(reg)
}

fn to_alloc(p: Phys) -> AllocLoc {
    match p {
        Phys::R(r) => AllocLoc::R(r),
        Phys::F(f) => AllocLoc::F(f),
    }
}

/// Checks the fundamental invariant of any register allocation: no two
/// intervals that overlap in time share a physical register. Returns the
/// offending pair if the invariant is violated (used by tests and
/// property tests).
pub fn check_no_overlap_conflicts(
    intervals: &[Interval],
    asn: &Assignment,
) -> Option<(crate::ir::VReg, crate::ir::VReg)> {
    for (i, a) in intervals.iter().enumerate() {
        for b in &intervals[i + 1..] {
            let overlap = a.start <= b.end && b.start <= a.end;
            if !overlap {
                continue;
            }
            let (la, lb) = (asn.loc(a.vreg), asn.loc(b.vreg));
            if la == lb && !la.is_spill() {
                return Some((a.vreg, b.vreg));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::VReg;

    fn iv(v: u32, start: usize, end: usize) -> Interval {
        Interval {
            vreg: VReg(v),
            kind: ValKind::W,
            start,
            end,
            crosses_call: false,
            weight: 1,
        }
    }

    fn pools(n: usize) -> Pools {
        Pools::with_int_limit(n)
    }

    #[test]
    fn disjoint_intervals_share_registers() {
        let ivs = vec![iv(0, 0, 1), iv(1, 2, 3), iv(2, 4, 5)];
        let asn = linear_scan(&ivs, 3, &pools(1));
        assert_eq!(asn.spilled, 0);
        let l0 = asn.loc(VReg(0));
        let l1 = asn.loc(VReg(1));
        let l2 = asn.loc(VReg(2));
        assert_eq!(l0, l1);
        assert_eq!(l1, l2);
    }

    #[test]
    fn overlapping_intervals_get_distinct_registers() {
        let ivs = vec![iv(0, 0, 10), iv(1, 2, 12), iv(2, 4, 14)];
        let asn = linear_scan(&ivs, 3, &pools(3));
        assert_eq!(asn.spilled, 0);
        assert!(check_no_overlap_conflicts(&ivs, &asn).is_none());
    }

    #[test]
    fn pressure_beyond_r_spills_the_longest() {
        // Three overlapping intervals, two registers: the one with the
        // earliest start (longest) is the spill victim per Figure 3.
        let mut ivs = vec![iv(0, 0, 20), iv(1, 5, 15), iv(2, 6, 14)];
        ivs.sort_by_key(|i| i.end);
        let asn = linear_scan(&ivs, 3, &pools(2));
        assert_eq!(asn.spilled, 1);
        assert!(asn.loc(VReg(0)).is_spill(), "longest interval spilled");
        assert!(!asn.loc(VReg(1)).is_spill());
        assert!(!asn.loc(VReg(2)).is_spill());
        assert!(check_no_overlap_conflicts(&ivs, &asn).is_none());
    }

    #[test]
    fn crossing_intervals_take_callee_saved() {
        let mut a = iv(0, 0, 10);
        a.crosses_call = true;
        let ivs = vec![a];
        let asn = linear_scan(&ivs, 1, &Pools::full());
        match asn.loc(VReg(0)) {
            AllocLoc::R(r) => assert!(tcc_vm::regs::SAVED_REGS.contains(&r)),
            other => panic!("expected callee-saved register, got {other:?}"),
        }
        assert_eq!(asn.used_callee_saved.len(), 1);
    }

    #[test]
    fn many_intervals_no_conflicts() {
        // A pseudo-random torture layout, deterministic.
        let mut ivs = Vec::new();
        let mut x: u64 = 0x12345;
        for v in 0..60u32 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let s = (x >> 33) as usize % 100;
            let e = s + 1 + (x >> 17) as usize % 40;
            let mut i = iv(v, s, e);
            i.crosses_call = (x & 1) == 0 && v % 3 == 0;
            ivs.push(i);
        }
        ivs.sort_by_key(|i| (i.end, i.start));
        let asn = linear_scan(&ivs, 60, &Pools::full());
        assert!(check_no_overlap_conflicts(&ivs, &asn).is_none());
        // Callee-only constraint respected.
        for i in &ivs {
            if i.crosses_call {
                match asn.loc(i.vreg) {
                    AllocLoc::R(r) => assert!(tcc_vm::regs::SAVED_REGS.contains(&r)),
                    AllocLoc::Slot(_) => {}
                    other => panic!("bad loc {other:?}"),
                }
            }
        }
    }

    #[test]
    fn float_bank_is_independent() {
        let mut ivs = vec![iv(0, 0, 10)];
        ivs.push(Interval {
            vreg: VReg(1),
            kind: ValKind::F,
            start: 0,
            end: 10,
            crosses_call: false,
            weight: 1,
        });
        let asn = linear_scan(&ivs, 2, &Pools::full());
        assert!(matches!(asn.loc(VReg(0)), AllocLoc::R(_)));
        assert!(matches!(asn.loc(VReg(1)), AllocLoc::F(_)));
    }
}
